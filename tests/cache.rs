//! Integration tests for the cache plane: chaos-injected L2 faults, the
//! observatory WPS wiring, and the hit-ratio SLO's alert path.

use std::sync::Arc;

use evop_cache::{
    hit_ratio_slo, BlobBackend, CacheConfig, CacheKey, CachePolicy, ResultCache, Tier,
};
use evop_chaos::{ChaosBlobStore, ChaosEngine, FaultKind, FaultSchedule};
use evop_core::Evop;
use evop_obs::{AlertEngine, AlertKind};
use evop_sim::{SimDuration, SimTime};
use evop_xcloud::BlobStore;
use serde_json::json;

fn big_result() -> serde_json::Value {
    json!({ "series": (0..200).collect::<Vec<u32>>() })
}

fn l1l2_cache(backend: Box<dyn BlobBackend>) -> ResultCache {
    ResultCache::new(CacheConfig {
        policy: CachePolicy::L1L2,
        l1_capacity: 2,
        l2_spill_bytes: 32,
        ttl: SimDuration::from_secs(10_000),
        ..CacheConfig::default()
    })
    .with_l2(backend)
}

/// Pushes `key` out of L1 by making two filler keys demonstrably hotter
/// (the TinyLFU gate refuses cold newcomers) and inserting them.
fn evict_from_l1(cache: &mut ResultCache, at: SimTime) {
    for name in ["filler-a", "filler-b"] {
        let filler = CacheKey::new(name, "x", 1, &json!({}));
        for _ in 0..3 {
            cache.lookup(at, &filler);
        }
        cache.insert(at, filler, &json!(0));
    }
}

#[test]
fn chaos_corruption_window_turns_l2_hits_into_misses() {
    let schedule = FaultSchedule::named("bitrot").window(
        100,
        200,
        FaultKind::BlobCorruption { container: "evop-cache-l2".to_owned(), probability: 1.0 },
    );
    let chaos = ChaosBlobStore::new(BlobStore::new(), ChaosEngine::new(schedule, 9));
    let mut cache = l1l2_cache(Box::new(chaos));
    let key = CacheKey::new("topmodel", "eden", 1, &json!({ "hours": 24 }));

    cache.insert(SimTime::from_secs(0), key.clone(), &big_result());
    assert_eq!(cache.l2_len(), 1);
    // Push the key out of L1 so the lookup must go to L2.
    evict_from_l1(&mut cache, SimTime::from_secs(1));

    // Inside the corruption window the blob comes back corrupt: the cache
    // must treat it as a miss and drop the index entry — never serve it.
    assert!(cache.lookup(SimTime::from_secs(150), &key).is_none());
    assert_eq!(cache.stats().corrupt_rejected, 1);
    assert_eq!(cache.l2_len(), 0, "a corrupt object must leave the index");
}

#[test]
fn chaos_outage_invalidates_the_l2_index_then_recovers() {
    let schedule = FaultSchedule::named("outage").window(
        100,
        300,
        FaultKind::BlobOutage { container: "evop-cache-l2".to_owned() },
    );
    let chaos = ChaosBlobStore::new(BlobStore::new(), ChaosEngine::new(schedule, 9));
    let mut cache = l1l2_cache(Box::new(chaos));
    let key = CacheKey::new("topmodel", "eden", 1, &json!({ "hours": 24 }));

    cache.insert(SimTime::from_secs(0), key.clone(), &big_result());
    evict_from_l1(&mut cache, SimTime::from_secs(1));

    // During the outage nothing in L2 can be verified: the index drops.
    assert!(cache.lookup(SimTime::from_secs(200), &key).is_none());
    assert_eq!(cache.stats().outage_invalidated, 1);
    assert_eq!(cache.l2_len(), 0);

    // After recovery the entry is gone (a miss, recomputed), and a fresh
    // insert round-trips through L2 again. The hot fillers still own L1,
    // so the admission gate keeps the re-insert out of L1 and the hit
    // must come from the blob tier.
    assert!(cache.lookup(SimTime::from_secs(500), &key).is_none());
    cache.insert(SimTime::from_secs(500), key.clone(), &big_result());
    let hit = cache.lookup(SimTime::from_secs(502), &key).expect("post-outage L2 hit");
    assert_eq!(hit.tier, Tier::L2);
}

#[test]
fn observatory_cache_policy_is_transparent_to_rest_callers() {
    // Same seed, cache on vs off: callers see identical results.
    let cached = Evop::builder().seed(11).days(5).cache_policy(CachePolicy::L1).build();
    let plain = Evop::builder().seed(11).days(5).build();
    let id = cached.catchments()[0].id().clone();

    let from_cached = cached.wps(&id).unwrap().execute("topmodel", json!({})).unwrap();
    let from_plain = plain.wps(&id).unwrap().execute("topmodel", json!({})).unwrap();
    assert_eq!(from_cached, from_plain, "caching must never change a result");

    // The second execution is a hit and still byte-identical.
    let again = cached.wps(&id).unwrap().execute("topmodel", json!({})).unwrap();
    assert_eq!(again, from_plain);
    assert_eq!(cached.cache_stats().expect("cache on").l1_hits, 1);
}

#[test]
fn hit_ratio_slo_fires_when_the_cache_goes_cold() {
    let mut evop = Evop::builder().seed(3).days(5).cache_policy(CachePolicy::L1).build();
    let id = evop.catchments()[0].id().clone();
    let mut engine = AlertEngine::new(evop.metrics().clone());
    engine.add_slo(hit_ratio_slo(0.9));

    // Warm phase: one miss then repeated hits — the SLO stays healthy.
    for _ in 0..10 {
        evop.wps(&id).unwrap().execute("topmodel", json!({})).unwrap();
    }
    for s in 0..10 {
        engine.tick(SimTime::from_secs(s * 600));
    }
    assert!(engine.alerts().is_empty(), "90% hits must not burn the budget");

    // Every catalogue update invalidates the generation: from here on each
    // distinct request misses, and the burn-rate alert fires.
    for round in 0..60u64 {
        evop.catalog_mut().touch_data();
        evop.sync_cache();
        evop.wps(&id).unwrap().execute("topmodel", json!({})).unwrap();
        engine.tick(SimTime::from_secs(6000 + round * 600));
    }
    assert!(
        engine.alerts().iter().any(|a| a.kind == AlertKind::Fired && a.slo == "cache-hit-ratio"),
        "sustained misses must fire the hit-ratio alert; alerts: {:?}",
        engine.alerts()
    );
}

#[test]
fn wps_cache_hook_is_removable() {
    use evop_cache::{DataVersion, VirtualClock, WpsResultCache};
    use parking_lot::Mutex;

    let mut evop = Evop::builder().seed(5).days(5).build();
    let id = evop.catchments()[0].id().clone();
    let plane = Arc::new(Mutex::new(ResultCache::new(CacheConfig::default())));
    let adapter = Arc::new(WpsResultCache::new(
        plane.clone(),
        VirtualClock::new(),
        DataVersion::new(),
        id.to_string(),
    ));

    evop.wps_mut(&id).unwrap().set_cache(adapter);
    evop.wps(&id).unwrap().execute("topmodel", json!({})).unwrap();
    evop.wps(&id).unwrap().execute("topmodel", json!({})).unwrap();
    assert_eq!(plane.lock().stats().l1_hits, 1);

    evop.wps_mut(&id).unwrap().clear_cache();
    evop.wps(&id).unwrap().execute("topmodel", json!({})).unwrap();
    assert_eq!(plane.lock().stats().l1_hits, 1, "a detached cache sees no more traffic");
}
