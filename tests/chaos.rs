//! Chaos testing: seeded fault injection against the full broker stack.
//!
//! The paper's pitch for handing distributed-systems management to the
//! cloud layer is "assured levels of reliability" (§III-B): the Load
//! Balancer must keep every user served through arbitrary instance
//! failures. Two families of tests hold it to that:
//!
//! - the **MTBF soak matrix** — four virtual hours of spontaneous
//!   instance failures, swept across 8 seeds × 3 mean-times-between-
//!   failures, asserting the detection→migration invariants on every
//!   cell (experiment E4 of EXPERIMENTS.md);
//! - the **golden-trace regression** — a fixed `(schedule, seed)`
//!   provider-storm run whose canonical event log must replay
//!   byte-identically (experiment E6), guarding the determinism the
//!   whole chaos plane is built on.

use evop::broker::BrokerConfig;
use evop::chaos::{ChaosRunReport, ChaosScenario, FaultSchedule};
use evop::sim::SimDuration;

/// The seed axis of the matrix.
const SEEDS: [u64; 8] = [1, 7, 42, 1234, 4242, 9001, 0xDEAD_BEEF, 0xC0FF_EE00];

/// One four-hour soak under spontaneous failures at the given MTBF:
/// twenty stakeholders stay connected the whole afternoon, each firing a
/// model run every five minutes.
fn soak(seed: u64, mtbf_secs: u64) -> ChaosRunReport {
    let config = BrokerConfig {
        private_capacity_vcpus: 16,
        instance_mtbf: Some(SimDuration::from_secs(mtbf_secs)),
        ..BrokerConfig::default()
    };
    ChaosScenario::new(FaultSchedule::named("mtbf-soak"), seed)
        .config(config)
        .sessions(20)
        .duration(SimDuration::from_secs(4 * 3600))
        .run()
}

/// The invariants every matrix cell must uphold.
fn assert_cell_invariants(report: &ChaosRunReport, seed: u64, mtbf_secs: u64) {
    let cell = format!("seed {seed}, MTBF {mtbf_secs}s");
    // Failures must actually occur and be noticed...
    assert!(report.detections >= 1, "{cell}: no failures detected over four hours");
    // ...and every detection must resolve into recovery action: sessions
    // are migrated to a replacement, or (when provisioning lags) requeued
    // and re-bound on a later tick.
    assert!(
        report.migrations + report.requeues >= report.detections,
        "{cell}: {} detections but only {} migrations + {} requeues",
        report.detections,
        report.migrations,
        report.requeues
    );
    // Detection is prompt: three bad 15 s health samples plus sampling
    // alignment bound failure→detection under 90 s.
    for &lat in &report.detection_latencies_secs {
        assert!(lat <= 90.0, "{cell}: detection took {lat}s");
    }
    // Users never see a hard failure — refusals during re-bind windows
    // are typed transients with retry hints — and nobody is left behind.
    assert_eq!(report.submits.hard_failures, 0, "{cell}: hard failures leaked to users");
    assert_eq!(
        report.sessions_unserved, 0,
        "{cell}: {} of {} sessions left unserved",
        report.sessions_unserved, report.sessions_total
    );
    // The service makes real progress despite the churn.
    assert!(
        report.jobs_completed > report.jobs_lost * 3,
        "{cell}: only {} completed against {} lost",
        report.jobs_completed,
        report.jobs_lost
    );
}

#[test]
fn soak_matrix_mtbf_15m() {
    for seed in SEEDS {
        assert_cell_invariants(&soak(seed, 900), seed, 900);
    }
}

#[test]
fn soak_matrix_mtbf_30m() {
    for seed in SEEDS {
        assert_cell_invariants(&soak(seed, 1800), seed, 1800);
    }
}

#[test]
fn soak_matrix_mtbf_60m() {
    for seed in SEEDS {
        assert_cell_invariants(&soak(seed, 3600), seed, 3600);
    }
}

/// The determinism guarantee at soak scale: the same `(seed, MTBF)` cell
/// replays its full event log byte-identically, and a different seed
/// produces a genuinely different run.
#[test]
fn soak_is_deterministic_per_seed() {
    let a = soak(1234, 1800);
    let b = soak(1234, 1800);
    assert_eq!(a.canonical_log().as_bytes(), b.canonical_log().as_bytes());
    assert_eq!(a.detections, b.detections);
    assert_eq!(a.submits, b.submits);
    let c = soak(4321, 1800);
    assert_ne!(a.canonical_log(), c.canonical_log(), "different seeds must diverge (a.s.)");
}

/// The provider-storm golden scenario: a declarative schedule exercising
/// every fault kind, replayed from a fixed seed. Constrained private
/// capacity forces cloudbursting into the AWS fault windows, and
/// background churn forces boots during the campus boot-failure spell.
fn storm(seed: u64) -> ChaosScenario {
    let config = BrokerConfig {
        private_capacity_vcpus: 4,
        instance_mtbf: Some(SimDuration::from_secs(1800)),
        ..BrokerConfig::default()
    };
    ChaosScenario::new(FaultSchedule::provider_storm(), seed)
        .config(config)
        .sessions(20)
        .duration(SimDuration::from_secs(2 * 3600))
}

#[test]
fn golden_trace_replays_byte_identically() {
    let a = storm(42).run();
    let b = storm(42).run();
    assert_eq!(
        a.canonical_log().as_bytes(),
        b.canonical_log().as_bytes(),
        "the canonical event log must be a pure function of (schedule, seed)"
    );
    assert!(a.chaos_faults_fired > 0, "the storm must fire real faults");
    assert!(a.canonical_log().contains("\"schedule\": \"provider-storm\""));
}

#[test]
fn golden_trace_differs_across_seeds() {
    let a = storm(42).run();
    let b = storm(43).run();
    assert_ne!(a.canonical_log(), b.canonical_log(), "different seeds must diverge (a.s.)");
}

/// The storm is survived: every fault surfaces as a typed transient (or
/// is absorbed entirely), retries recover, and no session ends the run
/// unserved.
#[test]
fn provider_storm_is_survived() {
    let report = storm(42).run();
    assert_eq!(report.submits.hard_failures, 0, "faults must surface as typed transients");
    assert_eq!(report.sessions_unserved, 0, "no session may be left behind");
    assert!(report.jobs_completed > 0);
    if report.submits.transient_refusals > 0 {
        assert!(
            report.submits.recovered > 0,
            "transiently refused sessions must eventually be served"
        );
    }
}
