//! Chaos soak test: spontaneous instance failures over a long horizon.
//!
//! The paper's pitch for handing distributed-systems management to the
//! cloud layer is "assured levels of reliability" (§III-B): the Load
//! Balancer must keep every user served through arbitrary instance
//! failures. This test turns on random failures with an aggressive MTBF
//! and soaks the broker for four virtual hours.

use evop::broker::{Broker, BrokerConfig, BrokerEvent, SessionState};
use evop::sim::SimDuration;

#[test]
fn broker_survives_four_hours_of_random_failures() {
    let config = BrokerConfig {
        private_capacity_vcpus: 16,
        // Aggressive chaos: each instance fails on average every 30 minutes.
        instance_mtbf: Some(SimDuration::from_secs(1800)),
        ..BrokerConfig::default()
    };
    let mut broker = Broker::new(config, 1234);

    // Twenty stakeholders stay connected the whole afternoon.
    let sessions: Vec<_> = (0..20)
        .map(|i| broker.connect(&format!("user-{i}"), "topmodel").expect("served"))
        .collect();

    // Soak: every 5 minutes each user fires a model run.
    for _ in 0..48 {
        for &s in &sessions {
            // Runs fail only transiently while a session awaits re-binding.
            let _ = broker.run_model(s, SimDuration::from_secs(30));
        }
        broker.advance(SimDuration::from_secs(300));
    }

    let detections =
        broker.events().iter().filter(|e| matches!(e, BrokerEvent::FailureDetected { .. })).count();
    let migrations =
        broker.events().iter().filter(|e| matches!(e, BrokerEvent::SessionMigrated { .. })).count();
    assert!(
        detections >= 3,
        "30-minute MTBF over 4 hours must produce several failures, saw {detections}"
    );
    assert!(migrations >= detections, "every detection must migrate its users");

    // Despite the chaos, every session ends the afternoon actively served by
    // a live instance.
    for &s in &sessions {
        let session = broker.session(s).expect("exists");
        assert_eq!(session.state(), SessionState::Active, "{s} must stay active");
        let instance = session.instance().expect("bound");
        let state = broker.cloud().instance(instance).expect("exists").state();
        assert!(
            !matches!(state, evop::cloud::InstanceState::Terminated { .. }),
            "{s} points at a terminated instance"
        );
    }

    // Failed instances never linger: everything still holding capacity is
    // either running or booting.
    let lingering_failures = broker
        .cloud()
        .instances()
        .filter(|i| {
            i.occupies_capacity() && matches!(i.state(), evop::cloud::InstanceState::Failed { .. })
        })
        .count();
    assert!(
        lingering_failures <= 1,
        "at most the most recent failure may still be in detection, saw {lingering_failures}"
    );

    // And the job stream kept flowing: a large majority of submitted runs
    // completed (only those in flight on a dying instance are lost).
    let (completed, lost): (usize, usize) = broker.cloud().instances().fold((0, 0), |(c, l), i| {
        let done = i.jobs().iter().filter(|j| j.latency().is_some()).count();
        let gone = i
            .jobs()
            .iter()
            .filter(|j| matches!(j.state(), evop::cloud::JobState::Lost { .. }))
            .count();
        (c + done, l + gone)
    });
    assert!(completed > lost * 3, "service must dominate: {completed} completed vs {lost} lost");
}

#[test]
fn chaos_is_deterministic_per_seed() {
    let run = |seed: u64| {
        let config = BrokerConfig {
            instance_mtbf: Some(SimDuration::from_secs(900)),
            ..BrokerConfig::default()
        };
        let mut broker = Broker::new(config, seed);
        for i in 0..8 {
            broker.connect(&format!("u{i}"), "topmodel").expect("served");
        }
        broker.advance(SimDuration::from_secs(3600));
        broker.events().len()
    };
    assert_eq!(run(7), run(7));
    // Different seeds produce different failure schedules (almost surely).
    assert_ne!(run(7), run(8));
}
