//! Property-based tests over the workspace's core data structures and
//! invariants (proptest).

use evop::data::synthetic::RatingCurve;
use evop::data::timeseries::{Aggregation, FillMethod, IrregularSeries};
use evop::data::{TimeSeries, Timestamp};
use evop::models::routing::{convolve, triangular_kernel};
use evop::services::rest::Router;
use evop::services::xml::Element;
use evop::services::{Method, Request, Response};
use evop::sim::stats::Running;
use evop::sim::{EventQueue, SimTime};
use proptest::prelude::*;

// --------------------------------------------------------------------
// Virtual-time event queue
// --------------------------------------------------------------------

proptest! {
    #[test]
    fn event_queue_pops_sorted_and_complete(times in prop::collection::vec(0u64..1_000_000, 0..200)) {
        let mut queue = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            queue.push(SimTime::from_millis(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = queue.pop() {
            popped.push((t, i));
        }
        prop_assert_eq!(popped.len(), times.len());
        // Sorted by time, FIFO within equal times.
        for pair in popped.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1);
            }
        }
    }

    // ----------------------------------------------------------------
    // Welford statistics
    // ----------------------------------------------------------------

    #[test]
    fn running_merge_is_order_independent(
        xs in prop::collection::vec(-1e6f64..1e6, 1..100),
        split in 0usize..100,
    ) {
        let split = split.min(xs.len());
        let whole: Running = xs.iter().copied().collect();
        let mut left: Running = xs[..split].iter().copied().collect();
        let right: Running = xs[split..].iter().copied().collect();
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!(
            (left.population_variance() - whole.population_variance()).abs()
                < 1e-4 * (1.0 + whole.population_variance())
        );
    }

    // ----------------------------------------------------------------
    // Time series
    // ----------------------------------------------------------------

    #[test]
    fn resample_sum_preserves_total(
        values in prop::collection::vec(0.0f64..100.0, 1..500),
        factor in 1u32..20,
    ) {
        let series = TimeSeries::from_values(Timestamp::UNIX_EPOCH, 3600, values);
        let coarse = series.resample(3600 * factor, Aggregation::Sum);
        prop_assert!((coarse.sum() - series.sum()).abs() < 1e-6);
    }

    #[test]
    fn window_is_a_true_slice(
        values in prop::collection::vec(-50.0f64..50.0, 10..200),
        lo in 0usize..100,
        len in 1usize..100,
    ) {
        let series = TimeSeries::from_values(Timestamp::UNIX_EPOCH, 60, values.clone());
        let lo = lo.min(values.len() - 1);
        let hi = (lo + len).min(values.len());
        if hi <= lo { return Ok(()); }
        let from = series.time_at(lo);
        let to = series.time_at(hi - 1).plus_secs(60);
        let window = series.window(from, to).unwrap();
        prop_assert_eq!(window.values(), &values[lo..hi]);
        prop_assert_eq!(window.start(), from);
    }

    #[test]
    fn fill_linear_removes_all_interior_gaps(
        mut values in prop::collection::vec(0.0f64..10.0, 3..100),
        gap_positions in prop::collection::vec(1usize..98, 0..20),
    ) {
        let n = values.len();
        for &p in &gap_positions {
            if p < n - 1 {
                values[p] = f64::NAN;
            }
        }
        // Keep endpoints present so every gap is interior.
        values[0] = 1.0;
        values[n - 1] = 2.0;
        let series = TimeSeries::from_values(Timestamp::UNIX_EPOCH, 60, values);
        let filled = series.fill_missing(FillMethod::Linear);
        prop_assert_eq!(filled.missing_count(), 0);
        // Filled values stay within the envelope of the originals.
        let lo = series.trough().unwrap().1.min(1.0).min(2.0);
        let hi = series.peak().unwrap().1.max(1.0).max(2.0);
        prop_assert!(filled.values().iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
    }

    #[test]
    fn irregular_nearest_is_truly_nearest(
        offsets in prop::collection::vec(0i64..1_000_000, 1..100),
        probe in 0i64..1_000_000,
    ) {
        let series: IrregularSeries = offsets
            .iter()
            .map(|&o| (Timestamp::from_unix(o), o as f64))
            .collect();
        let t = Timestamp::from_unix(probe);
        let (found_t, _) = series.nearest(t).unwrap();
        let best = offsets
            .iter()
            .map(|&o| (probe - o).abs())
            .min()
            .unwrap();
        prop_assert_eq!((probe - found_t.as_unix()).abs(), best);
    }

    // ----------------------------------------------------------------
    // Calendar timestamps
    // ----------------------------------------------------------------

    #[test]
    fn timestamp_civil_round_trip(secs in -2_000_000_000i64..4_000_000_000i64) {
        let t = Timestamp::from_unix(secs);
        let rebuilt = Timestamp::from_ymd_hms(
            t.year(),
            t.month(),
            t.day(),
            t.hour(),
            t.minute(),
            (t.as_unix().rem_euclid(60)) as u32,
        );
        prop_assert_eq!(rebuilt, t);
    }

    #[test]
    fn floor_is_idempotent_and_bounded(secs in -2_000_000_000i64..4_000_000_000i64, step in 1u32..100_000) {
        let t = Timestamp::from_unix(secs);
        let floored = t.floor_to(step);
        prop_assert!(floored <= t);
        prop_assert!(t.as_unix() - floored.as_unix() < i64::from(step));
        prop_assert_eq!(floored.floor_to(step), floored);
    }

    // ----------------------------------------------------------------
    // Rating curves
    // ----------------------------------------------------------------

    #[test]
    fn rating_curve_round_trips_and_is_monotonic(
        a in 0.5f64..50.0,
        b in 1.1f64..3.0,
        h0 in 0.0f64..0.5,
        q in 0.001f64..500.0,
    ) {
        let rating = RatingCurve::new(a, b, h0);
        let h = rating.stage_from_discharge(q);
        let back = rating.discharge_from_stage(h);
        prop_assert!((back - q).abs() < 1e-6 * q.max(1.0));
        // Monotonic: more water, higher stage.
        prop_assert!(rating.stage_from_discharge(q * 2.0) > h);
    }

    // ----------------------------------------------------------------
    // Routing kernels
    // ----------------------------------------------------------------

    #[test]
    fn kernel_mass_is_conserved(tp in 0.1f64..48.0, dt in 0.25f64..6.0) {
        let kernel = triangular_kernel(tp, dt);
        prop_assert!((kernel.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(kernel.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn convolution_preserves_mass_for_padded_input(
        runoff in prop::collection::vec(0.0f64..10.0, 1..50),
        tp in 0.5f64..6.0,
    ) {
        let kernel = triangular_kernel(tp, 1.0);
        // Pad so the kernel tail stays inside the output.
        let mut padded = runoff.clone();
        padded.extend(std::iter::repeat_n(0.0, kernel.len()));
        let routed = convolve(&padded, &kernel);
        let in_mass: f64 = runoff.iter().sum();
        let out_mass: f64 = routed.iter().sum();
        prop_assert!((in_mass - out_mass).abs() < 1e-6 * (1.0 + in_mass));
    }

    // ----------------------------------------------------------------
    // REST router
    // ----------------------------------------------------------------

    #[test]
    fn router_extracts_arbitrary_segments(id in "[a-z0-9-]{1,20}", run in "[a-z0-9]{1,10}") {
        let mut router = Router::new();
        router.route(Method::Get, "/datasets/{id}/runs/{run}", |_, p| {
            Response::ok().text(format!("{}#{}", p.get("id").unwrap(), p.get("run").unwrap()))
        });
        let resp = router.dispatch(&Request::get(format!("/datasets/{id}/runs/{run}")));
        let expected = format!("{id}#{run}");
        prop_assert_eq!(resp.body_text(), Some(expected.as_str()));
    }

    // ----------------------------------------------------------------
    // XML codec
    // ----------------------------------------------------------------

    #[test]
    fn xml_text_round_trips(text in "[ -~]{0,80}") {
        // Any printable-ASCII text content survives encode → parse.
        let doc = Element::new("t").text(&text);
        let parsed = Element::parse(&doc.to_string()).unwrap();
        // Whitespace-only text is dropped by design; otherwise exact.
        if text.trim().is_empty() {
            prop_assert_eq!(parsed.text_content(), "");
        } else {
            prop_assert_eq!(parsed.text_content(), text);
        }
    }

    #[test]
    fn xml_attribute_round_trips(value in "[ -~]{0,60}") {
        let doc = Element::new("t").attr("v", &value);
        let parsed = Element::parse(&doc.to_string()).unwrap();
        prop_assert_eq!(parsed.attribute("v"), Some(value.as_str()));
    }
}

// --------------------------------------------------------------------
// Cloud simulator invariants
// --------------------------------------------------------------------

use evop::cloud::{CloudSim, InstanceState, JobState, MachineImage, Provider};
use evop::sim::SimDuration;

proptest! {
    #[test]
    fn private_capacity_is_never_exceeded(
        ops in prop::collection::vec((0u8..3, 0usize..4), 1..60),
        capacity in 1u32..32,
    ) {
        let mut sim = CloudSim::new(1);
        sim.register_provider(Provider::private_openstack("campus", capacity));
        let image = MachineImage::streamlined("img", ["m"]);
        let image_id = image.id().clone();
        sim.register_image(image);
        let types = ["m1.small", "m1.medium", "m1.large", "m1.xlarge"];
        let mut live: Vec<evop::cloud::InstanceId> = Vec::new();

        for (op, arg) in ops {
            match op {
                0 => {
                    if let Ok(id) = sim.launch("campus", types[arg % types.len()], &image_id) {
                        live.push(id);
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let id = live.remove(arg % live.len());
                        sim.terminate(id).unwrap();
                    }
                }
                _ => sim.advance(SimDuration::from_secs(30)),
            }
            prop_assert!(
                sim.used_vcpus("campus") <= capacity,
                "used {} exceeds capacity {}",
                sim.used_vcpus("campus"),
                capacity
            );
        }
    }

    #[test]
    fn every_job_reaches_a_terminal_state(
        works in prop::collection::vec(1u64..600, 1..40),
        vcpus_choice in 0usize..3,
    ) {
        let mut sim = CloudSim::new(2);
        sim.register_provider(Provider::private_openstack("campus", 16));
        let image = MachineImage::streamlined("img", ["m"]);
        let image_id = image.id().clone();
        sim.register_image(image);
        let itype = ["m1.small", "m1.medium", "m1.large"][vcpus_choice];
        let node = sim.launch("campus", itype, &image_id).unwrap();
        let jobs: Vec<_> = works
            .iter()
            .map(|&w| sim.submit_job(node, SimDuration::from_secs(w)).unwrap())
            .collect();
        while let Some(t) = sim.next_event_time() {
            sim.advance_to(t);
        }
        let instance = sim.instance(node).unwrap();
        for job in jobs {
            let state = instance.job(job).unwrap().state();
            let completed = matches!(state, JobState::Completed { .. });
            prop_assert!(completed, "job not completed: {:?}", state);
        }
        // With one instance and FIFO slots, total busy time is conserved:
        // the last completion is at least boot + ceil-divided work.
        prop_assert!(instance.is_running());
    }

    #[test]
    fn cost_is_monotonic_in_time(steps in prop::collection::vec(1u64..3600, 1..30)) {
        let mut sim = CloudSim::new(3);
        sim.register_provider(Provider::private_openstack("campus", 8));
        sim.register_provider(Provider::public_aws("aws"));
        let image = MachineImage::streamlined("img", ["m"]);
        let image_id = image.id().clone();
        sim.register_image(image);
        sim.launch("campus", "m1.small", &image_id).unwrap();
        sim.launch("aws", "m1.small", &image_id).unwrap();
        let mut last = sim.total_cost();
        for secs in steps {
            sim.advance(SimDuration::from_secs(secs));
            let now = sim.total_cost();
            prop_assert!(now >= last - 1e-12, "cost went backwards: {now} < {last}");
            last = now;
        }
    }

    #[test]
    fn terminated_instances_stay_terminated_and_free_capacity(
        kill_after in 0u64..500,
    ) {
        let mut sim = CloudSim::new(4);
        sim.register_provider(Provider::private_openstack("campus", 4));
        let image = MachineImage::streamlined("img", ["m"]);
        let image_id = image.id().clone();
        sim.register_image(image);
        let id = sim.launch("campus", "m1.large", &image_id).unwrap();
        prop_assert_eq!(sim.free_vcpus("campus"), Some(0));
        sim.advance(SimDuration::from_secs(kill_after));
        sim.terminate(id).unwrap();
        prop_assert_eq!(sim.free_vcpus("campus"), Some(4));
        sim.advance(SimDuration::from_secs(1000));
        let terminated = matches!(
            sim.instance(id).unwrap().state(),
            InstanceState::Terminated { .. }
        );
        prop_assert!(terminated);
        // A replacement now fits.
        prop_assert!(sim.launch("campus", "m1.large", &image_id).is_ok());
    }
}
