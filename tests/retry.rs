//! Property-based tests for the retry/backoff plane (proptest).
//!
//! The [`RetryPolicy`](evop::xcloud::RetryPolicy) underpins both the
//! broker's provisioning backoff and the chaos harness's blob-read
//! retries, so its contract is pinned down by properties rather than
//! examples: backoff grows monotonically up to the cap, the cumulative
//! jittered wait never exceeds the deadline, and equal seeds replay
//! byte-identical delay sequences.

use evop::cloud::CloudError;
use evop::sim::{SimDuration, SimTime};
use evop::xcloud::{retry_with, RetryOutcome, RetryPolicy};
use proptest::prelude::*;

/// Builds a valid policy from raw generated knobs: the factor is
/// `1.0 + factor_tenths/10` and the cap sits `cap_extra_ms` above the
/// base, so every combination satisfies `RetryPolicy::validate`.
fn policy_from(
    base_ms: u64,
    factor_tenths: u32,
    cap_extra_ms: u64,
    max_attempts: u32,
    deadline_ms: u64,
) -> RetryPolicy {
    RetryPolicy::new(
        SimDuration::from_millis(base_ms),
        1.0 + f64::from(factor_tenths) / 10.0,
        SimDuration::from_millis(base_ms + cap_extra_ms),
        max_attempts,
        SimDuration::from_millis(deadline_ms),
    )
}

proptest! {
    // ----------------------------------------------------------------
    // Raw backoff shape
    // ----------------------------------------------------------------

    #[test]
    fn backoff_is_monotone_up_to_the_cap(
        base_ms in 1u64..60_000,
        factor_tenths in 1u32..40,
        cap_extra_ms in 0u64..600_000,
        upto in 1u32..80,
    ) {
        let policy = policy_from(base_ms, factor_tenths, cap_extra_ms, 8, 3_600_000);
        let mut prev = SimDuration::ZERO;
        for attempt in 0..upto {
            let b = policy.backoff(attempt);
            prop_assert!(b >= prev, "backoff({attempt}) = {b} shrank below {prev}");
            prev = b;
        }
        // The cap is a true ceiling: far-out attempts saturate at it.
        prop_assert!(policy.backoff(200) <= SimDuration::from_millis(base_ms + cap_extra_ms));
        prop_assert_eq!(policy.backoff(500), policy.backoff(1000));
    }

    // ----------------------------------------------------------------
    // Deadline ceiling
    // ----------------------------------------------------------------

    #[test]
    fn cumulative_jittered_wait_never_exceeds_the_deadline(
        base_ms in 1u64..60_000,
        factor_tenths in 1u32..40,
        cap_extra_ms in 0u64..600_000,
        max_attempts in 0u32..12,
        deadline_ms in 1u64..3_600_000,
        seed in 0u64..u64::MAX,
    ) {
        let policy = policy_from(base_ms, factor_tenths, cap_extra_ms, max_attempts, deadline_ms);
        let delays = policy.jittered_delays(seed);
        prop_assert!(delays.len() <= policy.max_attempts() as usize);
        let mut total = SimDuration::ZERO;
        for d in &delays {
            total += *d;
        }
        prop_assert!(
            total <= policy.deadline(),
            "schedule waits {total} past deadline {}",
            policy.deadline()
        );
    }

    #[test]
    fn retry_driver_never_waits_past_the_deadline(
        base_ms in 1u64..60_000,
        max_attempts in 0u32..12,
        deadline_ms in 1u64..3_600_000,
        seed in 0u64..u64::MAX,
        hint_ms in 0u64..120_000,
    ) {
        // An op that always fails transiently (with a server hint) makes
        // the driver walk its entire schedule; even with hints stretching
        // individual waits, the total stays within the deadline.
        let policy = policy_from(base_ms, 10, 300_000, max_attempts, deadline_ms);
        let outcome: RetryOutcome<(), CloudError> =
            retry_with(&policy, seed, SimTime::ZERO, |_, _| {
                Err(CloudError::ApiUnavailable {
                    provider: "aws".to_owned(),
                    reason: "burst".to_owned(),
                    retry_after: SimDuration::from_millis(hint_ms),
                })
            });
        prop_assert!(!outcome.succeeded());
        prop_assert!(outcome.waited <= policy.deadline());
        prop_assert!(outcome.attempts <= policy.max_attempts() + 1);
    }

    // ----------------------------------------------------------------
    // Seeded determinism
    // ----------------------------------------------------------------

    #[test]
    fn equal_seeds_give_byte_identical_jitter_sequences(
        base_ms in 1u64..60_000,
        factor_tenths in 1u32..40,
        cap_extra_ms in 0u64..600_000,
        max_attempts in 0u32..12,
        deadline_ms in 1u64..3_600_000,
        seed in 0u64..u64::MAX,
    ) {
        let policy = policy_from(base_ms, factor_tenths, cap_extra_ms, max_attempts, deadline_ms);
        let a = policy.jittered_delays(seed);
        let b = policy.jittered_delays(seed);
        prop_assert_eq!(&a, &b);
        // And per-attempt lookups agree with the full schedule.
        for (i, d) in a.iter().enumerate() {
            prop_assert_eq!(policy.delay_before(i as u32, seed), Some(*d));
        }
        prop_assert_eq!(policy.delay_before(a.len() as u32, seed), None);
    }

    #[test]
    fn jitter_stays_within_its_halved_band(
        base_ms in 1u64..60_000,
        factor_tenths in 1u32..40,
        cap_extra_ms in 0u64..600_000,
        seed in 0u64..u64::MAX,
    ) {
        let policy = policy_from(base_ms, factor_tenths, cap_extra_ms, 12, 3_600_000);
        for (i, d) in policy.jittered_delays(seed).iter().enumerate() {
            let raw = policy.backoff(i as u32);
            prop_assert!(*d <= raw, "jitter above raw backoff at attempt {i}");
            prop_assert!(
                d.as_secs_f64() >= raw.as_secs_f64() * 0.5 - 1e-9,
                "jitter below half the raw backoff at attempt {i}"
            );
        }
    }
}
