//! End-to-end integration tests: whole user journeys through the
//! observatory, exercising multiple crates per test — the "integration
//! tests to examine full features that span several components" of the
//! paper's verification cycle (§V-A).

use evop::broker::SessionState;
use evop::data::catalog::Query;
use evop::data::sensors::SensorKind;
use evop::data::{Catchment, SensorId};
use evop::models::scenarios::Scenario;
use evop::portal::render::{line_chart, sparkline};
use evop::portal::widgets::{ModelChoice, MultimodalWidget, TimeSeriesWidget};
use evop::services::sos::GetObservation;
use evop::services::wps::ExecStatus;
use evop::services::xml::Element;
use evop::sim::SimDuration;
use evop::Evop;

fn observatory() -> Evop {
    Evop::builder().seed(42).days(20).build()
}

#[test]
fn villager_checks_flood_risk_end_to_end() {
    // The paper's motivating question: "is my local area susceptible to
    // flood after the past few days' rainfall?"
    let evop = observatory();
    let morland = Catchment::morland();
    let id = morland.id().clone();

    // 1. Find local assets on the map.
    let nearby = evop.map().nearest(morland.outlet(), 3);
    assert!(nearby.iter().any(|m| m.id().contains("stage")));

    // 2. Open the river-level widget for the last three days.
    let widget = TimeSeriesWidget::new("River level", "m", SensorId::new("morland-stage-outlet"));
    let to = evop.start().plus_days(20);
    let view = widget.view(evop.sos(), to.plus_days(-3), to).unwrap();
    assert!(view.latest.is_some());

    // 3. Compare the latest stage against the indicative flood threshold.
    let stage = view.latest.unwrap();
    assert!(stage > 0.0 && stage < morland.flood_stage_m() * 3.0);

    // 4. Run the model for reassurance, via the modelling widget.
    let mut modelling = evop.modelling_widget(&id);
    modelling.run("now").unwrap();
    let comparison = modelling.compare();
    assert_eq!(comparison.len(), 1);

    // 5. The hydrograph renders with the threshold line for interpretation.
    let chart =
        line_chart(&modelling.runs()[0].discharge, 70, 12, Some(modelling.flood_threshold_m3s()));
    assert!(chart.contains('*') && chart.contains('-'));
}

#[test]
fn scientist_uses_standards_compliant_wps_xml() {
    // A domain specialist integrates EVOp's models from an OGC client:
    // GetCapabilities → DescribeProcess → Execute, all in XML.
    let evop = observatory();
    let id = evop.catchments()[0].id().clone();
    let wps = evop.wps(&id).unwrap();

    let caps = wps.get_capabilities();
    let offered: Vec<String> =
        caps.find_all("ows:Identifier").iter().map(|e| e.text_content()).collect();
    assert!(offered.contains(&"topmodel".to_owned()));
    assert!(offered.contains(&"fuse".to_owned()));

    let description = wps.describe_process("topmodel").unwrap();
    assert!(description.find("wps:DataInputs").is_some());

    // Execute over the wire format, round-tripping through the parser.
    let request_doc = Element::new("wps:Execute")
        .attr("service", "WPS")
        .attr("version", "1.0.0")
        .child(Element::new("ows:Identifier").text("topmodel"))
        .child(
            Element::new("wps:DataInputs").child(
                Element::new("wps:Input")
                    .child(Element::new("ows:Identifier").text("scenario"))
                    .child(
                        Element::new("wps:Data")
                            .child(Element::new("wps:LiteralData").text("afforestation")),
                    ),
            ),
        );
    let wire = request_doc.to_string();
    let reparsed = Element::parse(&wire).unwrap();
    let response = wps.execute_xml(&reparsed).unwrap();
    assert!(response.find("wps:ProcessSucceeded").is_some());
    let payload: serde_json::Value =
        serde_json::from_str(&response.find("wps:ComplexData").unwrap().text_content()).unwrap();
    assert_eq!(payload["scenario"], "afforestation");
}

#[test]
fn async_wps_execution_with_status_polling() {
    let mut evop = observatory();
    let id = evop.catchments()[0].id().clone();
    let wps = evop.wps_mut(&id).unwrap();
    let job = wps.execute_async("topmodel", serde_json::json!({"scenario": "baseline"})).unwrap();
    assert_eq!(wps.status(job).unwrap(), ExecStatus::Accepted);
    assert_eq!(wps.process_pending(), 1);
    match wps.status(job).unwrap() {
        ExecStatus::Succeeded(out) => {
            assert!(out["hydrograph"]["peak_m3s"].as_f64().unwrap() > 0.0);
        }
        other => panic!("unexpected status {other:?}"),
    }
}

#[test]
fn consultant_explores_multimodal_history() {
    // Paper Fig. 5: water temperature + turbidity + the webcam frame taken
    // "roughly at the same time".
    let evop = observatory();
    let id = evop.catchments()[0].id().clone();
    let widget = MultimodalWidget::new(
        SensorId::new("morland-temp-1"),
        SensorId::new("morland-turb-1"),
        evop.webcam_frames(&id).unwrap().to_vec(),
    );

    // During the highest-flow hour, the water looks murkier than during
    // the lowest-flow hour.
    let q = evop.observed_discharge(&id).unwrap();
    let (peak_idx, _) = q.peak().unwrap();
    let (low_idx, _) = q.trough().unwrap();
    let murk_at = |idx: usize| {
        widget.at(evop.sos(), q.time_at(idx)).frame.expect("frame within tolerance").murkiness()
    };
    assert!(murk_at(peak_idx) > murk_at(low_idx), "{} vs {}", murk_at(peak_idx), murk_at(low_idx));
}

#[test]
fn policy_maker_compares_scenarios_through_the_widget() {
    let evop = observatory();
    let id = evop.catchments()[0].id().clone();
    let mut widget = evop.modelling_widget(&id);

    for scenario in Scenario::all() {
        widget.select_scenario(scenario);
        widget.run(scenario.id()).unwrap();
    }
    let table = widget.compare();
    assert_eq!(table.len(), 5);
    let peak =
        |label: &str| table.iter().find(|(l, _)| l == label).map(|(_, m)| m.peak_m3s).unwrap();
    assert!(peak("compacted-soils") > peak("baseline"));
    assert!(peak("afforestation") < peak("baseline"));

    // And the ensemble view agrees on the direction.
    widget.clear_runs();
    widget.select_model(ModelChoice::FuseEnsemble);
    widget.select_scenario(Scenario::Baseline);
    widget.run("fuse-baseline").unwrap();
    widget.select_scenario(Scenario::CompactedSoils);
    widget.run("fuse-compacted").unwrap();
    let fuse_table = widget.compare();
    assert!(fuse_table[1].1.peak_m3s > fuse_table[0].1.peak_m3s);
}

#[test]
fn catalogue_discovery_feeds_sos_queries() {
    let evop = Evop::builder().seed(3).days(10).all_study_catchments().build();

    // Text search for turbidity datasets across all catchments.
    let hits = evop.catalog().search(&Query::new().text("turbidity").live_only());
    assert_eq!(hits.len(), 4);

    // Use a hit's time range to drive a real SOS query.
    let meta = hits[0];
    let (begin, end) = meta.time_range().unwrap();
    let sensor = SensorId::new(format!("{}-turb-1", meta.id().trim_end_matches("-turbidity")));
    let observations = evop
        .sos()
        .get_observation(&GetObservation { procedure: sensor, begin, end, max_results: Some(10) })
        .unwrap();
    assert_eq!(observations.len(), 10);
}

#[test]
fn broker_serves_portal_sessions_against_real_models() {
    let mut evop = observatory();
    let id = evop.catchments()[0].id().clone();

    // Twelve stakeholders open the widget simultaneously.
    let sessions: Vec<_> = (0..12)
        .map(|i| evop.broker_mut().connect(&format!("user-{i}"), "topmodel").unwrap())
        .collect();
    evop.broker_mut().advance(SimDuration::from_secs(300));

    // Every session is active and received its instance address by push.
    for &s in &sessions {
        let session = evop.broker().session(s).unwrap();
        assert_eq!(session.state(), SessionState::Active);
        assert!(!session.client_channel().drain().is_empty());
    }

    // Each runs the model; the jobs land on cloud instances while the WPS
    // service computes the actual hydrograph.
    for &s in &sessions {
        evop.broker_mut().run_model(s, SimDuration::from_secs(60)).unwrap();
    }
    evop.broker_mut().advance(SimDuration::from_secs(900));
    let out = evop.wps(&id).unwrap().execute("topmodel", serde_json::json!({})).unwrap();
    assert!(out["hydrograph"]["peak_m3s"].as_f64().unwrap() > 0.0);

    // All jobs completed.
    let total_completed: usize = evop
        .broker()
        .cloud()
        .instances()
        .map(|i| i.jobs().iter().filter(|j| j.latency().is_some()).count())
        .sum();
    assert!(total_completed >= 12, "completed {total_completed}");
}

#[test]
fn observed_stage_crosses_flood_threshold_somewhere_in_wet_archives() {
    // The flood-hazard threshold markers on the portal are meaningful:
    // wet-season archives should approach or cross them occasionally.
    let evop = Evop::builder().seed(42).days(90).build();
    let id = evop.catchments()[0].id().clone();
    let stage = evop.observed_stage(&id).unwrap();
    let flood = evop.catchment(&id).unwrap().flood_stage_m();
    let max_stage = stage.peak().unwrap().1;
    assert!(
        max_stage > flood * 0.25,
        "a 90-day winter archive should produce some high flows, max {max_stage:.2} vs flood {flood}"
    );
}

#[test]
fn sparkline_and_chart_render_real_archives() {
    let evop = observatory();
    let id = evop.catchments()[0].id().clone();
    let q = evop.observed_discharge(&id).unwrap();
    let spark = sparkline(q, 40);
    assert_eq!(spark.chars().count(), 40);
    let chart = line_chart(q, 72, 14, None);
    assert!(chart.lines().count() >= 14);
}

#[test]
fn sensor_kinds_cover_fig4_asset_palette() {
    // Fig. 4's marker palette: every sensor kind appears on the map.
    let evop = observatory();
    use evop::portal::map::MarkerKind;
    for kind in [
        SensorKind::RainGauge,
        SensorKind::RiverLevel,
        SensorKind::Temperature,
        SensorKind::Turbidity,
        SensorKind::Webcam,
    ] {
        assert!(
            !evop.map().of_kind(&MarkerKind::Sensor(kind)).is_empty(),
            "no markers of kind {kind}"
        );
    }
}

#[test]
fn flood_frequency_analysis_over_a_multi_year_archive() {
    use evop::models::frequency::{annual_maxima, FlowDurationCurve, GumbelFit};

    // Three full calendar years of hourly truth discharge.
    let evop = Evop::builder().seed(42).days(3 * 365).build();
    let id = evop.catchments()[0].id().clone();
    let q = evop.observed_discharge(&id).unwrap();

    // Flow-duration curve: low flows are exceeded more often than floods.
    let fdc = FlowDurationCurve::from_series(q).unwrap();
    let q95 = fdc.exceeded_fraction_of_time(0.95);
    let q50 = fdc.exceeded_fraction_of_time(0.50);
    let q05 = fdc.exceeded_fraction_of_time(0.05);
    assert!(q95 < q50 && q50 < q05, "FDC ordering: {q95} {q50} {q05}");

    // Annual maxima and Gumbel return levels.
    let maxima = annual_maxima(q);
    assert_eq!(maxima.len(), 3, "three complete years");
    let fit = GumbelFit::fit(&maxima).expect("fit over 3 maxima");
    let q2 = fit.return_level(2.0);
    let q100 = fit.return_level(100.0);
    assert!(q2 < q100);
    // Each observed annual maximum has a plausible (≥1-year) return period.
    for &(_, peak) in &maxima {
        assert!(fit.return_period(peak) >= 1.0);
    }

    // The catchment's indicative flood threshold sits in the upper tail of
    // the flow regime — rarely exceeded, but not unreachable.
    let threshold = 0.5 * evop.catchments()[0].area_km2();
    let p = fdc.exceedance_probability(threshold);
    assert!(p < 0.05, "flood threshold exceeded {p:.3} of the time");
}
