//! Trend assertions over the ablation sweeps (see
//! `evop::ablations` and `cargo run -p evop-bench --bin ablations`).

use evop::ablations::*;
use evop::sim::SimDuration;

#[test]
fn a1_detection_delay_follows_cadence_with_zero_false_positives() {
    let rows =
        ablate_health_check(&[SimDuration::from_secs(5), SimDuration::from_secs(60)], &[2, 5], 42)
            .expect("a1 runs");
    for row in &rows {
        let delay = row.detection_delay.expect("hang detected");
        let expected = expected_detection_delay(row.check_interval, row.consecutive);
        assert!(
            delay >= expected && delay <= expected + row.check_interval * 2,
            "delay {delay} vs expected {expected}"
        );
        assert_eq!(row.false_positives, 0);
    }
    // The extremes bracket correctly: 5s×2 detects >20x faster than 60s×5.
    let fast = rows.iter().map(|r| r.detection_delay.unwrap()).min().unwrap();
    let slow = rows.iter().map(|r| r.detection_delay.unwrap()).max().unwrap();
    assert!(slow.as_secs_f64() / fast.as_secs_f64() > 20.0);
}

#[test]
fn a2_bigger_warm_pools_cut_latency_but_cost_more() {
    let rows = ablate_warm_pool(40, &[0, 4, 8], 42).expect("a2 runs");
    // Median time-to-first-result is non-increasing in pool size…
    for pair in rows.windows(2) {
        assert!(
            pair[1].median_first_result <= pair[0].median_first_result,
            "pool {} median {} vs pool {} median {}",
            pair[1].warm_pool,
            pair[1].median_first_result,
            pair[0].warm_pool,
            pair[0].median_first_result
        );
    }
    // …and cost is non-decreasing.
    for pair in rows.windows(2) {
        assert!(pair[1].cost >= pair[0].cost - 1e-9);
    }
    // The jump from 0 to 8 is substantial (the paper's "gain in user
    // experience").
    assert!(
        rows[2].median_first_result.as_secs_f64()
            < rows[0].median_first_result.as_secs_f64() * 0.75
    );
}

#[test]
fn a3_smaller_private_clouds_burst_deeper_and_pay_more() {
    let rows = ablate_private_capacity(&[4, 16, 32], 42).expect("a3 runs");
    for pair in rows.windows(2) {
        assert!(
            pair[1].peak_public_instances <= pair[0].peak_public_instances,
            "capacity {} bursts {} vs capacity {} bursts {}",
            pair[1].private_vcpus,
            pair[1].peak_public_instances,
            pair[0].private_vcpus,
            pair[0].peak_public_instances
        );
        assert!(pair[1].cost <= pair[0].cost + 1e-9);
    }
    // A big-enough private cloud never bursts at all.
    assert_eq!(rows.last().unwrap().peak_public_instances, 0);
    assert!(rows[0].peak_public_instances >= 3);
}

#[test]
fn a4_ti_discretisation_converges() {
    let rows = ablate_ti_bins(&[2, 16, 32], 42).expect("a4 runs");
    assert!(rows.iter().all(|r| r.nse_vs_reference > 0.98));
    assert!(rows[2].nse_vs_reference >= rows[0].nse_vs_reference - 1e-6);
}

#[test]
fn a5_replication_dilutes_stateful_loss_hyperbolically() {
    let rows = ablate_replicas(&[2, 4, 8], 800, 42).expect("a5 runs");
    // Loss ≈ 1/replicas: each workflow's home replica is the killed one
    // with probability 1/replicas.
    for row in &rows {
        let expected = 1.0 / row.replicas as f64;
        assert!(
            (row.soap_loss_rate - expected).abs() < 0.06,
            "{} replicas: loss {:.3} vs expected {:.3}",
            row.replicas,
            row.soap_loss_rate,
            expected
        );
        assert_eq!(row.rest_loss_rate, 0.0);
    }
}
