//! Observability integration: one portal request yields one connected
//! trace, the metrics surface covers every layer, and the whole telemetry
//! output is deterministic — two same-seed runs export byte-identical
//! trace JSON. Attaching the instruments never changes a measured result.

use evop::cloud::FailureMode;
use evop::experiments::{
    e1_dataflow_traced, e3_cloudburst, e3_cloudburst_traced, e4_failure_recovery,
    e4_failure_recovery_traced,
};

#[test]
fn same_seed_runs_export_byte_identical_telemetry() {
    let (r1, c1) = e1_dataflow_traced(42).expect("e1 runs");
    let (r2, c2) = e1_dataflow_traced(42).expect("e1 runs");
    assert_eq!(r1, r2, "measured results are seed-deterministic");
    assert_eq!(c1.trace_id, c2.trace_id);
    assert_eq!(c1.trace_json, c2.trace_json, "trace JSON must be byte-identical");
    assert_eq!(
        c1.metrics.to_string(),
        c2.metrics.to_string(),
        "metrics snapshots must be byte-identical"
    );
    assert_eq!(c1.ascii(), c2.ascii());
}

#[test]
fn e1_request_is_one_connected_trace() {
    let (_, capture) = e1_dataflow_traced(42).expect("e1 runs");

    // Every span sits on the root's trace, and every parent pointer
    // resolves inside the capture: a single tree, no orphans.
    assert!(capture.spans.iter().all(|s| s.trace_id == capture.trace_id));
    let roots: Vec<_> = capture.spans.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "exactly one root:\n{}", capture.ascii());
    assert_eq!(roots[0].name, "e1.request");
    for span in &capture.spans {
        if let Some(parent) = span.parent {
            assert!(
                capture.spans.iter().any(|s| s.span_id == parent),
                "span {} dangles off an unknown parent:\n{}",
                span.name,
                capture.ascii()
            );
        }
    }

    // The timeline covers every layer of the Fig. 1 pipeline.
    let names: Vec<&str> = capture.spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"broker.connect"), "{names:?}");
    assert!(names.contains(&"session.bind"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("instance.boot")), "{names:?}");
    assert!(names.contains(&"model.run topmodel"), "{names:?}");
    assert!(names.contains(&"http POST /catchments/{id}/processes/{process}/execute"), "{names:?}");
    assert!(names.contains(&"wps.execute topmodel"), "{names:?}");

    // Timestamps are SimTime, so children start within their parent's
    // window (the boot span starts at the placement, not wall-clock now).
    let root_start = roots[0].start;
    assert!(capture.spans.iter().all(|s| s.start >= root_start));
}

#[test]
fn metrics_snapshot_covers_every_layer() {
    let (_, capture) = e1_dataflow_traced(42).expect("e1 runs");
    let counters = capture.metrics["counters"].as_object().expect("counters section");
    for family in [
        "router_requests_total",
        "wps_executions_total",
        "broker_placements_total",
        "broker_binds_total",
        "cloud_launches_total",
        "cloud_state_transitions_total",
        "cloud_jobs_completed_total",
    ] {
        assert!(
            counters.keys().any(|k| k.starts_with(family)),
            "missing {family} in {:?}",
            counters.keys().collect::<Vec<_>>()
        );
    }
    let gauges = capture.metrics["gauges"].as_object().expect("gauges section");
    assert!(
        gauges.keys().any(|k| k.starts_with("cloud_cost_total")),
        "per-provider billing gauges missing"
    );
    let histograms = capture.metrics["histograms"].as_object().expect("histograms section");
    assert!(histograms.keys().any(|k| k.starts_with("broker_activation_wait_seconds")));
    assert!(histograms.keys().any(|k| k.starts_with("cloud_job_latency_seconds")));
}

#[test]
fn tracing_does_not_change_e3_or_e4_results() {
    assert_eq!(
        e3_cloudburst(40, 7).expect("e3 runs"),
        e3_cloudburst_traced(40, 7).expect("e3 traced runs").0
    );
    assert_eq!(
        e4_failure_recovery(FailureMode::Hang, 6, 3).expect("e4 runs"),
        e4_failure_recovery_traced(FailureMode::Hang, 6, 3).expect("e4 traced runs").0
    );
}

#[test]
fn same_seed_chaos_runs_export_byte_identical_prometheus_and_snapshots() {
    use evop::chaos::{ChaosScenario, FaultSchedule};
    use evop::sim::SimDuration;

    let run = || {
        ChaosScenario::new(FaultSchedule::provider_storm(), 42)
            .sessions(8)
            .duration(SimDuration::from_secs(3600))
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(a.prometheus, b.prometheus, "Prometheus exposition must be byte-identical");
    assert_eq!(
        a.metrics_snapshot.to_string(),
        b.metrics_snapshot.to_string(),
        "metrics snapshots must be byte-identical"
    );
    // The exposition is well-formed enough to scrape: typed families,
    // histogram series with a closing +Inf bucket and a count.
    assert!(a.prometheus.contains("# TYPE broker_submit_total counter"), "{}", a.prometheus);
    assert!(a.prometheus.contains("le=\"+Inf\""), "{}", a.prometheus);

    let other = ChaosScenario::new(FaultSchedule::provider_storm(), 43)
        .sessions(8)
        .duration(SimDuration::from_secs(3600))
        .run();
    assert_ne!(a.prometheus, other.prometheus, "different seeds measure differently (a.s.)");
}

#[test]
fn same_seed_runs_export_byte_identical_otlp_json() {
    use evop::obs::{otlp_json, Tracer};
    use evop::sim::SimTime;

    let build = || {
        let tracer = Tracer::new();
        tracer.set_now(SimTime::from_millis(1_000));
        let root = tracer.start_trace("request");
        root.attr("session", "user-0");
        let child = tracer.start_span("model.run", &root.context());
        tracer.set_now(SimTime::from_millis(4_000));
        child.event("first-result");
        child.finish();
        tracer.set_now(SimTime::from_millis(5_000));
        root.finish();
        tracer
    };
    let a = otlp_json(&build());
    let b = otlp_json(&build());
    assert_eq!(a.to_string(), b.to_string(), "OTLP export must be byte-identical");
    let text = a.to_string();
    assert!(text.contains("resourceSpans"), "{text}");
    assert!(text.contains("evop-sim"), "{text}");
}

#[test]
fn profiling_never_changes_a_measured_result() {
    use evop::experiments::{
        e1_dataflow, e1_dataflow_profiled, e6_flash_crowd, e6_flash_crowd_profiled,
    };
    use evop::obs::Profiler;

    // The profiler measures wall time around the virtual-time experiment;
    // it must be observation only. Same seed, profiled vs unprofiled,
    // every measured field identical.
    let prof = Profiler::new();
    assert_eq!(
        e1_dataflow(42).expect("e1 runs"),
        e1_dataflow_profiled(42, &prof).expect("e1 profiled runs")
    );
    assert_eq!(
        e6_flash_crowd(40, 4, 42).expect("e6 runs"),
        e6_flash_crowd_profiled(40, 4, 42, &prof).expect("e6 profiled runs")
    );

    // And the profiler did actually observe the runs: both experiment
    // roots show up as profile tree roots with recorded calls.
    let report = prof.report();
    for root in ["e1.request", "e6.cold", "e6.warm"] {
        let stats = report.op(root).unwrap_or_else(|| panic!("{root} profiled"));
        assert!(stats.calls >= 1, "{root} recorded {} calls", stats.calls);
    }
}
