//! The paper-claims test suite: one test per experiment in EXPERIMENTS.md,
//! asserting the *shape* of each result — who wins, in which direction,
//! and where the crossovers fall (absolute numbers live in the benches).

use evop::cloud::FailureMode;
use evop::data::Catchment;
use evop::experiments::*;
use evop::sim::SimDuration;

#[test]
fn e1_fig1_end_to_end_dataflow() {
    let r = e1_dataflow(42).expect("e1 runs");
    // The user waited less than the boot latency would suggest only if an
    // instance existed; first user pays a boot, bounded sanely.
    assert!(r.activation_wait < SimDuration::from_secs(5));
    assert!(r.job_latency >= SimDuration::from_secs(45), "job cannot finish faster than its work");
    assert!(r.job_latency < SimDuration::from_secs(400));
    assert!(r.push_updates >= 1, "browser must receive the instance address");
    assert!(r.peak_m3s > 0.0);
}

#[test]
fn e2_statelessness_survives_failover() {
    let r = e2_rest_vs_soap(200, 4, 7).expect("e2 runs");
    assert_eq!(r.rest_completed, r.workflows, "REST loses nothing on replica death");
    assert_eq!(r.rest_lost_steps, 0);
    assert!(
        r.soap_lost_sessions as f64 >= r.workflows as f64 * 0.15,
        "a meaningful share of sticky sessions must die: {} of {}",
        r.soap_lost_sessions,
        r.workflows
    );
    assert!(r.soap_completed < r.workflows);
}

#[test]
fn e3_cloudburst_and_retreat() {
    let r = e3_cloudburst(120, 42).expect("e3 runs");
    let burst = r.burst_at.expect("private cloud must saturate under 120 users");
    // Retreat happens after the ramp-down.
    let retreat = r.retreat_at.expect("public instances must drain");
    assert!(retreat > burst);
    // At the end the mix is private-only again.
    let last = r.timeline.last().unwrap();
    assert_eq!(last.public_instances, 0);
    assert_eq!(last.sessions, 0);
    // During the hold the public cloud is carrying load.
    let peak_public = r.timeline.iter().map(|s| s.public_instances).max().unwrap();
    assert!(peak_public >= 1);
    // Hybrid is cheaper than the same hours all-public.
    assert!(
        r.hybrid_cost < r.all_public_equivalent_cost * 0.7,
        "hybrid {:.2} vs all-public {:.2}",
        r.hybrid_cost,
        r.all_public_equivalent_cost
    );
}

#[test]
fn e4_failure_modes_are_detected_and_sessions_survive() {
    for mode in [FailureMode::Hang, FailureMode::NetworkBlackhole, FailureMode::Crash] {
        let r = e4_failure_recovery(mode, 6, 11).expect("e4 runs");
        let delay = r.detection_delay.unwrap_or_else(|| panic!("{mode:?} not detected"));
        // 3 consecutive bad samples × 15 s checks: detection within a bounded
        // window.
        assert!(
            delay >= SimDuration::from_secs(30) && delay <= SimDuration::from_secs(120),
            "{mode:?} detected after {delay}"
        );
        assert_eq!(r.sessions_migrated, r.sessions_at_failure, "{mode:?} must migrate everyone");
        assert_eq!(r.sessions_lost, 0, "{mode:?} must lose nobody");
    }
}

#[test]
fn e4_signatures_match_paper_wording() {
    let hang = e4_failure_recovery(FailureMode::Hang, 3, 5).expect("e4 hang runs");
    assert_eq!(hang.signature.as_deref(), Some("sustained CPU saturation"));
    let blackhole =
        e4_failure_recovery(FailureMode::NetworkBlackhole, 3, 5).expect("e4 blackhole runs");
    assert_eq!(blackhole.signature.as_deref(), Some("inbound traffic with zero outbound"));
}

#[test]
fn e5_elasticity_beats_quota_and_scales() {
    let r = e5_elastic_monte_carlo(64, SimDuration::from_secs(300), 4, 42).expect("e5 runs");
    assert!(r.speedup > 4.0, "speedup was {:.1}", r.speedup);
    assert!(r.elastic_instances > 4);
    // Crossover: with few runs the quota is competitive.
    let small = e5_elastic_monte_carlo(4, SimDuration::from_secs(300), 4, 42).expect("e5 runs");
    assert!(small.speedup < 2.0, "4 runs fit the quota: {:.2}", small.speedup);
}

#[test]
fn e6_prebootstrap_cuts_time_to_first_result() {
    let r = e6_flash_crowd(40, 4, 42).expect("e6 runs");
    assert!(
        r.warm.median_first_result < r.cold.median_first_result,
        "warm {} vs cold {}",
        r.warm.median_first_result,
        r.cold.median_first_result
    );
    // The paper: "additional operational overheads, but … not significant".
    assert!(
        r.warm.cost < r.cold.cost * 4.0,
        "warm-pool overhead must stay bounded: {:.3} vs {:.3}",
        r.warm.cost,
        r.cold.cost
    );
}

#[test]
fn e7_image_kinds_tradeoff() {
    let r = e7_image_kinds(5, SimDuration::from_secs(120), 3).expect("e7 runs");
    assert!(r.incubator_first_result > r.streamlined_first_result);
    assert!(r.incubator_total > r.streamlined_total);
}

#[test]
fn e8_policy_swap_redirects_without_caller_changes() {
    let r = e8_policy_swap(6, 9).expect("e8 runs");
    assert_eq!(r.before_streamlined.get("campus"), Some(&6));
    assert_eq!(r.after_streamlined.get("aws"), Some(&6));
    assert_eq!(r.after_incubator.get("campus"), Some(&6));
}

#[test]
fn e9_scenarios_order_flood_peaks() {
    let r = e9_scenarios(&Catchment::morland(), 20, 42).expect("e9 runs");
    assert_eq!(r.rows.len(), 10, "5 scenarios × 2 models");
    assert!(r.ordering_holds, "scenario ordering violated: {:#?}", r.rows);
    assert!(r.rows.iter().all(|row| row.metrics.peak_m3s > 0.0));
}

#[test]
fn e10_multimodal_alignment() {
    let r = e10_multimodal(42).expect("e10 runs");
    assert!(r.frame_hit_rate > 0.95, "hit rate {}", r.frame_hit_rate);
    assert!(r.mean_frame_lag_secs <= 900.0, "mean lag {}", r.mean_frame_lag_secs);
    assert!(
        r.murk_turbidity_correlation > 0.8,
        "murkiness must track turbidity: r = {}",
        r.murk_turbidity_correlation
    );
}

#[test]
fn e11_over_75_percent_useful_and_easy() {
    let r = e11_journeys(50, 42);
    assert!(
        r.with_help.useful_and_easy_rate > 0.75,
        "paper claims >75 %, got {:.1} %",
        r.with_help.useful_and_easy_rate * 100.0
    );
    // Fig. 7: awareness without education collapses engagement.
    assert!(r.without_help.completion_rate < r.with_help.completion_rate - 0.1);
}

#[test]
fn e12_asset_discovery_is_correct_at_scale() {
    let (map, queries) = e12_setup(2000, 42);
    let hits = e12_run(&map, &queries);
    assert!(hits >= map.len(), "every marker lies in a catchment viewport");
}

#[test]
fn e13_workflows_replay_deterministically() {
    let r = e13_workflow(42).expect("e13 runs");
    assert_eq!(r.nodes, 4);
    assert!(r.replay_matches, "replay must reproduce every node output");
    assert!(r.verdict["peak_m3s"].as_f64().unwrap() > 0.0);
    assert!(r.verdict["flood_risk"].is_string());
}

#[test]
fn e14_storyboard_fully_verified_by_live_features() {
    let (_storyboard, coverage) = e14_verify_left(42).expect("e14 runs");
    assert_eq!(coverage.steps, 7);
    assert_eq!(
        coverage.steps_verified, 7,
        "every storyboard step must be backed by working features"
    );
}

#[test]
fn e15_push_beats_polling() {
    let r = e15_push_vs_poll(30, 42);
    assert!(r.poll_10s.messages > r.push.messages * 20);
    assert!(r.poll_10s.bytes > r.push.bytes * 5);
    // Slower polling saves bytes but pays staleness — push pays neither.
    assert!(r.poll_60s.bytes < r.poll_10s.bytes);
    assert!(r.poll_60s.mean_staleness_secs > 10.0);
    assert!(r.push.mean_staleness_secs < 1.0);
}
