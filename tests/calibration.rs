//! Scientific integration tests: calibrating the library models against
//! the synthetic "observed" truth, and GLUE uncertainty analysis — the
//! offline workflow of paper §V-B ("Model calibration was carried out
//! offline to ensure … the model could adequately reproduce observed
//! discharge at the outlet of the catchment").

use evop::data::synthetic::{TruthModel, WeatherGenerator};
use evop::data::{Catchment, Timestamp};
use evop::models::calibrate::{calibrate_series, monte_carlo_refined, ParamSpace};
use evop::models::glue::glue;
use evop::models::objectives::{nse, Objective};
use evop::models::pet::hamon_series;
use evop::models::{Forcing, FuseConfig, FuseModel, FuseParams, Topmodel, TopmodelParams};

struct Setup {
    model: Topmodel,
    forcing: Forcing,
    observed: evop::data::TimeSeries,
    area_km2: f64,
    /// Evaluation window excluding the 7-day spin-up (standard hydrological
    /// practice: initial-store transients are not scored).
    eval: (Timestamp, Timestamp),
}

impl Setup {
    fn trimmed(&self, series: &evop::data::TimeSeries) -> evop::data::TimeSeries {
        series.window(self.eval.0, self.eval.1).expect("window inside archive")
    }
}

fn setup(days: usize, seed: u64) -> Setup {
    use rand::SeedableRng;
    let catchment = Catchment::morland();
    let generator = WeatherGenerator::for_catchment(&catchment, seed);
    let truth = TruthModel::for_catchment(&catchment, seed);
    let start = Timestamp::from_ymd(2012, 1, 1);
    let n = days * 24;
    let rain = generator.rainfall(start, 3600, n);
    let temp = generator.temperature(start, 3600, n);
    let pet = hamon_series(&temp, catchment.outlet().lat());
    let observed = truth.discharge(&rain, &temp);
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let dem = catchment.generate_dem(&mut rng);
    Setup {
        model: Topmodel::new(dem.ti_distribution(16), catchment.area_km2()),
        forcing: Forcing::new(rain, pet),
        observed,
        area_km2: catchment.area_km2(),
        eval: (start.plus_days(7), start.plus_days(days as i64)),
    }
}

#[test]
fn topmodel_calibration_beats_default_parameters() {
    let s = setup(60, 42);
    let obs_eval = s.trimmed(&s.observed);
    let default_nse = {
        let out = s.model.run(&TopmodelParams::default(), &s.forcing).unwrap();
        nse(&s.trimmed(&out.discharge_m3s), &obs_eval)
    };
    let space = ParamSpace::from_ranges(&TopmodelParams::ranges());
    let result = monte_carlo_refined(&space, 3, 250, 0.45, 42, |params| {
        s.model
            .run(&TopmodelParams::from_vector(params), &s.forcing)
            .map(|o| nse(&s.trimmed(&o.discharge_m3s), &obs_eval))
            .unwrap_or(f64::NAN)
    });
    assert!(
        result.best_score() > default_nse + 0.1,
        "calibrated NSE {:.3} must clearly beat default {:.3}",
        result.best_score(),
        default_nse
    );
    // The truth model is *structurally different* (two parallel linear
    // reservoirs with a temperature-dependent runoff coefficient), so a
    // cross-structure NSE in the 0.3-0.5 band is an adequate fit here.
    assert!(
        result.best_score() > 0.3,
        "calibrated NSE {:.3} should be an adequate cross-structure fit",
        result.best_score()
    );
}

#[test]
fn fuse_structures_rank_differently_on_the_same_data() {
    let s = setup(45, 7);
    let mut scores: Vec<(String, f64)> = FuseConfig::named_parents()
        .into_iter()
        .map(|(name, config)| {
            let q =
                FuseModel::new(config, s.area_km2).run(&FuseParams::default(), &s.forcing).unwrap();
            (name.to_owned(), nse(&q, &s.observed))
        })
        .collect();
    scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    assert!(scores[0].1 > scores[3].1 + 0.01, "structural choices must matter: {scores:?}");
}

#[test]
fn glue_bounds_bracket_most_observations() {
    let s = setup(45, 42);
    let space = ParamSpace::from_ranges(&TopmodelParams::ranges());
    let obs_eval = s.trimmed(&s.observed);
    let result = glue(&space, 600, 42, &obs_eval, Objective::Nse, 0.0, |params| {
        s.model
            .run(&TopmodelParams::from_vector(params), &s.forcing)
            .ok()
            .map(|o| s.trimmed(&o.discharge_m3s))
    })
    .expect("behavioural members exist at NSE > 0");

    assert!(result.acceptance_rate() > 0.02, "rate {:.3}", result.acceptance_rate());
    let coverage = result.coverage(&obs_eval);
    // Structural error (TOPMODEL vs the two-reservoir truth) keeps some
    // observed dynamics outside any behavioural simulation — ~50-60 %
    // bracketing is the realistic band for misspecified GLUE.
    assert!(
        coverage > 0.45,
        "GLUE bounds should bracket a majority of observations, covered {:.2}",
        coverage
    );
    // Bounds are widest where flow is high (uncertainty scales with flow).
    let peak_idx = obs_eval.peak().unwrap().0;
    let width_at_peak = result.upper().value_at(peak_idx) - result.lower().value_at(peak_idx);
    let width_at_low = {
        let low_idx = obs_eval.trough().unwrap().0;
        result.upper().value_at(low_idx) - result.lower().value_at(low_idx)
    };
    assert!(width_at_peak > width_at_low, "{width_at_peak} vs {width_at_low}");
}

#[test]
fn calibration_transfers_across_weather_but_not_perfectly() {
    // Calibrate on one period, evaluate on another (split-sample test).
    let calibration = setup(45, 42);
    let cal_obs = calibration.trimmed(&calibration.observed);
    let space = ParamSpace::from_ranges(&TopmodelParams::ranges());
    let result = calibrate_series(&space, 400, 11, &cal_obs, Objective::Nse, |p| {
        calibration
            .model
            .run(&TopmodelParams::from_vector(p), &calibration.forcing)
            .ok()
            .map(|o| calibration.trimmed(&o.discharge_m3s))
    });
    let best = TopmodelParams::from_vector(&result.best().params);

    // New weather, same catchment/truth pairing (different seed → different
    // storms; same truth parameters because TruthModel uses catchment
    // constants).
    let validation = setup(45, 99);
    let out = validation.model.run(&best, &validation.forcing).unwrap();
    let validation_nse =
        nse(&validation.trimmed(&out.discharge_m3s), &validation.trimmed(&validation.observed));
    assert!(
        validation_nse > 0.1,
        "calibration should transfer to unseen weather, NSE {validation_nse:.3}"
    );
    assert!(
        validation_nse <= result.best_score() + 0.05,
        "validation {validation_nse:.3} should not beat calibration {:.3}",
        result.best_score()
    );
}

#[test]
fn scenario_effects_exceed_parameter_noise() {
    // The scenario signal (peak change) must be larger than the jitter from
    // small parameter perturbations — otherwise the widget's story is noise.
    use evop::models::scenarios::Scenario;
    let s = setup(30, 21);
    let base = TopmodelParams::default();
    let baseline_peak = s.model.run(&base, &s.forcing).unwrap().discharge_m3s.peak().unwrap().1;

    let compacted_params = Scenario::CompactedSoils.apply_to_topmodel(&base);
    let compacted_peak =
        s.model.run(&compacted_params, &s.forcing).unwrap().discharge_m3s.peak().unwrap().1;
    let scenario_effect = (compacted_peak - baseline_peak).abs();

    let jittered = TopmodelParams { m: base.m * 1.01, ..base };
    let jitter_peak = s.model.run(&jittered, &s.forcing).unwrap().discharge_m3s.peak().unwrap().1;
    let jitter_effect = (jitter_peak - baseline_peak).abs();

    assert!(
        scenario_effect > jitter_effect * 4.0,
        "scenario {scenario_effect:.3} vs jitter {jitter_effect:.3}"
    );
}
