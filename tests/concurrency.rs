//! True multi-threaded tests: many simultaneous portal users.
//!
//! "The services are universally accessible by all target groups" (§IV-C)
//! — which in practice means concurrent access. These tests hammer the
//! shared observatory from real OS threads: the stateless router replicas,
//! the interior-mutable WPS async-job store, and the duplex push channels
//! all have to behave under contention.

use std::sync::Arc;
use std::thread;

use evop::api::portal_api;
use evop::services::push::{duplex_pair, Message};
use evop::services::Request;
use evop::Evop;
use serde_json::{json, Value};

#[test]
fn sixteen_threads_hammer_the_portal_api() {
    let evop = Arc::new(Evop::builder().seed(11).days(10).build());
    let router = portal_api(Arc::clone(&evop));

    let reference: Value =
        router.dispatch(&Request::get("/catchments/morland/sensors")).json_body().unwrap();

    let handles: Vec<_> = (0..16)
        .map(|t| {
            // Each thread gets its own replica — clones share handlers, not
            // mutable state, exactly like horizontally scaled instances.
            let replica = router.clone();
            let expected = reference.clone();
            thread::spawn(move || {
                for i in 0..50 {
                    let sensors: Value = replica
                        .dispatch(&Request::get("/catchments/morland/sensors"))
                        .json_body()
                        .expect("json");
                    assert_eq!(sensors, expected, "thread {t} iteration {i} diverged");

                    let latest =
                        replica.dispatch(&Request::get("/sensors/morland-stage-outlet/latest"));
                    assert!(latest.status().is_success());
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no thread may panic");
    }
}

#[test]
fn concurrent_async_model_runs_each_get_their_own_result() {
    let evop = Arc::new(Evop::builder().seed(3).days(10).build());
    let router = portal_api(Arc::clone(&evop));

    // Eight users enqueue runs concurrently (different scenarios), then each
    // polls its own job to completion.
    let scenarios = ["baseline", "afforestation", "compacted-soils", "restored-wetland"];
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let replica = router.clone();
            let scenario = scenarios[t % scenarios.len()].to_owned();
            thread::spawn(move || {
                let accepted = replica.dispatch(
                    &Request::post("/catchments/morland/processes/topmodel/execute-async")
                        .json(&json!({ "scenario": scenario })),
                );
                let body: Value = accepted.json_body().expect("json");
                let location = body["status_location"].as_str().expect("location").to_owned();

                // Poll until done (the poll itself drives pending work).
                for _ in 0..10 {
                    let status: Value =
                        replica.dispatch(&Request::get(&location)).json_body().expect("json");
                    match status["state"].as_str() {
                        Some("succeeded") => {
                            assert_eq!(status["outputs"]["scenario"], scenario.as_str());
                            return;
                        }
                        Some("accepted") => continue,
                        other => panic!("unexpected state {other:?}"),
                    }
                }
                panic!("job never completed");
            })
        })
        .collect();
    for handle in handles {
        handle.join().expect("no thread may panic");
    }
}

#[test]
fn duplex_channels_work_across_threads() {
    let (server, client) = duplex_pair();

    let producer = thread::spawn(move || {
        for i in 0..500 {
            server.send(Message::new("session-update", json!({ "seq": i }))).expect("client alive");
        }
        server.stats().sent_messages
    });

    let consumer = thread::spawn(move || {
        let mut received = 0usize;
        let mut last_seq = -1i64;
        while received < 500 {
            if let Some(msg) = client.try_recv() {
                let seq = msg.payload()["seq"].as_i64().expect("seq");
                assert_eq!(seq, last_seq + 1, "messages must arrive in order");
                last_seq = seq;
                received += 1;
            } else {
                thread::yield_now();
            }
        }
        received
    });

    assert_eq!(producer.join().expect("producer ok"), 500);
    assert_eq!(consumer.join().expect("consumer ok"), 500);
}
