//! Compose, execute and replay a scientific workflow DAG — the paper's
//! future-work feature (§VIII): "complex experiments that can be easily
//! tweaked and replayed, offering reproducibility and traceability".
//!
//! ```sh
//! cargo run --example workflow_compose
//! ```

use evop::models::scenarios::Scenario;
use evop::workflow::Workflow;
use evop::Evop;
use serde_json::{json, Value};

fn main() {
    let evop = Evop::builder().seed(42).days(15).build();
    let id = evop.catchments()[0].id().clone();
    let catchment = evop.catchments()[0].clone();
    let forcing = evop.forcing(&id).expect("archive loaded").clone();
    let threshold = 0.5 * catchment.area_km2();

    println!("=== EVOp workflow composition ===\n");

    // A four-stage experiment: forcing stats → two scenario model runs →
    // a comparison report. Each node is a basic execution unit.
    let rain_total = forcing.rainfall().sum();
    let run_scenario = |scenario: Scenario| {
        let catchment = catchment.clone();
        let forcing = forcing.clone();
        move |_inputs: &[Value]| -> Result<Value, String> {
            use rand::SeedableRng;
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
            let dem = catchment.generate_dem(&mut rng);
            let model = evop::models::Topmodel::new(dem.ti_distribution(16), catchment.area_km2());
            let params = scenario.apply_to_topmodel(&evop::models::TopmodelParams::default());
            let out = model.run(&params, &forcing).map_err(|e| e.to_string())?;
            let peak = out.discharge_m3s.peak().map(|(_, v)| v).unwrap_or(0.0);
            Ok(json!({ "scenario": scenario.id(), "peak_m3s": peak }))
        }
    };

    let workflow = Workflow::builder("scenario-compare")
        .constant("rainfall_mm", json!(rain_total))
        .task("baseline-run", [] as [&str; 0], run_scenario(Scenario::Baseline))
        .task("compacted-run", [] as [&str; 0], run_scenario(Scenario::CompactedSoils))
        .task("report", ["rainfall_mm", "baseline-run", "compacted-run"], move |inputs| {
            let base = inputs[1]["peak_m3s"].as_f64().ok_or("missing baseline peak")?;
            let compacted = inputs[2]["peak_m3s"].as_f64().ok_or("missing compacted peak")?;
            Ok(json!({
                "rainfall_mm": inputs[0],
                "baseline_peak_m3s": base,
                "compacted_peak_m3s": compacted,
                "peak_increase_percent": 100.0 * (compacted - base) / base,
                "exceeds_flood_threshold": compacted >= threshold,
            }))
        })
        .build()
        .expect("acyclic by construction");

    println!("Execution order: {:?}\n", workflow.execution_order());

    let record = workflow.execute().expect("all nodes succeed");
    println!("Report:");
    println!("{}\n", serde_json::to_string_pretty(record.output("report").unwrap()).unwrap());

    println!("Provenance trace:");
    for entry in record.trace() {
        println!(
            "  #{} {} ← {:?} (output hash {:016x})",
            entry.order, entry.node, entry.consumed, entry.output_hash
        );
    }

    // Replay: the whole experiment re-runs bit-identically.
    let replay = workflow.replay(&record).expect("same workflow");
    println!(
        "\nReplay verification: {}",
        if replay.matches() {
            "every node reproduced its recorded output ✓"
        } else {
            "DIVERGED ✗"
        }
    );
}
