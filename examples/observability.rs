//! Observability: follow one portal request through the whole stack.
//!
//! The observatory keeps a single tracer and metrics registry shared by
//! the REST router, the WPS endpoints, the Resource Broker and the cloud
//! simulator. This example opens a session, runs a model through the
//! portal API with the trace context in the request headers, and then
//! prints the resulting causal timeline and the metrics the run produced.
//!
//! ```sh
//! cargo run --example observability
//! ```

use std::sync::Arc;

use evop::api::portal_api;
use evop::obs::TimelineReport;
use evop::services::Request;
use evop::sim::SimDuration;
use evop::Evop;
use serde_json::json;

fn main() {
    let mut evop = Evop::builder().seed(42).days(10).build();
    let id = evop.catchments()[0].id().clone();

    // A root span stands for the user's browser request; everything the
    // stack does on its behalf parents under it.
    let root = evop.tracer().start_trace("portal.request");
    root.attr("user", "stakeholder");
    let ctx = root.context();

    // 1. Open a modelling session: the broker places (or boots) an
    //    instance and pushes the assignment over the session channel.
    let session = evop
        .broker_mut()
        .connect_with_context("stakeholder", "topmodel", Some(&ctx))
        .expect("library serves topmodel");
    evop.broker_mut().advance(SimDuration::from_secs(180));

    // 2. Submit a model run to the session's instance.
    evop.broker_mut()
        .run_model_with_context(session, SimDuration::from_secs(45), Some(&ctx))
        .expect("session active after boot");
    evop.broker_mut().advance(SimDuration::from_secs(300));

    // 3. Fetch the hydrograph through the REST API. The `traced` headers
    //    carry the root context, so the router and WPS spans join the
    //    same trace instead of opening their own.
    let evop = Arc::new(evop);
    let router = portal_api(Arc::clone(&evop));
    let resp = router.dispatch(
        &Request::post(format!("/catchments/{id}/processes/topmodel/execute"))
            .json(&json!({}))
            .traced(&ctx),
    );
    assert!(resp.status().is_success());
    root.finish();

    // The flight recorder now holds the whole story.
    println!("=== one request, one timeline ===\n");
    let report = TimelineReport::for_trace(evop.tracer(), ctx.trace_id);
    print!("{}", report.ascii());

    println!("\n=== metrics the run produced ===\n");
    let snapshot = evop.metrics().snapshot();
    for section in ["counters", "gauges"] {
        if let Some(map) = snapshot[section].as_object() {
            for (series, value) in map {
                println!("  {series} = {value}");
            }
        }
    }

    // The push update the browser widget received carries the trace id,
    // closing the loop between server-side spans and client-side events.
    let update = evop
        .broker()
        .session(session)
        .expect("session exists")
        .client_channel()
        .try_recv()
        .expect("assignment pushed");
    println!(
        "\npush update correlates to trace {} (span {})",
        update.payload()["trace_id"],
        update.payload()["span_id"]
    );
}
