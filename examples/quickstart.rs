//! Quickstart: boot the observatory, explore Morland's assets, and run the
//! flood model under a land-use scenario (the Fig. 6 journey).
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use evop::data::SensorId;
use evop::models::scenarios::Scenario;
use evop::portal::render::{line_chart, sparkline, table};
use evop::Evop;

fn main() {
    // One seeded builder assembles the whole stack: synthetic archives,
    // SOS + WPS services, asset map, catalogue, cloud broker.
    let evop = Evop::builder().seed(42).days(30).build();
    let morland = evop.catchments()[0].clone();
    let id = morland.id().clone();

    println!("=== EVOp quickstart — {} ({}) ===\n", morland.name(), morland.region());

    // 1. What's on the map around the outlet?
    println!("Assets near the outlet:");
    for marker in evop.map().nearest(morland.outlet(), 6) {
        println!(
            "  [{}] {} — {:.4}, {:.4}",
            marker.kind(),
            marker.name(),
            marker.location().lat(),
            marker.location().lon()
        );
    }

    // 2. Live river level from the Sensor Observation Service.
    let stage_sensor = SensorId::new(format!("{id}-stage-outlet"));
    let latest = evop.sos().latest(&stage_sensor).expect("archive loaded");
    println!(
        "\nLatest river level: {:.2} m at {} (flood threshold {:.2} m)",
        latest.value(),
        latest.time(),
        morland.flood_stage_m()
    );
    let q = evop.observed_discharge(&id).expect("archive loaded");
    println!("30-day discharge     {}", sparkline(q, 60));

    // 3. Run TOPMODEL under two scenarios through the modelling widget.
    let mut widget = evop.modelling_widget(&id);
    widget.run("baseline").expect("default parameters are valid");
    widget.select_scenario(Scenario::CompactedSoils);
    println!("\n{}\n", widget.help_text());
    widget.run("compacted-soils").expect("scenario parameters are valid");

    // 4. Compare runs against the flood threshold, like the widget's table.
    let rows: Vec<Vec<String>> = widget
        .compare()
        .into_iter()
        .map(|(label, m)| {
            vec![
                label,
                format!("{:.2}", m.peak_m3s),
                format!("{}", m.steps_over_threshold),
                format!("{:.0}", m.volume_m3),
            ]
        })
        .collect();
    println!("{}", table(&["scenario", "peak m³/s", "h over threshold", "volume m³"], &rows));

    // 5. Render the scenario hydrograph with the flood line.
    let last_run = widget.runs().last().expect("two runs stored");
    println!("\nCompacted-soils hydrograph:");
    println!("{}", line_chart(&last_run.discharge, 72, 14, Some(widget.flood_threshold_m3s())));
}
