//! GLUE uncertainty analysis over an elastic cloud fleet: the paper's
//! flagship embarrassingly parallel workload (§VI), ending with the
//! uncertainty bounds the stakeholders asked for.
//!
//! ```sh
//! cargo run --release --example uncertainty
//! ```

use evop::experiments::e5_elastic_monte_carlo;
use evop::models::calibrate::ParamSpace;
use evop::models::glue::glue;
use evop::models::objectives::Objective;
use evop::models::TopmodelParams;
use evop::portal::render::line_chart;
use evop::sim::SimDuration;
use evop::Evop;

fn main() {
    println!("=== EVOp uncertainty analysis (GLUE) ===\n");

    // 1. The infrastructure side: how long would 200 Monte Carlo runs take
    //    on the fixed campus quota vs an elastic fleet? (virtual time)
    let runs = 200;
    let infra = e5_elastic_monte_carlo(runs, SimDuration::from_secs(180), 8, 42).expect("e5 runs");
    println!("{runs} model runs of 3 CPU-minutes each:");
    println!("  fixed 8-vCPU quota : {}", infra.quota_makespan);
    println!(
        "  elastic fleet      : {}  ({} instances, {:.1}x speedup)\n",
        infra.elastic_makespan, infra.elastic_instances, infra.speedup
    );

    // 2. The science side: run the actual GLUE analysis (real computation).
    let evop = Evop::builder().seed(42).days(30).build();
    let id = evop.catchments()[0].id().clone();
    let observed = evop.observed_discharge(&id).expect("archive loaded");
    let forcing = evop.forcing(&id).expect("archive loaded").clone();
    let widget = evop.modelling_widget(&id);
    let _ = widget; // the widget shares the same model; we use the raw API here

    use rand::SeedableRng;
    let catchment = evop.catchments()[0].clone();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
    let dem = catchment.generate_dem(&mut rng);
    let model = evop::models::Topmodel::new(dem.ti_distribution(16), catchment.area_km2());

    // Score after a 7-day spin-up, as in operational calibration.
    let spin = evop.start().plus_days(7);
    let end = evop.start().plus_days(30);
    let obs_eval = observed.window(spin, end).expect("inside archive");

    let space = ParamSpace::from_ranges(&TopmodelParams::ranges());
    let result = glue(&space, 400, 42, &obs_eval, Objective::Nse, 0.0, |params| {
        model
            .run(&TopmodelParams::from_vector(params), &forcing)
            .ok()
            .and_then(|o| o.discharge_m3s.window(spin, end).ok())
    })
    .expect("behavioural members at NSE > 0");

    println!("GLUE over {} runs:", result.total_runs());
    println!(
        "  behavioural members : {} ({:.0} % acceptance)",
        result.members().len(),
        result.acceptance_rate() * 100.0
    );
    println!(
        "  observation coverage: {:.0} % of observed flows inside the 5-95 % bounds",
        result.coverage(&obs_eval) * 100.0
    );

    let best = result
        .members()
        .iter()
        .max_by(|a, b| a.score.partial_cmp(&b.score).expect("finite"))
        .expect("non-empty");
    println!("  best member NSE     : {:.3}\n", best.score);

    println!("Median GLUE prediction (with observed flows for comparison):");
    println!("{}", line_chart(result.median(), 72, 12, None));
    println!("Upper (95 %) prediction bound:");
    println!("{}", line_chart(result.upper(), 72, 10, None));
}
