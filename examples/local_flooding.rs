//! The LEFT storyboard end-to-end (paper §V-B, Figs. 4–6): map
//! exploration, live sensor widgets, the multimodal webcam view, and the
//! scenario-comparison modelling widget — the full stakeholder journey.
//!
//! ```sh
//! cargo run --example local_flooding
//! ```

use evop::data::{Catchment, SensorId};
use evop::models::scenarios::Scenario;
use evop::portal::render::{line_chart, table};
use evop::portal::storyboard::Storyboard;
use evop::portal::widgets::{MultimodalWidget, TimeSeriesWidget};
use evop::Evop;

fn main() {
    let evop = Evop::builder().seed(7).days(30).build();
    let morland = Catchment::morland();
    let id = morland.id().clone();
    let storyboard = Storyboard::left();

    println!("=== {} ===", storyboard.title());
    println!("owned by: {}\n", storyboard.owner());

    // Step 1-2: the landing map and live data (Fig. 4).
    println!("--- Step: \"{}\" ---", storyboard.steps()[0].description());
    let in_view = evop.map().markers_in(morland.bounding_box());
    println!("{} markers in the catchment viewport:", in_view.len());
    for marker in &in_view {
        println!("  • {}", marker.name());
    }

    println!("\n--- Step: \"{}\" ---", storyboard.steps()[1].description());
    let stage_widget =
        TimeSeriesWidget::new("River level", "m", SensorId::new(format!("{id}-stage-outlet")));
    let window_end = evop.start().plus_days(30);
    let view = stage_widget
        .view(evop.sos(), window_end.plus_days(-3), window_end)
        .expect("sensor registered");
    println!(
        "Last 3 days of river level: latest {:.2} m, max {:.2} m",
        view.latest.unwrap_or(f64::NAN),
        view.max.unwrap_or(f64::NAN)
    );

    // Step 3-4: the flood in the archive, and how the water looked (Fig. 5).
    println!("\n--- Step: \"{}\" ---", storyboard.steps()[2].description());
    let q = evop.observed_discharge(&id).expect("archive loaded");
    let (peak_idx, peak) = q.peak().expect("non-empty archive");
    let peak_time = q.time_at(peak_idx);
    println!("Biggest event: {peak:.2} m³/s at {peak_time}");

    println!("\n--- Step: \"{}\" ---", storyboard.steps()[3].description());
    let multimodal = MultimodalWidget::new(
        SensorId::new(format!("{id}-temp-1")),
        SensorId::new(format!("{id}-turb-1")),
        evop.webcam_frames(&id).expect("frames generated").to_vec(),
    );
    let at_peak = multimodal.at(evop.sos(), peak_time);
    println!(
        "At the flood peak: water {:.1} °C, turbidity {:.0} NTU, webcam frame {} (murkiness {:.2})",
        at_peak.temperature_c.unwrap_or(f64::NAN),
        at_peak.turbidity_ntu.unwrap_or(f64::NAN),
        at_peak.frame.as_ref().map(|f| f.url()).unwrap_or_default(),
        at_peak.frame.as_ref().map(|f| f.murkiness()).unwrap_or(f64::NAN),
    );

    // Step 5-7: the modelling widget (Fig. 6).
    println!("\n--- Step: \"{}\" ---", storyboard.steps()[4].description());
    let mut widget = evop.modelling_widget(&id);
    println!("Sliders available:");
    for (name, value, lo, hi) in widget.sliders() {
        println!("  {name:<16} {value:>8.3}   [{lo} … {hi}]");
    }

    println!("\n--- Step: \"{}\" ---", storyboard.steps()[5].description());
    for scenario in Scenario::all() {
        widget.select_scenario(scenario);
        widget.run(scenario.id()).expect("scenario parameters valid");
        println!("  ran {scenario}: {}", scenario.description());
    }

    println!("\n--- Step: \"{}\" ---", storyboard.steps()[6].description());
    let rows: Vec<Vec<String>> = widget
        .compare()
        .into_iter()
        .map(|(label, m)| vec![label, format!("{:.2}", m.peak_m3s), format!("{:.0}", m.volume_m3)])
        .collect();
    println!("{}", table(&["scenario", "peak m³/s", "volume m³"], &rows));

    let baseline = &widget.runs()[0].discharge;
    println!("Baseline hydrograph against the flood threshold:");
    println!("{}", line_chart(baseline, 72, 12, Some(widget.flood_threshold_m3s())));
}
