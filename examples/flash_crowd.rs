//! Drive a flash crowd against the Infrastructure Manager and watch the
//! Load Balancer cloudburst to the public cloud and retreat (experiments
//! E3/E6 live).
//!
//! ```sh
//! cargo run --example flash_crowd
//! ```

use evop::broker::{Broker, BrokerConfig, BrokerEvent, SessionId};
use evop::sim::SimDuration;

fn main() {
    let config = BrokerConfig {
        private_capacity_vcpus: 8, // a small campus cloud: 4 medium instances
        warm_pool_size: 2,         // pre-bootstrapped instances (paper §VI)
        scale_down_surplus_slots: 12,
        ..BrokerConfig::default()
    };
    let mut broker = Broker::new(config, 42);
    println!("=== EVOp flash crowd ===");
    println!("private capacity: 8 vCPUs; warm pool: 2 instances\n");

    // Let the warm pool boot.
    broker.advance(SimDuration::from_secs(240));

    // A flood warning is issued: 60 users hit the portal within a minute.
    println!("t+{:>6}: FLOOD WARNING — 60 users arrive", broker.now().as_secs());
    let mut sessions: Vec<SessionId> = Vec::new();
    for i in 0..60 {
        sessions.push(
            broker
                .connect(&format!("resident-{i}"), "topmodel")
                .expect("topmodel is in the library"),
        );
    }
    for &s in &sessions {
        let _ = broker.run_model(s, SimDuration::from_secs(60));
    }

    // Watch the control loop react minute by minute.
    for minute in 1..=20 {
        broker.advance(SimDuration::from_secs(60));
        let mix = broker.provider_mix();
        println!(
            "t+{:>6}: minute {minute:>2} | private {} | public {} | cost so far ${:.2}",
            broker.now().as_secs(),
            mix.private_instances,
            mix.public_instances,
            broker.total_cost()
        );
    }

    // The crowd disperses.
    println!("\nt+{:>6}: warning lifted — users leave", broker.now().as_secs());
    for s in sessions {
        broker.disconnect(s).expect("session exists");
    }
    for minute in 1..=15 {
        broker.advance(SimDuration::from_secs(120));
        let mix = broker.provider_mix();
        println!(
            "t+{:>6}: +{:>2} min | private {} | public {}",
            broker.now().as_secs(),
            minute * 2,
            mix.private_instances,
            mix.public_instances
        );
    }

    // Recap the operational log.
    println!("\n=== Load Balancer event log ===");
    for event in broker.events() {
        match event {
            BrokerEvent::ScaledUp { at, instance, provider, cloudburst } => {
                let burst = if *cloudburst { "  ← CLOUDBURST" } else { "" };
                println!("t+{:>6}: scale-up   {instance} on {provider}{burst}", at.as_secs());
            }
            BrokerEvent::ScaledDown { at, instance, provider } => {
                println!("t+{:>6}: scale-down {instance} on {provider}", at.as_secs());
            }
            BrokerEvent::FailureDetected { at, instance, signature } => {
                println!("t+{:>6}: FAILURE    {instance}: {signature}", at.as_secs());
            }
            BrokerEvent::SessionMigrated { at, session, from, to } => {
                println!("t+{:>6}: migrate    {session}: {from} → {to}", at.as_secs());
            }
            BrokerEvent::WarmPoolHit { at, session } => {
                println!("t+{:>6}: warm hit   {session}", at.as_secs());
            }
            BrokerEvent::SessionRequeued { at, session, from } => {
                println!("t+{:>6}: requeue    {session} (lost {from})", at.as_secs());
            }
            BrokerEvent::ProvisionFault { at, reason, retry_after } => {
                println!("t+{:>6}: fault      {reason}; backing off {retry_after}", at.as_secs());
            }
            BrokerEvent::RequestCoalesced { at, leader, follower, .. } => {
                println!("t+{:>6}: coalesce   {follower} follows {leader}", at.as_secs());
            }
        }
    }

    let by = broker.cost_by_provider();
    println!("\nFinal cost: ${:.2} ({:?})", broker.total_cost(), by);
}
