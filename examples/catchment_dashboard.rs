//! The multi-catchment status board: the at-a-glance answer to "is my
//! local area susceptible to flood after the past few days' rainfall?"
//! (paper §I) across all four study catchments.
//!
//! ```sh
//! cargo run --example catchment_dashboard
//! ```

use evop::portal::dashboard::{catchment_status, render_status_board};
use evop::Evop;

fn main() {
    let evop = Evop::builder().seed(42).days(30).all_study_catchments().build();
    let now = evop.start().plus_days(evop.days() as i64);

    println!("=== EVOp catchment status board — {now} ===\n");
    let statuses: Vec<_> =
        evop.catchments().iter().map(|c| catchment_status(evop.sos(), c, now)).collect();
    println!("{}", render_status_board(&statuses));

    for status in &statuses {
        if status.alert > evop::portal::dashboard::AlertLevel::Normal {
            println!(
                "⚠ {}: stage {:.2} m against a {:.2} m flood threshold — open the \
                 modelling widget for scenario guidance.",
                status.name,
                status.latest_stage_m.unwrap_or(f64::NAN),
                status.flood_stage_m
            );
        }
    }
    println!(
        "\n(every value above was served by the Sensor Observation Service; suspect \
         percentages come from the QC pipeline applied at ingestion)"
    );
}
