//! Terminal chart rendering — the reproduction's stand-in for the Flot
//! JavaScript plots.
//!
//! "the returned results are rendered as a hydrograph plotted using Flot"
//! (paper §V-B). Examples and experiment harnesses render the same
//! hydrographs as ASCII line charts and sparklines.

use evop_data::TimeSeries;

/// Renders a series as a multi-line ASCII chart of `width`×`height`
/// characters (plus axis labels).
///
/// Missing samples leave gaps. The vertical axis is annotated with min/max;
/// an optional horizontal `threshold` (e.g. the flood stage) is drawn as a
/// dashed line.
///
/// # Examples
///
/// ```
/// use evop_data::{TimeSeries, Timestamp};
/// use evop_portal::render::line_chart;
///
/// let series = TimeSeries::from_values(
///     Timestamp::UNIX_EPOCH,
///     3600,
///     (0..48).map(|i| (f64::from(i) / 4.0).sin().abs() * 10.0).collect(),
/// );
/// let chart = line_chart(&series, 60, 10, Some(8.0));
/// assert!(chart.lines().count() > 10);
/// ```
///
/// # Panics
///
/// Panics if `width` or `height` is zero.
pub fn line_chart(
    series: &TimeSeries,
    width: usize,
    height: usize,
    threshold: Option<f64>,
) -> String {
    assert!(width > 0 && height > 0, "chart must have positive dimensions");
    if series.is_empty() {
        return "(empty series)".to_owned();
    }

    // Resample the series to `width` columns by taking window maxima
    // (hydrograph peaks must not vanish when zoomed out).
    let columns = resample_max(series.values(), width);
    let finite: Vec<f64> = columns.iter().copied().filter(|v| !v.is_nan()).collect();
    if finite.is_empty() {
        return "(all samples missing)".to_owned();
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min).min(0.0);
    let hi_raw = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let hi = threshold.map_or(hi_raw, |t| hi_raw.max(t)).max(lo + 1e-9);

    let row_of = |v: f64| -> usize {
        let norm = (v - lo) / (hi - lo);
        ((1.0 - norm) * (height - 1) as f64).round() as usize
    };
    let threshold_row = threshold.map(row_of);

    let mut grid = vec![vec![' '; width]; height];
    if let Some(tr) = threshold_row {
        for (x, cell) in grid[tr].iter_mut().enumerate() {
            if x % 2 == 0 {
                *cell = '-';
            }
        }
    }
    for (x, &v) in columns.iter().enumerate() {
        if v.is_nan() {
            continue;
        }
        let y = row_of(v);
        grid[y][x] = '*';
        // Fill below the point lightly for readability.
        for row in grid.iter_mut().take(height).skip(y + 1) {
            if row[x] == ' ' {
                row[x] = '.';
            }
        }
    }

    let mut out = String::new();
    for (y, row) in grid.iter().enumerate() {
        let label = if y == 0 {
            format!("{hi:>9.2} ")
        } else if y == height - 1 {
            format!("{lo:>9.2} ")
        } else if let Some(t) = threshold.filter(|_| Some(y) == threshold_row) {
            format!("{t:>9.2} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&format!("{:>10} {} .. {}\n", "", series.start(), series.end()));
    out
}

/// Renders a compact one-line sparkline of the series.
///
/// # Examples
///
/// ```
/// use evop_data::{TimeSeries, Timestamp};
/// use evop_portal::render::sparkline;
///
/// let s = TimeSeries::from_values(Timestamp::UNIX_EPOCH, 60, vec![0.0, 5.0, 10.0, 2.0]);
/// let line = sparkline(&s, 4);
/// assert_eq!(line.chars().count(), 4);
/// ```
pub fn sparkline(series: &TimeSeries, width: usize) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if series.is_empty() || width == 0 {
        return String::new();
    }
    let columns = resample_max(series.values(), width);
    let finite: Vec<f64> = columns.iter().copied().filter(|v| !v.is_nan()).collect();
    if finite.is_empty() {
        return "·".repeat(width);
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    columns
        .iter()
        .map(|&v| {
            if v.is_nan() {
                '·'
            } else if hi - lo < 1e-12 {
                LEVELS[0]
            } else {
                let idx = (((v - lo) / (hi - lo)) * 7.0).round() as usize;
                LEVELS[idx.min(7)]
            }
        })
        .collect()
}

/// Renders rows as a fixed-width text table with a header.
///
/// # Panics
///
/// Panics if any row's length differs from the header's.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (cell, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {cell:<w$} |"));
        }
        line.push('\n');
        line
    };
    out.push_str(&render_row(header.to_vec(), &widths));
    let mut sep = String::from("|");
    for w in &widths {
        sep.push_str(&format!("{}|", "-".repeat(w + 2)));
    }
    sep.push('\n');
    out.push_str(&sep);
    for row in rows {
        out.push_str(&render_row(row.iter().map(String::as_str).collect(), &widths));
    }
    out
}

/// Downsamples to `width` columns by window maxima (NaN-aware).
fn resample_max(values: &[f64], width: usize) -> Vec<f64> {
    if values.len() <= width {
        let mut out = values.to_vec();
        out.resize(width.min(values.len()).max(out.len()), f64::NAN);
        return out;
    }
    (0..width)
        .map(|col| {
            let lo = col * values.len() / width;
            let hi = ((col + 1) * values.len() / width).max(lo + 1);
            let window = &values[lo..hi.min(values.len())];
            let max =
                window.iter().copied().filter(|v| !v.is_nan()).fold(f64::NEG_INFINITY, f64::max);
            if max.is_finite() {
                max
            } else {
                f64::NAN
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::Timestamp;

    fn series(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(Timestamp::UNIX_EPOCH, 3600, values)
    }

    #[test]
    fn chart_has_requested_dimensions() {
        let s = series((0..100).map(|i| f64::from(i % 17)).collect());
        let chart = line_chart(&s, 40, 8, None);
        let lines: Vec<&str> = chart.lines().collect();
        assert_eq!(lines.len(), 8 + 2); // grid + axis + time range
        assert!(lines[0].len() >= 40);
        assert!(chart.contains('*'));
    }

    #[test]
    fn threshold_line_is_drawn() {
        let s = series(vec![1.0; 50]);
        let chart = line_chart(&s, 30, 9, Some(5.0));
        assert!(chart.contains('-'), "dashed threshold expected");
        assert!(chart.contains("5.00"));
    }

    #[test]
    fn empty_and_all_missing_series() {
        assert_eq!(line_chart(&series(vec![]), 10, 5, None), "(empty series)");
        assert_eq!(line_chart(&series(vec![f64::NAN; 4]), 10, 5, None), "(all samples missing)");
    }

    #[test]
    fn peaks_survive_downsampling() {
        // One huge spike in 1000 samples must appear in a 20-column chart.
        let mut values = vec![0.1; 1000];
        values[537] = 99.0;
        let chart = line_chart(&series(values), 20, 6, None);
        assert!(chart.contains("99.00"), "peak lost: {chart}");
    }

    #[test]
    fn sparkline_shape() {
        let s = series(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);
        let line = sparkline(&s, 8);
        assert_eq!(line.chars().next(), Some('▁'));
        assert_eq!(line.chars().last(), Some('█'));
    }

    #[test]
    fn sparkline_flat_series() {
        let s = series(vec![3.0; 10]);
        assert!(sparkline(&s, 5).chars().all(|c| c == '▁'));
    }

    #[test]
    fn table_aligns_columns() {
        let t = table(
            &["scenario", "peak"],
            &[
                vec!["baseline".to_owned(), "5.21".to_owned()],
                vec!["afforestation".to_owned(), "4.4".to_owned()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[0].contains("scenario"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let _ = table(&["a", "b"], &[vec!["only-one".to_owned()]]);
    }
}
