//! The portal widgets: live graphs, the multimodal view and the modelling
//! widget.

use evop_data::sensors::WebcamFrame;
use evop_data::synthetic::RatingCurve;
use evop_data::timeseries::Aggregation;
use evop_data::{Catchment, SensorId, TimeSeries, Timestamp};
use evop_models::objectives::{flood_metrics, FloodMetrics};
use evop_models::scenarios::Scenario;
use evop_models::{Forcing, FuseConfig, FuseModel, FuseParams, Topmodel, TopmodelParams};
use evop_services::sos::{GetObservation, SosServer};

/// A live time-series widget bound to one SOS offering.
///
/// "live data (such as those fed by in situ sensors) were presented as time
/// series graphs" (paper §V-B).
///
/// # Examples
///
/// ```
/// use evop_data::{Catchment, Observation, SensorId, Timestamp};
/// use evop_portal::TimeSeriesWidget;
/// use evop_services::sos::SosServer;
///
/// let mut sos = SosServer::new();
/// let stage = Catchment::morland().default_sensors().remove(1);
/// let id = stage.id().clone();
/// sos.register_sensor(stage);
/// let t = Timestamp::from_ymd(2012, 6, 1);
/// sos.insert(Observation::new(id.clone(), t, 0.42)).unwrap();
///
/// let widget = TimeSeriesWidget::new("River level", "m", id);
/// let view = widget.view(&sos, t.plus_days(-1), t.plus_days(1)).unwrap();
/// assert_eq!(view.latest, Some(0.42));
/// ```
#[derive(Debug, Clone)]
pub struct TimeSeriesWidget {
    title: String,
    unit: String,
    sensor: SensorId,
}

/// What a time-series widget shows for a window.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesView {
    /// Widget title.
    pub title: String,
    /// Measurement unit.
    pub unit: String,
    /// The windowed series at the sensor's native 15-minute step.
    pub series: TimeSeries,
    /// The most recent value in the window, if any.
    pub latest: Option<f64>,
    /// Window maximum, if any sample exists.
    pub max: Option<f64>,
}

impl TimeSeriesWidget {
    /// Creates a widget for one sensor.
    pub fn new(
        title: impl Into<String>,
        unit: impl Into<String>,
        sensor: SensorId,
    ) -> TimeSeriesWidget {
        TimeSeriesWidget { title: title.into(), unit: unit.into(), sensor: sensor.clone() }
    }

    /// The bound sensor.
    pub fn sensor(&self) -> &SensorId {
        &self.sensor
    }

    /// Builds the widget's view for `[from, to)` from the SOS archive.
    ///
    /// # Errors
    ///
    /// Propagates SOS errors (unknown procedure, bad filter).
    pub fn view(
        &self,
        sos: &SosServer,
        from: Timestamp,
        to: Timestamp,
    ) -> Result<SeriesView, evop_services::sos::SosError> {
        let observations = sos.get_observation(&GetObservation {
            procedure: self.sensor.clone(),
            begin: from,
            end: to,
            max_results: None,
        })?;
        let irregular: evop_data::timeseries::IrregularSeries =
            observations.iter().map(|o| (o.time(), o.value())).collect();
        let step = 900u32;
        let len = ((to - from).max(0) as u64 / u64::from(step)) as usize;
        let series = irregular.to_regular(from, step, len, Aggregation::Mean);
        let latest = observations.last().map(|o| o.value());
        let max = series.peak().map(|(_, v)| v);
        Ok(SeriesView { title: self.title.clone(), unit: self.unit.clone(), series, latest, max })
    }
}

/// The multimodal sensor + webcam widget of paper Fig. 5.
///
/// "different sensors were used to plot water temperature and turbidity
/// linked with the corresponding webcam image taken roughly at the same
/// time".
#[derive(Debug, Clone)]
pub struct MultimodalWidget {
    temperature: SensorId,
    turbidity: SensorId,
    frames: Vec<WebcamFrame>,
    /// Maximum sensor/frame timestamp mismatch tolerated, seconds.
    tolerance_secs: i64,
}

/// One aligned multimodal sample.
#[derive(Debug, Clone, PartialEq)]
pub struct MultimodalView {
    /// Water temperature at (or nearest to) the hover time, °C.
    pub temperature_c: Option<f64>,
    /// Turbidity at the hover time, NTU.
    pub turbidity_ntu: Option<f64>,
    /// The webcam frame taken roughly at the same time.
    pub frame: Option<WebcamFrame>,
    /// Frame-to-hover-time offset, seconds (absolute).
    pub frame_lag_secs: Option<i64>,
}

impl MultimodalWidget {
    /// Creates the widget from two sensors and a frame archive.
    pub fn new(
        temperature: SensorId,
        turbidity: SensorId,
        frames: Vec<WebcamFrame>,
    ) -> MultimodalWidget {
        MultimodalWidget { temperature, turbidity, frames, tolerance_secs: 1800 }
    }

    /// Overrides the alignment tolerance.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is not positive.
    pub fn with_tolerance_secs(mut self, secs: i64) -> MultimodalWidget {
        assert!(secs > 0, "tolerance must be positive");
        self.tolerance_secs = secs;
        self
    }

    /// The aligned view at hover time `t`, reading sensor values from the
    /// SOS archive and the frame from the widget's archive.
    pub fn at(&self, sos: &SosServer, t: Timestamp) -> MultimodalView {
        let nearest_value = |sensor: &SensorId| -> Option<f64> {
            let obs = sos
                .get_observation(&GetObservation {
                    procedure: sensor.clone(),
                    begin: t.plus_secs(-self.tolerance_secs),
                    end: t.plus_secs(self.tolerance_secs + 1),
                    max_results: None,
                })
                .ok()?;
            obs.iter().min_by_key(|o| (t - o.time()).abs()).map(|o| o.value())
        };
        let frame = self
            .frames
            .iter()
            .min_by_key(|f| (t - f.time()).abs())
            .filter(|f| (t - f.time()).abs() <= self.tolerance_secs)
            .cloned();
        let frame_lag_secs = frame.as_ref().map(|f| (t - f.time()).abs());
        MultimodalView {
            temperature_c: nearest_value(&self.temperature),
            turbidity_ntu: nearest_value(&self.turbidity),
            frame,
            frame_lag_secs,
        }
    }
}

/// Which hydrological model the widget drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelChoice {
    /// TOPMODEL.
    Topmodel,
    /// The FUSE ensemble (named parent configurations).
    FuseEnsemble,
}

/// One completed widget run.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRun {
    /// User-facing label, e.g. `"baseline"`.
    pub label: String,
    /// The scenario that was active.
    pub scenario: Scenario,
    /// Which model produced it.
    pub model: ModelChoice,
    /// Outlet discharge, m³/s.
    pub discharge: TimeSeries,
}

/// The LEFT modelling widget of paper Fig. 6: dataset + model + scenario
/// buttons + parameter sliders + run comparison.
///
/// "This widget contains a number of different options for the user to
/// choose from: the datasets available at this location, the hydrologic
/// model to use, and the model's parameters. … The sliders default to the
/// settings for each scenario."
#[derive(Debug, Clone)]
pub struct ModellingWidget {
    catchment: Catchment,
    topmodel: Topmodel,
    forcing: Forcing,
    scenario: Scenario,
    model: ModelChoice,
    topmodel_params: TopmodelParams,
    fuse_params: FuseParams,
    runs: Vec<ModelRun>,
}

impl ModellingWidget {
    /// Creates the widget for a catchment: builds its DEM-derived TOPMODEL
    /// and stores the forcing the user will run against.
    pub fn new(catchment: Catchment, forcing: Forcing, dem_seed: u64) -> ModellingWidget {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(dem_seed);
        let dem = catchment.generate_dem(&mut rng);
        let topmodel = Topmodel::new(dem.ti_distribution(16), catchment.area_km2());
        ModellingWidget {
            catchment,
            topmodel,
            forcing,
            scenario: Scenario::Baseline,
            model: ModelChoice::Topmodel,
            topmodel_params: TopmodelParams::default(),
            fuse_params: FuseParams::default(),
            runs: Vec::new(),
        }
    }

    /// The catchment the widget is scoped to.
    pub fn catchment(&self) -> &Catchment {
        &self.catchment
    }

    /// The discharge (m³/s) corresponding to the indicative flood stage —
    /// the threshold line drawn on the hydrograph.
    pub fn flood_threshold_m3s(&self) -> f64 {
        RatingCurve::for_catchment(&self.catchment)
            .discharge_from_stage(self.catchment.flood_stage_m())
    }

    /// The active scenario.
    pub fn scenario(&self) -> Scenario {
        self.scenario
    }

    /// Selects a scenario preset; the sliders snap to the scenario's
    /// parameter values (paper: "The sliders default to the settings for
    /// each scenario").
    pub fn select_scenario(&mut self, scenario: Scenario) {
        self.scenario = scenario;
        self.topmodel_params = scenario.apply_to_topmodel(&TopmodelParams::default());
        self.fuse_params = scenario.apply_to_fuse(&FuseParams::default());
    }

    /// Selects the model to run.
    pub fn select_model(&mut self, model: ModelChoice) {
        self.model = model;
    }

    /// Current slider values for the TOPMODEL path, `(name, value, min,
    /// max)` per slider.
    pub fn sliders(&self) -> Vec<(String, f64, f64, f64)> {
        let values = self.topmodel_params.to_vector();
        TopmodelParams::ranges()
            .into_iter()
            .zip(values)
            .map(|((name, lo, hi), v)| (name.to_owned(), v, lo, hi))
            .collect()
    }

    /// Moves one TOPMODEL slider.
    ///
    /// # Errors
    ///
    /// Returns a message for an unknown name or out-of-range value — the
    /// widget's client-side validation.
    pub fn set_slider(&mut self, name: &str, value: f64) -> Result<(), String> {
        let ranges = TopmodelParams::ranges();
        let (idx, &(_, lo, hi)) = ranges
            .iter()
            .enumerate()
            .find(|(_, (n, _, _))| *n == name)
            .ok_or_else(|| format!("unknown parameter: {name}"))?;
        if !(lo..=hi).contains(&value) {
            return Err(format!("{name}={value} outside slider range [{lo}, {hi}]"));
        }
        let mut vector = self.topmodel_params.to_vector();
        vector[idx] = value;
        let candidate = TopmodelParams::from_vector(&vector);
        candidate.validate()?;
        self.topmodel_params = candidate;
        Ok(())
    }

    /// The scenario help text (paper: "detailed textual and animated help to
    /// provide background information and educate the user").
    pub fn help_text(&self) -> String {
        format!(
            "{}: {}\nModel: {:?}. Flood threshold at this outlet: {:.1} m³/s.",
            self.scenario,
            self.scenario.description(),
            self.model,
            self.flood_threshold_m3s()
        )
    }

    /// Runs the selected model under the current scenario/sliders, storing
    /// the result for comparison.
    ///
    /// # Errors
    ///
    /// Propagates model validation/run errors.
    pub fn run(&mut self, label: impl Into<String>) -> Result<&ModelRun, String> {
        let discharge = match self.model {
            ModelChoice::Topmodel => {
                self.topmodel.run(&self.topmodel_params, &self.forcing)?.discharge_m3s
            }
            ModelChoice::FuseEnsemble => {
                let configs: Vec<FuseConfig> =
                    FuseConfig::named_parents().into_iter().map(|(_, c)| c).collect();
                evop_models::fuse::run_ensemble(
                    &configs,
                    &self.fuse_params,
                    &self.forcing,
                    self.catchment.area_km2(),
                )?
                .mean
            }
        };
        let index = self.runs.len();
        self.runs.push(ModelRun {
            label: label.into(),
            scenario: self.scenario,
            model: self.model,
            discharge,
        });
        Ok(&self.runs[index])
    }

    /// All stored runs, oldest first.
    pub fn runs(&self) -> &[ModelRun] {
        &self.runs
    }

    /// Flood metrics per stored run against the catchment threshold —
    /// "allow comparison between model runs" (paper §V-B).
    pub fn compare(&self) -> Vec<(String, FloodMetrics)> {
        let threshold = self.flood_threshold_m3s();
        self.runs
            .iter()
            .filter_map(|r| flood_metrics(&r.discharge, threshold).map(|m| (r.label.clone(), m)))
            .collect()
    }

    /// Clears stored runs.
    pub fn clear_runs(&mut self) {
        self.runs.clear();
    }

    /// A FUSE model for direct use (e.g. WPS adapters).
    pub fn fuse_model(&self, config: FuseConfig) -> FuseModel {
        FuseModel::new(config, self.catchment.area_km2())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::synthetic::{TruthModel, WeatherGenerator};
    use evop_data::Observation;
    use evop_models::pet::hamon_series;

    fn morland_setup() -> (Catchment, Forcing, SosServer) {
        let catchment = Catchment::morland();
        let generator = WeatherGenerator::for_catchment(&catchment, 11);
        let start = Timestamp::from_ymd(2012, 1, 1);
        let n = 24 * 30;
        let rain = generator.rainfall(start, 3600, n);
        let temp = generator.temperature(start, 3600, n);
        let pet = hamon_series(&temp, catchment.outlet().lat());
        let forcing = Forcing::new(rain, pet);

        let mut sos = SosServer::new();
        for sensor in catchment.default_sensors() {
            sos.register_sensor(sensor);
        }
        (catchment, forcing, sos)
    }

    #[test]
    fn timeseries_widget_views_archive() {
        let (catchment, _, mut sos) = morland_setup();
        let stage = SensorId::new("morland-stage-outlet");
        let t = Timestamp::from_ymd(2012, 6, 1);
        for i in 0..8 {
            sos.insert(Observation::new(
                stage.clone(),
                t.plus_secs(i * 900),
                0.4 + 0.05 * i as f64,
            ))
            .unwrap();
        }
        let widget = TimeSeriesWidget::new("Stage", "m", stage);
        let view = widget.view(&sos, t, t.plus_hours(2)).unwrap();
        assert_eq!(view.series.len(), 8);
        assert_eq!(view.latest, Some(0.75));
        assert_eq!(view.max, Some(0.75));
        let _ = catchment;
    }

    #[test]
    fn multimodal_alignment_within_tolerance() {
        let (catchment, forcing, mut sos) = morland_setup();
        let truth = TruthModel::for_catchment(&catchment, 11);
        let temp_id = SensorId::new("morland-temp-1");
        let turb_id = SensorId::new("morland-turb-1");
        let cam_id = SensorId::new("morland-cam-1");

        let q = truth.discharge(forcing.rainfall(), forcing.pet());
        let turb = truth.turbidity(&q);
        let water_temp = truth.water_temperature(forcing.pet()); // any series works
        sos.ingest_series(&temp_id, &water_temp).unwrap();
        sos.ingest_series(&turb_id, &turb).unwrap();
        let frames = truth.webcam_frames(&cam_id, &turb, 1800);

        let widget = MultimodalWidget::new(temp_id, turb_id, frames);
        let hover = Timestamp::from_ymd(2012, 1, 10).plus_hours(14);
        let view = widget.at(&sos, hover);
        assert!(view.temperature_c.is_some());
        assert!(view.turbidity_ntu.is_some());
        let frame = view.frame.expect("frame within tolerance");
        assert!(view.frame_lag_secs.unwrap() <= 1800);
        assert!(frame.brightness() > 0.2, "2pm frame should be daylight");
    }

    #[test]
    fn multimodal_misses_outside_tolerance() {
        let (_, _, sos) = morland_setup();
        let widget = MultimodalWidget::new(
            SensorId::new("morland-temp-1"),
            SensorId::new("morland-turb-1"),
            Vec::new(),
        );
        let view = widget.at(&sos, Timestamp::from_ymd(2012, 6, 1));
        assert_eq!(view.temperature_c, None);
        assert_eq!(view.frame, None);
    }

    #[test]
    fn scenario_selection_snaps_sliders() {
        let (catchment, forcing, _) = morland_setup();
        let mut widget = ModellingWidget::new(catchment, forcing, 1);
        let baseline_srmax = widget.sliders().iter().find(|s| s.0 == "srmax").unwrap().1;
        widget.select_scenario(Scenario::Afforestation);
        let afforested_srmax = widget.sliders().iter().find(|s| s.0 == "srmax").unwrap().1;
        assert!(afforested_srmax > baseline_srmax);
        assert_eq!(widget.scenario(), Scenario::Afforestation);
    }

    #[test]
    fn slider_validation() {
        let (catchment, forcing, _) = morland_setup();
        let mut widget = ModellingWidget::new(catchment, forcing, 1);
        assert!(widget.set_slider("m", 0.05).is_ok());
        assert!(widget.set_slider("m", 99.0).is_err());
        assert!(widget.set_slider("bogus", 1.0).is_err());
    }

    #[test]
    fn runs_accumulate_and_compare() {
        let (catchment, forcing, _) = morland_setup();
        let mut widget = ModellingWidget::new(catchment, forcing, 1);
        widget.run("baseline").unwrap();
        widget.select_scenario(Scenario::CompactedSoils);
        widget.run("compacted").unwrap();
        assert_eq!(widget.runs().len(), 2);
        let comparison = widget.compare();
        assert_eq!(comparison.len(), 2);
        let baseline_peak = comparison[0].1.peak_m3s;
        let compacted_peak = comparison[1].1.peak_m3s;
        assert!(
            compacted_peak > baseline_peak,
            "compaction must raise the peak: {compacted_peak} vs {baseline_peak}"
        );
        widget.clear_runs();
        assert!(widget.runs().is_empty());
    }

    #[test]
    fn fuse_ensemble_path_runs() {
        let (catchment, forcing, _) = morland_setup();
        let mut widget = ModellingWidget::new(catchment, forcing, 1);
        widget.select_model(ModelChoice::FuseEnsemble);
        let run = widget.run("fuse-baseline").unwrap();
        assert!(run.discharge.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn help_text_educates() {
        let (catchment, forcing, _) = morland_setup();
        let mut widget = ModellingWidget::new(catchment, forcing, 1);
        widget.select_scenario(Scenario::DrainedMoorland);
        let help = widget.help_text();
        assert!(help.contains("Drained moorland"));
        assert!(help.contains("m³/s"));
    }

    #[test]
    fn flood_threshold_matches_rating() {
        let (catchment, forcing, _) = morland_setup();
        let widget = ModellingWidget::new(catchment.clone(), forcing, 1);
        assert!((widget.flood_threshold_m3s() - 0.5 * catchment.area_km2()).abs() < 1e-9);
    }
}
