//! The EVOp web portal layer.
//!
//! "The EVOp web portal was developed to ensure universal access, easy and
//! intuitive use, as well as visual presentation and interpretation of the
//! results" (paper §I). This crate implements the user-facing half of the
//! reproduction:
//!
//! * [`map`] — the interactive asset map of the LEFT landing page (paper
//!   Fig. 4): geotagged markers with spatial queries over a grid index;
//! * [`widgets`] — the portal widgets: live time-series graphs, the
//!   multimodal sensor + webcam view (Fig. 5), and the modelling widget
//!   with scenario buttons and parameter sliders (Fig. 6);
//! * [`render`] — terminal-friendly chart rendering (the Flot substitute);
//! * [`storyboard`] — storyboards, requirements and the
//!   verification/validation cycle of the project's test-driven methodology
//!   (Figs. 2–3);
//! * [`dashboard`] — the catchment status board (stage vs flood threshold,
//!   24-hour rain, QC health, alert level);
//! * [`journey`] — the stochastic stakeholder-journey simulator behind
//!   experiment E11 (the ">75 % found it useful and easy" statistic);
//! * [`processes`] — WPS process adapters exposing TOPMODEL and FUSE to
//!   the service layer.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dashboard;
pub mod journey;
pub mod map;
pub mod processes;
pub mod render;
pub mod storyboard;
pub mod widgets;

pub use map::{AssetMap, Marker, MarkerKind};
pub use storyboard::{Requirement, RequirementStatus, StoryStep, Storyboard};
pub use widgets::{ModellingWidget, MultimodalWidget, TimeSeriesWidget};
