//! WPS process adapters: the models as OGC web services.
//!
//! "more experimental models are installed and exposed as web services
//! deployed according to the OGC WPS standard" (paper §IV-D). These
//! adapters wrap TOPMODEL and FUSE as [`WpsProcess`] implementations, so
//! the portal (and any OGC client) can GetCapabilities / DescribeProcess /
//! Execute them.

use evop_data::Catchment;
use evop_models::objectives::flood_metrics;
use evop_models::scenarios::Scenario;
use evop_models::{Forcing, FuseConfig, FuseParams, Topmodel, TopmodelParams};
use evop_services::wps::{ParamSpec, ParamType, ProcessDescriptor, WpsProcess, WpsServer};
use serde_json::{json, Map, Value};

fn scenario_param() -> ParamSpec {
    ParamSpec::optional(
        "scenario",
        "Land-use scenario",
        ParamType::Choice(Scenario::all().iter().map(|s| s.id().to_owned()).collect()),
        json!(Scenario::Baseline.id()),
    )
}

fn hydrograph_json(discharge: &evop_data::TimeSeries, threshold: f64) -> Value {
    let metrics = flood_metrics(discharge, threshold);
    json!({
        "start_unix": discharge.start().as_unix(),
        "step_secs": discharge.step_secs(),
        "discharge_m3s": discharge.values(),
        "flood_threshold_m3s": threshold,
        "peak_m3s": metrics.map(|m| m.peak_m3s),
        "steps_over_threshold": metrics.map(|m| m.steps_over_threshold),
    })
}

/// TOPMODEL as a WPS process, bound to one catchment and forcing window.
///
/// Inputs: `scenario` (preset) plus the widget's slider parameters, all
/// optional with scenario-derived defaults applied first.
pub struct TopmodelProcess {
    model: Topmodel,
    forcing: Forcing,
    threshold_m3s: f64,
}

impl std::fmt::Debug for TopmodelProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopmodelProcess")
            .field("threshold_m3s", &self.threshold_m3s)
            .finish_non_exhaustive()
    }
}

impl TopmodelProcess {
    /// Builds the process for a catchment (DEM from the given seed) and a
    /// forcing window.
    pub fn new(catchment: &Catchment, forcing: Forcing, dem_seed: u64) -> TopmodelProcess {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(dem_seed);
        let dem = catchment.generate_dem(&mut rng);
        TopmodelProcess {
            model: Topmodel::new(dem.ti_distribution(16), catchment.area_km2()),
            forcing,
            threshold_m3s: 0.5 * catchment.area_km2(),
        }
    }
}

impl WpsProcess for TopmodelProcess {
    fn descriptor(&self) -> ProcessDescriptor {
        let mut inputs = vec![scenario_param()];
        for (name, lo, hi) in TopmodelParams::ranges() {
            inputs.push(ParamSpec::optional(
                name,
                format!("TOPMODEL parameter {name}"),
                ParamType::Float { min: Some(lo), max: Some(hi) },
                Value::Null,
            ));
        }
        ProcessDescriptor {
            identifier: "topmodel".to_owned(),
            title: "TOPMODEL flood simulation".to_owned(),
            abstract_text: "Saturation-excess rainfall-runoff model over the catchment's \
                            topographic-index distribution, with land-use scenario presets."
                .to_owned(),
            inputs,
            outputs: vec![("hydrograph".to_owned(), "Routed outlet discharge, m³/s".to_owned())],
        }
    }

    fn execute(&self, inputs: &Map<String, Value>) -> Result<Value, String> {
        let scenario = inputs
            .get("scenario")
            .and_then(Value::as_str)
            .and_then(Scenario::from_id)
            .unwrap_or_default();
        let mut params = scenario.apply_to_topmodel(&TopmodelParams::default());
        let mut vector = params.to_vector();
        for (i, (name, _, _)) in TopmodelParams::ranges().iter().enumerate() {
            if let Some(v) = inputs.get(*name).and_then(Value::as_f64) {
                vector[i] = v;
            }
        }
        params = TopmodelParams::from_vector(&vector);
        let output = self.model.run(&params, &self.forcing)?;
        Ok(json!({
            "scenario": scenario.id(),
            "hydrograph": hydrograph_json(&output.discharge_m3s, self.threshold_m3s),
            "max_saturated_fraction": output.saturated_fraction.peak().map(|(_, v)| v),
        }))
    }
}

/// The FUSE ensemble as a WPS process.
pub struct FuseProcess {
    configs: Vec<FuseConfig>,
    area_km2: f64,
    forcing: Forcing,
    threshold_m3s: f64,
}

impl std::fmt::Debug for FuseProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FuseProcess").field("members", &self.configs.len()).finish_non_exhaustive()
    }
}

impl FuseProcess {
    /// Builds the process for a catchment and forcing window using the
    /// named parent configurations.
    pub fn new(catchment: &Catchment, forcing: Forcing) -> FuseProcess {
        FuseProcess {
            configs: FuseConfig::named_parents().into_iter().map(|(_, c)| c).collect(),
            area_km2: catchment.area_km2(),
            forcing,
            threshold_m3s: 0.5 * catchment.area_km2(),
        }
    }
}

impl WpsProcess for FuseProcess {
    fn descriptor(&self) -> ProcessDescriptor {
        ProcessDescriptor {
            identifier: "fuse".to_owned(),
            title: "FUSE multi-model ensemble".to_owned(),
            abstract_text: "Runs the named FUSE parent structures and returns the ensemble \
                            mean hydrograph with min/max spread."
                .to_owned(),
            inputs: vec![scenario_param()],
            outputs: vec![(
                "ensemble".to_owned(),
                "Mean, lower and upper ensemble discharge, m³/s".to_owned(),
            )],
        }
    }

    fn execute(&self, inputs: &Map<String, Value>) -> Result<Value, String> {
        let scenario = inputs
            .get("scenario")
            .and_then(Value::as_str)
            .and_then(Scenario::from_id)
            .unwrap_or_default();
        let params = scenario.apply_to_fuse(&FuseParams::default());
        let ensemble =
            evop_models::fuse::run_ensemble(&self.configs, &params, &self.forcing, self.area_km2)?;
        Ok(json!({
            "scenario": scenario.id(),
            "members": ensemble.members.iter().map(|(sig, _)| sig.clone()).collect::<Vec<_>>(),
            "mean": hydrograph_json(&ensemble.mean, self.threshold_m3s),
            "lower_m3s": ensemble.lower.values(),
            "upper_m3s": ensemble.upper.values(),
        }))
    }
}

/// Registers the standard model processes for a catchment on a WPS server.
pub fn register_standard_processes(
    server: &mut WpsServer,
    catchment: &Catchment,
    forcing: &Forcing,
    dem_seed: u64,
) {
    server.register(TopmodelProcess::new(catchment, forcing.clone(), dem_seed));
    server.register(FuseProcess::new(catchment, forcing.clone()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::synthetic::WeatherGenerator;
    use evop_data::Timestamp;
    use evop_models::pet::hamon_series;

    fn setup() -> (Catchment, Forcing) {
        let catchment = Catchment::morland();
        let g = WeatherGenerator::for_catchment(&catchment, 4);
        let start = Timestamp::from_ymd(2012, 1, 1);
        let n = 24 * 20;
        let rain = g.rainfall(start, 3600, n);
        let temp = g.temperature(start, 3600, n);
        let pet = hamon_series(&temp, catchment.outlet().lat());
        (catchment, Forcing::new(rain, pet))
    }

    fn server() -> WpsServer {
        let (catchment, forcing) = setup();
        let mut server = WpsServer::new();
        register_standard_processes(&mut server, &catchment, &forcing, 1);
        server
    }

    #[test]
    fn both_processes_are_discoverable() {
        let s = server();
        assert_eq!(s.process_ids(), ["fuse", "topmodel"]);
        assert!(s.describe_process("topmodel").is_ok());
        assert!(s.describe_process("fuse").is_ok());
    }

    #[test]
    fn topmodel_executes_with_defaults() {
        let out = server().execute("topmodel", json!({})).unwrap();
        assert_eq!(out["scenario"], "baseline");
        let series = out["hydrograph"]["discharge_m3s"].as_array().unwrap();
        assert_eq!(series.len(), 24 * 20);
        assert!(out["hydrograph"]["peak_m3s"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn scenario_input_changes_output() {
        let s = server();
        let baseline = s.execute("topmodel", json!({"scenario": "baseline"})).unwrap();
        let compacted = s.execute("topmodel", json!({"scenario": "compacted-soils"})).unwrap();
        let pb = baseline["hydrograph"]["peak_m3s"].as_f64().unwrap();
        let pc = compacted["hydrograph"]["peak_m3s"].as_f64().unwrap();
        assert!(pc > pb, "compacted peak {pc} should exceed baseline {pb}");
    }

    #[test]
    fn slider_overrides_apply_and_validate() {
        let s = server();
        assert!(s.execute("topmodel", json!({"m": 0.01})).is_ok());
        // Out of declared range → WPS-level validation error.
        assert!(s.execute("topmodel", json!({"m": 5.0})).is_err());
    }

    #[test]
    fn fuse_returns_ensemble_spread() {
        let out = server().execute("fuse", json!({})).unwrap();
        assert_eq!(out["members"].as_array().unwrap().len(), 4);
        let mean = out["mean"]["discharge_m3s"].as_array().unwrap();
        let lower = out["lower_m3s"].as_array().unwrap();
        let upper = out["upper_m3s"].as_array().unwrap();
        assert_eq!(mean.len(), lower.len());
        for i in (0..mean.len()).step_by(37) {
            let (m, lo, hi) =
                (mean[i].as_f64().unwrap(), lower[i].as_f64().unwrap(), upper[i].as_f64().unwrap());
            assert!(lo <= m + 1e-12 && m <= hi + 1e-12, "spread must bracket mean");
        }
    }

    #[test]
    fn invalid_scenario_is_rejected_by_wps_validation() {
        let err = server().execute("topmodel", json!({"scenario": "volcano"})).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("scenario"), "{msg}");
    }
}
