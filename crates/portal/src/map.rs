//! The interactive asset map (paper Fig. 4).
//!
//! "an interactive mapping backdrop was developed as the LEFT landing page,
//! on top of which datasets (both static and live) and other assets (such
//! as webcam feeds) were overlaid on the map as geotagged markers. This
//! provides users with the ability to instantly identify assets of interest
//! based on geographical location" (paper §V-B). The Google Maps backdrop
//! is substituted by a pure spatial index: markers in a uniform grid with
//! bounding-box and nearest-neighbour queries.

use std::collections::BTreeMap;
use std::fmt;

use evop_data::catchment::CatchmentId;
use evop_data::geo::{BoundingBox, LatLon};
use evop_data::sensors::SensorKind;
use evop_data::Catchment;
use serde::{Deserialize, Serialize};

/// What a map marker points at.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MarkerKind {
    /// An in-situ sensor feed.
    Sensor(SensorKind),
    /// A static or historical dataset.
    Dataset,
    /// A launchable modelling widget.
    ModelWidget,
    /// A community point of interest (e.g. a flood-prone property).
    PointOfInterest,
}

impl fmt::Display for MarkerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MarkerKind::Sensor(kind) => write!(f, "sensor ({kind})"),
            MarkerKind::Dataset => f.write_str("dataset"),
            MarkerKind::ModelWidget => f.write_str("model widget"),
            MarkerKind::PointOfInterest => f.write_str("point of interest"),
        }
    }
}

/// A geotagged marker on the portal map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Marker {
    id: String,
    kind: MarkerKind,
    name: String,
    location: LatLon,
    catchment: CatchmentId,
}

impl Marker {
    /// Creates a marker.
    ///
    /// # Panics
    ///
    /// Panics if `id` is empty.
    pub fn new(
        id: impl Into<String>,
        kind: MarkerKind,
        name: impl Into<String>,
        location: LatLon,
        catchment: CatchmentId,
    ) -> Marker {
        let id = id.into();
        assert!(!id.is_empty(), "marker id must not be empty");
        Marker { id, kind, name: name.into(), location, catchment }
    }

    /// The marker id.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// What the marker points at.
    pub fn kind(&self) -> &MarkerKind {
        &self.kind
    }

    /// The display name shown in the marker popup.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where the marker sits.
    pub fn location(&self) -> LatLon {
        self.location
    }

    /// The catchment the marker belongs to.
    pub fn catchment(&self) -> &CatchmentId {
        &self.catchment
    }
}

/// Grid cell key: quantised (lat, lon).
type Cell = (i32, i32);

/// The asset map: markers plus a uniform grid spatial index.
///
/// # Examples
///
/// ```
/// use evop_data::Catchment;
/// use evop_data::geo::BoundingBox;
/// use evop_portal::AssetMap;
///
/// let morland = Catchment::morland();
/// let mut map = AssetMap::new();
/// map.add_catchment_assets(&morland);
///
/// let hits = map.markers_in(morland.bounding_box());
/// assert!(hits.len() >= 5, "sensor network should appear on the map");
/// ```
#[derive(Debug, Clone, Default)]
pub struct AssetMap {
    markers: Vec<Marker>,
    index: BTreeMap<Cell, Vec<usize>>,
}

/// Index cell size in degrees (~2.8 km of latitude).
const CELL_DEG: f64 = 0.025;

fn cell_of(p: LatLon) -> Cell {
    ((p.lat() / CELL_DEG).floor() as i32, (p.lon() / CELL_DEG).floor() as i32)
}

impl AssetMap {
    /// Creates an empty map.
    pub fn new() -> AssetMap {
        AssetMap::default()
    }

    /// Adds a marker.
    pub fn add(&mut self, marker: Marker) {
        let cell = cell_of(marker.location());
        self.markers.push(marker);
        self.index.entry(cell).or_default().push(self.markers.len() - 1);
    }

    /// Adds a catchment's standard assets: its sensor network plus a
    /// modelling-widget marker at the outlet.
    pub fn add_catchment_assets(&mut self, catchment: &Catchment) {
        for sensor in catchment.default_sensors() {
            self.add(Marker::new(
                sensor.id().as_str(),
                MarkerKind::Sensor(sensor.kind()),
                sensor.name(),
                sensor.location(),
                catchment.id().clone(),
            ));
        }
        self.add(Marker::new(
            format!("{}-flood-widget", catchment.id()),
            MarkerKind::ModelWidget,
            format!("{} flood modelling", catchment.name()),
            catchment.outlet(),
            catchment.id().clone(),
        ));
    }

    /// All markers, in insertion order.
    pub fn markers(&self) -> &[Marker] {
        &self.markers
    }

    /// Number of markers.
    pub fn len(&self) -> usize {
        self.markers.len()
    }

    /// `true` when the map is empty.
    pub fn is_empty(&self) -> bool {
        self.markers.is_empty()
    }

    /// A marker by id.
    pub fn marker(&self, id: &str) -> Option<&Marker> {
        self.markers.iter().find(|m| m.id() == id)
    }

    /// Markers inside a bounding box (the map viewport), via the grid
    /// index.
    pub fn markers_in(&self, bbox: BoundingBox) -> Vec<&Marker> {
        let lo = cell_of(bbox.south_west());
        let hi = cell_of(bbox.north_east());
        let mut hits = Vec::new();
        for lat_cell in lo.0..=hi.0 {
            for lon_cell in lo.1..=hi.1 {
                if let Some(indices) = self.index.get(&(lat_cell, lon_cell)) {
                    for &i in indices {
                        if bbox.contains(self.markers[i].location()) {
                            hits.push(&self.markers[i]);
                        }
                    }
                }
            }
        }
        hits
    }

    /// The `n` markers nearest to `point`, closest first.
    pub fn nearest(&self, point: LatLon, n: usize) -> Vec<&Marker> {
        let mut by_distance: Vec<(&Marker, f64)> =
            self.markers.iter().map(|m| (m, point.haversine_km(m.location()))).collect();
        by_distance.sort_by(|a, b| a.1.total_cmp(&b.1));
        by_distance.into_iter().take(n).map(|(m, _)| m).collect()
    }

    /// Markers belonging to a catchment.
    pub fn in_catchment(&self, catchment: &CatchmentId) -> Vec<&Marker> {
        self.markers.iter().filter(|m| m.catchment() == catchment).collect()
    }

    /// Markers of a given kind.
    pub fn of_kind(&self, kind: &MarkerKind) -> Vec<&Marker> {
        self.markers.iter().filter(|m| m.kind() == kind).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_map() -> AssetMap {
        let mut map = AssetMap::new();
        for catchment in Catchment::study_catchments() {
            map.add_catchment_assets(&catchment);
        }
        map
    }

    #[test]
    fn catchment_assets_include_widget_and_sensors() {
        let map = full_map();
        // 4 catchments × (5 sensors + 1 widget).
        assert_eq!(map.len(), 24);
        assert_eq!(map.of_kind(&MarkerKind::ModelWidget).len(), 4);
        assert!(map.marker("morland-stage-outlet").is_some());
    }

    #[test]
    fn viewport_query_scopes_to_catchment() {
        let map = full_map();
        let morland = Catchment::morland();
        let hits = map.markers_in(morland.bounding_box());
        assert_eq!(hits.len(), 6, "exactly Morland's assets");
        assert!(hits.iter().all(|m| m.catchment().as_str() == "morland"));
    }

    #[test]
    fn empty_viewport_is_empty() {
        let map = full_map();
        let sahara = BoundingBox::around(LatLon::new(23.0, 12.0), 50.0);
        assert!(map.markers_in(sahara).is_empty());
    }

    #[test]
    fn nearest_returns_closest_first() {
        let map = full_map();
        let morland_outlet = Catchment::morland().outlet();
        let nearest = map.nearest(morland_outlet, 3);
        assert_eq!(nearest.len(), 3);
        assert!(nearest.iter().all(|m| m.catchment().as_str() == "morland"));
        // First hit is at the outlet itself (stage gauge or widget).
        assert!(morland_outlet.haversine_km(nearest[0].location()) < 0.1);
    }

    #[test]
    fn index_agrees_with_linear_scan() {
        let map = full_map();
        let boxes = [
            Catchment::morland().bounding_box(),
            Catchment::eden().bounding_box(),
            BoundingBox::around(LatLon::new(54.6, -2.62), 1.0),
            BoundingBox::around(LatLon::new(55.9, -3.2), 300.0),
        ];
        for bbox in boxes {
            let indexed: Vec<&str> = map.markers_in(bbox).iter().map(|m| m.id()).collect();
            let linear: Vec<&str> = map
                .markers()
                .iter()
                .filter(|m| bbox.contains(m.location()))
                .map(|m| m.id())
                .collect();
            let mut a = indexed.clone();
            let mut b = linear.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "index diverged from linear scan");
        }
    }

    #[test]
    fn in_catchment_filter() {
        let map = full_map();
        assert_eq!(map.in_catchment(&CatchmentId::new("tarland")).len(), 6);
        assert!(map.in_catchment(&CatchmentId::new("amazon")).is_empty());
    }
}
