//! The catchment status board: at-a-glance flood awareness.
//!
//! The paper's motivating question — "is my local area susceptible to
//! flood after the past few days' rainfall?" (§I) — deserves a one-screen
//! answer. The status board condenses each catchment's live feeds into a
//! stage-vs-threshold gauge, 24-hour rainfall total, data-quality health
//! and an alert level.

use std::fmt;

use evop_data::sensors::SensorKind;
use evop_data::timeseries::Aggregation;
use evop_data::{Catchment, QualityFlag, SensorId, Timestamp};
use evop_services::sos::{GetObservation, SosServer};

use crate::render::{sparkline, table};

/// How worried the banner should look.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertLevel {
    /// Stage well below the flood threshold.
    Normal,
    /// Stage above 60 % of the flood threshold — watch the river.
    Elevated,
    /// Stage at or above the indicative flood threshold.
    Flood,
}

impl fmt::Display for AlertLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AlertLevel::Normal => "normal",
            AlertLevel::Elevated => "ELEVATED",
            AlertLevel::Flood => "FLOOD",
        };
        f.write_str(s)
    }
}

/// One catchment's condensed status.
#[derive(Debug, Clone, PartialEq)]
pub struct CatchmentStatus {
    /// Catchment display name.
    pub name: String,
    /// Latest river stage, m, if the gauge is reporting.
    pub latest_stage_m: Option<f64>,
    /// The indicative flood threshold, m.
    pub flood_stage_m: f64,
    /// Rain total over the last 24 h, mm.
    pub rain_24h_mm: f64,
    /// 48-hour stage sparkline.
    pub stage_sparkline: String,
    /// Fraction of the last 48 h of stage samples flagged suspect by QC.
    pub suspect_fraction: f64,
    /// The banner level.
    pub alert: AlertLevel,
}

/// Computes one catchment's status from the SOS archives at time `now`.
///
/// See the repository's `catchment_dashboard` example for a full board
/// over live archives.
pub fn catchment_status(sos: &SosServer, catchment: &Catchment, now: Timestamp) -> CatchmentStatus {
    let sensor_id = |kind: SensorKind| -> SensorId {
        let suffix = match kind {
            SensorKind::RainGauge => "rain-1",
            SensorKind::RiverLevel => "stage-outlet",
            SensorKind::Temperature => "temp-1",
            SensorKind::Turbidity => "turb-1",
            SensorKind::Webcam => "cam-1",
        };
        SensorId::new(format!("{}-{suffix}", catchment.id()))
    };

    let stage_obs = sos
        .get_observation(&GetObservation {
            procedure: sensor_id(SensorKind::RiverLevel),
            begin: now.plus_hours(-48),
            end: now,
            max_results: None,
        })
        .unwrap_or_default();
    let latest_stage_m = stage_obs.last().map(|o| o.value());
    let suspect = stage_obs.iter().filter(|o| o.quality() == QualityFlag::Suspect).count();
    let suspect_fraction =
        if stage_obs.is_empty() { 0.0 } else { suspect as f64 / stage_obs.len() as f64 };
    let stage_series: evop_data::timeseries::IrregularSeries =
        stage_obs.iter().map(|o| (o.time(), o.value())).collect();
    let stage_regular = stage_series.to_regular(now.plus_hours(-48), 3600, 48, Aggregation::Mean);

    let rain_24h_mm = sos
        .get_observation(&GetObservation {
            procedure: sensor_id(SensorKind::RainGauge),
            begin: now.plus_hours(-24),
            end: now,
            max_results: None,
        })
        .map(|obs| obs.iter().map(|o| o.value()).sum())
        .unwrap_or(0.0);

    let alert = match latest_stage_m {
        Some(stage) if stage >= catchment.flood_stage_m() => AlertLevel::Flood,
        Some(stage) if stage >= 0.6 * catchment.flood_stage_m() => AlertLevel::Elevated,
        _ => AlertLevel::Normal,
    };

    CatchmentStatus {
        name: catchment.name().to_owned(),
        latest_stage_m,
        flood_stage_m: catchment.flood_stage_m(),
        rain_24h_mm,
        stage_sparkline: sparkline(&stage_regular, 24),
        suspect_fraction,
        alert,
    }
}

/// Renders a multi-catchment status board as a text table.
pub fn render_status_board(statuses: &[CatchmentStatus]) -> String {
    let rows: Vec<Vec<String>> = statuses
        .iter()
        .map(|s| {
            vec![
                s.name.clone(),
                s.latest_stage_m
                    .map(|v| format!("{v:.2} / {:.2} m", s.flood_stage_m))
                    .unwrap_or_else(|| "no data".into()),
                format!("{:.1} mm", s.rain_24h_mm),
                s.stage_sparkline.clone(),
                format!("{:.0} %", s.suspect_fraction * 100.0),
                s.alert.to_string(),
            ]
        })
        .collect();
    table(
        &["catchment", "stage / flood", "rain 24 h", "stage 48 h", "suspect data", "alert"],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_data::synthetic::{TruthModel, WeatherGenerator};
    use evop_data::TimeSeries;

    fn loaded_sos(catchment: &Catchment, days: usize, seed: u64) -> (SosServer, Timestamp) {
        let mut sos = SosServer::new();
        for sensor in catchment.default_sensors() {
            sos.register_sensor(sensor);
        }
        let generator = WeatherGenerator::for_catchment(catchment, seed);
        let truth = TruthModel::for_catchment(catchment, seed);
        let start = Timestamp::from_ymd(2012, 1, 1);
        let n = days * 24;
        let rain = generator.rainfall(start, 3600, n);
        let temp = generator.temperature(start, 3600, n);
        let q = truth.discharge(&rain, &temp);
        let stage = truth.stage(&q);
        sos.ingest_series(&SensorId::new(format!("{}-rain-1", catchment.id())), &rain).unwrap();
        sos.ingest_series(&SensorId::new(format!("{}-stage-outlet", catchment.id())), &stage)
            .unwrap();
        (sos, start.plus_days(days as i64))
    }

    #[test]
    fn status_reads_live_archives() {
        let catchment = Catchment::morland();
        let (sos, now) = loaded_sos(&catchment, 10, 3);
        let status = catchment_status(&sos, &catchment, now);
        assert!(status.latest_stage_m.unwrap() > 0.0);
        assert!(status.rain_24h_mm >= 0.0);
        assert_eq!(status.stage_sparkline.chars().count(), 24);
        assert_eq!(status.suspect_fraction, 0.0);
    }

    #[test]
    fn alert_levels_follow_the_threshold() {
        let catchment = Catchment::morland();
        let mut sos = SosServer::new();
        for sensor in catchment.default_sensors() {
            sos.register_sensor(sensor);
        }
        let now = Timestamp::from_ymd(2012, 6, 2);
        let stage_id = SensorId::new("morland-stage-outlet");

        // Calm river.
        let calm = TimeSeries::from_values(now.plus_hours(-4), 3600, vec![0.3; 4]);
        sos.ingest_series(&stage_id, &calm).unwrap();
        assert_eq!(catchment_status(&sos, &catchment, now).alert, AlertLevel::Normal);

        // Rising river (> 60 % of the 1.2 m threshold).
        sos.insert(evop_data::Observation::new(stage_id.clone(), now.plus_hours(-1), 0.9)).unwrap();
        assert_eq!(catchment_status(&sos, &catchment, now).alert, AlertLevel::Elevated);

        // Over the threshold.
        sos.insert(evop_data::Observation::new(stage_id, now.plus_secs(-60), 1.4)).unwrap();
        assert_eq!(catchment_status(&sos, &catchment, now).alert, AlertLevel::Flood);
    }

    #[test]
    fn empty_archive_degrades_gracefully() {
        let catchment = Catchment::tarland();
        let sos = SosServer::new(); // nothing registered at all
        let status = catchment_status(&sos, &catchment, Timestamp::from_ymd(2012, 6, 1));
        assert_eq!(status.latest_stage_m, None);
        assert_eq!(status.alert, AlertLevel::Normal);
        assert_eq!(status.rain_24h_mm, 0.0);
    }

    #[test]
    fn board_renders_one_row_per_catchment() {
        let catchments = [Catchment::morland(), Catchment::tarland()];
        let statuses: Vec<CatchmentStatus> = catchments
            .iter()
            .map(|c| {
                let (sos, now) = loaded_sos(c, 5, 9);
                catchment_status(&sos, c, now)
            })
            .collect();
        let board = render_status_board(&statuses);
        assert_eq!(board.lines().count(), 4, "header + separator + 2 rows");
        assert!(board.contains("Morland Beck"));
        assert!(board.contains("Tarland Burn"));
    }
}
