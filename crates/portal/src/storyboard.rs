//! Storyboards, requirements and the verification/validation cycle.
//!
//! "A storyboard, i.e. a stepped illustration of a fully defined user
//! scenario, was outlined by partner domain specialists … Based on these,
//! prototypes were developed and iteratively improved and built upon
//! following processes of verification and validation" (paper §V-A,
//! Figs. 2–3). This module encodes that methodology as data: storyboards
//! own steps, steps trace to requirements, and requirements progress
//! through *draft → verified (technical) → validated (stakeholder)*.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Requirement lifecycle, in the order the paper's cycle moves them.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum RequirementStatus {
    /// Captured from the storyboard, not yet checked.
    #[default]
    Draft,
    /// Technically correct: unit/integration tests pass ("verification …
    /// occurring at the end of each development cycle").
    Verified,
    /// Confirmed useful and usable by stakeholders ("validation … carried
    /// out … with the stakeholders through evaluation workshops").
    Validated,
}

impl fmt::Display for RequirementStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RequirementStatus::Draft => "draft",
            RequirementStatus::Verified => "verified",
            RequirementStatus::Validated => "validated",
        };
        f.write_str(s)
    }
}

/// A captured requirement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Requirement {
    id: String,
    description: String,
    status: RequirementStatus,
}

impl Requirement {
    /// The requirement id, e.g. `"R3"`.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// What the requirement demands.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Current lifecycle status.
    pub fn status(&self) -> RequirementStatus {
        self.status
    }
}

/// One step of a storyboard's user journey.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StoryStep {
    description: String,
    requirements: Vec<String>,
    /// How hard the step is for a novice, `[0, 1]` (drives the journey
    /// simulator).
    difficulty: f64,
}

impl StoryStep {
    /// The step's narrative.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Requirement ids the step traces to.
    pub fn requirements(&self) -> &[String] {
        &self.requirements
    }

    /// Novice difficulty in `[0, 1]`.
    pub fn difficulty(&self) -> f64 {
        self.difficulty
    }
}

/// Errors from storyboard bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoryboardError {
    /// The requirement id is unknown.
    UnknownRequirement(String),
    /// Duplicate requirement id.
    DuplicateRequirement(String),
    /// Validation attempted before verification.
    NotYetVerified(String),
}

impl fmt::Display for StoryboardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoryboardError::UnknownRequirement(id) => write!(f, "unknown requirement: {id}"),
            StoryboardError::DuplicateRequirement(id) => write!(f, "duplicate requirement: {id}"),
            StoryboardError::NotYetVerified(id) => {
                write!(f, "requirement {id} must be verified before validation")
            }
        }
    }
}

impl std::error::Error for StoryboardError {}

/// Coverage summary: how much of the storyboard is backed by verified /
/// validated requirements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageReport {
    /// Number of steps.
    pub steps: usize,
    /// Steps whose requirements are all at least verified.
    pub steps_verified: usize,
    /// Steps whose requirements are all validated.
    pub steps_validated: usize,
}

impl CoverageReport {
    /// Fraction of steps fully verified.
    pub fn verified_fraction(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.steps_verified as f64 / self.steps as f64
        }
    }

    /// Fraction of steps fully validated.
    pub fn validated_fraction(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.steps_validated as f64 / self.steps as f64
        }
    }
}

/// A storyboard: owner, narrative steps and the requirements they trace to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Storyboard {
    title: String,
    owner: String,
    steps: Vec<StoryStep>,
    requirements: BTreeMap<String, Requirement>,
}

impl Storyboard {
    /// Creates an empty storyboard owned by `owner` (the paper's
    /// "storyboard owners" — partner domain specialists).
    pub fn new(title: impl Into<String>, owner: impl Into<String>) -> Storyboard {
        Storyboard {
            title: title.into(),
            owner: owner.into(),
            steps: Vec::new(),
            requirements: BTreeMap::new(),
        }
    }

    /// The storyboard title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The owning stakeholder group.
    pub fn owner(&self) -> &str {
        &self.owner
    }

    /// Captures a requirement.
    ///
    /// # Errors
    ///
    /// Returns [`StoryboardError::DuplicateRequirement`] for a reused id.
    pub fn add_requirement(
        &mut self,
        id: impl Into<String>,
        description: impl Into<String>,
    ) -> Result<(), StoryboardError> {
        let id = id.into();
        if self.requirements.contains_key(&id) {
            return Err(StoryboardError::DuplicateRequirement(id));
        }
        self.requirements.insert(
            id.clone(),
            Requirement { id, description: description.into(), status: RequirementStatus::Draft },
        );
        Ok(())
    }

    /// Appends a step tracing to existing requirements.
    ///
    /// # Errors
    ///
    /// Returns [`StoryboardError::UnknownRequirement`] for an untraced id.
    ///
    /// # Panics
    ///
    /// Panics if `difficulty` is outside `[0, 1]`.
    pub fn add_step<I, S>(
        &mut self,
        description: impl Into<String>,
        requirements: I,
        difficulty: f64,
    ) -> Result<(), StoryboardError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        assert!((0.0..=1.0).contains(&difficulty), "difficulty must be in [0,1]");
        let requirements: Vec<String> = requirements.into_iter().map(Into::into).collect();
        for id in &requirements {
            if !self.requirements.contains_key(id) {
                return Err(StoryboardError::UnknownRequirement(id.clone()));
            }
        }
        self.steps.push(StoryStep { description: description.into(), requirements, difficulty });
        Ok(())
    }

    /// The narrative steps in order.
    pub fn steps(&self) -> &[StoryStep] {
        &self.steps
    }

    /// All requirements, by id.
    pub fn requirements(&self) -> impl Iterator<Item = &Requirement> {
        self.requirements.values()
    }

    /// A requirement by id.
    pub fn requirement(&self, id: &str) -> Option<&Requirement> {
        self.requirements.get(id)
    }

    /// Marks a requirement technically verified (end of a development
    /// cycle).
    ///
    /// # Errors
    ///
    /// Returns [`StoryboardError::UnknownRequirement`] for a bad id.
    pub fn verify(&mut self, id: &str) -> Result<(), StoryboardError> {
        let req = self
            .requirements
            .get_mut(id)
            .ok_or_else(|| StoryboardError::UnknownRequirement(id.to_owned()))?;
        if req.status == RequirementStatus::Draft {
            req.status = RequirementStatus::Verified;
        }
        Ok(())
    }

    /// Marks a requirement stakeholder-validated (evaluation workshop).
    ///
    /// # Errors
    ///
    /// Returns [`StoryboardError::NotYetVerified`] when technical
    /// verification has not happened — the paper's cycle order — or
    /// [`StoryboardError::UnknownRequirement`].
    pub fn validate(&mut self, id: &str) -> Result<(), StoryboardError> {
        let req = self
            .requirements
            .get_mut(id)
            .ok_or_else(|| StoryboardError::UnknownRequirement(id.to_owned()))?;
        match req.status {
            RequirementStatus::Draft => Err(StoryboardError::NotYetVerified(id.to_owned())),
            RequirementStatus::Verified | RequirementStatus::Validated => {
                req.status = RequirementStatus::Validated;
                Ok(())
            }
        }
    }

    /// The coverage report for the current requirement statuses.
    pub fn coverage(&self) -> CoverageReport {
        let at_least = |step: &StoryStep, status: RequirementStatus| {
            step.requirements.iter().all(|id| self.requirements[id].status >= status)
        };
        CoverageReport {
            steps: self.steps.len(),
            steps_verified: self
                .steps
                .iter()
                .filter(|s| at_least(s, RequirementStatus::Verified))
                .count(),
            steps_validated: self
                .steps
                .iter()
                .filter(|s| at_least(s, RequirementStatus::Validated))
                .count(),
        }
    }

    /// The Local EVOp Flooding Tool storyboard of paper §V-B, as drawn with
    /// the Morland, Tarland and Machynlleth stakeholders.
    pub fn left() -> Storyboard {
        let mut sb = Storyboard::new(
            "Local EVOp Flooding Tool (LEFT)",
            "catchment stakeholders (villagers, farmers, catchment managers)",
        );
        let reqs: [(&str, &str); 9] = [
            ("R1", "Interactive map shows local assets as geotagged markers"),
            ("R2", "Live rainfall and river-level data are viewable as graphs"),
            ("R3", "Historical data can be explored over arbitrary windows"),
            ("R4", "Webcam imagery is linked to co-located sensor readings"),
            ("R5", "A flood model can be run on demand in the cloud"),
            ("R6", "Land-use scenarios are selectable as presets"),
            ("R7", "Model parameters are adjustable through sliders"),
            ("R8", "Runs are comparable against the flood-hazard threshold"),
            ("R9", "Help text explains the model and each scenario"),
        ];
        for (id, text) in reqs {
            let added = sb.add_requirement(id, text);
            debug_assert!(added.is_ok(), "fixture requirement ids are unique");
        }
        let steps: [(&str, &[&str], f64); 7] = [
            ("Open the portal and find my catchment on the map", &["R1"], 0.15),
            ("Check current rainfall and river level near my property", &["R1", "R2"], 0.25),
            ("Look back at the last big flood in the records", &["R3"], 0.35),
            ("See how murky the water looked on the webcam that day", &["R3", "R4"], 0.4),
            ("Run the flood model for my catchment", &["R5"], 0.5),
            ("Try land-use scenarios to see what changes the risk", &["R5", "R6", "R9"], 0.45),
            ("Fine-tune parameters and compare runs against the flood line", &["R7", "R8"], 0.6),
        ];
        for (text, reqs, difficulty) in steps {
            let added = sb.add_step(text, reqs.iter().copied(), difficulty);
            debug_assert!(added.is_ok(), "fixture steps only cite requirements added above");
        }
        sb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn left_storyboard_is_complete() {
        let sb = Storyboard::left();
        assert_eq!(sb.steps().len(), 7);
        assert_eq!(sb.requirements().count(), 9);
        assert!(sb.steps().iter().all(|s| !s.requirements().is_empty()));
        // Every requirement is traced by at least one step.
        for req in sb.requirements() {
            assert!(
                sb.steps().iter().any(|s| s.requirements().contains(&req.id().to_owned())),
                "{} is orphaned",
                req.id()
            );
        }
    }

    #[test]
    fn verification_then_validation() {
        let mut sb = Storyboard::left();
        assert_eq!(sb.requirement("R1").unwrap().status(), RequirementStatus::Draft);
        // Cannot validate a draft.
        assert_eq!(sb.validate("R1").unwrap_err(), StoryboardError::NotYetVerified("R1".into()));
        sb.verify("R1").unwrap();
        sb.validate("R1").unwrap();
        assert_eq!(sb.requirement("R1").unwrap().status(), RequirementStatus::Validated);
    }

    #[test]
    fn coverage_tracks_cycle_progress() {
        let mut sb = Storyboard::left();
        assert_eq!(sb.coverage().steps_verified, 0);

        for id in ["R1", "R2"] {
            sb.verify(id).unwrap();
        }
        let mid = sb.coverage();
        assert_eq!(mid.steps_verified, 2, "steps 1 and 2 are now covered");
        assert_eq!(mid.steps_validated, 0);

        let ids: Vec<String> = sb.requirements().map(|r| r.id().to_owned()).collect();
        for id in &ids {
            sb.verify(id).unwrap();
            sb.validate(id).unwrap();
        }
        let done = sb.coverage();
        assert_eq!(done.steps_verified, 7);
        assert_eq!(done.steps_validated, 7);
        assert!((done.validated_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_and_duplicate_requirements() {
        let mut sb = Storyboard::new("t", "o");
        sb.add_requirement("R1", "x").unwrap();
        assert_eq!(
            sb.add_requirement("R1", "y").unwrap_err(),
            StoryboardError::DuplicateRequirement("R1".into())
        );
        assert_eq!(
            sb.add_step("s", ["R9"], 0.5).unwrap_err(),
            StoryboardError::UnknownRequirement("R9".into())
        );
        assert_eq!(sb.verify("R9").unwrap_err(), StoryboardError::UnknownRequirement("R9".into()));
    }

    #[test]
    fn verify_is_idempotent_and_preserves_validated() {
        let mut sb = Storyboard::new("t", "o");
        sb.add_requirement("R1", "x").unwrap();
        sb.verify("R1").unwrap();
        sb.validate("R1").unwrap();
        sb.verify("R1").unwrap(); // must not regress
        assert_eq!(sb.requirement("R1").unwrap().status(), RequirementStatus::Validated);
    }

    #[test]
    #[should_panic(expected = "difficulty")]
    fn difficulty_out_of_range_panics() {
        let mut sb = Storyboard::new("t", "o");
        sb.add_requirement("R1", "x").unwrap();
        let _ = sb.add_step("s", ["R1"], 1.5);
    }
}
