//! Stochastic stakeholder-journey simulation (experiment E11).
//!
//! Human workshop participants are not redistributable, so — per the
//! substitution policy in DESIGN.md — this module models them: users of
//! varying expertise walk a storyboard's steps, failing and retrying with
//! probabilities driven by step difficulty, their own skill, and whether
//! the portal's help/education features are enabled. The cohort statistics
//! reproduce the paper's evaluation claims: ">75 % of users found the tool
//! to be both useful and easy to use" (§VI) and "awareness is not enough to
//! ensure engagement" (Fig. 7 — help off collapses completion).

use evop_sim::SimRng;
use serde::{Deserialize, Serialize};

use crate::storyboard::Storyboard;

/// The paper's four target user groups (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expertise {
    /// Domain specialists: comfortable with models and data.
    EnvironmentalScientist,
    /// Statutory-authority officers seeking 'what if' answers.
    PolicyMaker,
    /// Local land managers with deep contextual knowledge.
    Farmer,
    /// Interested members of the public.
    GeneralPublic,
}

impl Expertise {
    /// All groups.
    pub fn all() -> [Expertise; 4] {
        [
            Expertise::EnvironmentalScientist,
            Expertise::PolicyMaker,
            Expertise::Farmer,
            Expertise::GeneralPublic,
        ]
    }

    /// Tool-skill factor in `[0, 1]` used by the step-success model.
    pub fn skill(self) -> f64 {
        match self {
            Expertise::EnvironmentalScientist => 0.9,
            Expertise::PolicyMaker => 0.65,
            Expertise::Farmer => 0.55,
            Expertise::GeneralPublic => 0.45,
        }
    }
}

/// Journey-simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JourneyConfig {
    /// Whether the widget help / education features are on (the paper's
    /// "a certain degree of education is required beyond mere awareness").
    pub help_enabled: bool,
    /// Retries a user attempts before abandoning a step.
    pub max_retries: u32,
}

impl Default for JourneyConfig {
    fn default() -> JourneyConfig {
        JourneyConfig { help_enabled: true, max_retries: 2 }
    }
}

/// One simulated user's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JourneyOutcome {
    /// The user's group.
    pub expertise: Expertise,
    /// `true` if they reached the end of the storyboard.
    pub completed: bool,
    /// Steps attempted (completed or abandoned at).
    pub steps_attempted: usize,
    /// Total retries across all steps.
    pub retries: u32,
    /// Post-session survey: found the tool useful.
    pub found_useful: bool,
    /// Post-session survey: found the tool easy to use.
    pub found_easy: bool,
}

/// Aggregate cohort statistics — the numbers the paper reports from its
/// evaluation workshops.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CohortStats {
    /// Users simulated.
    pub users: usize,
    /// Fraction completing the storyboard.
    pub completion_rate: f64,
    /// Fraction reporting the tool useful.
    pub useful_rate: f64,
    /// Fraction reporting it easy to use.
    pub easy_rate: f64,
    /// Fraction reporting **both** — the paper's ">75 %" figure.
    pub useful_and_easy_rate: f64,
    /// Mean retries per user.
    pub mean_retries: f64,
}

/// Simulates one user walking the storyboard.
pub fn simulate_user(
    storyboard: &Storyboard,
    expertise: Expertise,
    config: &JourneyConfig,
    rng: &mut SimRng,
) -> JourneyOutcome {
    let help_bonus = if config.help_enabled { 0.25 } else { 0.0 };
    let mut retries = 0u32;
    let mut steps_attempted = 0usize;
    let mut completed = true;

    for step in storyboard.steps() {
        steps_attempted += 1;
        let base = (0.35 + 0.6 * expertise.skill() - 0.45 * step.difficulty() + help_bonus)
            .clamp(0.05, 0.99);
        let mut succeeded = false;
        for attempt in 0..=config.max_retries {
            // Users learn a little with each retry.
            let p = (base + 0.1 * f64::from(attempt)).min(0.99);
            if rng.chance(p) {
                succeeded = true;
                break;
            }
            retries += 1;
        }
        if !succeeded {
            completed = false;
            break;
        }
    }

    // Post-session survey model: usefulness hinges on having achieved the
    // goal; ease on how much friction (retries) was felt.
    let p_useful = if completed { 0.93 } else { 0.25 };
    let friction = f64::from(retries) / (storyboard.steps().len().max(1) as f64);
    let p_easy = if completed { (0.95 - 0.5 * friction).clamp(0.05, 0.99) } else { 0.15 };
    JourneyOutcome {
        expertise,
        completed,
        steps_attempted,
        retries,
        found_useful: rng.chance(p_useful),
        found_easy: rng.chance(p_easy),
    }
}

/// Simulates a cohort with the given `(group, count)` composition.
///
/// # Panics
///
/// Panics if the cohort is empty.
pub fn simulate_cohort(
    storyboard: &Storyboard,
    composition: &[(Expertise, usize)],
    config: &JourneyConfig,
    seed: u64,
) -> CohortStats {
    let total: usize = composition.iter().map(|(_, n)| n).sum();
    assert!(total > 0, "cohort must not be empty");
    let mut rng = SimRng::new(seed).fork("journeys");
    let mut stats = CohortStats { users: total, ..CohortStats::default() };
    let mut completed = 0usize;
    let mut useful = 0usize;
    let mut easy = 0usize;
    let mut both = 0usize;
    let mut retries = 0u64;

    for &(expertise, count) in composition {
        for _ in 0..count {
            let outcome = simulate_user(storyboard, expertise, config, &mut rng);
            completed += usize::from(outcome.completed);
            useful += usize::from(outcome.found_useful);
            easy += usize::from(outcome.found_easy);
            both += usize::from(outcome.found_useful && outcome.found_easy);
            retries += u64::from(outcome.retries);
        }
    }

    stats.completion_rate = completed as f64 / total as f64;
    stats.useful_rate = useful as f64 / total as f64;
    stats.easy_rate = easy as f64 / total as f64;
    stats.useful_and_easy_rate = both as f64 / total as f64;
    stats.mean_retries = retries as f64 / total as f64;
    stats
}

/// The workshop composition of paper §V-B: "Workshop groups mainly
/// consisted of villagers, farmers and catchment managers", with a couple
/// of scientists and officers in the room.
pub fn workshop_cohort(size_per_group: usize) -> Vec<(Expertise, usize)> {
    vec![
        (Expertise::GeneralPublic, size_per_group * 2),
        (Expertise::Farmer, size_per_group * 2),
        (Expertise::PolicyMaker, size_per_group),
        (Expertise::EnvironmentalScientist, size_per_group),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_claim_over_75_percent_useful_and_easy() {
        let sb = Storyboard::left();
        let stats = simulate_cohort(&sb, &workshop_cohort(50), &JourneyConfig::default(), 42);
        assert!(
            stats.useful_and_easy_rate > 0.75,
            "paper claims >75 %, simulated {:.1} %",
            stats.useful_and_easy_rate * 100.0
        );
        assert!(stats.useful_rate >= stats.useful_and_easy_rate);
        assert!(stats.easy_rate >= stats.useful_and_easy_rate);
    }

    #[test]
    fn education_widens_engagement() {
        // Fig. 7: awareness alone (help off) is not enough.
        let sb = Storyboard::left();
        let with_help = simulate_cohort(&sb, &workshop_cohort(50), &JourneyConfig::default(), 7);
        let without_help = simulate_cohort(
            &sb,
            &workshop_cohort(50),
            &JourneyConfig { help_enabled: false, max_retries: 2 },
            7,
        );
        assert!(
            with_help.completion_rate > without_help.completion_rate + 0.1,
            "help {:.2} vs no help {:.2}",
            with_help.completion_rate,
            without_help.completion_rate
        );
        assert!(with_help.useful_and_easy_rate > without_help.useful_and_easy_rate);
    }

    #[test]
    fn experts_outperform_novices() {
        let sb = Storyboard::left();
        let config = JourneyConfig { help_enabled: false, max_retries: 1 };
        let experts = simulate_cohort(&sb, &[(Expertise::EnvironmentalScientist, 300)], &config, 3);
        let public = simulate_cohort(&sb, &[(Expertise::GeneralPublic, 300)], &config, 3);
        assert!(experts.completion_rate > public.completion_rate + 0.1);
        assert!(experts.mean_retries < public.mean_retries);
    }

    #[test]
    fn cohort_is_deterministic_per_seed() {
        let sb = Storyboard::left();
        let a = simulate_cohort(&sb, &workshop_cohort(10), &JourneyConfig::default(), 5);
        let b = simulate_cohort(&sb, &workshop_cohort(10), &JourneyConfig::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn outcome_fields_are_consistent() {
        let sb = Storyboard::left();
        let mut rng = SimRng::new(9);
        for _ in 0..200 {
            let o = simulate_user(&sb, Expertise::Farmer, &JourneyConfig::default(), &mut rng);
            assert!(o.steps_attempted >= 1 && o.steps_attempted <= sb.steps().len());
            if o.completed {
                assert_eq!(o.steps_attempted, sb.steps().len());
            }
        }
    }

    #[test]
    #[should_panic(expected = "cohort must not be empty")]
    fn empty_cohort_panics() {
        let sb = Storyboard::left();
        let _ = simulate_cohort(&sb, &[], &JourneyConfig::default(), 1);
    }
}
