//! Rule-engine fixture tests: one positive and one negative fixture per
//! rule, driven through [`evop_lint::engine::analyze_source`] with
//! synthetic workspace paths so scoping is exercised too.

use evop_lint::engine::{analyze_source, classify, Report};

/// A library-crate file: robustness + hygiene + determinism rules apply.
const LIB: &str = "crates/sim/src/thing.rs";
/// An integration test: only determinism rules apply.
const TEST: &str = "crates/sim/tests/t.rs";
/// A binary: only determinism rules apply.
const BIN: &str = "crates/sim/src/bin/tool.rs";

fn rules_of(reports: &[Report]) -> Vec<String> {
    reports.iter().map(|r| r.rule.clone()).collect()
}

#[test]
fn classification_of_workspace_paths() {
    let lib = classify(LIB);
    assert!(lib.is_library && !lib.is_test && !lib.is_bin && !lib.is_lib_root);
    let test = classify(TEST);
    assert!(test.is_test && !test.is_bin);
    let bin = classify(BIN);
    assert!(bin.is_bin);
    assert!(classify("crates/sim/src/lib.rs").is_lib_root);
    // The bench crate is a measurement harness, not a library.
    assert!(!classify("crates/bench/src/bin/report.rs").is_library);
    // The root package's own src/ is library code; its tests are not.
    assert!(classify("src/lib.rs").is_lib_root);
    assert!(classify("tests/integration.rs").is_test);
}

#[test]
fn det_hashmap_fires_everywhere() {
    let src = "use std::collections::HashMap;\nfn f() { let s: HashSet<u8> = HashSet::new(); }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["det-hashmap"; 3]);
    // Determinism rules apply even to tests and bins.
    assert_eq!(rules_of(&analyze_source(TEST, src)), ["det-hashmap"; 3]);
    assert_eq!(rules_of(&analyze_source(BIN, src)), ["det-hashmap"; 3]);
}

#[test]
fn det_hashmap_ignores_btree_collections() {
    let src = "use std::collections::{BTreeMap, BTreeSet};\nfn f(m: &BTreeMap<u8, u8>) {}";
    assert!(analyze_source(LIB, src).is_empty());
}

#[test]
fn det_wallclock_fires_on_now_calls_only() {
    let positive = "fn f() { let t = std::time::Instant::now(); }";
    assert_eq!(rules_of(&analyze_source(LIB, positive)), ["det-wallclock"]);
    let positive = "fn f() { let t = SystemTime::now(); }";
    assert_eq!(rules_of(&analyze_source(BIN, positive)), ["det-wallclock"]);
    // Mentioning the types without reading the clock is fine.
    let negative = "fn f(t: Instant) -> SystemTime { t.into() }";
    assert!(analyze_source(LIB, negative).is_empty());
}

#[test]
fn det_rng_fires_on_ambient_entropy() {
    let src = "fn f() { let mut r = rand::thread_rng(); }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["det-rng"]);
    let src = "fn f() -> f64 { rand::random() }";
    assert_eq!(rules_of(&analyze_source(TEST, src)), ["det-rng"]);
    let src = "fn f() { let r = SmallRng::from_entropy(); }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["det-rng"]);
}

#[test]
fn det_rng_ignores_seeded_rngs_and_plain_random_idents() {
    let src = "fn f(seed: u64) { let r = SmallRng::seed_from_u64(seed); let random = 3; }";
    assert!(analyze_source(LIB, src).is_empty());
}

#[test]
fn rob_unwrap_fires_only_in_library_code() {
    let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["rob-unwrap"]);
    assert!(analyze_source(TEST, src).is_empty());
    assert!(analyze_source(BIN, src).is_empty());
    assert!(analyze_source("crates/bench/src/lib.rs", src).iter().all(|r| r.rule != "rob-unwrap"));
}

#[test]
fn rob_unwrap_requires_a_method_call_shape() {
    // `unwrap` as a free identifier (a local, a field) is not the method.
    let src = "fn f() { let unwrap = 1; let y = unwrap + 1; }";
    assert!(analyze_source(LIB, src).is_empty());
}

#[test]
fn rob_unwrap_skips_cfg_test_blocks() {
    let src = "fn prod(x: Option<u8>) -> u8 { x.unwrap() }\n\
               #[cfg(test)]\n\
               mod tests {\n\
                   fn t(x: Option<u8>) -> u8 { x.unwrap() }\n\
               }\n";
    let reports = analyze_source(LIB, src);
    assert_eq!(rules_of(&reports), ["rob-unwrap"]);
    assert_eq!(reports[0].line, 1);
}

#[test]
fn rob_unwrap_does_not_exempt_cfg_not_test() {
    let src = "#[cfg(not(test))]\nfn prod(x: Option<u8>) -> u8 { x.unwrap() }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["rob-unwrap"]);
}

#[test]
fn rob_expect_fires_only_in_library_code() {
    let src = "fn f(x: Option<u8>) -> u8 { x.expect(\"present\") }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["rob-expect"]);
    assert!(analyze_source(TEST, src).is_empty());
}

#[test]
fn rob_panic_covers_the_panic_family() {
    let src = "fn a() { panic!(\"boom\") }\nfn b() { todo!() }\nfn c() { unimplemented!() }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["rob-panic"; 3]);
    assert!(analyze_source(BIN, src).is_empty());
}

#[test]
fn rob_panic_ignores_assert_and_unreachable() {
    // assert!/unreachable! state invariants; they are deliberately not
    // flagged.
    let src = "fn f(x: u8) { assert!(x > 0); if x == 255 { unreachable!() } }";
    assert!(analyze_source(LIB, src).is_empty());
}

#[test]
fn rob_float_eq_fires_on_float_literal_comparisons() {
    let src = "fn f(x: f64) -> bool { x == 0.0 }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["rob-float-eq"]);
    let src = "fn f(x: f64) -> bool { 1.5 != x }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["rob-float-eq"]);
}

#[test]
fn rob_float_eq_ignores_integers_and_orderings() {
    let src = "fn f(x: u8, y: f64) -> bool { x == 1 && y < 2.0 && y >= 0.5 }";
    assert!(analyze_source(LIB, src).is_empty());
}

#[test]
fn hyg_forbid_unsafe_checks_library_crate_roots() {
    let missing = "pub fn f() {}";
    assert_eq!(rules_of(&analyze_source("crates/sim/src/lib.rs", missing)), ["hyg-forbid-unsafe"]);
    let present = "#![forbid(unsafe_code)]\npub fn f() {}";
    assert!(analyze_source("crates/sim/src/lib.rs", present).is_empty());
    // Non-root files and non-library crates are not checked.
    assert!(analyze_source(LIB, missing).is_empty());
    assert!(analyze_source("crates/bench/src/lib.rs", missing).is_empty());
}

#[test]
fn hyg_debug_print_fires_in_library_code_only() {
    let src = "fn f(x: u8) { println!(\"{x}\"); dbg!(x); }";
    assert_eq!(rules_of(&analyze_source(LIB, src)), ["hyg-debug-print"; 2]);
    // Binaries print to talk to their user; tests print to debug.
    assert!(analyze_source(BIN, src).is_empty());
    assert!(analyze_source(TEST, src).is_empty());
}

#[test]
fn allow_directive_suppresses_on_own_and_next_line() {
    let src = "// evop-lint: allow(rob-unwrap) -- fixture checks suppression\n\
               fn f(x: Option<u8>) -> u8 { x.unwrap() }";
    assert!(analyze_source(LIB, src).is_empty());
    let trailing =
        "fn f(x: Option<u8>) -> u8 { x.unwrap() } // evop-lint: allow(rob-unwrap) -- same line";
    assert!(analyze_source(LIB, trailing).is_empty());
}

#[test]
fn allow_directive_does_not_reach_past_the_next_line() {
    let src = "// evop-lint: allow(rob-unwrap) -- too far away\n\n\
               fn f(x: Option<u8>) -> u8 { x.unwrap() }";
    let mut rules = rules_of(&analyze_source(LIB, src));
    rules.sort_unstable();
    // The unwrap still fires, and the now-unused directive is flagged.
    assert_eq!(rules, ["hyg-directive", "rob-unwrap"]);
}

#[test]
fn allow_directive_only_suppresses_its_named_rule() {
    let src = "// evop-lint: allow(rob-expect) -- wrong rule on purpose\n\
               fn f(x: Option<u8>) -> u8 { x.unwrap() }";
    let mut rules = rules_of(&analyze_source(LIB, src));
    rules.sort_unstable();
    assert_eq!(rules, ["hyg-directive", "rob-unwrap"]);
}

#[test]
fn hyg_directive_flags_unknown_rules_and_missing_reasons() {
    let unknown = "// evop-lint: allow(no-such-rule) -- whatever\nfn f() {}";
    let reports = analyze_source(LIB, unknown);
    assert_eq!(rules_of(&reports), ["hyg-directive"]);
    assert!(reports[0].message.contains("unknown rule"));

    let reasonless = "// evop-lint: allow(rob-unwrap)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }";
    let mut rules = rules_of(&analyze_source(LIB, reasonless));
    rules.sort_unstable();
    // Without a reason the directive suppresses nothing and is itself
    // reported.
    assert_eq!(rules, ["hyg-directive", "rob-unwrap"]);
}

#[test]
fn reports_carry_location_and_excerpt() {
    let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}";
    let reports = analyze_source(LIB, src);
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!((r.path.as_str(), r.line), (LIB, 2));
    assert_eq!(r.excerpt, "x.unwrap()");
    assert!(!r.message.is_empty());
}
