//! Call-graph construction tests, including the golden-pinned JSON for a
//! small fixture crate. The golden file freezes node identity, edge
//! resolution and serialisation order: any change to parser or resolver
//! behaviour shows up as a readable JSON diff here before it shows up as
//! a mysterious baseline shift on the real tree.

use evop_lint::graph;

/// A self-contained mini crate exercising the resolver's main moves:
/// free fn → free fn, method → method, `Type::assoc` paths, and a
/// hazard site of each kind.
const MINI_CRATE: &str = "#![forbid(unsafe_code)]\n\
pub struct Engine {\n\
    state: u32,\n\
}\n\
\n\
impl Engine {\n\
    pub fn new(seed: u32) -> Engine {\n\
        Engine { state: mix(seed) }\n\
    }\n\
    pub fn step(&mut self) -> u32 {\n\
        self.state = mix(self.state);\n\
        self.emit()\n\
    }\n\
    fn emit(&self) -> u32 {\n\
        let cell = std::cell::Cell::new(self.state);\n\
        cell.get()\n\
    }\n\
}\n\
\n\
fn mix(x: u32) -> u32 {\n\
    let t = std::time::Instant::now();\n\
    x ^ (t.elapsed().subsec_nanos())\n\
}\n\
\n\
pub fn run(seed: u32, n: u32) -> u32 {\n\
    let mut e = Engine::new(seed);\n\
    let mut last = 0;\n\
    let mut i = 0;\n\
    while i < n {\n\
        last = e.step();\n\
        i += 1;\n\
    }\n\
    checked(last)\n\
}\n\
\n\
fn checked(x: u32) -> u32 {\n\
    Some(x).unwrap()\n\
}\n";

fn mini_graph() -> graph::Graph {
    graph::build(&[("crates/mini/src/lib.rs".to_owned(), MINI_CRATE.to_owned())])
}

#[test]
fn mini_crate_graph_matches_the_golden_json() {
    let g = mini_graph();
    let mut actual = serde_json::to_string_pretty(&g.to_json()).expect("graph serialises");
    actual.push('\n');
    let golden = include_str!("golden/mini_crate_graph.json");
    // Always drop the current form where an intentional update can copy
    // it from: target/tmp/mini_crate_graph.actual.json.
    let dump =
        std::path::PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("mini_crate_graph.actual.json");
    std::fs::write(&dump, &actual).expect("dump actual graph json");
    assert_eq!(
        actual,
        golden,
        "graph JSON drifted from the golden; if intentional, copy {} over \
         crates/lint/tests/golden/mini_crate_graph.json",
        dump.display()
    );
}

#[test]
fn nodes_are_sorted_by_file_and_line() {
    let g = mini_graph();
    let keys: Vec<(String, u32)> = g.nodes.iter().map(|n| (n.file.clone(), n.line)).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn resolver_links_methods_paths_and_free_fns() {
    let g = mini_graph();
    let id = |label: &str| {
        g.nodes.iter().position(|n| n.label() == label).unwrap_or_else(|| panic!("no node {label}"))
    };
    let has_edge = |a: &str, b: &str| g.succ[id(a)].contains(&id(b));
    assert!(has_edge("Engine::new", "mix"), "free-fn call from an assoc fn");
    assert!(has_edge("Engine::step", "mix"), "free-fn call from a method");
    assert!(has_edge("Engine::step", "Engine::emit"), "method call on self");
    assert!(has_edge("run", "Engine::new"), "Type::assoc path call");
    assert!(has_edge("run", "Engine::step"), "method call on a value");
    assert!(has_edge("run", "checked"), "free fn to free fn");
    assert!(!has_edge("mix", "checked"), "no fabricated edges");
}

#[test]
fn hazard_sites_land_on_their_nodes() {
    let g = mini_graph();
    let node = |label: &str| g.nodes.iter().find(|n| n.label() == label).unwrap();
    assert_eq!(node("mix").det_sources.len(), 1, "Instant::now in mix");
    assert_eq!(node("checked").panic_sites.len(), 1, "unwrap in checked");
    assert_eq!(node("Engine::emit").par_sites.len(), 1, "Cell in emit");
    assert!(node("run").panic_sites.is_empty());
}

#[test]
fn dot_output_is_valid_graphviz_shape() {
    let g = mini_graph();
    let dot = g.to_dot();
    assert!(dot.starts_with("digraph evop {"));
    assert!(dot.trim_end().ends_with('}'));
    assert!(dot.contains("subgraph \"cluster_mini\""));
    assert!(dot.contains("label=\"Engine::step\""));
    assert!(dot.contains(" -> "), "at least one edge rendered");
    // Hazard colouring: mix reads the clock (orange), checked unwraps (red).
    assert!(dot.contains("color=red"));
    assert!(dot.contains("color=orange"));
}

#[test]
fn bfs_paths_reconstruct_call_chains() {
    let g = mini_graph();
    let entry = g.nodes.iter().position(|n| n.label() == "run").unwrap();
    let target = g.nodes.iter().position(|n| n.label() == "mix").unwrap();
    let pred = g.bfs(&[entry]);
    assert_ne!(pred[target], usize::MAX, "mix is reachable from run");
    let path = g.path_to(&pred, target);
    assert_eq!(path.first(), Some(&entry));
    assert_eq!(path.last(), Some(&target));
    assert!(path.len() >= 3, "run reaches mix only through Engine: {path:?}");
}
