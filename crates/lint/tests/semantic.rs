//! Fixture tests for the interprocedural analyses: each one seeds a
//! violation and asserts the analysis catches it, then shows the clean
//! variant passes. Fixtures are inline `(path, source)` pairs fed to
//! [`analyze_files`] — the same entry point the workspace walk uses —
//! so crate classification and call-graph behaviour match production.

use evop_lint::{analyze_files, Report};

fn run(files: &[(&str, &str)]) -> Vec<Report> {
    let owned: Vec<(String, String)> =
        files.iter().map(|(p, s)| ((*p).to_owned(), (*s).to_owned())).collect();
    analyze_files(&owned)
}

fn of_rule<'a>(reports: &'a [Report], rule: &str) -> Vec<&'a Report> {
    reports.iter().filter(|r| r.rule == rule).collect()
}

// ---------------------------------------------------------------- reach-panic

#[test]
fn reach_panic_flags_transitive_panic_behind_a_pub_serving_api() {
    let reports = run(&[(
        "crates/broker/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn serve(req: u32) -> u32 {\n\
             decode(req)\n\
         }\n\
         fn decode(req: u32) -> u32 {\n\
             Some(req).unwrap()\n\
         }\n",
    )]);
    let reach = of_rule(&reports, "reach-panic");
    assert_eq!(reach.len(), 1, "one hazardous entry: {reports:#?}");
    assert_eq!(reach[0].path, "crates/broker/src/lib.rs");
    assert_eq!(reach[0].line, 2, "reported at the entry's definition");
    assert!(reach[0].message.contains("serve"), "names the entry: {}", reach[0].message);
    assert!(reach[0].message.contains("decode"), "names the chain: {}", reach[0].message);
    assert!(reach[0].message.contains(".unwrap"), "names the hazard: {}", reach[0].message);
    // The local finding at the panic site still fires independently.
    assert_eq!(of_rule(&reports, "rob-unwrap").len(), 1);
}

#[test]
fn reach_panic_is_transitive_only_local_panics_are_rob_rules() {
    let reports = run(&[(
        "crates/cache/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn serve(req: u32) -> u32 {\n\
             Some(req).unwrap()\n\
         }\n",
    )]);
    assert!(of_rule(&reports, "reach-panic").is_empty(), "depth-0 is rob-unwrap's job");
    assert_eq!(of_rule(&reports, "rob-unwrap").len(), 1);
}

#[test]
fn reach_panic_crosses_crate_boundaries() {
    let reports = run(&[
        (
            "crates/broker/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             use evop_cache::Cache;\n\
             pub fn lookup(c: &Cache) -> u32 {\n\
                 c.fetch()\n\
             }\n",
        ),
        (
            "crates/cache/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub struct Cache {\n\
                 slot: Option<u32>,\n\
             }\n\
             impl Cache {\n\
                 pub fn fetch(&self) -> u32 {\n\
                     self.slot.expect(\"slot filled\")\n\
                 }\n\
             }\n",
        ),
    ]);
    let reach = of_rule(&reports, "reach-panic");
    // `broker::lookup` reaches the expect transitively; `cache::fetch`
    // holds it locally (rob-expect), so only broker gets reach-panic.
    assert_eq!(reach.len(), 1, "{reports:#?}");
    assert_eq!(reach[0].path, "crates/broker/src/lib.rs");
    assert!(reach[0].message.contains("Cache::fetch"), "{}", reach[0].message);
    assert!(reach[0].message.contains("crates/cache/src/lib.rs"), "{}", reach[0].message);
}

#[test]
fn reach_panic_passes_clean_error_propagation() {
    let reports = run(&[(
        "crates/broker/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn serve(req: u32) -> Result<u32, String> {\n\
             decode(req)\n\
         }\n\
         fn decode(req: u32) -> Result<u32, String> {\n\
             req.checked_mul(2).ok_or_else(|| String::from(\"overflow\"))\n\
         }\n",
    )]);
    assert!(of_rule(&reports, "reach-panic").is_empty(), "{reports:#?}");
    assert!(of_rule(&reports, "rob-unwrap").is_empty());
}

#[test]
fn reach_panic_ignores_non_serving_crates() {
    // The same shape in a non-serving crate (models) is not an entry.
    let reports = run(&[(
        "crates/obs/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn observe(x: u32) -> u32 {\n\
             inner(x)\n\
         }\n\
         fn inner(x: u32) -> u32 {\n\
             Some(x).unwrap()\n\
         }\n",
    )]);
    assert!(of_rule(&reports, "reach-panic").is_empty());
    assert_eq!(of_rule(&reports, "rob-unwrap").len(), 1, "local rule still applies");
}

#[test]
fn reach_panic_respects_allow_directives_at_the_entry() {
    let reports = run(&[(
        "crates/broker/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         // evop-lint: allow(reach-panic) -- startup-only path, panics audited\n\
         pub fn serve(req: u32) -> u32 {\n\
             decode(req)\n\
         }\n\
         fn decode(req: u32) -> u32 {\n\
             Some(req).unwrap()\n\
         }\n",
    )]);
    assert!(of_rule(&reports, "reach-panic").is_empty(), "{reports:#?}");
    // The directive was consumed: no dead-directive hygiene finding.
    assert!(of_rule(&reports, "hyg-directive").is_empty());
}

// ------------------------------------------------------------------ det-taint

#[test]
fn det_taint_flags_wallclock_reachable_from_the_core_harness() {
    let reports = run(&[
        (
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn e1_report() -> u64 {\n\
                 evop_data::stamp()\n\
             }\n",
        ),
        (
            "crates/data/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn stamp() -> u64 {\n\
                 let t = std::time::Instant::now();\n\
                 t.elapsed().as_nanos() as u64\n\
             }\n",
        ),
    ]);
    let taint = of_rule(&reports, "det-taint");
    assert_eq!(taint.len(), 1, "{reports:#?}");
    assert_eq!(taint[0].path, "crates/data/src/lib.rs", "reported at the source — the fix site");
    assert_eq!(taint[0].line, 3);
    assert!(taint[0].message.contains("Instant::now()"), "{}", taint[0].message);
    assert!(taint[0].message.contains("e1_report"), "names the harness: {}", taint[0].message);
    // The token-level rule fires at the same site, independently.
    assert_eq!(of_rule(&reports, "det-wallclock").len(), 1);
}

#[test]
fn det_taint_needs_reachability_not_just_a_source() {
    let reports = run(&[
        (
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn e1_report() -> u64 {\n\
                 42\n\
             }\n",
        ),
        (
            "crates/data/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn stamp() -> u64 {\n\
                 let t = std::time::Instant::now();\n\
                 t.elapsed().as_nanos() as u64\n\
             }\n",
        ),
    ]);
    assert!(of_rule(&reports, "det-taint").is_empty(), "unreachable source must not taint");
    assert_eq!(of_rule(&reports, "det-wallclock").len(), 1, "the local rule still fires");
}

#[test]
fn det_taint_passes_seeded_deterministic_code() {
    let reports = run(&[
        (
            "crates/core/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn e1_report(seed: u64) -> u64 {\n\
                 evop_data::mix(seed)\n\
             }\n",
        ),
        (
            "crates/data/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn mix(seed: u64) -> u64 {\n\
                 seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)\n\
             }\n",
        ),
    ]);
    assert!(of_rule(&reports, "det-taint").is_empty());
    assert!(of_rule(&reports, "det-wallclock").is_empty());
}

// ------------------------------------------------------------------ par-ready

#[test]
fn par_ready_flags_rc_reachable_from_the_sim_event_loop() {
    let reports = run(&[(
        "crates/sim/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn run_event_loop(n: u32) -> u32 {\n\
             tick(n)\n\
         }\n\
         fn tick(n: u32) -> u32 {\n\
             let shared = std::rc::Rc::new(n);\n\
             *shared\n\
         }\n",
    )]);
    let par = of_rule(&reports, "par-ready");
    assert_eq!(par.len(), 1, "{reports:#?}");
    assert_eq!(par[0].line, 6, "reported at the hazard site");
    assert!(par[0].message.contains("Rc<..>"), "{}", par[0].message);
    assert!(par[0].message.contains("run_event_loop"), "names the entry: {}", par[0].message);
}

#[test]
fn par_ready_flags_refcell_in_models_monte_carlo_paths() {
    let reports = run(&[(
        "crates/models/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         use std::cell::RefCell;\n\
         pub fn monte_carlo(n: u32) -> u32 {\n\
             let acc = RefCell::new(0u32);\n\
             *acc.borrow_mut() += n;\n\
             let total = *acc.borrow();\n\
             total\n\
         }\n",
    )]);
    let par = of_rule(&reports, "par-ready");
    assert_eq!(par.len(), 1, "{reports:#?}");
    assert!(par[0].message.contains("RefCell<..>"), "{}", par[0].message);
}

#[test]
fn par_ready_flags_static_mut_in_parallel_crates_unconditionally() {
    let reports = run(&[(
        "crates/sim/src/clock.rs",
        "static mut TICKS: u64 = 0;\n\
         pub fn noop() {}\n",
    )]);
    let par = of_rule(&reports, "par-ready");
    assert_eq!(par.len(), 1, "{reports:#?}");
    assert_eq!(par[0].line, 1);
    assert!(par[0].message.contains("static mut TICKS"), "{}", par[0].message);
}

#[test]
fn par_ready_passes_arc_based_sharing_and_other_crates() {
    let reports = run(&[
        (
            "crates/sim/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn run_event_loop(n: u32) -> u32 {\n\
                 let shared = std::sync::Arc::new(n);\n\
                 *shared\n\
             }\n",
        ),
        // Rc outside the parallel crates is nobody's hazard (yet).
        (
            "crates/portal/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn render(n: u32) -> u32 {\n\
                 let local = std::rc::Rc::new(n);\n\
                 *local\n\
             }\n",
        ),
    ]);
    assert!(of_rule(&reports, "par-ready").is_empty(), "{reports:#?}");
}

// ----------------------------------------------------- combined-walk plumbing

#[test]
fn hazards_inside_cfg_test_do_not_reach() {
    let reports = run(&[(
        "crates/broker/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         pub fn serve(req: u32) -> u32 {\n\
             req\n\
         }\n\
         #[cfg(test)]\n\
         mod tests {\n\
             pub fn helper() -> u32 {\n\
                 super::serve(1);\n\
                 Some(1).unwrap()\n\
             }\n\
         }\n",
    )]);
    assert!(of_rule(&reports, "reach-panic").is_empty(), "{reports:#?}");
    assert!(of_rule(&reports, "rob-unwrap").is_empty());
}

#[test]
fn findings_remain_sorted_by_path_line_rule() {
    let reports = run(&[
        (
            "crates/broker/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn serve(req: u32) -> u32 {\n\
                 decode(req)\n\
             }\n\
             fn decode(req: u32) -> u32 {\n\
                 Some(req).unwrap()\n\
             }\n",
        ),
        (
            "crates/sim/src/lib.rs",
            "#![forbid(unsafe_code)]\n\
             pub fn run_event_loop(n: u32) -> u32 {\n\
                 let shared = std::rc::Rc::new(n);\n\
                 *shared\n\
             }\n",
        ),
    ]);
    let keys: Vec<(String, u32, String)> =
        reports.iter().map(|r| (r.path.clone(), r.line, r.rule.clone())).collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}
