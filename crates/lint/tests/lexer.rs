//! Lexer soundness tests: the rule engine is only as good as the lexer's
//! ability to keep rule patterns from firing inside comments and strings.

use evop_lint::lexer::{lex, TokenKind};

/// Idents in the token stream, in order.
fn idents(src: &str) -> Vec<String> {
    lex(src).tokens.into_iter().filter(|t| t.kind == TokenKind::Ident).map(|t| t.text).collect()
}

#[test]
fn nested_block_comments_are_skipped_entirely() {
    let src = "/* outer /* inner */ still a comment */ fn after() {}";
    assert_eq!(idents(src), ["fn", "after"]);
}

#[test]
fn unterminated_block_comment_consumes_to_eof() {
    let src = "fn before() {} /* never closed\nfn hidden() {}";
    assert_eq!(idents(src), ["fn", "before"]);
}

#[test]
fn raw_string_bodies_are_not_code() {
    // The raw string contains `.unwrap()` and a `//` — neither may leak
    // into the token stream or eat the rest of the line.
    let src = r##"let s = r#"x.unwrap() // still string"#; let tail = 1;"##;
    assert_eq!(idents(src), ["let", "s", "let", "tail"]);
}

#[test]
fn raw_strings_with_deeper_hash_fences() {
    let src = r###"let s = r##"contains "# inside"##; let tail = 1;"###;
    assert_eq!(idents(src), ["let", "s", "let", "tail"]);
}

#[test]
fn byte_and_raw_byte_strings_are_literals() {
    let src = r##"let a = b"unwrap()"; let b = br#"panic!()"#; let tail = 1;"##;
    assert_eq!(idents(src), ["let", "a", "let", "b", "let", "tail"]);
}

#[test]
fn string_embedded_slashes_do_not_start_a_comment() {
    let src = "let url = \"http://example.com\"; let tail = 1;";
    assert_eq!(idents(src), ["let", "url", "let", "tail"]);
}

#[test]
fn string_escapes_do_not_end_the_string_early() {
    let src = "let s = \"quote \\\" then unwrap()\"; let tail = 1;";
    assert_eq!(idents(src), ["let", "s", "let", "tail"]);
}

#[test]
fn char_literals_versus_lifetimes() {
    let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
    let lexed = lex(src);
    let lifetimes: Vec<_> =
        lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).map(|t| &t.text).collect();
    assert_eq!(lifetimes, ["a", "a"]);
    assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(), 1);
}

#[test]
fn escaped_char_literals_lex_as_one_token() {
    let src = r"let nl = '\n'; let q = '\''; let u = '\u{1F600}'; let tail = 1;";
    let lexed = lex(src);
    assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(), 3);
    assert_eq!(idents(src), ["let", "nl", "let", "q", "let", "u", "let", "tail"]);
}

#[test]
fn doc_comments_hide_their_examples() {
    // Doc-test examples routinely use `.unwrap()`; they are prose here.
    let src = "/// let v = parse(input).unwrap();\n//! also.unwrap()\nfn real() {}";
    assert_eq!(idents(src), ["fn", "real"]);
}

#[test]
fn raw_identifiers_lex_without_the_sigil() {
    let src = "let r#type = 1;";
    assert_eq!(idents(src), ["let", "type"]);
}

#[test]
fn floats_are_single_tokens_and_eq_operators_join() {
    let lexed = lex("if x == 1.5 { y != 2e3 }");
    let floats: Vec<_> =
        lexed.tokens.iter().filter(|t| t.kind == TokenKind::Float).map(|t| &t.text).collect();
    assert_eq!(floats, ["1.5", "2e3"]);
    assert!(lexed.tokens.iter().any(|t| t.is_punct("==")));
    assert!(lexed.tokens.iter().any(|t| t.is_punct("!=")));
}

#[test]
fn method_call_on_int_is_not_a_float() {
    let lexed = lex("let y = 1.max(2);");
    assert!(lexed.tokens.iter().all(|t| t.kind != TokenKind::Float));
    assert!(lexed.tokens.iter().any(|t| t.is_ident("max")));
}

#[test]
fn token_lines_are_one_based_and_track_newlines() {
    let lexed = lex("fn a() {}\n\nfn b() {}");
    let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
    assert_eq!(b.line, 3);
}

#[test]
fn directives_parse_rule_and_reason() {
    let src = "// evop-lint: allow(det-wallclock) -- bench wants wall time\nlet t = 0;";
    let lexed = lex(src);
    assert_eq!(lexed.directives.len(), 1);
    let d = &lexed.directives[0];
    assert_eq!(d.line, 1);
    assert_eq!(d.rule, "det-wallclock");
    assert_eq!(d.reason, "bench wants wall time");
}

#[test]
fn directive_without_reason_still_parses_with_empty_reason() {
    let lexed = lex("// evop-lint: allow(rob-unwrap)\nx.unwrap();");
    assert_eq!(lexed.directives.len(), 1);
    assert_eq!(lexed.directives[0].reason, "");
}

#[test]
fn directive_must_lead_the_comment() {
    // Prose that merely *mentions* the syntax (as the linter's own docs
    // do) must not parse as a directive.
    let src = "// use `evop-lint: allow(rob-unwrap) -- why` to suppress\nfn f() {}";
    assert!(lex(src).directives.is_empty());
}

#[test]
fn shebang_line_is_skipped() {
    // cargo-script style files open with a shebang; its body (which may
    // contain quotes) is not Rust tokens.
    let src = "#!/usr/bin/env -S cargo -Zscript 'q'\nfn real() {}";
    assert_eq!(idents(src), ["fn", "real"]);
    let lexed = lex(src);
    assert_eq!(lexed.tokens.iter().find(|t| t.is_ident("fn")).unwrap().line, 2);
}

#[test]
fn inner_attribute_is_not_a_shebang() {
    let src = "#![forbid(unsafe_code)]\nfn real() {}";
    assert_eq!(idents(src), ["forbid", "unsafe_code", "fn", "real"]);
}

#[test]
fn raw_strings_with_hashes_inside_nested_block_comments() {
    // Comment nesting is purely lexical: a raw-string-looking `r#"…"#`
    // inside a nested block comment neither escapes the comment nor
    // leaks tokens.
    let src = "/* outer /* inner */ r#\"text\"# */ fn real() {}";
    assert_eq!(idents(src), ["fn", "real"]);
}

#[test]
fn byte_char_literals_lex_as_single_char_tokens() {
    let src = "let d = b'0'; let r = b'a'..=b'z'; let e = b'\\''; let tail = 1;";
    let lexed = lex(src);
    assert_eq!(lexed.tokens.iter().filter(|t| t.kind == TokenKind::Char).count(), 4);
    assert_eq!(idents(src), ["let", "d", "let", "r", "let", "e", "let", "tail"]);
}

#[test]
fn directives_parse_inside_block_and_doc_comments() {
    let src = "/* evop-lint: allow(det-rng) -- fixture seeds */\n/// evop-lint: allow(rob-panic) -- documented\nfn f() {}";
    let rules: Vec<_> = lex(src).directives.into_iter().map(|d| d.rule).collect();
    assert_eq!(rules, ["det-rng", "rob-panic"]);
}
