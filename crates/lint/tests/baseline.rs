//! Ratchet-baseline tests: compare semantics (new / grown / shrunk /
//! burned-down pairs) and the JSON round-trip.

use std::path::PathBuf;

use evop_lint::baseline::Baseline;
use evop_lint::engine::Report;

fn report(rule: &str, path: &str, line: u32) -> Report {
    Report {
        rule: rule.to_owned(),
        path: path.to_owned(),
        line,
        message: String::from("m"),
        excerpt: String::from("e"),
    }
}

#[test]
fn identical_trees_are_clean() {
    let reports = vec![report("rob-unwrap", "a.rs", 3), report("rob-unwrap", "a.rs", 9)];
    let base = Baseline::from_reports(&reports);
    let verdict = base.compare(&reports);
    assert!(verdict.is_clean());
    assert!(verdict.improvements.is_empty());
}

#[test]
fn line_drift_within_a_file_is_not_a_regression() {
    let base = Baseline::from_reports(&[report("rob-unwrap", "a.rs", 3)]);
    // Same debt, different line: unrelated edits moved the code.
    assert!(base.compare(&[report("rob-unwrap", "a.rs", 300)]).is_clean());
}

#[test]
fn a_new_rule_file_pair_is_a_regression() {
    let base = Baseline::from_reports(&[report("rob-unwrap", "a.rs", 3)]);
    let verdict =
        base.compare(&[report("rob-unwrap", "a.rs", 3), report("det-hashmap", "b.rs", 1)]);
    assert!(!verdict.is_clean());
    assert_eq!(verdict.regressions.len(), 1);
    let d = &verdict.regressions[0];
    assert_eq!(
        (d.rule.as_str(), d.path.as_str(), d.current, d.allowed),
        ("det-hashmap", "b.rs", 1, 0)
    );
}

#[test]
fn a_grown_count_is_a_regression() {
    let base = Baseline::from_reports(&[report("rob-expect", "a.rs", 3)]);
    let current = vec![report("rob-expect", "a.rs", 3), report("rob-expect", "a.rs", 7)];
    let verdict = base.compare(&current);
    assert_eq!(verdict.regressions.len(), 1);
    assert_eq!((verdict.regressions[0].current, verdict.regressions[0].allowed), (2, 1));
}

#[test]
fn shrunk_and_burned_down_pairs_are_improvements() {
    let base = Baseline::from_reports(&[
        report("rob-expect", "a.rs", 1),
        report("rob-expect", "a.rs", 2),
        report("rob-unwrap", "b.rs", 5),
    ]);
    // a.rs fixed one expect; b.rs fixed its only unwrap.
    let verdict = base.compare(&[report("rob-expect", "a.rs", 1)]);
    assert!(verdict.is_clean());
    let mut improved: Vec<(String, u64, u64)> =
        verdict.improvements.iter().map(|d| (d.rule.clone(), d.current, d.allowed)).collect();
    improved.sort();
    assert_eq!(improved, [("rob-expect".to_owned(), 1, 2), ("rob-unwrap".to_owned(), 0, 1)]);
}

#[test]
fn missing_file_loads_as_the_empty_baseline() {
    let base = Baseline::load(&PathBuf::from("/nonexistent/lint-baseline.json")).unwrap();
    assert!(base.is_empty());
    // Against an empty baseline every finding is new.
    assert!(!base.compare(&[report("rob-unwrap", "a.rs", 1)]).is_clean());
}

#[test]
fn store_then_load_round_trips() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("baseline-roundtrip.json");
    let base = Baseline::from_reports(&[
        report("rob-unwrap", "a.rs", 1),
        report("rob-unwrap", "a.rs", 2),
        report("det-rng", "z.rs", 9),
    ]);
    base.store(&path).unwrap();
    assert_eq!(Baseline::load(&path).unwrap(), base);
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.ends_with('\n'), "committed JSON should end with a newline");
}

#[test]
fn from_reports_records_rule_severities() {
    let base =
        Baseline::from_reports(&[report("det-rng", "a.rs", 1), report("par-ready", "b.rs", 2)]);
    assert_eq!(base.version, 2);
    assert_eq!(base.rules["det-rng"].severity, "error");
    assert_eq!(base.rules["par-ready"].severity, "note");
}

/// A v1 baseline as PR 4 committed it.
const V1_TEXT: &str = r#"{
  "version": 1,
  "counts": {
    "det-wallclock": { "crates/obs/src/profiler.rs": 2 },
    "rob-unwrap": { "crates/broker/src/lib.rs": 3, "crates/cache/src/lib.rs": 1 }
  }
}"#;

#[test]
fn v1_baselines_migrate_preserving_counts_and_filling_severities() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("baseline-v1.json");
    std::fs::write(&path, V1_TEXT).unwrap();
    let base = Baseline::load(&path).unwrap();
    assert_eq!(base.version, 2, "load always yields the current format");
    assert_eq!(base.rules["rob-unwrap"].files["crates/broker/src/lib.rs"], 3);
    assert_eq!(base.rules["rob-unwrap"].files["crates/cache/src/lib.rs"], 1);
    assert_eq!(base.rules["det-wallclock"].files["crates/obs/src/profiler.rs"], 2);
    assert_eq!(base.rules["rob-unwrap"].severity, "warning");
    assert_eq!(base.rules["det-wallclock"].severity, "error");
}

#[test]
fn migration_preserves_the_ratchet() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("baseline-v1-ratchet.json");
    std::fs::write(&path, V1_TEXT).unwrap();
    let base = Baseline::load(&path).unwrap();
    // Exactly the recorded debt: clean.
    let at_debt = vec![
        report("det-wallclock", "crates/obs/src/profiler.rs", 1),
        report("det-wallclock", "crates/obs/src/profiler.rs", 2),
        report("rob-unwrap", "crates/broker/src/lib.rs", 1),
        report("rob-unwrap", "crates/broker/src/lib.rs", 2),
        report("rob-unwrap", "crates/broker/src/lib.rs", 3),
        report("rob-unwrap", "crates/cache/src/lib.rs", 4),
    ];
    assert!(base.compare(&at_debt).is_clean());
    // One more unwrap in broker: still a regression after migration.
    let mut grown = at_debt.clone();
    grown.push(report("rob-unwrap", "crates/broker/src/lib.rs", 9));
    let verdict = base.compare(&grown);
    assert_eq!(verdict.regressions.len(), 1);
    assert_eq!((verdict.regressions[0].current, verdict.regressions[0].allowed), (4, 3));
}

#[test]
fn updating_a_migrated_baseline_writes_v2() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let src = dir.join("baseline-v1-up.json");
    let dst = dir.join("baseline-v2-up.json");
    std::fs::write(&src, V1_TEXT).unwrap();
    // The `--update-baseline` flow: findings in, store out.
    let migrated = Baseline::load(&src).unwrap();
    migrated.store(&dst).unwrap();
    let text = std::fs::read_to_string(&dst).unwrap();
    assert!(text.contains("\"version\": 2"));
    assert!(text.contains("\"severity\""));
    assert!(!text.contains("\"counts\""));
    assert_eq!(Baseline::load(&dst).unwrap(), migrated, "v2 round-trips exactly");
}

#[test]
fn unknown_baseline_versions_are_rejected() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR"));
    let path = dir.join("baseline-v99.json");
    std::fs::write(&path, r#"{ "version": 99, "rules": {} }"#).unwrap();
    let err = Baseline::load(&path).unwrap_err();
    assert!(err.to_string().contains("unsupported baseline version"));
}

#[test]
fn totals_sum_per_rule_across_files() {
    let base = Baseline::from_reports(&[
        report("rob-expect", "a.rs", 1),
        report("rob-expect", "b.rs", 2),
        report("det-hashmap", "c.rs", 3),
    ]);
    let totals = base.totals();
    assert_eq!(totals.get("rob-expect"), Some(&2));
    assert_eq!(totals.get("det-hashmap"), Some(&1));
}
