//! Determinism taint: flows from non-deterministic sources (wall-clock
//! reads, OS randomness, `HashMap` iteration) into functions reachable
//! from the report/golden harnesses.
//!
//! The token-level `det-*` rules flag every source site; this analysis
//! adds the interprocedural fact that matters for reproducibility: a
//! source that the `core` experiment harness can actually reach will
//! perturb golden outputs. The finding lands at the *source* site —
//! where the fix goes — and names the harness entry that reaches it.

use crate::engine::Report;
use crate::graph::Graph;
use crate::reach::entries_of;

/// The crate whose public fns are the report/golden harnesses: every
/// experiment, ablation and report pipeline is a `pub fn` here.
pub const HARNESS_CRATES: &[&str] = &["core"];

/// Flags determinism sources reachable from the harness entries.
/// One finding per source site, at the site.
pub fn determinism_taint(graph: &Graph, excerpt: impl Fn(&str, u32) -> String) -> Vec<Report> {
    let entries = entries_of(graph, HARNESS_CRATES);
    let pred = graph.bfs_lib(&entries);
    let mut reports = Vec::new();
    for (node, n) in graph.nodes.iter().enumerate() {
        if pred[node] == usize::MAX || n.det_sources.is_empty() || !n.is_lib {
            continue;
        }
        let chain = graph.path_to(&pred, node);
        let entry = &graph.nodes[chain[0]];
        let via = if chain.len() > 1 {
            format!(
                " via {}",
                chain.iter().map(|&i| graph.nodes[i].qualified()).collect::<Vec<_>>().join(" -> ")
            )
        } else {
            String::new()
        };
        for site in &n.det_sources {
            reports.push(Report {
                rule: "det-taint".to_owned(),
                path: n.file.clone(),
                line: site.line,
                message: format!(
                    "{} in `{}` taints report harness `{}`{}; \
                     golden outputs depend on this call",
                    site.what,
                    n.qualified(),
                    entry.qualified(),
                    via,
                ),
                excerpt: excerpt(&n.file, site.line),
            });
        }
    }
    reports
}
