//! Interprocedural reachability analyses over the call graph:
//! panic-reachability for the serving crates and the parallel-readiness
//! audit for the simulation/Monte-Carlo paths.
//!
//! Both are deliberately conservative consumers of an over-approximate
//! graph: a finding says "there exists a call chain the linter cannot
//! rule out", not "this will panic". The per-rule severities reflect
//! that — these are worklist rules, ratcheted by the baseline, not
//! build-breakers on first contact.

use crate::engine::Report;
use crate::graph::Graph;

/// Crates whose public surface serves requests: a panic here is an
/// availability incident, not a bug report.
pub const SERVING_CRATES: &[&str] = &["broker", "cache", "xcloud", "services"];

/// Crates whose hot paths are candidates for parallel execution
/// (the event loop and the Monte Carlo batches).
pub const PARALLEL_CRATES: &[&str] = &["sim", "models"];

/// Renders a call chain as `a -> b -> c` using qualified names.
fn render_path(graph: &Graph, ids: &[usize]) -> String {
    ids.iter().map(|&i| graph.nodes[i].qualified()).collect::<Vec<_>>().join(" -> ")
}

/// Public entry points of `crates` — `pub` library fns, non-test,
/// non-bin — in stable (file, line) order.
pub fn entries_of(graph: &Graph, crates: &[&str]) -> Vec<usize> {
    graph
        .nodes
        .iter()
        .enumerate()
        .filter(|(_, n)| n.is_pub && n.is_lib && crates.contains(&n.crate_name.as_str()))
        .map(|(id, _)| id)
        .collect()
}

/// Flags public serving-crate APIs that *transitively* reach a panic
/// site (`unwrap`/`expect`/`panic!`/indexing). Panics in the entry
/// itself are local findings (`rob-*`) and are not re-reported here;
/// only depth ≥ 1 chains count. One finding per hazardous entry, at the
/// entry's definition, naming the nearest hazard and the chain to it.
pub fn panic_reachability(graph: &Graph, excerpt: impl Fn(&str, u32) -> String) -> Vec<Report> {
    let mut reports = Vec::new();
    for entry in entries_of(graph, SERVING_CRATES) {
        let pred = graph.bfs_lib(&[entry]);
        // Nearest transitive hazard: scan by path length, tie-broken by
        // node id (which is (file, line) order) for determinism.
        let mut best: Option<(usize, usize)> = None; // (path_len, node)
        let mut hazardous = 0usize;
        for (node, n) in graph.nodes.iter().enumerate() {
            if node == entry || pred[node] == usize::MAX || n.panic_sites.is_empty() {
                continue;
            }
            hazardous += 1;
            let len = graph.path_to(&pred, node).len();
            if best.map(|(bl, bn)| (len, node) < (bl, bn)).unwrap_or(true) {
                best = Some((len, node));
            }
        }
        if let Some((_, hazard)) = best {
            let chain = graph.path_to(&pred, hazard);
            let site = &graph.nodes[hazard].panic_sites[0];
            let others = hazardous - 1;
            let suffix = match others {
                0 => String::new(),
                1 => " (and 1 more reachable panicking fn)".to_owned(),
                n => format!(" (and {n} more reachable panicking fns)"),
            };
            let e = &graph.nodes[entry];
            reports.push(Report {
                rule: "reach-panic".to_owned(),
                path: e.file.clone(),
                line: e.line,
                message: format!(
                    "pub fn `{}` can reach {} at {}:{} via {}{}",
                    e.qualified(),
                    site.what,
                    graph.nodes[hazard].file,
                    site.line,
                    render_path(graph, &chain),
                    suffix,
                ),
                excerpt: excerpt(&e.file, e.line),
            });
        }
    }
    reports
}

/// Flags `Rc`/`RefCell`/`Cell`/`static mut` (non-`Send` interior
/// mutability) reachable from the sim event loop and the models Monte
/// Carlo paths. Findings land at the hazard site, naming the parallel
/// entry that reaches it — that is where the fix goes (swap to
/// `Arc`/`Mutex` or restructure), and where an `allow` directive would
/// sit if the single-threaded design is intentional.
pub fn parallel_readiness(graph: &Graph, excerpt: impl Fn(&str, u32) -> String) -> Vec<Report> {
    let entries = entries_of(graph, PARALLEL_CRATES);
    let pred = graph.bfs_lib(&entries);
    let mut reports = Vec::new();
    for (node, n) in graph.nodes.iter().enumerate() {
        if pred[node] == usize::MAX || n.par_sites.is_empty() || !n.is_lib {
            continue;
        }
        let chain = graph.path_to(&pred, node);
        let entry = &graph.nodes[chain[0]];
        let via = if chain.len() > 1 {
            format!(" via {}", render_path(graph, &chain))
        } else {
            String::new()
        };
        for site in &n.par_sites {
            reports.push(Report {
                rule: "par-ready".to_owned(),
                path: n.file.clone(),
                line: site.line,
                message: format!(
                    "{} in `{}` is reachable from parallel entry `{}`{}; \
                     not Send — blocks parallelising this path",
                    site.what,
                    n.qualified(),
                    entry.qualified(),
                    via,
                ),
                excerpt: excerpt(&n.file, site.line),
            });
        }
    }
    // `static mut` in the parallel crates is a hazard regardless of
    // reachability: the graph cannot see data flow through statics.
    for (file, name, line) in &graph.static_muts {
        let c = crate::graph::crate_of(file);
        if PARALLEL_CRATES.contains(&c.as_str()) {
            reports.push(Report {
                rule: "par-ready".to_owned(),
                path: file.clone(),
                line: *line,
                message: format!(
                    "`static mut {name}` in a parallel-candidate crate; \
                     unsynchronised global state cannot cross threads"
                ),
                excerpt: excerpt(file, *line),
            });
        }
    }
    reports
}
