//! The ratchet baseline: committed debt that may only shrink.
//!
//! `lint-baseline.json` v2 maps `rule id → { severity, file → count }`.
//! The gate compares the current tree against it:
//!
//! * a finding in a (rule, file) pair absent from the baseline is a
//!   **new violation** → fail;
//! * a count above the baselined count for its (rule, file) pair is a
//!   **regression** → fail;
//! * a count below the baseline is an **improvement** → pass, with a
//!   nudge to run `--update-baseline` so the ratchet tightens.
//!
//! Counts are keyed per file (not per line) so unrelated edits that shift
//! line numbers don't produce false "new" violations, while any real
//! growth in a file's debt is caught.
//!
//! v1 files (`{"version": 1, "counts": {rule: {file: count}}}`) are
//! migrated automatically on load: counts carry over unchanged — the
//! ratchet never loosens across the format change — and each rule gets
//! its current default severity. The next `--update-baseline` rewrites
//! the file in v2 form.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::engine::Report;
use crate::rules::severity_of;

/// Current on-disk format version.
pub const BASELINE_VERSION: u32 = 2;

/// One rule's recorded debt: its severity and per-file counts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuleEntry {
    /// SARIF-style severity (`error` / `warning` / `note`), recorded so
    /// exporters don't need the binary's rule table to agree.
    pub severity: String,
    /// `workspace-relative path → allowed count`. `BTreeMap` keeps the
    /// committed JSON byte-stable.
    pub files: BTreeMap<String, u64>,
}

/// The committed ratchet file.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Format version, for migrations.
    pub version: u32,
    /// `rule id → recorded debt`.
    pub rules: BTreeMap<String, RuleEntry>,
}

/// The v1 on-disk shape, kept only for migration.
#[derive(Debug, Deserialize)]
struct BaselineV1 {
    #[allow(dead_code)]
    version: u32,
    counts: BTreeMap<String, BTreeMap<String, u64>>,
}

/// The gate's verdict for one (rule, file) pair that differs from the
/// baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Delta {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Findings in the current tree.
    pub current: u64,
    /// Findings allowed by the baseline (0 when the pair is new).
    pub allowed: u64,
}

/// Outcome of comparing current findings against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Verdict {
    /// (rule, file) pairs that grew or are new — these fail the gate.
    pub regressions: Vec<Delta>,
    /// (rule, file) pairs that shrank or disappeared — the ratchet can
    /// tighten; `--update-baseline` records the win.
    pub improvements: Vec<Delta>,
}

impl Verdict {
    /// `true` when the gate passes.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl Baseline {
    /// Builds a baseline recording exactly the given findings, with each
    /// rule's current default severity.
    pub fn from_reports(reports: &[Report]) -> Baseline {
        let mut rules: BTreeMap<String, RuleEntry> = BTreeMap::new();
        for r in reports {
            let entry = rules.entry(r.rule.clone()).or_insert_with(|| RuleEntry {
                severity: severity_of(&r.rule).to_owned(),
                files: BTreeMap::new(),
            });
            *entry.files.entry(r.path.clone()).or_insert(0) += 1;
        }
        Baseline { version: BASELINE_VERSION, rules }
    }

    /// Migrates a v1 baseline: identical counts (the ratchet carries
    /// over), severities filled in from the current rule table.
    fn from_v1(v1: BaselineV1) -> Baseline {
        let rules = v1
            .counts
            .into_iter()
            .map(|(rule, files)| {
                let severity = severity_of(&rule).to_owned();
                (rule, RuleEntry { severity, files })
            })
            .collect();
        Baseline { version: BASELINE_VERSION, rules }
    }

    /// Reads a baseline from disk, migrating v1 files transparently. A
    /// missing file is an empty baseline (every finding is then a new
    /// violation — the bootstrap state).
    ///
    /// # Errors
    ///
    /// Returns an error for unreadable files, invalid JSON, or an
    /// unknown format version.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        let text = match fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(e),
        };
        let invalid =
            |e: serde_json::Error| io::Error::new(io::ErrorKind::InvalidData, e.to_string());
        let probe: serde_json::Value = serde_json::from_str(&text).map_err(invalid)?;
        match probe.get("version").and_then(serde_json::Value::as_u64) {
            Some(1) => {
                let v1: BaselineV1 = serde_json::from_str(&text).map_err(invalid)?;
                Ok(Baseline::from_v1(v1))
            }
            Some(2) => serde_json::from_str(&text).map_err(invalid),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported baseline version {other:?} (this binary knows 1 and 2)"),
            )),
        }
    }

    /// Writes the baseline as stable, pretty-printed JSON (always v2).
    ///
    /// # Errors
    ///
    /// Returns any serialisation or file-write error.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        fs::write(path, text)
    }

    /// Compares the current tree's findings against this baseline.
    pub fn compare(&self, reports: &[Report]) -> Verdict {
        let current = Baseline::from_reports(reports);
        let mut verdict = Verdict::default();

        for (rule, entry) in &current.rules {
            for (path, &n) in &entry.files {
                let allowed = self.count(rule, path);
                if n > allowed {
                    verdict.regressions.push(Delta {
                        rule: rule.clone(),
                        path: path.clone(),
                        current: n,
                        allowed,
                    });
                } else if n < allowed {
                    verdict.improvements.push(Delta {
                        rule: rule.clone(),
                        path: path.clone(),
                        current: n,
                        allowed,
                    });
                }
            }
        }
        // Pairs fully burned down (in baseline, absent from the tree).
        for (rule, entry) in &self.rules {
            for (path, &allowed) in &entry.files {
                if allowed > 0 && current.count(rule, path) == 0 {
                    verdict.improvements.push(Delta {
                        rule: rule.clone(),
                        path: path.clone(),
                        current: 0,
                        allowed,
                    });
                }
            }
        }
        verdict
    }

    fn count(&self, rule: &str, path: &str) -> u64 {
        self.rules.get(rule).and_then(|entry| entry.files.get(path)).copied().unwrap_or(0)
    }

    /// Total allowed findings per rule, for the summary table.
    pub fn totals(&self) -> BTreeMap<String, u64> {
        self.rules.iter().map(|(rule, entry)| (rule.clone(), entry.files.values().sum())).collect()
    }

    /// `true` when no debt is recorded.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}
