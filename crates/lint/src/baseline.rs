//! The ratchet baseline: committed debt that may only shrink.
//!
//! `lint-baseline.json` maps `rule id → file → count`. The gate compares
//! the current tree against it:
//!
//! * a finding in a (rule, file) pair absent from the baseline is a
//!   **new violation** → fail;
//! * a count above the baselined count for its (rule, file) pair is a
//!   **regression** → fail;
//! * a count below the baseline is an **improvement** → pass, with a
//!   nudge to run `--update-baseline` so the ratchet tightens.
//!
//! Counts are keyed per file (not per line) so unrelated edits that shift
//! line numbers don't produce false "new" violations, while any real
//! growth in a file's debt is caught.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::engine::Report;

/// The committed ratchet file.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Baseline {
    /// Format version, for future migrations.
    pub version: u32,
    /// `rule id → workspace-relative path → allowed count`.
    /// `BTreeMap` keeps the committed JSON byte-stable.
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

/// The gate's verdict for one (rule, file) pair that differs from the
/// baseline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct Delta {
    /// Rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// Findings in the current tree.
    pub current: u64,
    /// Findings allowed by the baseline (0 when the pair is new).
    pub allowed: u64,
}

/// Outcome of comparing current findings against a baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize)]
pub struct Verdict {
    /// (rule, file) pairs that grew or are new — these fail the gate.
    pub regressions: Vec<Delta>,
    /// (rule, file) pairs that shrank or disappeared — the ratchet can
    /// tighten; `--update-baseline` records the win.
    pub improvements: Vec<Delta>,
}

impl Verdict {
    /// `true` when the gate passes.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

impl Baseline {
    /// Builds a baseline recording exactly the given findings.
    pub fn from_reports(reports: &[Report]) -> Baseline {
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for r in reports {
            *counts.entry(r.rule.clone()).or_default().entry(r.path.clone()).or_insert(0) += 1;
        }
        Baseline { version: 1, counts }
    }

    /// Reads a baseline from disk. A missing file is an empty baseline
    /// (every finding is then a new violation — the bootstrap state).
    ///
    /// # Errors
    ///
    /// Returns an error for unreadable files or invalid JSON.
    pub fn load(path: &Path) -> io::Result<Baseline> {
        match fs::read_to_string(path) {
            Ok(text) => serde_json::from_str(&text)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(e),
        }
    }

    /// Writes the baseline as stable, pretty-printed JSON.
    ///
    /// # Errors
    ///
    /// Returns any serialisation or file-write error.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        let mut text = serde_json::to_string_pretty(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        text.push('\n');
        fs::write(path, text)
    }

    /// Compares the current tree's findings against this baseline.
    pub fn compare(&self, reports: &[Report]) -> Verdict {
        let current = Baseline::from_reports(reports);
        let mut verdict = Verdict::default();

        for (rule, files) in &current.counts {
            for (path, &n) in files {
                let allowed = self.count(rule, path);
                if n > allowed {
                    verdict.regressions.push(Delta {
                        rule: rule.clone(),
                        path: path.clone(),
                        current: n,
                        allowed,
                    });
                } else if n < allowed {
                    verdict.improvements.push(Delta {
                        rule: rule.clone(),
                        path: path.clone(),
                        current: n,
                        allowed,
                    });
                }
            }
        }
        // Pairs fully burned down (in baseline, absent from the tree).
        for (rule, files) in &self.counts {
            for (path, &allowed) in files {
                if allowed > 0 && current.count(rule, path) == 0 {
                    verdict.improvements.push(Delta {
                        rule: rule.clone(),
                        path: path.clone(),
                        current: 0,
                        allowed,
                    });
                }
            }
        }
        verdict
    }

    fn count(&self, rule: &str, path: &str) -> u64 {
        self.counts.get(rule).and_then(|files| files.get(path)).copied().unwrap_or(0)
    }

    /// Total allowed findings per rule, for the summary table.
    pub fn totals(&self) -> BTreeMap<String, u64> {
        self.counts.iter().map(|(rule, files)| (rule.clone(), files.values().sum())).collect()
    }
}
