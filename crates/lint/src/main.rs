//! The `evop-lint` command-line gate.
//!
//! ```text
//! cargo run -p evop-lint                      # gate against lint-baseline.json
//! cargo run -p evop-lint -- --update-baseline # record an intentional ratchet move
//! cargo run -p evop-lint -- --no-baseline     # report every finding, ignore the ratchet
//! cargo run -p evop-lint -- --json            # machine-readable output
//! cargo run -p evop-lint -- --sarif out.sarif # also write a SARIF 2.1.0 log
//! cargo run -p evop-lint -- --list-rules      # rule catalogue
//! cargo run -p evop-lint -- --root <dir>      # analyze another tree
//! cargo run -p evop-lint -- graph             # call graph as JSON
//! cargo run -p evop-lint -- graph --dot       # call graph as Graphviz DOT
//! ```
//!
//! Exit codes: `0` clean (no new violations), `1` gate failure, `2`
//! usage or I/O error.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use evop_lint::{
    analyze_files, graph, severity_of, workspace_sources, Baseline, Report, BASELINE_FILE, RULES,
};

struct Options {
    root: PathBuf,
    update_baseline: bool,
    no_baseline: bool,
    json: bool,
    list_rules: bool,
    sarif: Option<PathBuf>,
    /// `evop-lint graph [--dot|--json]`: emit the call graph and exit.
    graph: bool,
    dot: bool,
}

fn parse_args() -> Result<Options, String> {
    // The binary lives two levels below the workspace root.
    let default_root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut opts = Options {
        root: default_root,
        update_baseline: false,
        no_baseline: false,
        json: false,
        list_rules: false,
        sarif: None,
        graph: false,
        dot: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "graph" => opts.graph = true,
            "--dot" => opts.dot = true,
            "--update-baseline" => opts.update_baseline = true,
            "--no-baseline" => opts.no_baseline = true,
            "--json" => opts.json = true,
            "--list-rules" => opts.list_rules = true,
            "--sarif" => {
                opts.sarif = Some(PathBuf::from(
                    args.next().ok_or_else(|| "--sarif requires a file path".to_owned())?,
                ));
            }
            "--root" => {
                opts.root = PathBuf::from(
                    args.next().ok_or_else(|| "--root requires a directory".to_owned())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "evop-lint: determinism & robustness analyzer\n\n\
                     usage:\n  \
                     evop-lint [options]         gate the tree against the baseline\n  \
                     evop-lint graph [--dot]     emit the workspace call graph (JSON default)\n\n\
                     options:\n  \
                     --update-baseline  record current findings as the new ratchet\n  \
                     --no-baseline      report all findings, ignore the ratchet\n  \
                     --json             machine-readable output\n  \
                     --sarif <file>     also write findings as SARIF 2.1.0\n  \
                     --list-rules       print the rule catalogue\n  \
                     --root <dir>       analyze another tree"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if opts.dot && !opts.graph {
        return Err("--dot only applies to the `graph` subcommand".to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("evop-lint: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let opts = parse_args()?;

    if opts.list_rules {
        for r in RULES {
            println!("{:<18} {:<12} {:<8} {}", r.id, r.family, r.severity, r.summary);
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = opts.root.canonicalize().map_err(|e| format!("bad root: {e}"))?;
    let sources = workspace_sources(&root).map_err(|e| e.to_string())?;

    if opts.graph {
        let g = graph::build(&sources);
        if opts.dot {
            print!("{}", g.to_dot());
        } else {
            let text = serde_json::to_string_pretty(&g.to_json())
                .map_err(|e| format!("json encoding failed: {e}"))?;
            println!("{text}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    let reports = analyze_files(&sources);
    let baseline_path = root.join(BASELINE_FILE);

    if let Some(sarif_path) = &opts.sarif {
        let text = serde_json::to_string_pretty(&sarif(&reports))
            .map_err(|e| format!("sarif encoding failed: {e}"))?;
        std::fs::write(sarif_path, text + "\n").map_err(|e| format!("writing sarif: {e}"))?;
    }

    if opts.update_baseline {
        let baseline = Baseline::from_reports(&reports);
        baseline.store(&baseline_path).map_err(|e| e.to_string())?;
        println!(
            "evop-lint: baseline updated: {} findings across {} rules -> {}",
            reports.len(),
            baseline.rules.len(),
            baseline_path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    if opts.no_baseline {
        if opts.json {
            print_json(&reports, None);
        } else {
            for r in &reports {
                print_finding(r);
            }
            print_summary(&reports, None);
        }
        return Ok(if reports.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE });
    }

    let baseline = Baseline::load(&baseline_path).map_err(|e| e.to_string())?;
    let verdict = baseline.compare(&reports);

    if opts.json {
        print_json(&reports, Some(&verdict));
        return Ok(if verdict.is_clean() { ExitCode::SUCCESS } else { ExitCode::FAILURE });
    }

    // Print the findings behind each regressed (rule, file) pair —
    // per-file counts can't say *which* line is new, so show them all.
    for delta in &verdict.regressions {
        eprintln!(
            "gate: {} in {}: {} finding(s), baseline allows {}",
            delta.rule, delta.path, delta.current, delta.allowed
        );
        for r in reports.iter().filter(|r| r.rule == delta.rule && r.path == delta.path) {
            print_finding(r);
        }
    }
    print_summary(&reports, Some(&verdict));

    if !verdict.is_clean() {
        eprintln!(
            "\nevop-lint: FAIL — {} (rule, file) pair(s) grew beyond the baseline.\n\
             Fix the findings above, or (for intentional debt) run\n\
             `cargo run -p evop-lint -- --update-baseline` and commit {}.",
            verdict.regressions.len(),
            BASELINE_FILE
        );
        return Ok(ExitCode::FAILURE);
    }
    if !verdict.improvements.is_empty() {
        println!(
            "evop-lint: {} (rule, file) pair(s) improved on the baseline — run \
             `cargo run -p evop-lint -- --update-baseline` to lock the gains in.",
            verdict.improvements.len()
        );
    }
    println!("evop-lint: OK — no new violations ({} baselined findings).", reports.len());
    Ok(ExitCode::SUCCESS)
}

fn print_finding(r: &Report) {
    println!("{}:{}: [{}] {}: `{}`", r.path, r.line, r.rule, r.message, r.excerpt);
}

fn print_summary(reports: &[Report], verdict: Option<&evop_lint::Verdict>) {
    let mut by_rule: BTreeMap<&str, u64> = BTreeMap::new();
    for r in reports {
        *by_rule.entry(&r.rule).or_insert(0) += 1;
    }
    println!("\nrule                 findings");
    for (rule, n) in &by_rule {
        println!("{rule:<20} {n}");
    }
    if let Some(v) = verdict {
        println!("regressions: {}  improvements: {}", v.regressions.len(), v.improvements.len());
    }
}

fn print_json(reports: &[Report], verdict: Option<&evop_lint::Verdict>) {
    let findings: Vec<serde_json::Value> = reports
        .iter()
        .map(|r| {
            serde_json::json!({
                "rule": r.rule,
                "severity": severity_of(&r.rule),
                "path": r.path,
                "line": r.line,
                "message": r.message,
                "excerpt": r.excerpt,
            })
        })
        .collect();
    let out = match verdict {
        Some(v) => serde_json::json!({
            "findings": findings,
            "regressions": v.regressions,
            "improvements": v.improvements,
            "clean": v.is_clean(),
        }),
        None => serde_json::json!({ "findings": findings }),
    };
    match serde_json::to_string_pretty(&out) {
        Ok(text) => println!("{text}"),
        Err(e) => eprintln!("evop-lint: json encoding failed: {e}"),
    }
}

/// Findings as a SARIF 2.1.0 log — one run, one result per finding —
/// for CI artifact upload and code-scanning UIs.
fn sarif(reports: &[Report]) -> serde_json::Value {
    let rules: Vec<serde_json::Value> = RULES
        .iter()
        .map(|r| {
            serde_json::json!({
                "id": r.id,
                "shortDescription": { "text": r.summary },
                "defaultConfiguration": { "level": r.severity },
                "properties": { "family": r.family },
            })
        })
        .collect();
    let results: Vec<serde_json::Value> = reports
        .iter()
        .map(|r| {
            serde_json::json!({
                "ruleId": r.rule,
                "level": severity_of(&r.rule),
                "message": { "text": r.message },
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": { "uri": r.path },
                        "region": { "startLine": r.line },
                    }
                }],
            })
        })
        .collect();
    serde_json::json!({
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "evop-lint",
                    "informationUri": "https://example.invalid/evop-lint",
                    "rules": rules,
                }
            },
            "results": results,
        }],
    })
}
