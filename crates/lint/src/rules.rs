//! The rule engine: determinism, robustness and hygiene rules evaluated
//! over the token stream of one file.
//!
//! Every rule has a stable kebab-case id (used in baselines and in
//! `evop-lint: allow(...)` directives) and a scope. Scoping is central:
//! a `.unwrap()` in a `#[cfg(test)]` module, an integration test, an
//! example or a binary is *not* a robustness hazard, while a `HashMap`
//! is a determinism hazard anywhere in the workspace. See
//! [`crate::engine::FileScope`] for how files are classified.

use crate::engine::FileScope;
use crate::lexer::{Lexed, Token, TokenKind};

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule id, e.g. `rob-unwrap`.
    pub rule: &'static str,
    /// 1-based source line.
    pub line: u32,
    /// Human explanation of the hazard.
    pub message: String,
}

impl Finding {
    fn new(rule: &'static str, line: u32, message: impl Into<String>) -> Finding {
        Finding { rule, line, message: message.into() }
    }
}

/// Static description of a rule, for `--list-rules` and the docs.
pub struct RuleInfo {
    /// Stable id.
    pub id: &'static str,
    /// Rule family: `determinism`, `robustness`, `hygiene` or
    /// `parallelism`.
    pub family: &'static str,
    /// SARIF-style severity: `error`, `warning` or `note`. Recorded per
    /// rule in baseline v2 and in the SARIF export; the ratchet gate
    /// fails on growth regardless of severity.
    pub severity: &'static str,
    /// What it catches and where it applies.
    pub summary: &'static str,
}

/// The severity of a rule id (`note` for unknown ids, defensively).
pub fn severity_of(id: &str) -> &'static str {
    RULES.iter().find(|r| r.id == id).map(|r| r.severity).unwrap_or("note")
}

/// Every rule the engine knows, in report order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "det-hashmap",
        family: "determinism",
        severity: "error",
        summary: "std HashMap/HashSet (randomized iteration order) anywhere in the workspace; \
                  use BTreeMap/BTreeSet or a seeded hasher",
    },
    RuleInfo {
        id: "det-wallclock",
        family: "determinism",
        severity: "error",
        summary: "Instant::now()/SystemTime::now() (wall-clock reads) anywhere; simulated code \
                  must use SimTime. Bench wall-clock timing is allowed per-site via a directive",
    },
    RuleInfo {
        id: "det-rng",
        family: "determinism",
        severity: "error",
        summary: "ambient/unseeded randomness (thread_rng, from_entropy, OsRng, rand::random) \
                  anywhere; every RNG must derive from an explicit seed",
    },
    RuleInfo {
        id: "rob-unwrap",
        family: "robustness",
        severity: "warning",
        summary: ".unwrap() in library (non-test, non-bin) code; return a typed error instead",
    },
    RuleInfo {
        id: "rob-expect",
        family: "robustness",
        severity: "warning",
        summary: ".expect(...) in library (non-test, non-bin) code; return a typed error instead",
    },
    RuleInfo {
        id: "rob-panic",
        family: "robustness",
        severity: "warning",
        summary: "panic!/todo!/unimplemented! in library (non-test, non-bin) code",
    },
    RuleInfo {
        id: "rob-float-eq",
        family: "robustness",
        severity: "warning",
        summary: "==/!= against a floating-point literal in library (non-test) code; \
                  NaN-unsafe — compare against an epsilon",
    },
    RuleInfo {
        id: "hyg-forbid-unsafe",
        family: "hygiene",
        severity: "warning",
        summary: "library crate root missing #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: "hyg-debug-print",
        family: "hygiene",
        severity: "note",
        summary: "println!/eprintln!/print!/dbg! in library (non-test, non-bin) code",
    },
    RuleInfo {
        id: "hyg-directive",
        family: "hygiene",
        severity: "note",
        summary: "an evop-lint allow directive that is malformed (unknown rule / missing \
                  `-- reason`) or suppresses nothing",
    },
    RuleInfo {
        id: "reach-panic",
        family: "robustness",
        severity: "warning",
        summary: "a pub fn in a serving crate (broker/cache/xcloud/services) transitively \
                  reaches unwrap/expect/panic!/indexing through the call graph",
    },
    RuleInfo {
        id: "det-taint",
        family: "determinism",
        severity: "error",
        summary: "a wall-clock/OS-RNG/HashMap-iteration source is reachable from the core \
                  report/golden harnesses; golden outputs depend on it",
    },
    RuleInfo {
        id: "par-ready",
        family: "parallelism",
        severity: "note",
        summary: "Rc/RefCell/Cell/static-mut (non-Send interior mutability) reachable from \
                  the sim event loop or the models Monte Carlo paths",
    },
];

/// `true` if `id` names a known rule.
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Runs every applicable rule over one lexed file.
///
/// `scope` decides applicability; the returned findings are in source
/// order. Directive handling (suppression + directive hygiene) happens in
/// the engine, not here.
pub fn check_file(scope: &FileScope, lexed: &Lexed) -> Vec<Finding> {
    let tokens = &lexed.tokens;
    let in_test = cfg_test_mask(tokens);
    let mut findings = Vec::new();

    // Robustness/hygiene rules skip test code (path-level and
    // `#[cfg(test)]` blocks) and binaries; determinism rules apply
    // everywhere, because even test-only nondeterminism undermines the
    // repo's byte-identical-trace guarantees.
    let lib_code = scope.is_library && !scope.is_test && !scope.is_bin;

    for (i, t) in tokens.iter().enumerate() {
        match t.kind {
            TokenKind::Ident => {
                determinism_at(tokens, i, &mut findings);
                if lib_code && !in_test[i] {
                    robustness_at(tokens, i, &mut findings);
                    hygiene_print_at(tokens, i, &mut findings);
                }
            }
            TokenKind::Punct if lib_code && !in_test[i] => {
                float_eq_at(tokens, i, &mut findings);
            }
            _ => {}
        }
    }

    if scope.is_lib_root && !has_forbid_unsafe(tokens) {
        findings.push(Finding::new(
            "hyg-forbid-unsafe",
            1,
            "library crate root is missing `#![forbid(unsafe_code)]`",
        ));
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Determinism rules fire on single identifiers / short ident paths.
fn determinism_at(tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    match t.text.as_str() {
        "HashMap" | "HashSet" => {
            // `ahash::HashMap` would be just as order-randomized; any
            // ident spelled HashMap/HashSet is a hazard in this workspace.
            out.push(Finding::new(
                "det-hashmap",
                t.line,
                format!("`{}` has a randomized iteration order; use BTreeMap/BTreeSet", t.text),
            ));
        }
        "Instant" | "SystemTime" if method_called(tokens, i, "now") => {
            out.push(Finding::new(
                "det-wallclock",
                t.line,
                format!(
                    "`{}::now()` reads the wall clock; simulated code must use SimTime",
                    t.text
                ),
            ));
        }
        "thread_rng" | "from_entropy" | "OsRng" => {
            out.push(Finding::new(
                "det-rng",
                t.line,
                format!("`{}` draws ambient entropy; seed every RNG explicitly", t.text),
            ));
        }
        // `rand::random()` — only flag the path form to avoid firing on
        // ordinary identifiers named `random`.
        "random"
            if i >= 3
                && tokens[i - 1].is_punct(":")
                && tokens[i - 2].is_punct(":")
                && tokens[i - 3].is_ident("rand") =>
        {
            out.push(Finding::new(
                "det-rng",
                t.line,
                "`rand::random()` draws ambient entropy; seed every RNG explicitly",
            ));
        }
        _ => {}
    }
}

/// `tokens[i]` is an ident; does `<ident>::name(` follow?
fn method_called(tokens: &[Token], i: usize, name: &str) -> bool {
    tokens.get(i + 1).map(|t| t.is_punct(":")).unwrap_or(false)
        && tokens.get(i + 2).map(|t| t.is_punct(":")).unwrap_or(false)
        && tokens.get(i + 3).map(|t| t.is_ident(name)).unwrap_or(false)
        && tokens.get(i + 4).map(|t| t.is_punct("(")).unwrap_or(false)
}

fn robustness_at(tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    match t.text.as_str() {
        // `.unwrap()` / `.expect(` — require the leading dot so that
        // locally-defined functions named `unwrap` don't fire.
        "unwrap" | "expect"
            if i > 0
                && tokens[i - 1].is_punct(".")
                && tokens.get(i + 1).map(|n| n.is_punct("(")).unwrap_or(false) =>
        {
            let (rule, msg) = if t.text == "unwrap" {
                ("rob-unwrap", "`.unwrap()` panics on None/Err; return a typed error")
            } else {
                ("rob-expect", "`.expect(..)` panics on None/Err; return a typed error")
            };
            out.push(Finding::new(rule, t.line, msg));
        }
        "panic" | "todo" | "unimplemented"
            if tokens.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false) =>
        {
            out.push(Finding::new(
                "rob-panic",
                t.line,
                format!("`{}!` aborts the caller; return a typed error", t.text),
            ));
        }
        _ => {}
    }
}

fn hygiene_print_at(tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    if matches!(t.text.as_str(), "println" | "eprintln" | "print" | "dbg")
        && tokens.get(i + 1).map(|n| n.is_punct("!")).unwrap_or(false)
    {
        out.push(Finding::new(
            "hyg-debug-print",
            t.line,
            format!("`{}!` in library code writes to the process streams; use evop-obs", t.text),
        ));
    }
}

/// `==`/`!=` with a float literal on either side.
fn float_eq_at(tokens: &[Token], i: usize, out: &mut Vec<Finding>) {
    let t = &tokens[i];
    if !(t.is_punct("==") || t.is_punct("!=")) {
        return;
    }
    let float_beside = tokens.get(i + 1).map(|n| n.kind == TokenKind::Float).unwrap_or(false)
        || i > 0 && tokens[i - 1].kind == TokenKind::Float;
    if float_beside {
        out.push(Finding::new(
            "rob-float-eq",
            t.line,
            format!(
                "`{}` against a float literal is NaN-unsafe; compare within an epsilon",
                t.text
            ),
        ));
    }
}

/// Scans for the inner attribute `#![forbid(unsafe_code)]`.
fn has_forbid_unsafe(tokens: &[Token]) -> bool {
    tokens.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    })
}

/// Marks tokens that belong to a `#[cfg(test)]`-gated item.
///
/// On seeing the attribute `#[cfg(test)]` (or any `cfg(...)` whose
/// argument list mentions `test`, covering `cfg(all(test, ...))`), the
/// following item — after any further attributes — is masked: either up
/// to the matching `}` of its first brace block, or to the first `;`
/// outside brackets (e.g. `#[cfg(test)] use …;`).
pub fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some((end, is_test)) = parse_attr(tokens, i) {
            if is_test {
                let mut j = end;
                // Skip any further attributes on the same item.
                while let Some((next_end, _)) = parse_attr(tokens, j) {
                    j = next_end;
                }
                let item_end = skip_item(tokens, j);
                for m in &mut mask[i..item_end] {
                    *m = true;
                }
                i = item_end;
                continue;
            }
            i = end;
            continue;
        }
        i += 1;
    }
    mask
}

/// If an outer attribute `#[...]` starts at `i`, returns (index one past
/// its closing `]`, whether it is a `cfg` mentioning `test`).
fn parse_attr(tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    if !(tokens.get(i)?.is_punct("#") && tokens.get(i + 1)?.is_punct("[")) {
        return None;
    }
    let mut depth = 1usize;
    let mut j = i + 2;
    let is_cfg = tokens.get(j).map(|t| t.is_ident("cfg")).unwrap_or(false);
    let mut mentions_test = false;
    let mut negated = false;
    while j < tokens.len() && depth > 0 {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
        } else if t.is_ident("test") {
            mentions_test = true;
        } else if t.is_ident("not") {
            // `cfg(not(test))` is production code: when in doubt, keep the
            // rules applied (a false positive is safer than a missed one).
            negated = true;
        }
        j += 1;
    }
    Some((j, is_cfg && mentions_test && !negated))
}

/// Returns the index one past the end of the item starting at `i`: the
/// matching `}` of its first top-level brace block, or the first `;`
/// reached outside all brackets — whichever comes first.
fn skip_item(tokens: &[Token], i: usize) -> usize {
    let mut j = i;
    let mut brace = 0usize;
    let mut entered = false;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("{") {
            brace += 1;
            entered = true;
        } else if t.is_punct("}") {
            brace = brace.saturating_sub(1);
            if entered && brace == 0 {
                return j + 1;
            }
        } else if t.is_punct(";") && !entered {
            return j + 1;
        }
        j += 1;
    }
    j
}
