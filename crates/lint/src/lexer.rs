//! A small hand-rolled Rust lexer.
//!
//! `evop-lint` must build offline with no external parser (`syn` is not in
//! `vendor/`), so this module tokenises Rust source directly. It is not a
//! full lexer — it only needs to be *sound* for rule matching, which means
//! getting the hard parts right so that rule patterns never fire inside
//! text that is not code:
//!
//! * line comments (`//`, `///`, `//!`) — also where doc-test examples
//!   live, which is why `.unwrap()` in a doc example is never flagged;
//! * block comments `/* … */` **with nesting**, as Rust specifies;
//! * string literals with escapes, including multi-line strings;
//! * raw strings `r"…"`, `r#"…"#` (arbitrary hash depth) and their byte
//!   variants `br#"…"#`, whose bodies may contain `//`, quotes, anything;
//! * raw identifiers `r#type`;
//! * char literals `'a'`, `'\n'`, `'\u{1F600}'` vs lifetimes `'a`;
//! * numbers (so `1.0` is one float token, not `1` `.` `0`).
//!
//! Comments are skipped rather than emitted, with one exception: an
//! `evop-lint: allow(rule-id) -- reason` marker inside a comment is parsed
//! into a [`Directive`] so findings can be suppressed at a single site
//! (see `crates/bench/src/bin/report.rs` for the canonical use).

use std::fmt;

/// What a token is. Rules match on kind + text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (including raw identifiers, sans `r#`).
    Ident,
    /// A lifetime such as `'a` (text excludes the quote).
    Lifetime,
    /// A string literal of any flavour (normal/raw/byte); text is empty.
    Str,
    /// A character or byte literal; text is empty.
    Char,
    /// An integer literal.
    Int,
    /// A floating-point literal (has a fractional part, exponent, or an
    /// `f32`/`f64` suffix).
    Float,
    /// Punctuation. Single characters, except `==` and `!=` which are
    /// joined so the float-comparison rule can match them directly.
    Punct,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's kind.
    pub kind: TokenKind,
    /// 1-based line on which the token starts.
    pub line: u32,
    /// Token text for `Ident`, `Lifetime`, `Int`, `Float` and `Punct`;
    /// empty for string/char literals (rules never need their contents).
    pub text: String,
}

impl Token {
    fn new(kind: TokenKind, line: u32, text: impl Into<String>) -> Token {
        Token { kind, line, text: text.into() }
    }

    /// `true` when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// `true` when this token is the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == p
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TokenKind::Str => write!(f, "\"…\""),
            TokenKind::Char => write!(f, "'…'"),
            _ => write!(f, "{}", self.text),
        }
    }
}

/// A scoped in-source suppression parsed from a comment:
/// `evop-lint: allow(rule-id) -- reason`.
///
/// The directive suppresses matching findings on its own line and on the
/// line directly below it (so it can trail a statement or sit above one).
/// A directive must carry a non-empty reason after `--`; the engine turns
/// reason-less or unused directives into findings of their own, keeping
/// the allowlist honest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// The rule id being allowed, e.g. `det-wallclock`.
    pub rule: String,
    /// The human justification after `--` (may be empty: that is itself
    /// reported by the engine).
    pub reason: String,
}

/// The output of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All code tokens in source order.
    pub tokens: Vec<Token>,
    /// All `evop-lint: allow(...)` directives found in comments.
    pub directives: Vec<Directive>,
}

/// Tokenises `src`. Never fails: unterminated constructs simply consume
/// to end of input (the compiler is the authority on validity; the linter
/// only needs to stay sound on code that compiles).
pub fn lex(src: &str) -> Lexed {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    src: &'a str,
    pos: usize,
    line: u32,
    out: Lexed,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { bytes: src.as_bytes(), src, pos: 0, line: 1, out: Lexed::default() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances one byte, tracking newlines.
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn run(mut self) -> Lexed {
        // A shebang (`#!...` at the very start of the file, as cargo-script
        // files carry) is not Rust tokens; skip its line. `#![attr]` inner
        // attributes are real code and must still lex.
        if self.src.starts_with("#!") && self.peek_at(2) != Some(b'[') {
            while let Some(b) = self.peek() {
                if b == b'\n' {
                    break;
                }
                self.bump();
            }
        }
        while let Some(b) = self.peek() {
            let line = self.line;
            match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.char_or_lifetime(),
                b'r' | b'b' => self.raw_prefixed_or_ident(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident(),
                _ => {
                    self.bump();
                    // Join `==` and `!=` into one token; everything else
                    // stays a single character.
                    let text = if (b == b'=' || b == b'!') && self.peek() == Some(b'=') {
                        self.bump();
                        if b == b'=' {
                            "=="
                        } else {
                            "!="
                        }
                    } else {
                        &self.src[self.pos - 1..self.pos]
                    };
                    self.out.tokens.push(Token::new(TokenKind::Punct, line, text));
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
        if let Some(d) = scan_directive(&self.src[start..self.pos], line) {
            self.out.directives.push(d);
        }
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let start = self.pos;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(), self.peek_at(1)) {
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some(b'*'), Some(b'/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break, // unterminated: consume to EOF
            }
        }
        if let Some(d) = scan_directive(&self.src[start..self.pos], line) {
            self.out.directives.push(d);
        }
    }

    fn string(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        while let Some(b) = self.bump() {
            match b {
                b'\\' => {
                    self.bump(); // the escaped byte ('"', '\\', 'n', …)
                }
                b'"' => break,
                _ => {}
            }
        }
        self.out.tokens.push(Token::new(TokenKind::Str, line, ""));
    }

    /// `'a` (lifetime) vs `'a'` / `'\n'` / `'\u{…}'` (char literal).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        self.bump(); // opening quote
        match self.peek() {
            // Escape: definitely a char literal.
            Some(b'\\') => {
                self.bump();
                self.bump(); // escaped byte; `\u{…}` handled by the loop below
                while let Some(b) = self.peek() {
                    if b == b'\'' {
                        self.bump();
                        break;
                    }
                    self.bump();
                }
                self.out.tokens.push(Token::new(TokenKind::Char, line, ""));
            }
            Some(b) if is_ident_start(b) => {
                // `'x'` is a char; `'x` followed by anything but `'` is a
                // lifetime (`'static`, `'a`).
                let start = self.pos;
                while self.peek().map(is_ident_continue).unwrap_or(false) {
                    self.bump();
                }
                if self.peek() == Some(b'\'') {
                    self.bump();
                    self.out.tokens.push(Token::new(TokenKind::Char, line, ""));
                } else {
                    let text = self.src[start..self.pos].to_owned();
                    self.out.tokens.push(Token::new(TokenKind::Lifetime, line, text));
                }
            }
            // `'('`, `' '`, `'6'` …: a one-byte char literal.
            Some(_) => {
                self.bump();
                if self.peek() == Some(b'\'') {
                    self.bump();
                }
                self.out.tokens.push(Token::new(TokenKind::Char, line, ""));
            }
            None => {}
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `r#ident`, `b'…'`, `b"…"`, `br#"…"#`,
    /// or a plain identifier starting with `r`/`b`.
    fn raw_prefixed_or_ident(&mut self) {
        let b0 = self.peek().unwrap_or(0);
        let mut ahead = 1;
        if b0 == b'b' && self.peek_at(1) == Some(b'r') {
            ahead = 2; // br…
        }
        // Count hashes after the prefix.
        let mut hashes = 0usize;
        while self.peek_at(ahead + hashes) == Some(b'#') {
            hashes += 1;
        }
        let next = self.peek_at(ahead + hashes);

        let is_raw_str = (b0 == b'r' || ahead == 2) && next == Some(b'"');
        let is_raw_ident =
            b0 == b'r' && ahead == 1 && hashes == 1 && next.map(is_ident_start).unwrap_or(false);
        let is_byte_char = b0 == b'b' && ahead == 1 && hashes == 0 && next == Some(b'\'');
        let is_byte_str = b0 == b'b' && ahead == 1 && hashes == 0 && next == Some(b'"');

        if is_raw_str {
            let line = self.line;
            for _ in 0..ahead + hashes + 1 {
                self.bump(); // prefix, hashes, opening quote
            }
            // Body runs to `"` followed by `hashes` hashes. No escapes.
            'body: while let Some(b) = self.bump() {
                if b == b'"' {
                    for i in 0..hashes {
                        if self.peek_at(i) != Some(b'#') {
                            continue 'body;
                        }
                    }
                    for _ in 0..hashes {
                        self.bump();
                    }
                    break;
                }
            }
            self.out.tokens.push(Token::new(TokenKind::Str, line, ""));
        } else if is_raw_ident {
            self.bump(); // r
            self.bump(); // #
            self.ident();
        } else if is_byte_char {
            self.bump(); // b
            self.char_or_lifetime();
        } else if is_byte_str {
            self.bump(); // b
            self.string();
        } else {
            self.ident();
        }
    }

    fn number(&mut self) {
        let line = self.line;
        let start = self.pos;
        let mut float = false;
        while self.peek().map(|b| b.is_ascii_digit() || b == b'_').unwrap_or(false) {
            self.bump();
        }
        // Fraction: only when the dot is followed by a digit, so `1.max(2)`
        // and ranges `0..n` lex as an integer then punctuation.
        if self.peek() == Some(b'.') && self.peek_at(1).map(|b| b.is_ascii_digit()).unwrap_or(false)
        {
            float = true;
            self.bump();
            while self.peek().map(|b| b.is_ascii_digit() || b == b'_').unwrap_or(false) {
                self.bump();
            }
        }
        // Exponent.
        if matches!(self.peek(), Some(b'e' | b'E'))
            && matches!(
                (self.peek_at(1), self.peek_at(2)),
                (Some(b'0'..=b'9'), _) | (Some(b'+' | b'-'), Some(b'0'..=b'9'))
            )
        {
            float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            while self.peek().map(|b| b.is_ascii_digit() || b == b'_').unwrap_or(false) {
                self.bump();
            }
        }
        // Suffix (`u32`, `f64`, hex digits of `0x…`, …).
        let suffix_start = self.pos;
        while self.peek().map(is_ident_continue).unwrap_or(false) {
            self.bump();
        }
        let suffix = &self.src[suffix_start..self.pos];
        if suffix == "f32" || suffix == "f64" {
            float = true;
        }
        let kind = if float { TokenKind::Float } else { TokenKind::Int };
        self.out.tokens.push(Token::new(kind, line, &self.src[start..self.pos]));
    }

    fn ident(&mut self) {
        let line = self.line;
        let start = self.pos;
        while self.peek().map(is_ident_continue).unwrap_or(false) {
            self.bump();
        }
        if self.pos == start {
            // Defensive: caller guaranteed an ident start; never loop.
            self.bump();
        }
        self.out.tokens.push(Token::new(TokenKind::Ident, line, &self.src[start..self.pos]));
    }
}

/// Parses `evop-lint: allow(rule) -- reason` out of a comment body.
///
/// The marker must be the first thing in the comment (after the comment
/// sigils), so prose that merely *mentions* the syntax — like this doc
/// comment — never parses as a directive.
fn scan_directive(comment: &str, line: u32) -> Option<Directive> {
    let body = comment.trim_start_matches(['/', '*', '!']).trim_start();
    let rest = body.strip_prefix("evop-lint:")?.trim_start();
    let args = rest.strip_prefix("allow(")?;
    let close = args.find(')')?;
    let rule = args[..close].trim().to_owned();
    let after = &args[close + 1..];
    let reason = match after.find("--") {
        Some(dash) => after[dash + 2..].trim().trim_end_matches("*/").trim().to_owned(),
        None => String::new(),
    };
    Some(Directive { line, rule, reason })
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}
