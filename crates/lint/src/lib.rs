//! `evop-lint` — a workspace-wide determinism & robustness analyzer with
//! a ratchet baseline.
//!
//! Every behavioural claim this reproduction makes (cloudbursting
//! crossovers, fault-recovery timelines, byte-identical same-seed traces)
//! rests on the discrete-event simulator being *deterministic*, and on
//! the service layer not panicking on untrusted input. Those properties
//! used to be enforced by convention; this crate enforces them by
//! tooling, in the spirit of KheOps' argument that repeatability must be
//! machine-checked, not promised.
//!
//! The pipeline is: a hand-rolled Rust [`lexer`] (no external parser —
//! the workspace builds offline and `syn` is not vendored) feeds a
//! [`rules`] engine scoped per crate and per path by [`engine::classify`].
//! In parallel, a lightweight item [`parse`]r builds per-crate symbol
//! tables that [`graph`] resolves into a conservative whole-workspace
//! call graph, over which three interprocedural analyses run:
//! panic-[`reach`]ability for the serving crates, determinism [`taint`]
//! from nondeterminism sources into the report harnesses, and the
//! parallel-readiness audit of the sim/models hot paths. All findings
//! are diffed against a committed [`baseline`] (`lint-baseline.json`,
//! format v2: per-rule severity + per-file counts) so that CI fails on
//! any *new* violation while existing debt is burned down incrementally.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p evop-lint              # gate: compare against the baseline
//! cargo run -p evop-lint -- --json    # machine-readable findings
//! cargo run -p evop-lint -- --sarif out.sarif   # SARIF 2.1.0 export
//! cargo run -p evop-lint -- --update-baseline   # record an intentional ratchet move
//! cargo run -p evop-lint -- graph     # the call graph itself (JSON; --dot for Graphviz)
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod reach;
pub mod rules;
pub mod taint;

pub use baseline::{Baseline, Delta, RuleEntry, Verdict};
pub use engine::{
    analyze_files, analyze_source, analyze_workspace, classify, workspace_sources, FileScope,
    Report,
};
pub use graph::{Graph, Node};
pub use lexer::{lex, Directive, Lexed, Token, TokenKind};
pub use parse::{parse_file, ParsedFile};
pub use rules::{severity_of, Finding, RuleInfo, RULES};

/// The committed ratchet file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";
