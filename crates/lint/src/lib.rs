//! `evop-lint` — a workspace-wide determinism & robustness analyzer with
//! a ratchet baseline.
//!
//! Every behavioural claim this reproduction makes (cloudbursting
//! crossovers, fault-recovery timelines, byte-identical same-seed traces)
//! rests on the discrete-event simulator being *deterministic*, and on
//! the service layer not panicking on untrusted input. Those properties
//! used to be enforced by convention; this crate enforces them by
//! tooling, in the spirit of KheOps' argument that repeatability must be
//! machine-checked, not promised.
//!
//! The pipeline is: a hand-rolled Rust [`lexer`] (no external parser —
//! the workspace builds offline and `syn` is not vendored) feeds a
//! [`rules`] engine scoped per crate and per path by [`engine::classify`];
//! findings are diffed against a committed [`baseline`]
//! (`lint-baseline.json`) so that CI fails on any *new* violation while
//! existing debt is burned down incrementally.
//!
//! Run it from the workspace root:
//!
//! ```text
//! cargo run -p evop-lint              # gate: compare against the baseline
//! cargo run -p evop-lint -- --json    # machine-readable findings
//! cargo run -p evop-lint -- --update-baseline   # record an intentional ratchet move
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod lexer;
pub mod rules;

pub use baseline::{Baseline, Delta, Verdict};
pub use engine::{analyze_source, analyze_workspace, classify, FileScope, Report};
pub use lexer::{lex, Directive, Lexed, Token, TokenKind};
pub use rules::{Finding, RuleInfo, RULES};

/// The committed ratchet file name, resolved against the workspace root.
pub const BASELINE_FILE: &str = "lint-baseline.json";
