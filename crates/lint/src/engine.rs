//! Workspace walking, file classification and directive application.
//!
//! The engine turns a repository root into a deterministic, sorted list of
//! [`Report`] findings: it walks every `.rs` file (skipping `target/`,
//! `vendor/` and dot-directories), classifies each file into a
//! [`FileScope`], lexes it, runs the rules, and then applies in-source
//! `evop-lint: allow(...)` directives — turning malformed or unused
//! directives into findings of their own.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer;
use crate::rules::{self, is_known_rule};

/// Crates held to library standards: robustness rules apply to their
/// non-test, non-bin code, and their `src/lib.rs` must carry
/// `#![forbid(unsafe_code)]`. `bench` is a measurement harness (its bins
/// print and time); `lint` is this tool. Both still get determinism rules.
pub const LIBRARY_CRATES: &[&str] = &[
    "sim", "obs", "data", "cloud", "xcloud", "services", "models", "broker", "cache", "chaos",
    "workflow", "portal", "core", "lint",
];

/// How one file is classified, which decides rule applicability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileScope {
    /// Path relative to the workspace root, `/`-separated.
    pub rel: String,
    /// `true` when the file belongs to a crate in [`LIBRARY_CRATES`] or
    /// to the root `evop` crate's `src/`.
    pub is_library: bool,
    /// Path-level test code: under `tests/`, `benches/` or `examples/`.
    /// (`#[cfg(test)]` blocks are masked separately, per token.)
    pub is_test: bool,
    /// Binary code: under `src/bin/` or a `src/main.rs`.
    pub is_bin: bool,
    /// The crate root that must carry `#![forbid(unsafe_code)]`.
    pub is_lib_root: bool,
}

/// Classifies a workspace-relative path.
pub fn classify(rel: &str) -> FileScope {
    let parts: Vec<&str> = rel.split('/').collect();
    let (crate_name, in_crate): (Option<&str>, &[&str]) = match parts.as_slice() {
        ["crates", name, rest @ ..] => (Some(name), rest),
        rest => (None, rest),
    };
    let is_library = match crate_name {
        Some(name) => LIBRARY_CRATES.contains(&name),
        // Root package: its `src/` is library code; `tests/`, `examples/`
        // are test code and not held to library robustness rules.
        None => in_crate.first() == Some(&"src"),
    };
    let is_test = matches!(in_crate.first(), Some(&"tests") | Some(&"benches") | Some(&"examples"));
    let is_bin = in_crate.len() >= 2 && in_crate[0] == "src" && in_crate[1] == "bin"
        || in_crate == ["src", "main.rs"];
    let is_lib_root = in_crate == ["src", "lib.rs"]
        && match crate_name {
            Some(name) => LIBRARY_CRATES.contains(&name),
            None => true,
        };
    FileScope { rel: rel.to_owned(), is_library, is_test, is_bin, is_lib_root }
}

/// One reportable finding, located and excerpted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Stable rule id.
    pub rule: String,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Why this is a hazard.
    pub message: String,
    /// The trimmed source line.
    pub excerpt: String,
}

/// Analyzes every `.rs` file under `root`. Findings are sorted by
/// (path, line, rule) so output and baselines are deterministic.
///
/// # Errors
///
/// Returns the first I/O error encountered while walking or reading.
pub fn analyze_workspace(root: &Path) -> io::Result<Vec<Report>> {
    Ok(analyze_files(&workspace_sources(root)?))
}

/// Collects every `.rs` file under `root` (skipping `target/`, `vendor/`
/// and dot-directories) as sorted `(workspace-relative path, source)`
/// pairs — the input shape of [`analyze_files`] and
/// [`crate::graph::build`].
///
/// # Errors
///
/// Returns the first I/O error encountered while walking or reading.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut sources = Vec::with_capacity(files.len());
    for rel in files {
        let src = fs::read_to_string(root.join(&rel))?;
        sources.push((rel, src));
    }
    Ok(sources)
}

/// Analyzes a set of `(workspace-relative path, source)` files as one
/// workspace: per-file token rules, then the call graph and the three
/// interprocedural analyses (panic-reachability, determinism taint,
/// parallel readiness), then per-file `allow` directives over the
/// combined findings — a directive next to a `reach-panic` entry or a
/// `par-ready` hazard suppresses it like any local finding.
///
/// Findings are sorted by (path, line, rule) so output and baselines
/// are deterministic.
pub fn analyze_files(files: &[(String, String)]) -> Vec<Report> {
    let mut lexed_files = Vec::with_capacity(files.len());
    let mut reports = Vec::new();

    for (rel, src) in files {
        let scope = classify(rel);
        let lexed = lexer::lex(src);
        let lines: Vec<String> = src.lines().map(|l| l.trim().to_owned()).collect();
        for f in rules::check_file(&scope, &lexed) {
            reports.push(Report {
                rule: f.rule.to_owned(),
                path: rel.clone(),
                line: f.line,
                message: f.message,
                excerpt: lines.get(f.line as usize - 1).cloned().unwrap_or_default(),
            });
        }
        lexed_files.push((rel.clone(), lexed, lines));
    }

    // The semantic passes see the whole workspace at once.
    let graph = crate::graph::build(files);
    let excerpt = |path: &str, line: u32| -> String {
        lexed_files
            .iter()
            .find(|(rel, _, _)| rel == path)
            .and_then(|(_, _, lines)| lines.get(line as usize - 1).cloned())
            .unwrap_or_default()
    };
    reports.extend(crate::reach::panic_reachability(&graph, excerpt));
    reports.extend(crate::taint::determinism_taint(&graph, excerpt));
    reports.extend(crate::reach::parallel_readiness(&graph, excerpt));

    // Apply directives per file over the combined findings: a directive
    // covers its own line and the next.
    let mut out = Vec::new();
    for (rel, lexed, lines) in &lexed_files {
        let mut used = vec![false; lexed.directives.len()];
        'finding: for report in reports.iter().filter(|r| &r.path == rel) {
            for (di, d) in lexed.directives.iter().enumerate() {
                if d.rule == report.rule
                    && !d.reason.is_empty()
                    && (d.line == report.line || d.line + 1 == report.line)
                {
                    used[di] = true;
                    continue 'finding;
                }
            }
            out.push(report.clone());
        }

        // Directive hygiene: unknown rule, missing reason, or nothing
        // matched. Determinism-source directives consumed by the parser
        // (see `crate::parse`) count as used even when no token-level
        // finding remains.
        for (d, used) in lexed.directives.iter().zip(used) {
            let problem = if !is_known_rule(&d.rule) {
                Some(format!("allow directive names unknown rule `{}`", d.rule))
            } else if d.reason.is_empty() {
                Some(format!("allow({}) directive is missing a `-- reason`", d.rule))
            } else if !used && !suppresses_token_finding(&d.rule) {
                None
            } else if !used {
                Some(format!("allow({}) directive suppresses nothing; remove it", d.rule))
            } else {
                None
            };
            if let Some(message) = problem {
                out.push(Report {
                    rule: "hyg-directive".to_owned(),
                    path: rel.clone(),
                    line: d.line,
                    message,
                    excerpt: lines.get(d.line as usize - 1).cloned().unwrap_or_default(),
                });
            }
        }
    }

    out.sort_by(|a, b| (&a.path, a.line, &a.rule).cmp(&(&b.path, b.line, &b.rule)));
    out
}

/// Whether an unused `allow(rule)` directive is certainly dead. The
/// interprocedural rules report at one representative site, so a
/// directive placed on any other implicated line legitimately matches
/// nothing in some runs — don't flag those as dead.
fn suppresses_token_finding(rule: &str) -> bool {
    !matches!(rule, "reach-panic" | "det-taint" | "par-ready")
}

/// Analyzes one file's source text (the unit the fixture tests drive).
/// Interprocedural analyses still run, confined to this file's graph.
pub fn analyze_source(rel: &str, src: &str) -> Vec<Report> {
    analyze_files(&[(rel.to_owned(), src.to_owned())])
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || matches!(&*name, "target" | "vendor" | "node_modules") {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_path(root, &path));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    // Normalise to `/` so baselines are portable across platforms.
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
