//! The conservative whole-workspace call graph.
//!
//! Nodes are the functions parsed by [`crate::parse`]; edges are call
//! sites resolved by name and path:
//!
//! * **path calls** resolve through the file's `use` imports, `crate::`
//!   paths and `evop_*` crate names — `Broker::new(...)` after
//!   `use evop_broker::Broker;` lands on `broker::Broker::new`;
//! * **method calls** resolve by name across every `impl` block in the
//!   workspace, except the std-ubiquitous names the parser skips
//!   (`.clone()`, `.len()`, …) — linking those would collapse the graph;
//! * anything unresolvable (std, vendored deps, macros) drops out, so
//!   every edge in the graph is a workspace-internal call that could
//!   really happen. Over-approximation is confined to same-name methods
//!   on different types, which is the price of no type checking.
//!
//! The graph serialises to JSON (golden-pinned in tests) and Graphviz
//! DOT via the `evop-lint graph` subcommand.

use std::collections::{BTreeMap, BTreeSet};

use crate::parse::{parse_file, ParsedFile, Site};

/// One function node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Function name.
    pub name: String,
    /// `impl`/`trait` type the function is defined on, if any.
    pub impl_type: Option<String>,
    /// Crate short name (`broker`, `core`, … or `evop` for the root).
    pub crate_name: String,
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line of the definition.
    pub line: u32,
    /// `pub` in any form.
    pub is_pub: bool,
    /// Test code: path-level test file or `#[cfg(test)]` item.
    pub is_test: bool,
    /// Library (non-test, non-bin) code per the rule engine's scoping.
    pub is_lib: bool,
    /// Panic hazard sites in the body.
    pub panic_sites: Vec<Site>,
    /// Determinism sources in the body (directive-sanctioned excluded).
    pub det_sources: Vec<Site>,
    /// Parallel-readiness hazards in the body.
    pub par_sites: Vec<Site>,
}

impl Node {
    /// `Type::name` or `name`, for display.
    pub fn label(&self) -> String {
        match &self.impl_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// `crate::Type::name`, unique enough for graph output.
    pub fn qualified(&self) -> String {
        format!("{}::{}", self.crate_name, self.label())
    }
}

/// The resolved call graph.
#[derive(Debug, Default)]
pub struct Graph {
    /// All function nodes, in (file, line) order.
    pub nodes: Vec<Node>,
    /// Caller → sorted, deduplicated callees.
    pub succ: Vec<Vec<usize>>,
    /// Module-level `static mut` declarations: (file, name, line).
    pub static_muts: Vec<(String, String, u32)>,
}

/// The crate short name a workspace-relative path belongs to.
pub fn crate_of(rel: &str) -> String {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, ..] => (*name).to_owned(),
        _ => "evop".to_owned(),
    }
}

/// Builds the call graph over the given `(path, source)` files.
pub fn build(files: &[(String, String)]) -> Graph {
    let parsed: Vec<ParsedFile> = files.iter().map(|(rel, src)| parse_file(rel, src)).collect();

    let mut graph = Graph::default();
    // (file index, fn index) per node, for call resolution context.
    let mut origins: Vec<(usize, usize)> = Vec::new();
    for (fi, pf) in parsed.iter().enumerate() {
        let crate_name = crate_of(&pf.rel);
        let scope = pf.scope.clone().unwrap_or_else(|| crate::engine::classify(&pf.rel));
        for (ni, f) in pf.fns.iter().enumerate() {
            graph.nodes.push(Node {
                name: f.name.clone(),
                impl_type: f.impl_type.clone(),
                crate_name: crate_name.clone(),
                file: pf.rel.clone(),
                line: f.line,
                is_pub: f.is_pub,
                is_test: f.is_test || scope.is_test,
                is_lib: scope.is_library && !scope.is_test && !scope.is_bin && !f.is_test,
                panic_sites: f.panic_sites.clone(),
                det_sources: f.det_sources.clone(),
                par_sites: f.par_sites.clone(),
            });
            origins.push((fi, ni));
        }
        for (name, line) in &pf.static_muts {
            graph.static_muts.push((pf.rel.clone(), name.clone(), *line));
        }
    }

    // Sort nodes by (file, line) so ids — and therefore all output — are
    // stable regardless of input order.
    let mut order: Vec<usize> = (0..graph.nodes.len()).collect();
    order.sort_by(|&a, &b| {
        (&graph.nodes[a].file, graph.nodes[a].line)
            .cmp(&(&graph.nodes[b].file, graph.nodes[b].line))
    });
    let mut remap = vec![0usize; order.len()];
    for (new_id, &old_id) in order.iter().enumerate() {
        remap[old_id] = new_id;
    }
    let mut nodes = vec![None; order.len()];
    let mut origs = vec![(0usize, 0usize); order.len()];
    for (old_id, node) in graph.nodes.into_iter().enumerate() {
        nodes[remap[old_id]] = Some(node);
        origs[remap[old_id]] = origins[old_id];
    }
    graph.nodes = nodes.into_iter().flatten().collect();

    // Per-file visible crates: the file's own crate plus every workspace
    // crate it imports. Cross-crate *method* edges are restricted to
    // visible crates — a `.render()` call cannot land on a crate the
    // caller does not even depend on. (Path calls name their crate
    // explicitly and need no such fence.)
    let visible: Vec<BTreeSet<String>> = parsed
        .iter()
        .map(|pf| {
            let mut set = BTreeSet::new();
            set.insert(crate_of(&pf.rel));
            for target in pf.imports.values() {
                if let Some(head) = target.first() {
                    if let Some(rest) = head.strip_prefix("evop_") {
                        set.insert(rest.to_owned());
                    } else if head == "evop" {
                        set.insert("evop".to_owned());
                    }
                }
            }
            set
        })
        .collect();

    // Indexes for resolution.
    let mut by_method: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_type_method: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_crate_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    let mut by_file_name: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (id, n) in graph.nodes.iter().enumerate() {
        if let Some(ty) = &n.impl_type {
            by_method.entry(&n.name).or_default().push(id);
            by_type_method.entry((ty, &n.name)).or_default().push(id);
        }
        by_crate_name.entry((&n.crate_name, &n.name)).or_default().push(id);
        by_file_name.entry((&n.file, &n.name)).or_default().push(id);
    }

    graph.succ = vec![Vec::new(); graph.nodes.len()];
    for (id, &(fi, ni)) in origs.iter().enumerate() {
        let pf = &parsed[fi];
        let f = &pf.fns[ni];
        let node_crate = graph.nodes[id].crate_name.clone();
        let mut callees = BTreeSet::new();
        for call in &f.calls {
            let targets = if call.method {
                let mut t = resolve_method(&call.path[0], &by_method);
                t.retain(|&target| visible[fi].contains(&graph.nodes[target].crate_name));
                t
            } else {
                resolve_path(
                    &call.path,
                    pf,
                    &node_crate,
                    graph.nodes[id].impl_type.as_deref(),
                    &by_type_method,
                    &by_crate_name,
                    &by_file_name,
                )
            };
            for t in targets {
                if t != id {
                    callees.insert(t);
                }
            }
        }
        graph.succ[id] = callees.into_iter().collect();
    }
    graph
}

fn resolve_method(name: &str, by_method: &BTreeMap<&str, Vec<usize>>) -> Vec<usize> {
    by_method.get(name).cloned().unwrap_or_default()
}

/// External path heads that can never be workspace functions.
const EXTERNAL_HEADS: &[&str] = &[
    "std",
    "core",
    "alloc",
    "rand",
    "rand_chacha",
    "serde",
    "serde_json",
    "proptest",
    "f32",
    "f64",
    "u8",
    "u16",
    "u32",
    "u64",
    "u128",
    "usize",
    "i8",
    "i16",
    "i32",
    "i64",
    "i128",
    "isize",
    "str",
    "String",
    "Vec",
    "Box",
    "Option",
    "Some",
    "None",
    "Result",
    "Ok",
    "Err",
    "Iterator",
    "Default",
    "Clone",
    "Copy",
    "Drop",
    "From",
    "Into",
    "TryFrom",
    "PathBuf",
    "Path",
    "BTreeMap",
    "BTreeSet",
    "VecDeque",
    "Duration",
    "Ordering",
    "char",
    "bool",
];

#[allow(clippy::too_many_arguments)]
fn resolve_path(
    path: &[String],
    pf: &ParsedFile,
    node_crate: &str,
    self_type: Option<&str>,
    by_type_method: &BTreeMap<(&str, &str), Vec<usize>>,
    by_crate_name: &BTreeMap<(&str, &str), Vec<usize>>,
    by_file_name: &BTreeMap<(&str, &str), Vec<usize>>,
) -> Vec<usize> {
    if path.is_empty() {
        return Vec::new();
    }
    // Expand the head through this file's imports, then strip
    // `crate`/`self`/`super` qualifiers.
    let mut full: Vec<String> = match pf.imports.get(&path[0]) {
        Some(target) => target.iter().cloned().chain(path.iter().skip(1).cloned()).collect(),
        None => path.to_vec(),
    };
    while matches!(full[0].as_str(), "crate" | "self" | "super") {
        full.remove(0);
        if full.is_empty() {
            return Vec::new();
        }
    }

    // `Self::helper()` inside an impl block.
    if full[0] == "Self" {
        if let (Some(ty), Some(name)) = (self_type, full.last()) {
            if let Some(ids) = by_type_method.get(&(ty, name.as_str())) {
                return ids.clone();
            }
        }
        return Vec::new();
    }

    // Which crate does the path land in?
    let target_crate: String = match full[0].strip_prefix("evop_") {
        Some(rest) => {
            let c = rest.to_owned();
            full.remove(0);
            if full.is_empty() {
                return Vec::new();
            }
            c
        }
        None if full[0] == "evop" => {
            full.remove(0);
            if full.is_empty() {
                return Vec::new();
            }
            "evop".to_owned()
        }
        None if EXTERNAL_HEADS.contains(&full[0].as_str()) => return Vec::new(),
        None => node_crate.to_owned(),
    };

    let name = full.last().cloned().unwrap_or_default();
    // `Type::method` when the second-to-last segment looks like a type.
    if full.len() >= 2 {
        let qual = &full[full.len() - 2];
        if qual.chars().next().map(char::is_uppercase).unwrap_or(false) {
            return by_type_method
                .get(&(qual.as_str(), name.as_str()))
                .map(|ids| {
                    // Prefer the target crate's impl when several crates
                    // define `Type::method` with the same names.
                    let in_crate: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&i| node_for(by_crate_name, i, &target_crate))
                        .collect();
                    if in_crate.is_empty() {
                        ids.clone()
                    } else {
                        in_crate
                    }
                })
                .unwrap_or_default();
        }
    }

    // Free function: same file first (tightest scope), then the crate.
    if path.len() == 1 && !pf.imports.contains_key(&path[0]) {
        if let Some(ids) = by_file_name.get(&(pf.rel.as_str(), name.as_str())) {
            let free: Vec<usize> = ids.to_vec();
            if !free.is_empty() {
                return free;
            }
        }
    }
    by_crate_name.get(&(target_crate.as_str(), name.as_str())).cloned().unwrap_or_default()
}

/// `true` when node `id` belongs to `crate_name` (via the index keys).
fn node_for(
    by_crate_name: &BTreeMap<(&str, &str), Vec<usize>>,
    id: usize,
    crate_name: &str,
) -> bool {
    by_crate_name.iter().any(|((c, _), ids)| *c == crate_name && ids.contains(&id))
}

impl Graph {
    /// Edge list as (caller, callee) id pairs, sorted.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (from, tos) in self.succ.iter().enumerate() {
            for &to in tos {
                out.push((from, to));
            }
        }
        out
    }

    /// JSON form: sorted nodes with ids, edge id pairs, static muts.
    pub fn to_json(&self) -> serde_json::Value {
        let nodes: Vec<serde_json::Value> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(id, n)| {
                serde_json::json!({
                    "id": id,
                    "name": n.qualified(),
                    "file": n.file,
                    "line": n.line,
                    "pub": n.is_pub,
                    "test": n.is_test,
                    "panic_sites": n.panic_sites.len(),
                    "det_sources": n.det_sources.len(),
                    "par_sites": n.par_sites.len(),
                })
            })
            .collect();
        let edges: Vec<serde_json::Value> =
            self.edges().iter().map(|(a, b)| serde_json::json!([a, b])).collect();
        serde_json::json!({
            "version": 1,
            "nodes": nodes,
            "edges": edges,
            "static_muts": self.static_muts.iter().map(|(f, n, l)| {
                serde_json::json!({"file": f, "name": n, "line": l})
            }).collect::<Vec<_>>(),
        })
    }

    /// Graphviz DOT form, one subgraph per crate.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph evop {\n  rankdir=LR;\n  node [shape=box];\n");
        let mut by_crate: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (id, n) in self.nodes.iter().enumerate() {
            by_crate.entry(&n.crate_name).or_default().push(id);
        }
        for (crate_name, ids) in &by_crate {
            out.push_str(&format!(
                "  subgraph \"cluster_{crate_name}\" {{\n    label=\"{crate_name}\";\n"
            ));
            for &id in ids {
                let n = &self.nodes[id];
                let color = if !n.panic_sites.is_empty() {
                    " color=red"
                } else if !n.det_sources.is_empty() {
                    " color=orange"
                } else if !n.par_sites.is_empty() {
                    " color=blue"
                } else {
                    ""
                };
                out.push_str(&format!("    n{id} [label=\"{}\"{color}];\n", n.label()));
            }
            out.push_str("  }\n");
        }
        for (a, b) in self.edges() {
            out.push_str(&format!("  n{a} -> n{b};\n"));
        }
        out.push_str("}\n");
        out
    }

    /// Breadth-first reachability from `entries`, returning for each node
    /// the BFS predecessor (towards an entry) or `usize::MAX` when
    /// unreachable; entries are their own predecessors.
    pub fn bfs(&self, entries: &[usize]) -> Vec<usize> {
        self.bfs_where(entries, |_| true)
    }

    /// [`Graph::bfs`] visiting only library (non-test, non-bin) nodes —
    /// the traversal the semantic analyses use: production entry points
    /// cannot execute test or harness code, so chains through it are
    /// resolver over-approximation, not reachability.
    pub fn bfs_lib(&self, entries: &[usize]) -> Vec<usize> {
        self.bfs_where(entries, |n| self.nodes[n].is_lib)
    }

    fn bfs_where(&self, entries: &[usize], keep: impl Fn(usize) -> bool) -> Vec<usize> {
        let mut pred = vec![usize::MAX; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        for &e in entries {
            if pred[e] == usize::MAX && keep(e) {
                pred[e] = e;
                queue.push_back(e);
            }
        }
        while let Some(at) = queue.pop_front() {
            for &next in &self.succ[at] {
                if pred[next] == usize::MAX && keep(next) {
                    pred[next] = at;
                    queue.push_back(next);
                }
            }
        }
        pred
    }

    /// The entry → node call path implied by a [`Graph::bfs`] result.
    pub fn path_to(&self, pred: &[usize], mut node: usize) -> Vec<usize> {
        let mut path = vec![node];
        while pred[node] != node && pred[node] != usize::MAX {
            node = pred[node];
            path.push(node);
        }
        path.reverse();
        path
    }
}
