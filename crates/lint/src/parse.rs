//! A lightweight item parser over the token stream.
//!
//! `evop-lint` builds offline with no external parser, so this module
//! recovers just enough structure from [`crate::lexer`] tokens to build a
//! conservative whole-workspace call graph: function items (with
//! visibility, enclosing module path and `impl` type), the call sites
//! inside each body, `use` imports for cross-crate resolution, and the
//! hazard sites the interprocedural analyses care about — panic sites
//! (`unwrap`/`expect`/`panic!`/indexing), determinism sources (wall
//! clock, ambient RNG, `HashMap` iteration) and parallel-readiness
//! hazards (`Rc`/`RefCell`/`Cell`/`UnsafeCell`/`static mut`).
//!
//! The parser is *approximate by design*: it never needs to type-check,
//! only to stay deterministic and conservative. Anything it cannot
//! resolve it drops (for calls) or attributes to the innermost enclosing
//! function (for sites), which keeps the downstream analyses free of
//! false paths through text that is not code.

use std::collections::BTreeMap;

use crate::engine::{classify, FileScope};
use crate::lexer::{lex, Directive, Token, TokenKind};
use crate::rules::cfg_test_mask;

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Call {
    /// The call path: `["f"]`, `["Broker", "new"]`, or for method calls
    /// a single segment (`["connect"]` for `broker.connect(...)`).
    pub path: Vec<String>,
    /// `true` for `receiver.name(...)` method syntax (resolved by name
    /// across `impl` blocks), `false` for path calls.
    pub method: bool,
    /// 1-based line of the call.
    pub line: u32,
}

/// A hazard site inside a function body, tagged with what it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Site {
    /// 1-based line.
    pub line: u32,
    /// Short description, e.g. `.unwrap()` or `Instant::now()`.
    pub what: String,
}

/// One parsed function item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDef {
    /// The function's name.
    pub name: String,
    /// The `impl` (or `trait`) type it is defined on, if any.
    pub impl_type: Option<String>,
    /// Enclosing in-file module path (`mod` nesting), outermost first.
    pub module: Vec<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// `pub` in any form (`pub`, `pub(crate)`, …).
    pub is_pub: bool,
    /// Defined under `#[cfg(test)]` (hazards inside are not collected,
    /// and the function is never an analysis entry point).
    pub is_test: bool,
    /// Call sites in body order.
    pub calls: Vec<Call>,
    /// Panic hazards: `.unwrap()`, `.expect(`, `panic!`-family, indexing.
    pub panic_sites: Vec<Site>,
    /// Determinism sources (wall clock, ambient RNG, hash iteration),
    /// excluding directive-sanctioned sites.
    pub det_sources: Vec<Site>,
    /// Parallel-readiness hazards (`Rc`, `RefCell`, `Cell`,
    /// `UnsafeCell`, `static mut`).
    pub par_sites: Vec<Site>,
}

/// The parse result for one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// Workspace-relative path.
    pub rel: String,
    /// The file's scope classification (shared with the rule engine).
    pub scope: Option<FileScope>,
    /// `use` imports: local name → full path segments.
    pub imports: BTreeMap<String, Vec<String>>,
    /// Every function item in the file.
    pub fns: Vec<FnDef>,
    /// Module-level `static mut` declarations (name, line).
    pub static_muts: Vec<(String, u32)>,
    /// All lint directives in the file (for semantic-finding suppression).
    pub directives: Vec<Directive>,
}

/// Parses one file into items. Never fails; unparseable stretches are
/// skipped token by token.
pub fn parse_file(rel: &str, src: &str) -> ParsedFile {
    let lexed = lex(src);
    let mask = cfg_test_mask(&lexed.tokens);
    let mut out = ParsedFile {
        rel: rel.to_owned(),
        scope: Some(classify(rel)),
        directives: lexed.directives.clone(),
        ..ParsedFile::default()
    };
    let mut p = Parser { tokens: &lexed.tokens, mask: &mask, i: 0, out: &mut out };
    p.items(&[], None, usize::MAX);

    // Directive-sanctioned determinism sites are not taint sources: the
    // one lint-approved wall-clock read (the bench profiler) must not
    // paint every harness above it.
    let dirs = out.directives.clone();
    for f in &mut out.fns {
        f.det_sources.retain(|s| {
            !dirs.iter().any(|d| {
                d.rule.starts_with("det-")
                    && !d.reason.is_empty()
                    && (d.line == s.line || d.line + 1 == s.line)
            })
        });
    }
    out
}

/// Method names resolved by name alone would link `.clone()`/`.len()` to
/// every same-named workspace function and melt the graph into one blob;
/// these std-ubiquitous names are never resolved as workspace calls.
const AMBIENT_METHODS: &[&str] = &[
    "abs",
    "all",
    "and_then",
    "any",
    "append",
    "as_bytes",
    "as_mut",
    "as_ref",
    "as_slice",
    "as_str",
    "binary_search",
    "ceil",
    "chain",
    "chars",
    "chunks",
    "clamp",
    "clear",
    "clone",
    "cloned",
    "cmp",
    "collect",
    "contains",
    "contains_key",
    "copied",
    "count",
    "dedup",
    "drain",
    "entry",
    "enumerate",
    "eq",
    "expect",
    "extend",
    "fill",
    "filter",
    "filter_map",
    "find",
    "find_map",
    "first",
    "flat_map",
    "flatten",
    "floor",
    "fold",
    "for_each",
    "fract",
    "get",
    "get_mut",
    "get_or_insert_with",
    "hash",
    "insert",
    "into",
    "into_iter",
    "is_empty",
    "is_finite",
    "is_nan",
    "is_none",
    "is_none_or",
    "is_some",
    "is_some_and",
    "iter",
    "iter_mut",
    "join",
    "keys",
    "last",
    "len",
    "lines",
    "ln",
    "map",
    "map_err",
    "map_or",
    "max",
    "max_by",
    "min",
    "min_by",
    "ne",
    "next",
    "ok",
    "ok_or",
    "ok_or_else",
    "or_else",
    "or_insert",
    "or_insert_with",
    "parse",
    "partial_cmp",
    "peek",
    "pop",
    "position",
    "powf",
    "powi",
    "push",
    "push_str",
    "remove",
    "resize",
    "retain",
    "rev",
    "round",
    "skip",
    "sort",
    "sort_by",
    "sort_by_key",
    "split",
    "sqrt",
    "starts_with",
    "ends_with",
    "step_by",
    "sum",
    "take",
    "to_owned",
    "to_string",
    "to_vec",
    "trim",
    "truncate",
    "unwrap",
    "unwrap_or",
    "unwrap_or_default",
    "unwrap_or_else",
    "values",
    "windows",
    "write",
    "zip",
];

/// Keywords that can directly precede a `[` without it being indexing.
const KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "Self", "static", "struct", "super", "trait", "type", "unsafe", "use",
    "where", "while", "yield", "await", "async", "union",
];

struct Parser<'a> {
    tokens: &'a [Token],
    mask: &'a [bool],
    i: usize,
    out: &'a mut ParsedFile,
}

impl Parser<'_> {
    fn t(&self, at: usize) -> Option<&Token> {
        self.tokens.get(at)
    }

    fn is_kw(&self, at: usize, kw: &str) -> bool {
        self.t(at).map(|t| t.is_ident(kw)).unwrap_or(false)
    }

    /// Parses items until `end` (exclusive) or a closing `}` at this
    /// nesting level.
    fn items(&mut self, module: &[String], impl_type: Option<&str>, end: usize) {
        while self.i < self.tokens.len().min(end) {
            let t = &self.tokens[self.i];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "use") => self.use_item(),
                (TokenKind::Ident, "mod")
                    if self.t(self.i + 1).map(|t| t.kind == TokenKind::Ident).unwrap_or(false) =>
                {
                    let name = self.tokens[self.i + 1].text.clone();
                    self.i += 2;
                    if self.t(self.i).map(|t| t.is_punct("{")).unwrap_or(false) {
                        let close = self.matching_brace(self.i);
                        self.i += 1;
                        let mut inner = module.to_vec();
                        inner.push(name);
                        self.items(&inner, impl_type, close);
                        self.i = close + 1;
                    }
                    // `mod name;` — out-of-line, nothing to do here.
                }
                (TokenKind::Ident, "impl" | "trait") => {
                    let ty = self.impl_header_type();
                    if let Some(open) = self.find_brace_before_semi() {
                        let close = self.matching_brace(open);
                        self.i = open + 1;
                        self.items(module, ty.as_deref(), close);
                        self.i = close + 1;
                    } else {
                        self.i += 1;
                    }
                }
                (TokenKind::Ident, "struct" | "enum" | "union") => {
                    // No fn items inside; skip the whole declaration.
                    if let Some(open) = self.find_brace_before_semi() {
                        self.i = self.matching_brace(open) + 1;
                    } else {
                        self.i += 1;
                    }
                }
                (TokenKind::Ident, "static")
                    if self.is_kw(self.i + 1, "mut")
                        && self
                            .t(self.i + 2)
                            .map(|t| t.kind == TokenKind::Ident)
                            .unwrap_or(false) =>
                {
                    let name = self.tokens[self.i + 2].text.clone();
                    self.out.static_muts.push((name, t.line));
                    self.i += 3;
                }
                (TokenKind::Ident, "fn")
                    if self.t(self.i + 1).map(|t| t.kind == TokenKind::Ident).unwrap_or(false) =>
                {
                    self.fn_item(module, impl_type);
                }
                (TokenKind::Punct, "{") => {
                    // A brace that is not an item we model (e.g. a const
                    // initialiser block): skip it wholesale.
                    self.i = self.matching_brace(self.i) + 1;
                }
                (TokenKind::Punct, "}") => return,
                _ => self.i += 1,
            }
        }
    }

    /// `use a::b::{c, d as e};` → imports for every leaf.
    fn use_item(&mut self) {
        self.i += 1; // `use`
        let mut prefix: Vec<String> = Vec::new();
        self.use_tree(&mut prefix);
        // Consume through the terminating `;`.
        while self.i < self.tokens.len() && !self.tokens[self.i].is_punct(";") {
            self.i += 1;
        }
        self.i += 1;
    }

    fn use_tree(&mut self, prefix: &mut Vec<String>) {
        let depth_base = prefix.len();
        loop {
            match self.t(self.i) {
                Some(t) if t.kind == TokenKind::Ident && t.text == "as" => {
                    self.i += 1;
                    if let Some(alias) = self.t(self.i).filter(|t| t.kind == TokenKind::Ident) {
                        self.out.imports.insert(alias.text.clone(), prefix.clone());
                        self.i += 1;
                    }
                }
                Some(t) if t.kind == TokenKind::Ident => {
                    prefix.push(t.text.clone());
                    self.i += 1;
                }
                Some(t) if t.is_punct(":") => {
                    self.i += 1; // each `:` of `::`
                }
                Some(t) if t.is_punct("{") => {
                    self.i += 1;
                    loop {
                        self.use_tree(prefix);
                        match self.t(self.i) {
                            Some(t) if t.is_punct(",") => self.i += 1,
                            _ => break,
                        }
                    }
                    if self.t(self.i).map(|t| t.is_punct("}")).unwrap_or(false) {
                        self.i += 1;
                    }
                    prefix.truncate(depth_base);
                    return;
                }
                Some(t) if t.is_punct("*") => {
                    self.i += 1; // glob: unresolvable, drop
                }
                _ => break,
            }
            // A leaf ends at `,`, `;` or `}`.
            if let Some(t) = self.t(self.i) {
                if t.is_punct(",") || t.is_punct(";") || t.is_punct("}") {
                    break;
                }
            } else {
                break;
            }
        }
        if prefix.len() > depth_base {
            if let Some(leaf) = prefix.last() {
                if leaf != "self" {
                    self.out.imports.insert(leaf.clone(), prefix.clone());
                }
            }
        }
        prefix.truncate(depth_base);
    }

    /// After `impl`/`trait` at `self.i`: the implemented-on type name
    /// (the last path segment before `{`, after `for` when present).
    fn impl_header_type(&self) -> Option<String> {
        let mut j = self.i + 1;
        let mut last: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut angle = 0i32;
        while let Some(t) = self.t(j) {
            if t.is_punct("{") || t.is_punct(";") {
                break;
            }
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if angle == 0 && t.kind == TokenKind::Ident {
                if t.text == "for" {
                    after_for = None;
                    last = None;
                } else if t.text != "where" {
                    last = Some(t.text.clone());
                    after_for.get_or_insert_with(|| t.text.clone());
                }
                if t.text == "where" {
                    break;
                }
            }
            j += 1;
        }
        last
    }

    /// From `self.i`, the next top-level `{` unless a `;` (outside
    /// brackets) comes first.
    fn find_brace_before_semi(&self) -> Option<usize> {
        let mut j = self.i;
        let mut depth = 0i32;
        while let Some(t) = self.t(j) {
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if depth == 0 && t.is_punct("{") {
                return Some(j);
            } else if depth == 0 && t.is_punct(";") {
                return None;
            }
            j += 1;
        }
        None
    }

    /// Index of the `}` matching the `{` at `open`.
    fn matching_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open;
        while let Some(t) = self.t(j) {
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        self.tokens.len()
    }

    /// `true` when the tokens before `at` (modifiers allowed in between)
    /// include `pub`.
    fn is_pub_before(&self, at: usize) -> bool {
        let mut j = at;
        while j > 0 {
            j -= 1;
            let t = &self.tokens[j];
            match (t.kind, t.text.as_str()) {
                (TokenKind::Ident, "pub") => return true,
                (TokenKind::Ident, "async" | "unsafe" | "const" | "extern") => {}
                (TokenKind::Str, _) => {} // `extern "C"`
                (TokenKind::Punct, ")") => {
                    // `pub(crate)` / `pub(super)`: walk back over `(..)`.
                    let mut depth = 1;
                    while j > 0 && depth > 0 {
                        j -= 1;
                        if self.tokens[j].is_punct(")") {
                            depth += 1;
                        } else if self.tokens[j].is_punct("(") {
                            depth -= 1;
                        }
                    }
                }
                _ => return false,
            }
        }
        false
    }

    fn fn_item(&mut self, module: &[String], impl_type: Option<&str>) {
        let fn_at = self.i;
        let name = self.tokens[self.i + 1].text.clone();
        let line = self.tokens[self.i + 1].line;
        let is_pub = self.is_pub_before(fn_at);
        let is_test = self.mask.get(fn_at).copied().unwrap_or(false);
        self.i += 2;
        let Some(open) = self.find_brace_before_semi() else {
            // Trait method declaration / extern fn: no body.
            self.out.fns.push(FnDef {
                name,
                impl_type: impl_type.map(str::to_owned),
                module: module.to_vec(),
                line,
                is_pub,
                is_test,
                calls: Vec::new(),
                panic_sites: Vec::new(),
                det_sources: Vec::new(),
                par_sites: Vec::new(),
            });
            return;
        };
        let close = self.matching_brace(open);
        let mut def = FnDef {
            name,
            impl_type: impl_type.map(str::to_owned),
            module: module.to_vec(),
            line,
            is_pub,
            is_test,
            calls: Vec::new(),
            panic_sites: Vec::new(),
            det_sources: Vec::new(),
            par_sites: Vec::new(),
        };
        self.i = open + 1;
        self.body(&mut def, module, close);
        self.out.fns.push(def);
        self.i = close + 1;
    }

    /// Scans a function body, collecting calls and hazard sites. Nested
    /// `fn` items become their own [`FnDef`]s.
    fn body(&mut self, def: &mut FnDef, module: &[String], end: usize) {
        while self.i < end.min(self.tokens.len()) {
            let t = &self.tokens[self.i];
            if t.kind == TokenKind::Ident && t.text == "fn" {
                if self.t(self.i + 1).map(|n| n.kind == TokenKind::Ident).unwrap_or(false) {
                    self.fn_item(module, None);
                    continue;
                }
                // `fn` in a type position (`impl Fn()`, `fn()` pointers).
                self.i += 1;
                continue;
            }
            if t.kind == TokenKind::Ident {
                self.ident_in_body(def);
            } else if t.is_punct("[") && self.is_indexing(self.i) {
                def.panic_sites.push(Site { line: t.line, what: "indexing `[..]`".to_owned() });
                self.i += 1;
            } else {
                self.i += 1;
            }
        }
    }

    /// `[` at `at` is indexing when it follows a value expression.
    fn is_indexing(&self, at: usize) -> bool {
        let Some(prev) = at.checked_sub(1).and_then(|p| self.t(p)) else { return false };
        match prev.kind {
            TokenKind::Ident => !KEYWORDS.contains(&prev.text.as_str()),
            TokenKind::Punct => prev.text == ")" || prev.text == "]",
            _ => false,
        }
    }

    /// Handles one identifier inside a body: hazard sites, determinism
    /// sources, parallel-readiness sites, and call collection.
    fn ident_in_body(&mut self, def: &mut FnDef) {
        let i = self.i;
        let t = &self.tokens[i];
        let next_is = |p: &str| self.t(i + 1).map(|n| n.is_punct(p)).unwrap_or(false);
        let prev_is_dot = i > 0 && self.tokens[i - 1].is_punct(".");

        self.hazard_at(i, def);

        // Call collection (independent of test masking: the graph covers
        // test code too, it is only never an entry or hazard).
        if prev_is_dot {
            if next_is("(") && !AMBIENT_METHODS.contains(&t.text.as_str()) {
                def.calls.push(Call { path: vec![t.text.clone()], method: true, line: t.line });
            }
            self.i += 1;
            return;
        }
        // Path expression: `a::b::c` then `(` (turbofish tolerated).
        if KEYWORDS.contains(&t.text.as_str()) {
            self.i += 1;
            return;
        }
        let mut path = vec![t.text.clone()];
        let mut j = i + 1;
        while self.t(j).map(|x| x.is_punct(":")).unwrap_or(false)
            && self.t(j + 1).map(|x| x.is_punct(":")).unwrap_or(false)
        {
            match self.t(j + 2) {
                Some(seg) if seg.kind == TokenKind::Ident => {
                    // Hazard idents can sit mid-path (`std::rc::Rc::new`,
                    // `std::time::Instant::now`): check every segment.
                    self.hazard_at(j + 2, def);
                    path.push(seg.text.clone());
                    j += 3;
                }
                Some(seg) if seg.is_punct("<") => {
                    // Turbofish: skip the generic args, then expect `(`.
                    let mut depth = 1i32;
                    let mut k = j + 3;
                    while let Some(x) = self.t(k) {
                        if x.is_punct("<") {
                            depth += 1;
                        } else if x.is_punct(">") {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    j = k + 1;
                    break;
                }
                _ => break,
            }
        }
        let is_call = self.t(j).map(|x| x.is_punct("(")).unwrap_or(false);
        let is_macro = self.t(j).map(|x| x.is_punct("!")).unwrap_or(false);
        if is_call && !is_macro {
            def.calls.push(Call { path, method: false, line: t.line });
        }
        self.i = j.max(i + 1);
    }

    /// Records any hazard/source site the identifier at `i` constitutes.
    fn hazard_at(&self, i: usize, def: &mut FnDef) {
        let masked = self.mask.get(i).copied().unwrap_or(false) || def.is_test;
        if masked {
            return;
        }
        let t = &self.tokens[i];
        let next_is = |p: &str| self.t(i + 1).map(|n| n.is_punct(p)).unwrap_or(false);
        let prev_is_dot = i > 0 && self.tokens[i - 1].is_punct(".");
        match t.text.as_str() {
            "unwrap" | "expect" if prev_is_dot && next_is("(") => {
                def.panic_sites.push(Site { line: t.line, what: format!(".{}(..)", t.text) });
            }
            "panic" | "todo" | "unimplemented" | "unreachable" if next_is("!") => {
                def.panic_sites.push(Site { line: t.line, what: format!("{}!", t.text) });
            }
            "Instant" | "SystemTime" if self.path_call_is(i, "now") => {
                def.det_sources.push(Site { line: t.line, what: format!("{}::now()", t.text) });
            }
            "thread_rng" | "from_entropy" | "OsRng" => {
                def.det_sources.push(Site { line: t.line, what: t.text.clone() });
            }
            "random"
                if i >= 3
                    && self.tokens[i - 1].is_punct(":")
                    && self.tokens[i - 2].is_punct(":")
                    && self.tokens[i - 3].is_ident("rand") =>
            {
                def.det_sources.push(Site { line: t.line, what: "rand::random".to_owned() });
            }
            "HashMap" | "HashSet" => {
                def.det_sources.push(Site { line: t.line, what: format!("{} iteration", t.text) });
            }
            "Rc" | "RefCell" | "Cell" | "UnsafeCell" => {
                def.par_sites.push(Site { line: t.line, what: format!("{}<..>", t.text) });
            }
            "static" if self.is_kw(i + 1, "mut") => {
                def.par_sites.push(Site { line: t.line, what: "static mut".to_owned() });
            }
            _ => {}
        }
    }

    /// `tokens[i]` then `::name(`.
    fn path_call_is(&self, i: usize, name: &str) -> bool {
        self.t(i + 1).map(|t| t.is_punct(":")).unwrap_or(false)
            && self.t(i + 2).map(|t| t.is_punct(":")).unwrap_or(false)
            && self.t(i + 3).map(|t| t.is_ident(name)).unwrap_or(false)
            && self.t(i + 4).map(|t| t.is_punct("(")).unwrap_or(false)
    }
}
