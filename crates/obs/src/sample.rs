//! Tail-based trace sampling over the flight recorder.
//!
//! Head sampling decides *before* a request runs and therefore discards
//! the traces you most want — the errored ones, the slow ones, the ones
//! that burned an SLO. [`TailSampler`] decides *after*: it drains finished
//! spans out of the [`Tracer`](crate::Tracer) ring buffer (before the ring
//! can evict them), groups them into whole traces, waits a grace period
//! for stragglers, and then applies retention policies in priority order:
//!
//! 1. **error** — any span carries an `error` attribute, or an `outcome`
//!    attribute other than `ok`: always retained;
//! 2. **slo-burn** — the trace overlaps a window in which an SLO alert
//!    was firing: always retained;
//! 3. **slow** — the root span's duration is at or above the configured
//!    latency threshold (set it from a p99 estimate): always retained;
//! 4. **healthy** — everything else is retained deterministically one in
//!    [`SamplePolicy::healthy_one_in`], keyed by `splitmix64(seed ^
//!    trace_id)` so two same-seed runs keep the identical trace set.
//!
//! A span budget bounds memory: healthy samples are admitted only while
//! they fit, and are evicted (oldest first) to make room for must-keep
//! traces, which are never dropped. Per-policy counters make the
//! sampler's behaviour auditable in the report JSON.

use std::collections::{BTreeMap, BTreeSet};

use evop_sim::{SimDuration, SimTime};
use serde_json::{json, Value};

use crate::trace::{SpanRecord, TraceId, Tracer};

/// Re-used seeded mixer so retention decisions are pure functions of
/// `(seed, trace id)`.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Why a trace was retained, in decision priority order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RetainReason {
    /// A span carried an error marker.
    Error,
    /// The trace overlapped a firing SLO alert window.
    SloBurn,
    /// The root span met the latency threshold.
    Slow,
    /// Deterministic 1-in-N healthy sample.
    HealthySample,
}

impl RetainReason {
    /// Lower-case label used in JSON reports.
    pub fn label(&self) -> &'static str {
        match self {
            RetainReason::Error => "error",
            RetainReason::SloBurn => "slo_burn",
            RetainReason::Slow => "slow",
            RetainReason::HealthySample => "healthy_sample",
        }
    }

    /// `true` for policies that must never be dropped.
    pub fn must_keep(&self) -> bool {
        !matches!(self, RetainReason::HealthySample)
    }
}

/// Tuning knobs for the tail sampler.
#[derive(Debug, Clone)]
pub struct SamplePolicy {
    /// How long after a trace's last span ends before it is decided —
    /// late children arriving within the grace period still join their
    /// trace.
    pub grace: SimDuration,
    /// Keep one in this many healthy traces (`0` disables healthy
    /// sampling entirely).
    pub healthy_one_in: u64,
    /// Root spans at least this long are retained as `slow`. Set it from
    /// a p99 estimate to implement "above-p99" retention.
    pub latency_threshold: SimDuration,
    /// Upper bound on retained spans. Must-keep traces always land;
    /// healthy samples are admitted only while they fit and are evicted
    /// first when a must-keep trace needs room.
    pub max_retained_spans: usize,
}

impl Default for SamplePolicy {
    fn default() -> SamplePolicy {
        SamplePolicy {
            grace: SimDuration::from_secs(60),
            healthy_one_in: 10,
            latency_threshold: SimDuration::from_secs(120),
            max_retained_spans: 4096,
        }
    }
}

/// One retained trace: its spans and the policy that kept it.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The trace.
    pub trace_id: TraceId,
    /// Why it was kept.
    pub reason: RetainReason,
    /// All drained spans of the trace, sorted by (start, span id).
    pub spans: Vec<SpanRecord>,
}

impl RetainedTrace {
    /// The root span (no parent), if present among the drained spans.
    pub fn root(&self) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    fn to_json(&self) -> Value {
        let root = self.root();
        json!({
            "trace": self.trace_id.to_string(),
            "reason": self.reason.label(),
            "root": root.map(|s| s.name.clone()),
            "start_ms": self.spans.first().map(|s| s.start.as_millis()),
            "end_ms": self.spans.iter().filter_map(|s| s.end).map(|t| t.as_millis()).max(),
            "spans": self.spans.len(),
        })
    }
}

/// Per-policy retention accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetentionCounters {
    /// Traces decided (retained or discarded).
    pub decided: u64,
    /// Traces retained because of an error marker.
    pub error: u64,
    /// Traces retained because they overlapped a burning alert window.
    pub slo_burn: u64,
    /// Traces retained for root latency at or above the threshold.
    pub slow: u64,
    /// Healthy traces retained by the 1-in-N sample.
    pub healthy_sampled: u64,
    /// Healthy traces discarded (not sampled, or over budget).
    pub discarded: u64,
    /// Previously retained healthy samples evicted to fit must-keeps.
    pub evicted_healthy: u64,
    /// Spans arriving after their trace was decided that could not be
    /// kept (trace discarded, or healthy trace at budget).
    pub late_spans_dropped: u64,
}

impl RetentionCounters {
    /// Canonical JSON rendering, one field per counter.
    pub fn to_json(&self) -> Value {
        json!({
            "decided": self.decided,
            "error": self.error,
            "slo_burn": self.slo_burn,
            "slow": self.slow,
            "healthy_sampled": self.healthy_sampled,
            "discarded": self.discarded,
            "evicted_healthy": self.evicted_healthy,
            "late_spans_dropped": self.late_spans_dropped,
        })
    }
}

/// The deterministic tail sampler.
///
/// Call [`TailSampler::tick`] on every control-loop tick (passing the
/// intervals during which alerts were firing) and
/// [`TailSampler::flush`] once at end of run to decide stragglers.
///
/// # Examples
///
/// ```
/// use evop_obs::{SamplePolicy, TailSampler, Tracer};
/// use evop_sim::{SimDuration, SimTime};
///
/// let tracer = Tracer::new();
/// let span = tracer.start_trace("request");
/// span.attr("outcome", "error");
/// tracer.set_now(SimTime::from_secs(5));
/// span.finish();
///
/// let mut sampler = TailSampler::new(SamplePolicy::default(), 42);
/// sampler.flush(&tracer, SimTime::from_secs(10), &[]);
/// assert_eq!(sampler.retained().len(), 1);
/// assert_eq!(sampler.counters().error, 1);
/// ```
#[derive(Debug)]
pub struct TailSampler {
    policy: SamplePolicy,
    seed: u64,
    /// Spans drained from the recorder whose trace is not yet decided.
    pending: BTreeMap<TraceId, Vec<SpanRecord>>,
    retained: BTreeMap<TraceId, RetainedTrace>,
    /// Traces decided and not retained — late spans for these are dropped
    /// rather than re-decided (a long-lived session trace keeps growing
    /// after its first quiet period).
    discarded_ids: BTreeSet<TraceId>,
    counters: RetentionCounters,
    retained_spans: usize,
}

impl TailSampler {
    /// Creates a sampler with the given policy and decision seed.
    pub fn new(policy: SamplePolicy, seed: u64) -> TailSampler {
        TailSampler {
            policy,
            seed,
            pending: BTreeMap::new(),
            retained: BTreeMap::new(),
            discarded_ids: BTreeSet::new(),
            counters: RetentionCounters::default(),
            retained_spans: 0,
        }
    }

    /// The sampler's policy.
    pub fn policy(&self) -> &SamplePolicy {
        &self.policy
    }

    /// Drains newly finished spans out of the tracer and decides every
    /// pending trace whose last span ended at least one grace period ago.
    /// `burn_windows` are `[start_ms, end_ms)` intervals during which an
    /// SLO alert was firing (see [`burn_windows`]).
    pub fn tick(&mut self, tracer: &Tracer, now: SimTime, burn_windows: &[(u64, u64)]) {
        for span in tracer.drain_finished_before(now) {
            self.intake(span);
        }
        let deadline = now.as_millis().saturating_sub(self.policy.grace.as_millis());
        let due: Vec<TraceId> = self
            .pending
            .iter()
            .filter(|(_, spans)| {
                spans.iter().all(|s| s.end.is_some_and(|e| e.as_millis() < deadline))
            })
            .map(|(&id, _)| id)
            .collect();
        for id in due {
            if let Some(spans) = self.pending.remove(&id) {
                self.decide(id, spans, burn_windows);
            }
        }
    }

    /// Decides every remaining trace regardless of grace — end-of-run
    /// flush so no trace is left undecided.
    pub fn flush(&mut self, tracer: &Tracer, now: SimTime, burn_windows: &[(u64, u64)]) {
        for span in tracer.drain_finished_before(SimTime::MAX) {
            self.intake(span);
        }
        let _ = now;
        let all: Vec<TraceId> = self.pending.keys().copied().collect();
        for id in all {
            if let Some(spans) = self.pending.remove(&id) {
                self.decide(id, spans, burn_windows);
            }
        }
    }

    /// Routes one drained span: late arrivals for already-decided traces
    /// join their retained trace (or are dropped when it was discarded);
    /// everything else waits in `pending` for a decision.
    fn intake(&mut self, span: SpanRecord) {
        let id = span.trace_id;
        if self.discarded_ids.contains(&id) {
            self.counters.late_spans_dropped += 1;
            return;
        }
        if let Some(reason) = self.retained.get(&id).map(|t| t.reason) {
            if reason.must_keep() {
                self.make_room(1, Some(id));
            } else if self.retained_spans + 1 > self.policy.max_retained_spans {
                self.counters.late_spans_dropped += 1;
                return;
            }
            if let Some(trace) = self.retained.get_mut(&id) {
                trace.spans.push(span);
                trace.spans.sort_by_key(|s| (s.start, s.span_id));
                self.retained_spans += 1;
            }
            return;
        }
        self.pending.entry(id).or_default().push(span);
    }

    /// Evicts healthy samples (lowest trace id — oldest — first) until
    /// `extra` more spans fit under the budget, never evicting `protect`.
    fn make_room(&mut self, extra: usize, protect: Option<TraceId>) {
        while self.retained_spans + extra > self.policy.max_retained_spans {
            let Some(victim) = self
                .retained
                .iter()
                .find(|(&id, t)| t.reason == RetainReason::HealthySample && Some(id) != protect)
                .map(|(&id, _)| id)
            else {
                break;
            };
            if let Some(evicted) = self.retained.remove(&victim) {
                self.retained_spans -= evicted.spans.len();
                self.counters.evicted_healthy += 1;
                self.counters.healthy_sampled -= 1;
            }
        }
    }

    fn decide(&mut self, id: TraceId, mut spans: Vec<SpanRecord>, burn_windows: &[(u64, u64)]) {
        spans.sort_by_key(|s| (s.start, s.span_id));
        self.counters.decided += 1;

        let errored = spans.iter().any(|s| {
            s.attrs.contains_key("error") || s.attrs.get("outcome").is_some_and(|o| o != "ok")
        });
        let root = spans.iter().find(|s| s.parent.is_none());
        let (trace_start, trace_end) = (
            spans.iter().map(|s| s.start.as_millis()).min().unwrap_or(0),
            spans.iter().filter_map(|s| s.end).map(|t| t.as_millis()).max().unwrap_or(0),
        );
        let burning = burn_windows.iter().any(|&(lo, hi)| trace_start < hi && trace_end >= lo);
        // "Slow" judges the whole trace envelope, not just the root: a
        // request whose model run finishes minutes after the submit span
        // closed is still a slow request.
        let _ = root;
        let slow =
            trace_end.saturating_sub(trace_start) >= self.policy.latency_threshold.as_millis();

        let reason = if errored {
            Some(RetainReason::Error)
        } else if burning {
            Some(RetainReason::SloBurn)
        } else if slow {
            Some(RetainReason::Slow)
        } else if self.policy.healthy_one_in > 0
            && splitmix64(self.seed ^ id.0).is_multiple_of(self.policy.healthy_one_in)
        {
            Some(RetainReason::HealthySample)
        } else {
            None
        };

        let Some(reason) = reason else {
            self.counters.discarded += 1;
            self.discarded_ids.insert(id);
            return;
        };

        if reason.must_keep() {
            // Must-keep traces always land; healthy samples make room.
            self.make_room(spans.len(), None);
        } else if self.retained_spans + spans.len() > self.policy.max_retained_spans {
            self.counters.discarded += 1;
            self.discarded_ids.insert(id);
            return;
        }

        match reason {
            RetainReason::Error => self.counters.error += 1,
            RetainReason::SloBurn => self.counters.slo_burn += 1,
            RetainReason::Slow => self.counters.slow += 1,
            RetainReason::HealthySample => self.counters.healthy_sampled += 1,
        }
        self.retained_spans += spans.len();
        self.retained.insert(id, RetainedTrace { trace_id: id, reason, spans });
    }

    /// Every retained trace, ascending by trace id.
    pub fn retained(&self) -> Vec<&RetainedTrace> {
        self.retained.values().collect()
    }

    /// Retained trace ids, ascending — the determinism guard compares
    /// this set across same-seed runs.
    pub fn retained_ids(&self) -> Vec<TraceId> {
        self.retained.keys().copied().collect()
    }

    /// Total spans currently retained.
    pub fn retained_spans(&self) -> usize {
        self.retained_spans
    }

    /// Per-policy accounting.
    pub fn counters(&self) -> RetentionCounters {
        self.counters
    }

    /// Traces drained but not yet decided (inside the grace period).
    pub fn pending_traces(&self) -> usize {
        self.pending.len()
    }

    /// A deterministic JSON report: policy, counters, and one summary row
    /// per retained trace sorted by trace id.
    pub fn to_json(&self) -> Value {
        let rows: Vec<&RetainedTrace> = self.retained.values().collect();
        json!({
            "policy": {
                "grace_ms": self.policy.grace.as_millis(),
                "healthy_one_in": self.policy.healthy_one_in,
                "latency_threshold_ms": self.policy.latency_threshold.as_millis(),
                "max_retained_spans": self.policy.max_retained_spans,
            },
            "seed": self.seed,
            "counters": self.counters.to_json(),
            "retained_spans": self.retained_spans,
            "retained": rows.iter().map(|t| t.to_json()).collect::<Vec<Value>>(),
        })
    }
}

/// Collapses an alert transition log into `[fired_ms, resolved_ms)`
/// windows per SLO, merged across severities: the intervals during which
/// *any* alert was firing. An alert still firing at the end of the log
/// yields a window closing at `u64::MAX`.
pub fn burn_windows(alerts: &[crate::slo::AlertRecord]) -> Vec<(u64, u64)> {
    use crate::slo::AlertKind;
    let mut events: Vec<(u64, i64)> =
        alerts.iter().map(|a| (a.at_ms, if a.kind == AlertKind::Fired { 1 } else { -1 })).collect();
    events.sort_unstable();
    let mut windows = Vec::new();
    let mut depth = 0i64;
    let mut open_at = 0u64;
    for (at, delta) in events {
        if depth == 0 && delta > 0 {
            open_at = at;
        }
        depth += delta;
        if depth == 0 && delta < 0 {
            windows.push((open_at, at));
        }
    }
    if depth > 0 {
        windows.push((open_at, u64::MAX));
    }
    windows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slo::{AlertKind, AlertRecord, AlertSeverity};

    fn policy() -> SamplePolicy {
        SamplePolicy {
            grace: SimDuration::from_secs(10),
            healthy_one_in: 4,
            latency_threshold: SimDuration::from_secs(100),
            max_retained_spans: 100,
        }
    }

    fn run_requests(tracer: &Tracer, n: u64, each_secs: u64, outcome: &str) {
        for i in 0..n {
            tracer.set_now(SimTime::from_secs(i * each_secs));
            let span = tracer.start_trace("request");
            span.attr("outcome", outcome);
            tracer.set_now(SimTime::from_secs(i * each_secs + 1));
            span.finish();
        }
    }

    #[test]
    fn errored_traces_always_retained() {
        let tracer = Tracer::new();
        run_requests(&tracer, 20, 2, "error");
        let mut sampler = TailSampler::new(policy(), 7);
        sampler.flush(&tracer, SimTime::from_secs(100), &[]);
        assert_eq!(sampler.counters().error, 20);
        assert_eq!(sampler.retained().len(), 20);
    }

    #[test]
    fn healthy_sampling_is_one_in_n_and_seeded() {
        let run = |seed| {
            let tracer = Tracer::new();
            run_requests(&tracer, 100, 2, "ok");
            let mut sampler = TailSampler::new(policy(), seed);
            sampler.flush(&tracer, SimTime::from_secs(400), &[]);
            sampler.retained_ids()
        };
        let a = run(7);
        let b = run(7);
        assert_eq!(a, b, "same seed, same retained set");
        // Roughly 1 in 4 — the mixer is uniform enough for a wide margin.
        assert!(a.len() > 10 && a.len() < 45, "got {}", a.len());
        assert_ne!(run(8), a, "different seed, different sample");
    }

    #[test]
    fn slow_roots_meet_the_threshold_policy() {
        let tracer = Tracer::new();
        let slow = tracer.start_trace("request");
        slow.attr("outcome", "ok");
        tracer.set_now(SimTime::from_secs(150));
        slow.finish();
        let mut sampler = TailSampler::new(SamplePolicy { healthy_one_in: 0, ..policy() }, 7);
        sampler.flush(&tracer, SimTime::from_secs(300), &[]);
        assert_eq!(sampler.counters().slow, 1);
    }

    #[test]
    fn slo_burn_window_overlap_retains() {
        let tracer = Tracer::new();
        run_requests(&tracer, 10, 10, "ok"); // traces at 0,10,...,90s
        let mut sampler = TailSampler::new(SamplePolicy { healthy_one_in: 0, ..policy() }, 7);
        sampler.flush(&tracer, SimTime::from_secs(400), &[(35_000, 52_000)]);
        // Traces starting at 40 and 50s overlap [35s, 52s).
        assert_eq!(sampler.counters().slo_burn, 2);
        assert_eq!(sampler.counters().discarded, 8);
    }

    #[test]
    fn grace_defers_decisions_until_stragglers_land() {
        let tracer = Tracer::new();
        let span = tracer.start_trace("request");
        tracer.set_now(SimTime::from_secs(5));
        span.finish();
        let mut sampler = TailSampler::new(policy(), 7);
        // At t=10s the trace ended 5s ago — inside the 10s grace.
        sampler.tick(&tracer, SimTime::from_secs(10), &[]);
        assert_eq!(sampler.pending_traces(), 1);
        assert_eq!(sampler.counters().decided, 0);
        sampler.tick(&tracer, SimTime::from_secs(20), &[]);
        assert_eq!(sampler.pending_traces(), 0);
        assert_eq!(sampler.counters().decided, 1);
    }

    #[test]
    fn budget_evicts_healthy_before_must_keep() {
        let tracer = Tracer::new();
        // 6 healthy + 6 errored single-span traces, budget of 6 spans.
        run_requests(&tracer, 6, 2, "ok");
        for i in 0..6u64 {
            tracer.set_now(SimTime::from_secs(50 + i));
            let span = tracer.start_trace("request");
            span.attr("outcome", "error");
            span.finish();
        }
        let mut sampler = TailSampler::new(
            SamplePolicy { healthy_one_in: 1, max_retained_spans: 6, ..policy() },
            7,
        );
        sampler.flush(&tracer, SimTime::from_secs(200), &[]);
        let c = sampler.counters();
        assert_eq!(c.error, 6, "every errored trace retained");
        assert_eq!(c.healthy_sampled, 0, "all healthy samples evicted");
        assert_eq!(c.evicted_healthy, 6);
        assert!(sampler.retained_spans() <= 6);
    }

    #[test]
    fn late_spans_join_retained_traces_and_skip_discarded_ones() {
        let tracer = Tracer::new();
        let kept = tracer.start_trace("request"); // TraceId(0)
        kept.attr("outcome", "error");
        let kept_ctx = kept.context();
        tracer.set_now(SimTime::from_secs(1));
        kept.finish();
        let dropped = tracer.start_trace("request"); // TraceId(1), healthy
        dropped.attr("outcome", "ok");
        let dropped_ctx = dropped.context();
        tracer.set_now(SimTime::from_secs(2));
        dropped.finish();

        let mut sampler = TailSampler::new(SamplePolicy { healthy_one_in: 0, ..policy() }, 7);
        sampler.tick(&tracer, SimTime::from_secs(60), &[]);
        assert_eq!(sampler.counters().decided, 2);
        assert_eq!(sampler.retained().len(), 1);

        // A migration span lands on each trace an hour later.
        tracer.set_now(SimTime::from_secs(3600));
        tracer.start_span("session.migrate", &kept_ctx).finish();
        tracer.start_span("session.migrate", &dropped_ctx).finish();
        sampler.flush(&tracer, SimTime::from_secs(7200), &[]);

        assert_eq!(sampler.counters().decided, 2, "late spans must not re-decide");
        let retained = sampler.retained();
        assert_eq!(retained[0].spans.len(), 2, "late span joins its retained trace");
        assert_eq!(sampler.counters().late_spans_dropped, 1, "discarded trace drops it");
        assert_eq!(sampler.retained_spans(), 2);
    }

    #[test]
    fn burn_windows_pair_fired_and_resolved() {
        let rec = |at_ms, kind| AlertRecord {
            at_ms,
            slo: "slo".into(),
            severity: AlertSeverity::Page,
            kind,
            window_secs: (3600, 300),
            burn_long: 2.0,
            burn_short: 2.0,
            evidence: String::new(),
        };
        let alerts = vec![
            rec(10, AlertKind::Fired),
            rec(20, AlertKind::Fired), // nested severity pair
            rec(30, AlertKind::Resolved),
            rec(40, AlertKind::Resolved),
            rec(90, AlertKind::Fired), // never resolves
        ];
        assert_eq!(burn_windows(&alerts), vec![(10, 40), (90, u64::MAX)]);
        assert!(burn_windows(&[]).is_empty());
    }

    #[test]
    fn report_is_deterministic() {
        let run = || {
            let tracer = Tracer::new();
            run_requests(&tracer, 30, 3, "ok");
            let mut sampler = TailSampler::new(policy(), 42);
            sampler.flush(&tracer, SimTime::from_secs(200), &[]);
            sampler.to_json().to_string()
        };
        assert_eq!(run(), run());
    }
}
