//! Renders one trace as a human-readable timeline.
//!
//! The report arranges a trace's spans into their parent/child tree and
//! renders it either as an ASCII tree (offsets relative to the trace
//! start, durations, attributes, events) or as a deterministic JSON
//! document. Both views come straight from the flight recorder — they
//! never re-run the simulation.

use std::collections::BTreeMap;

use serde_json::{json, Value};

use crate::trace::{SpanId, SpanRecord, TraceId, Tracer};

/// A renderable view over the spans of one trace.
///
/// # Examples
///
/// ```
/// use evop_obs::{TimelineReport, Tracer};
/// use evop_sim::SimTime;
///
/// let tracer = Tracer::new();
/// let root = tracer.start_trace("request");
/// let child = tracer.start_span("model-run", &root.context());
/// tracer.set_now(SimTime::from_secs(45));
/// child.finish();
/// root.finish();
///
/// let report = TimelineReport::for_trace(&tracer, tracer.trace_ids()[0]);
/// let text = report.ascii();
/// assert!(text.contains("request"));
/// assert!(text.contains("model-run"));
/// ```
#[derive(Debug, Clone)]
pub struct TimelineReport {
    trace_id: Option<TraceId>,
    spans: Vec<SpanRecord>,
}

impl TimelineReport {
    /// Builds a report from explicit spans (sorted by start, then span id).
    pub fn from_spans(mut spans: Vec<SpanRecord>) -> TimelineReport {
        spans.sort_by_key(|s| (s.start, s.span_id));
        TimelineReport { trace_id: spans.first().map(|s| s.trace_id), spans }
    }

    /// Builds a report for one trace out of a tracer's flight recorder.
    pub fn for_trace(tracer: &Tracer, trace: TraceId) -> TimelineReport {
        TimelineReport { trace_id: Some(trace), spans: tracer.trace(trace) }
    }

    /// Number of spans in the report.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when the report holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The spans, sorted by (start, span id).
    pub fn spans(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Root spans: no parent, or a parent outside the report (evicted).
    fn roots(&self) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| match s.parent {
                None => true,
                Some(p) => !self.spans.iter().any(|o| o.span_id == p),
            })
            .collect()
    }

    fn children(&self) -> BTreeMap<SpanId, Vec<&SpanRecord>> {
        let mut map: BTreeMap<SpanId, Vec<&SpanRecord>> = BTreeMap::new();
        for span in &self.spans {
            if let Some(p) = span.parent {
                if self.spans.iter().any(|o| o.span_id == p) {
                    map.entry(p).or_default().push(span);
                }
            }
        }
        map
    }

    /// Renders the timeline as an ASCII tree.
    ///
    /// Offsets are seconds since the earliest span start; open spans show
    /// `…` instead of a duration.
    pub fn ascii(&self) -> String {
        let Some(t0) = self.spans.iter().map(|s| s.start).min() else {
            return "(empty trace)\n".to_owned();
        };
        let mut out = String::new();
        if let Some(id) = self.trace_id {
            out.push_str(&format!("trace {id} — {} span(s)\n", self.spans.len()));
        }
        let children = self.children();
        for root in self.roots() {
            self.render_span(root, &children, t0, 0, &mut out);
        }
        out
    }

    fn render_span(
        &self,
        span: &SpanRecord,
        children: &BTreeMap<SpanId, Vec<&SpanRecord>>,
        t0: evop_sim::SimTime,
        depth: usize,
        out: &mut String,
    ) {
        let indent = "  ".repeat(depth);
        let offset = span.start.saturating_since(t0).as_secs_f64();
        let duration = match span.end {
            Some(_) => format!("{:.1}s", span.duration().as_secs_f64()),
            None => "…".to_owned(),
        };
        let attrs = if span.attrs.is_empty() {
            String::new()
        } else {
            let rendered: Vec<String> =
                span.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
            format!("  [{}]", rendered.join(" "))
        };
        out.push_str(&format!(
            "{indent}+{offset:9.1}s  {name}  ({duration}){attrs}\n",
            name = span.name
        ));
        for event in &span.events {
            let at = event.at.saturating_since(t0).as_secs_f64();
            out.push_str(&format!("{indent}  ·{at:8.1}s  {}\n", event.message));
        }
        if let Some(kids) = children.get(&span.span_id) {
            for kid in kids {
                self.render_span(kid, children, t0, depth + 1, out);
            }
        }
    }

    /// Renders the timeline as a deterministic JSON tree.
    pub fn json(&self) -> Value {
        let children = self.children();
        let roots: Vec<Value> = self.roots().iter().map(|r| self.span_json(r, &children)).collect();
        json!({
            "trace": self.trace_id.map(|t| t.to_string()),
            "spans": self.spans.len(),
            "tree": roots,
        })
    }

    fn span_json(&self, span: &SpanRecord, children: &BTreeMap<SpanId, Vec<&SpanRecord>>) -> Value {
        let mut value = span.to_json();
        let kids: Vec<Value> = children
            .get(&span.span_id)
            .map(|kids| kids.iter().map(|k| self.span_json(k, children)).collect())
            .unwrap_or_default();
        if let Value::Object(map) = &mut value {
            map.insert("children".to_owned(), Value::Array(kids));
        }
        value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_sim::SimTime;

    fn sample_tracer() -> Tracer {
        let tracer = Tracer::new();
        tracer.set_now(SimTime::from_secs(10));
        let root = tracer.start_trace("e1.request");
        root.attr("user", "stakeholder");
        let connect = tracer.start_span("broker.connect", &root.context());
        tracer.set_now(SimTime::from_secs(12));
        connect.event("bound instance i-0");
        connect.finish();
        let job = tracer.start_span("job.run", &root.context());
        tracer.set_now(SimTime::from_secs(70));
        job.finish();
        root.finish();
        tracer
    }

    #[test]
    fn ascii_tree_shape() {
        let tracer = sample_tracer();
        let report = TimelineReport::for_trace(&tracer, TraceId(0));
        let text = report.ascii();
        assert!(text.starts_with("trace 0000000000000000 — 3 span(s)\n"), "{text}");
        assert!(text.contains("e1.request"), "{text}");
        assert!(text.contains("  +"), "children are indented: {text}");
        assert!(text.contains("bound instance i-0"), "{text}");
        assert!(text.contains("user=stakeholder"), "{text}");
    }

    #[test]
    fn json_tree_nests_children() {
        let tracer = sample_tracer();
        let report = TimelineReport::for_trace(&tracer, TraceId(0));
        let v = report.json();
        assert_eq!(v["spans"], 3);
        assert_eq!(v["tree"][0]["name"], "e1.request");
        assert_eq!(v["tree"][0]["children"][0]["name"], "broker.connect");
        assert_eq!(v["tree"][0]["children"][1]["name"], "job.run");
    }

    #[test]
    fn orphaned_spans_become_roots() {
        let tracer = Tracer::with_capacity(1);
        let root = tracer.start_trace("evicted-parent");
        let child = tracer.start_span("survivor", &root.context());
        root.finish(); // fills capacity…
        child.finish(); // …and evicts the parent
        let report = TimelineReport::from_spans(tracer.finished());
        assert_eq!(report.len(), 1);
        assert!(report.ascii().contains("survivor"));
    }

    #[test]
    fn empty_report_renders() {
        let report = TimelineReport::from_spans(Vec::new());
        assert!(report.is_empty());
        assert_eq!(report.ascii(), "(empty trace)\n");
    }
}
