//! Scoped wall-clock profiler — the perf-observability plane.
//!
//! Everything else in `evop-obs` runs on **virtual** time so traced
//! output stays byte-identical across same-seed runs. This module is the
//! one deliberate exception: it measures where *real* CPU time goes, so
//! the `perf_report` bench bin can attribute events/sec and runs/sec to
//! the code paths that produce them. The two planes never mix — profile
//! output is a separate document, excluded from every golden trace and
//! report JSON (the `profiling_is_wall_clock_side_only` test in
//! `tests/observability.rs` pins that).
//!
//! Design:
//!
//! * [`Profiler::enter`] returns an RAII [`ProfGuard`]; nested guards
//!   build a call tree keyed by operation name (one node per distinct
//!   stack path, like a folded flamegraph);
//! * per node: call count, total wall time, and self time (total minus
//!   time covered by child nodes), all in nanoseconds;
//! * [`ProfileReport::to_json`] renders the tree with children sorted by
//!   name — byte-stable *structure* (values are wall measurements and
//!   vary run to run; under a [`Profiler::manual`] clock the whole
//!   document is deterministic, which is how the unit tests pin the
//!   arithmetic);
//! * [`ProfileReport::folded`] emits collapsed stacks
//!   (`root;child;leaf <self-µs>` per line) directly consumable by
//!   `inferno-flamegraph` or speedscope;
//! * [`Profiler::disabled`] is a no-op handle: one atomic load per
//!   `enter`, no lock, no allocation — cheap enough to leave call sites
//!   compiled in everywhere.
//!
//! The profiler is single-conversation: guards are expected to drop in
//! LIFO order on one thread (the simulator is single-threaded). Guards
//! dropped out of order unwind the stack defensively rather than
//! corrupting the tree.
//!
//! # Examples
//!
//! ```
//! use evop_obs::profile::Profiler;
//!
//! let prof = Profiler::manual();
//! {
//!     let _run = prof.enter("run");
//!     prof.advance_manual(2_000_000); // 2 ms elapse inside `run`
//!     {
//!         let _inner = prof.enter("model");
//!         prof.advance_manual(3_000_000); // 3 ms inside `run;model`
//!     }
//! }
//! let report = prof.report();
//! assert_eq!(report.op("run").unwrap().calls, 1);
//! assert_eq!(report.op("run").unwrap().total_ns, 5_000_000);
//! assert_eq!(report.op("run").unwrap().self_ns, 2_000_000);
//! assert_eq!(report.folded(), "run 2000\nrun;model 3000\n");
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use serde_json::{json, Value};

/// How the profiler reads time.
#[derive(Debug)]
enum TimeSource {
    /// Real wall clock, measured from the profiler's construction epoch.
    Wall(Instant),
    /// A manually-advanced nanosecond counter — deterministic, for tests.
    Manual(u64),
}

impl TimeSource {
    fn now_ns(&self) -> u64 {
        match self {
            TimeSource::Wall(epoch) => {
                u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            TimeSource::Manual(ns) => *ns,
        }
    }
}

/// One node of the call tree: a distinct stack path.
#[derive(Debug, Clone)]
struct Node {
    name: String,
    calls: u64,
    total_ns: u64,
    /// Child node indices, in first-entered order (sorted at export).
    children: Vec<usize>,
}

#[derive(Debug)]
struct Store {
    /// `nodes[0]` is the synthetic root; real operations hang below it.
    nodes: Vec<Node>,
    /// The open-guard path; `stack.last()` is the current node.
    stack: Vec<usize>,
    time: TimeSource,
}

impl Store {
    fn child_named(&mut self, parent: usize, name: &str) -> usize {
        if let Some(&idx) =
            self.nodes[parent].children.iter().find(|&&c| self.nodes[c].name == name)
        {
            return idx;
        }
        let idx = self.nodes.len();
        self.nodes.push(Node {
            name: name.to_owned(),
            calls: 0,
            total_ns: 0,
            children: Vec::new(),
        });
        self.nodes[parent].children.push(idx);
        idx
    }
}

/// A cheap-clone handle to one shared profile store (the [`crate::Tracer`]
/// idiom: the bench harness, the experiment and the kernel can all report
/// into the same collector).
#[derive(Debug, Clone)]
pub struct Profiler {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    enabled: AtomicBool,
    store: Mutex<Store>,
}

impl Default for Profiler {
    fn default() -> Profiler {
        Profiler::new()
    }
}

impl Profiler {
    fn with_time(time: TimeSource, enabled: bool) -> Profiler {
        Profiler {
            inner: Arc::new(Inner {
                enabled: AtomicBool::new(enabled),
                store: Mutex::new(Store {
                    nodes: vec![Node {
                        name: String::from("(root)"),
                        calls: 0,
                        total_ns: 0,
                        children: Vec::new(),
                    }],
                    stack: Vec::new(),
                    time,
                }),
            }),
        }
    }

    /// An enabled wall-clock profiler.
    pub fn new() -> Profiler {
        // evop-lint: allow(det-wallclock) -- the profiler IS the wall-clock plane: it measures real CPU time by design and its output is never part of golden virtual-time documents
        Profiler::with_time(TimeSource::Wall(Instant::now()), true)
    }

    /// A disabled profiler: `enter` costs one atomic load and returns a
    /// guard that does nothing.
    pub fn disabled() -> Profiler {
        // The epoch is never read while disabled; reuse the manual source
        // so construction stays wall-clock-free.
        Profiler::with_time(TimeSource::Manual(0), false)
    }

    /// An enabled profiler on a manually-advanced clock — fully
    /// deterministic, for tests and documentation examples.
    pub fn manual() -> Profiler {
        Profiler::with_time(TimeSource::Manual(0), true)
    }

    /// Advances the manual clock by `ns` nanoseconds. No-op under the
    /// wall clock.
    pub fn advance_manual(&self, ns: u64) {
        let mut store = self.inner.store.lock();
        if let TimeSource::Manual(now) = &mut store.time {
            *now += ns;
        }
    }

    /// `true` if guards record.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Opens a scoped span. Drop the returned guard to close it; nested
    /// `enter` calls while a guard is open become its children.
    #[must_use = "the span closes when the guard drops — bind it to a named local"]
    pub fn enter(&self, name: &str) -> ProfGuard {
        if !self.is_enabled() {
            return ProfGuard { profiler: None, node: 0, start_ns: 0 };
        }
        let mut store = self.inner.store.lock();
        let parent = store.stack.last().copied().unwrap_or(0);
        let node = store.child_named(parent, name);
        store.nodes[node].calls += 1;
        store.stack.push(node);
        let start_ns = store.time.now_ns();
        ProfGuard { profiler: Some(self.clone()), node, start_ns }
    }

    /// Discards all recorded data (the tree, not the enabled flag).
    pub fn reset(&self) {
        let mut store = self.inner.store.lock();
        store.nodes.truncate(1);
        store.nodes[0].children.clear();
        store.nodes[0].calls = 0;
        store.nodes[0].total_ns = 0;
        store.stack.clear();
    }

    /// Snapshots the current tree into an immutable report. Open guards
    /// contribute their calls but not their (still running) time.
    pub fn report(&self) -> ProfileReport {
        let store = self.inner.store.lock();
        ProfileReport::from_nodes(&store.nodes)
    }
}

/// RAII span handle returned by [`Profiler::enter`].
#[derive(Debug)]
pub struct ProfGuard {
    /// `None` for guards from a disabled profiler.
    profiler: Option<Profiler>,
    node: usize,
    start_ns: u64,
}

impl Drop for ProfGuard {
    fn drop(&mut self) {
        let Some(profiler) = self.profiler.take() else { return };
        let mut store = profiler.inner.store.lock();
        let elapsed = store.time.now_ns().saturating_sub(self.start_ns);
        store.nodes[self.node].total_ns += elapsed;
        // Unwind to (and including) this guard's node. In LIFO use this
        // pops exactly one entry; out-of-order drops shed the orphans.
        while let Some(top) = store.stack.pop() {
            if top == self.node {
                break;
            }
        }
    }
}

/// Aggregate statistics for one operation name (summed over every stack
/// path it appears on).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStats {
    /// Times the operation was entered.
    pub calls: u64,
    /// Total wall nanoseconds inside the operation (including children).
    pub total_ns: u64,
    /// Nanoseconds not covered by child spans.
    pub self_ns: u64,
}

/// One exported call-tree node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfNode {
    /// Operation name.
    pub name: String,
    /// Times this exact stack path was entered.
    pub calls: u64,
    /// Total wall nanoseconds on this path (including children).
    pub total_ns: u64,
    /// Nanoseconds on this path not covered by children.
    pub self_ns: u64,
    /// Children, sorted by name.
    pub children: Vec<ProfNode>,
}

impl ProfNode {
    fn to_json(&self) -> Value {
        json!({
            "name": self.name,
            "calls": self.calls,
            "total_ms": self.total_ns as f64 / 1e6,
            "self_ms": self.self_ns as f64 / 1e6,
            "children": self.children.iter().map(ProfNode::to_json).collect::<Vec<Value>>(),
        })
    }
}

/// An immutable snapshot of a [`Profiler`]'s call tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileReport {
    roots: Vec<ProfNode>,
    ops: BTreeMap<String, OpStats>,
}

impl ProfileReport {
    fn from_nodes(nodes: &[Node]) -> ProfileReport {
        fn build(nodes: &[Node], idx: usize) -> ProfNode {
            let node = &nodes[idx];
            let mut children: Vec<ProfNode> =
                node.children.iter().map(|&c| build(nodes, c)).collect();
            children.sort_by(|a, b| a.name.cmp(&b.name));
            let child_ns: u64 = children.iter().map(|c| c.total_ns).sum();
            ProfNode {
                name: node.name.clone(),
                calls: node.calls,
                total_ns: node.total_ns,
                self_ns: node.total_ns.saturating_sub(child_ns),
                children,
            }
        }
        let mut roots: Vec<ProfNode> = nodes[0].children.iter().map(|&c| build(nodes, c)).collect();
        roots.sort_by(|a, b| a.name.cmp(&b.name));

        let mut ops: BTreeMap<String, OpStats> = BTreeMap::new();
        fn accumulate(node: &ProfNode, ops: &mut BTreeMap<String, OpStats>) {
            let entry = ops.entry(node.name.clone()).or_default();
            entry.calls += node.calls;
            entry.total_ns += node.total_ns;
            entry.self_ns += node.self_ns;
            for child in &node.children {
                accumulate(child, ops);
            }
        }
        for root in &roots {
            accumulate(root, &mut ops);
        }
        ProfileReport { roots, ops }
    }

    /// Top-level call-tree nodes, sorted by name.
    pub fn roots(&self) -> &[ProfNode] {
        &self.roots
    }

    /// Aggregate statistics for one operation name.
    pub fn op(&self, name: &str) -> Option<&OpStats> {
        self.ops.get(name)
    }

    /// Every operation name seen, sorted, with its aggregate stats.
    pub fn operations(&self) -> impl Iterator<Item = (&str, &OpStats)> {
        self.ops.iter().map(|(name, stats)| (name.as_str(), stats))
    }

    /// Total wall nanoseconds across the top-level nodes.
    pub fn total_ns(&self) -> u64 {
        self.roots.iter().map(|r| r.total_ns).sum()
    }

    /// Deterministically-ordered JSON document: the tree plus a flat
    /// per-operation table.
    pub fn to_json(&self) -> Value {
        let ops: serde_json::Map<String, Value> = self
            .ops
            .iter()
            .map(|(name, s)| {
                (
                    name.clone(),
                    json!({
                        "calls": s.calls,
                        "total_ms": s.total_ns as f64 / 1e6,
                        "self_ms": s.self_ns as f64 / 1e6,
                    }),
                )
            })
            .collect();
        json!({
            "tree": self.roots.iter().map(ProfNode::to_json).collect::<Vec<Value>>(),
            "operations": ops,
        })
    }

    /// Collapsed stacks in the `inferno` / FlameGraph folded format: one
    /// line per stack path, `a;b;c <self-time-µs>`, lexicographically
    /// sorted. Feed to `inferno-flamegraph` (or paste into speedscope) to
    /// render a flamegraph.
    pub fn folded(&self) -> String {
        fn walk(node: &ProfNode, prefix: &str, out: &mut Vec<String>) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            // Self time in whole microseconds stands in for sample counts.
            out.push(format!("{path} {}", node.self_ns / 1_000));
            for child in &node.children {
                walk(child, &path, out);
            }
        }
        let mut lines = Vec::new();
        for root in &self.roots {
            walk(root, "", &mut lines);
        }
        lines.sort();
        let mut folded = lines.join("\n");
        if !folded.is_empty() {
            folded.push('\n');
        }
        folded
    }

    /// A plain-text table of the per-operation aggregate, widest first.
    pub fn ascii(&self) -> String {
        let mut rows: Vec<(&str, &OpStats)> =
            self.ops.iter().map(|(n, s)| (n.as_str(), s)).collect();
        rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
        let mut out = String::from(
            "operation                              calls     total_ms      self_ms\n",
        );
        for (name, s) in rows {
            out.push_str(&format!(
                "{name:<36} {calls:>7} {total:>12.3} {self_:>12.3}\n",
                calls = s.calls,
                total = s.total_ns as f64 / 1e6,
                self_ = s.self_ns as f64 / 1e6,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// run(5ms total: 2 self) { model(3ms) } · flush(1ms), twice over.
    fn sample_profiler() -> Profiler {
        let prof = Profiler::manual();
        for _ in 0..2 {
            {
                let _run = prof.enter("run");
                prof.advance_manual(1_000_000);
                {
                    let _model = prof.enter("model");
                    prof.advance_manual(1_500_000);
                }
            }
            let _flush = prof.enter("flush");
            prof.advance_manual(500_000);
        }
        prof
    }

    #[test]
    fn tree_accumulates_calls_and_time() {
        let report = sample_profiler().report();
        let run = report.op("run").unwrap();
        assert_eq!(run.calls, 2);
        assert_eq!(run.total_ns, 5_000_000);
        assert_eq!(run.self_ns, 2_000_000);
        let model = report.op("model").unwrap();
        assert_eq!(model.calls, 2);
        assert_eq!(model.total_ns, 3_000_000);
        assert_eq!(model.self_ns, 3_000_000);
        assert_eq!(report.op("flush").unwrap().total_ns, 1_000_000);
        assert_eq!(report.total_ns(), 6_000_000);
    }

    #[test]
    fn tree_structure_follows_nesting() {
        let report = sample_profiler().report();
        let names: Vec<&str> = report.roots().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["flush", "run"]);
        let run = &report.roots()[1];
        assert_eq!(run.children.len(), 1);
        assert_eq!(run.children[0].name, "model");
    }

    #[test]
    fn folded_stacks_use_self_time_microseconds() {
        let folded = sample_profiler().report().folded();
        assert_eq!(folded, "flush 1000\nrun 2000\nrun;model 3000\n");
    }

    #[test]
    fn manual_clock_reports_are_byte_identical() {
        let a = sample_profiler().report().to_json().to_string();
        let b = sample_profiler().report().to_json().to_string();
        assert_eq!(a, b);
        assert!(a.contains("\"operations\""));
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        {
            let _g = prof.enter("ignored");
            prof.advance_manual(1_000_000);
        }
        let report = prof.report();
        assert!(report.roots().is_empty());
        assert_eq!(report.folded(), "");
        assert_eq!(report.total_ns(), 0);
    }

    #[test]
    fn same_name_at_different_depths_gets_distinct_nodes() {
        let prof = Profiler::manual();
        {
            let _a = prof.enter("step");
            prof.advance_manual(1_000);
            let _b = prof.enter("step");
            prof.advance_manual(1_000);
        }
        let report = prof.report();
        // Aggregate table merges, folded stacks keep paths apart.
        assert_eq!(report.op("step").unwrap().calls, 2);
        assert_eq!(report.folded(), "step 1\nstep;step 1\n");
    }

    #[test]
    fn out_of_order_drop_unwinds_defensively() {
        let prof = Profiler::manual();
        let outer = prof.enter("outer");
        let inner = prof.enter("inner");
        prof.advance_manual(1_000);
        drop(outer); // drops before inner: inner's frame is shed
        prof.advance_manual(1_000);
        drop(inner);
        // Next span lands back at the root rather than under a ghost.
        {
            let _next = prof.enter("next");
            prof.advance_manual(1_000);
        }
        let names: Vec<String> = prof.report().roots().iter().map(|r| r.name.clone()).collect();
        assert_eq!(names, ["next", "outer"]);
    }

    #[test]
    fn reset_clears_the_tree() {
        let prof = sample_profiler();
        prof.reset();
        assert!(prof.report().roots().is_empty());
        {
            let _g = prof.enter("fresh");
            prof.advance_manual(1);
        }
        assert_eq!(prof.report().roots().len(), 1);
    }

    #[test]
    fn wall_clock_profiler_measures_something() {
        let prof = Profiler::new();
        {
            let _g = prof.enter("spin");
            // A tiny real workload; duration is positive but unasserted
            // beyond that (wall time is not deterministic).
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        }
        let report = prof.report();
        assert_eq!(report.op("spin").unwrap().calls, 1);
    }
}
