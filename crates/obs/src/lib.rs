//! Observability substrate for the EVOp reproduction.
//!
//! The paper's evaluation reasons about *causal timelines* — a user's
//! request travelling portal → REST router → Resource Broker → cloud
//! instance boot → model run → hydrograph push (§IV-C/§IV-D) — and about
//! aggregate behaviour (placements, cloudbursts, migrations, billing).
//! This crate provides both views without perturbing the simulation:
//!
//! * [`metrics`] — a process-wide registry of counters, gauges and
//!   histograms keyed by name + label pairs, built on the
//!   [`evop_sim::stats`] estimators, with a deterministic JSON snapshot;
//! * [`trace`] — a span-based tracer stamped with **virtual**
//!   [`SimTime`](evop_sim::SimTime) (never wall clock), recording
//!   parent/child spans, events and attributes into a bounded
//!   flight-recorder ring buffer. Span and trace ids are sequential, so
//!   two runs with the same seed produce byte-identical exports;
//! * [`timeline`] — renders one trace as an ASCII tree or a JSON
//!   document, for the `trace_report` binary and the examples.
//!
//! On top of that substrate sits the *health plane* (PR 4):
//!
//! * [`histo`] — deterministic log-bucketed streaming histograms
//!   (mergeable, fixed bucket ladder, byte-stable snapshots);
//! * [`slo`] — declarative [`SloSpec`]s judged by a multi-window
//!   burn-rate [`AlertEngine`] ticking on virtual time;
//! * [`export`] — Prometheus text-format and OTLP-like JSON exporters
//!   over registry snapshots and finished spans;
//! * [`analyze`] — trace analytics: critical-path extraction and
//!   per-operation latency breakdowns feeding the histograms.
//!
//! Above the health plane sits the *telemetry-at-scale plane* (PR 9):
//!
//! * [`tsdb`] — a deterministic embedded time-series store: registry
//!   ingests become multi-resolution rollups (raw → minute → hour) with
//!   bounded retention and a cardinality governor that collapses
//!   over-budget label-sets into per-family overflow aggregates;
//! * [`sample`] — tail-based trace sampling over the flight recorder:
//!   errored, SLO-burning and slow traces are always retained, healthy
//!   traffic deterministically one-in-N, under a span budget.
//!
//! And beside it the *perf-observability plane* (PR 6), the one part of
//! this crate that deliberately reads the wall clock:
//!
//! * [`profile`] — a low-overhead scoped profiler ([`ProfGuard`] spans
//!   nesting into a call tree) with per-operation self/total time, JSON
//!   and folded-stack flamegraph export. Its output is never part of a
//!   golden virtual-time document.
//!
//! Handles ([`MetricsRegistry`], [`Tracer`]) are cheap clones sharing one
//! store, so the broker, the cloud simulator and the REST router can all
//! report into the same collector.
//!
//! # Examples
//!
//! ```
//! use evop_obs::{MetricsRegistry, Tracer};
//! use evop_sim::SimTime;
//!
//! let tracer = Tracer::new();
//! tracer.set_now(SimTime::from_secs(10));
//! let root = tracer.start_trace("request");
//! let child = tracer.start_span("model-run", &root.context());
//! tracer.set_now(SimTime::from_secs(55));
//! child.finish();
//! root.finish();
//! assert_eq!(tracer.finished().len(), 2);
//!
//! let metrics = MetricsRegistry::new();
//! metrics.inc_counter("requests_total", &[("route", "/catchments")]);
//! assert_eq!(metrics.counter("requests_total", &[("route", "/catchments")]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod export;
pub mod histo;
pub mod metrics;
pub mod profile;
pub mod sample;
pub mod slo;
pub mod timeline;
pub mod trace;
pub mod tsdb;

pub use analyze::{CriticalPath, OperationBreakdown, TraceAnalysis};
pub use export::{otlp_json, otlp_rollup_json, prometheus_rollup_text, prometheus_text};
pub use histo::StreamingHistogram;
pub use metrics::{MetricsRegistry, SeriesKey};
pub use profile::{ProfGuard, ProfileReport, Profiler};
pub use sample::{
    burn_windows, RetainReason, RetainedTrace, RetentionCounters, SamplePolicy, TailSampler,
};
pub use slo::{
    AlertEngine, AlertKind, AlertRecord, AlertSeverity, BurnRateWindow, Selector, SloObjective,
    SloSpec,
};
pub use timeline::TimelineReport;
pub use trace::{Span, SpanEvent, SpanId, SpanRecord, TraceContext, TraceId, Tracer};
pub use tsdb::{Resolution, RetentionPolicy, RollupPoint, SeriesKind, Tsdb, TsdbConfig};
