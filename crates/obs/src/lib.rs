//! Observability substrate for the EVOp reproduction.
//!
//! The paper's evaluation reasons about *causal timelines* — a user's
//! request travelling portal → REST router → Resource Broker → cloud
//! instance boot → model run → hydrograph push (§IV-C/§IV-D) — and about
//! aggregate behaviour (placements, cloudbursts, migrations, billing).
//! This crate provides both views without perturbing the simulation:
//!
//! * [`metrics`] — a process-wide registry of counters, gauges and
//!   histograms keyed by name + label pairs, built on the
//!   [`evop_sim::stats`] estimators, with a deterministic JSON snapshot;
//! * [`trace`] — a span-based tracer stamped with **virtual**
//!   [`SimTime`](evop_sim::SimTime) (never wall clock), recording
//!   parent/child spans, events and attributes into a bounded
//!   flight-recorder ring buffer. Span and trace ids are sequential, so
//!   two runs with the same seed produce byte-identical exports;
//! * [`timeline`] — renders one trace as an ASCII tree or a JSON
//!   document, for the `trace_report` binary and the examples.
//!
//! Handles ([`MetricsRegistry`], [`Tracer`]) are cheap clones sharing one
//! store, so the broker, the cloud simulator and the REST router can all
//! report into the same collector.
//!
//! # Examples
//!
//! ```
//! use evop_obs::{MetricsRegistry, Tracer};
//! use evop_sim::SimTime;
//!
//! let tracer = Tracer::new();
//! tracer.set_now(SimTime::from_secs(10));
//! let root = tracer.start_trace("request");
//! let child = tracer.start_span("model-run", &root.context());
//! tracer.set_now(SimTime::from_secs(55));
//! child.finish();
//! root.finish();
//! assert_eq!(tracer.finished().len(), 2);
//!
//! let metrics = MetricsRegistry::new();
//! metrics.inc_counter("requests_total", &[("route", "/catchments")]);
//! assert_eq!(metrics.counter("requests_total", &[("route", "/catchments")]), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod metrics;
pub mod timeline;
pub mod trace;

pub use metrics::MetricsRegistry;
pub use timeline::TimelineReport;
pub use trace::{Span, SpanEvent, SpanId, SpanRecord, TraceContext, TraceId, Tracer};
