//! A metrics registry: counters, gauges and histograms with labels.
//!
//! Metrics are keyed by a typed [`SeriesKey`] — metric name plus sorted
//! `key=value` label pairs. Sorting happens at the *pair* level (key,
//! then value) when a series is touched, and the registry's maps order
//! by name first and labels second, so series of one metric family are
//! always contiguous and the JSON snapshot is byte-identical regardless
//! of registration order. The Prometheus exporter relies on that family
//! grouping; a plain rendered-string key would interleave families (the
//! `{` byte sorts above every alphanumeric, so `m2` would land between
//! `m{a=1}` and `m{z=1}`).

use std::collections::BTreeMap;
use std::sync::Arc;

use evop_sim::stats::{Percentiles, Running};
use parking_lot::RwLock;
use serde_json::{json, Map, Value};

use crate::histo::StreamingHistogram;

/// A fully resolved series identity: metric name plus sorted label pairs.
///
/// Ordering is derived, so `BTreeMap<SeriesKey, _>` groups all series of
/// one metric name together — what the exporters need for valid
/// Prometheus family grouping.
///
/// # Examples
///
/// ```
/// use evop_obs::SeriesKey;
///
/// let key = SeriesKey::new("placements_total", &[("provider", "aws"), ("class", "m")]);
/// assert_eq!(key.render(), "placements_total{class=m,provider=aws}");
/// assert_eq!(key.name(), "placements_total");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl SeriesKey {
    /// Builds a key, sorting the label pairs (by key, then value).
    pub fn new(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
        let mut owned: Vec<(String, String)> =
            labels.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect();
        owned.sort_unstable();
        SeriesKey { name: name.to_owned(), labels: owned }
    }

    /// The metric (family) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The sorted label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }

    /// Renders `name{k1=v1,k2=v2}` (just `name` when unlabelled) — the
    /// form used by the JSON snapshot and the ASCII reports.
    pub fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let rendered: Vec<String> = self.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        format!("{}{{{}}}", self.name, rendered.join(","))
    }
}

/// A histogram series: streaming moments, exact quantiles, and the
/// log-bucketed estimator the exporters and SLOs read.
#[derive(Debug, Default)]
struct HistSeries {
    running: Running,
    percentiles: Percentiles,
    streaming: StreamingHistogram,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<SeriesKey, u64>,
    gauges: BTreeMap<SeriesKey, f64>,
    histograms: BTreeMap<SeriesKey, HistSeries>,
}

/// A shared, thread-safe registry of named metrics.
///
/// Cloning the registry clones a handle: all clones report into one store,
/// which is how the router, broker and cloud simulator share a collector.
///
/// # Examples
///
/// ```
/// use evop_obs::MetricsRegistry;
///
/// let m = MetricsRegistry::new();
/// m.inc_counter("placements_total", &[("provider", "campus")]);
/// m.add_counter("placements_total", &[("provider", "campus")], 2);
/// m.set_gauge("cost_total", &[("provider", "aws")], 1.25);
/// m.observe("activation_wait_seconds", &[], 30.0);
///
/// assert_eq!(m.counter("placements_total", &[("provider", "campus")]), 3);
/// let snapshot = m.snapshot();
/// assert_eq!(snapshot["counters"]["placements_total{provider=campus}"], 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RwLock<Inner>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments a counter series by one.
    pub fn inc_counter(&self, name: &str, labels: &[(&str, &str)]) {
        self.add_counter(name, labels, 1);
    }

    /// Increments a counter series by `delta`.
    pub fn add_counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = SeriesKey::new(name, labels);
        *self.inner.write().counters.entry(key).or_insert(0) += delta;
    }

    /// The current value of a counter series (zero when never incremented).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner.read().counters.get(&SeriesKey::new(name, labels)).copied().unwrap_or(0)
    }

    /// Sums every counter series of one metric family — e.g. total
    /// submissions across all `outcome` labels.
    pub fn counter_family_total(&self, name: &str) -> u64 {
        self.inner.read().counters.iter().filter(|(k, _)| k.name() == name).map(|(_, &v)| v).sum()
    }

    /// Sets a gauge series to `value`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = SeriesKey::new(name, labels);
        self.inner.write().gauges.insert(key, value);
    }

    /// Adds `delta` to a gauge series (starting from zero).
    pub fn add_gauge(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        let key = SeriesKey::new(name, labels);
        *self.inner.write().gauges.entry(key).or_insert(0.0) += delta;
    }

    /// The current value of a gauge series, if ever set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.inner.read().gauges.get(&SeriesKey::new(name, labels)).copied()
    }

    /// Records one observation into a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = SeriesKey::new(name, labels);
        let mut inner = self.inner.write();
        let series = inner.histograms.entry(key).or_default();
        series.running.record(value);
        series.percentiles.record(value);
        series.streaming.record(value);
    }

    /// Number of observations in a histogram series.
    pub fn observations(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner
            .read()
            .histograms
            .get(&SeriesKey::new(name, labels))
            .map(|h| h.running.count())
            .unwrap_or(0)
    }

    /// The streaming histogram behind a series, cloned — `None` when the
    /// series was never observed. This is what the SLO engine and the
    /// trace analytics read.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<StreamingHistogram> {
        self.inner.read().histograms.get(&SeriesKey::new(name, labels)).map(|h| h.streaming.clone())
    }

    /// Approximate `q`-quantile of a histogram series (`None` when the
    /// series is empty). `p50`/`p90`/`p99` in one call.
    pub fn histogram_quantile(&self, name: &str, labels: &[(&str, &str)], q: f64) -> Option<f64> {
        self.inner
            .read()
            .histograms
            .get(&SeriesKey::new(name, labels))
            .and_then(|h| h.streaming.quantile(q))
    }

    /// All counter series in key order — for the exporters.
    pub fn counter_series(&self) -> Vec<(SeriesKey, u64)> {
        self.inner.read().counters.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// All gauge series in key order — for the exporters.
    pub fn gauge_series(&self) -> Vec<(SeriesKey, f64)> {
        self.inner.read().gauges.iter().map(|(k, &v)| (k.clone(), v)).collect()
    }

    /// All histogram series (streaming estimators, cloned) in key order —
    /// for the exporters.
    pub fn histogram_series(&self) -> Vec<(SeriesKey, StreamingHistogram)> {
        self.inner.read().histograms.iter().map(|(k, h)| (k.clone(), h.streaming.clone())).collect()
    }

    /// A deterministic JSON snapshot of every series.
    ///
    /// Counters render as integers, gauges as numbers, histograms as
    /// `{count, mean, min, max, p50, p90, p95, p99}` objects — p50/p95
    /// from the exact order statistics, p90/p99 from the streaming
    /// estimator. All maps are sorted by (name, label pairs).
    pub fn snapshot(&self) -> Value {
        let mut inner = self.inner.write();
        let counters: Map<String, Value> =
            inner.counters.iter().map(|(k, &v)| (k.render(), json!(v))).collect();
        let gauges: Map<String, Value> =
            inner.gauges.iter().map(|(k, &v)| (k.render(), json!(v))).collect();
        let histograms: Map<String, Value> = inner
            .histograms
            .iter_mut()
            .map(|(k, h)| {
                (
                    k.render(),
                    json!({
                        "count": h.running.count(),
                        "mean": h.running.mean(),
                        "min": h.running.min(),
                        "max": h.running.max(),
                        "p50": h.percentiles.median().unwrap_or(f64::NAN),
                        "p90": h.streaming.p90().unwrap_or(f64::NAN),
                        "p95": h.percentiles.p95().unwrap_or(f64::NAN),
                        "p99": h.streaming.p99().unwrap_or(f64::NAN),
                    }),
                )
            })
            .collect();
        json!({ "counters": counters, "gauges": gauges, "histograms": histograms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_does_not_split_series() {
        let m = MetricsRegistry::new();
        m.inc_counter("c", &[("a", "1"), ("b", "2")]);
        m.inc_counter("c", &[("b", "2"), ("a", "1")]);
        assert_eq!(m.counter("c", &[("a", "1"), ("b", "2")]), 2);
        assert_eq!(SeriesKey::new("c", &[("b", "2"), ("a", "1")]).render(), "c{a=1,b=2}");
    }

    #[test]
    fn snapshot_is_identical_regardless_of_registration_order() {
        let populate = |pairs: &[(&str, &[(&str, &str)])]| {
            let m = MetricsRegistry::new();
            for &(name, labels) in pairs {
                m.inc_counter(name, labels);
                m.observe("latency", labels, 1.5);
            }
            m.snapshot().to_string()
        };
        let forward: &[(&str, &[(&str, &str)])] =
            &[("m", &[("a", "1")]), ("m2", &[]), ("m", &[("z", "9"), ("a", "1")])];
        let reverse: &[(&str, &[(&str, &str)])] =
            &[("m", &[("a", "1"), ("z", "9")]), ("m2", &[]), ("m", &[("a", "1")])];
        assert_eq!(populate(forward), populate(reverse));
    }

    #[test]
    fn series_of_one_family_are_contiguous() {
        let m = MetricsRegistry::new();
        m.inc_counter("m", &[("z", "1")]);
        m.inc_counter("m2", &[]);
        m.inc_counter("m", &[("a", "1")]);
        let names: Vec<String> =
            m.counter_series().iter().map(|(k, _)| k.name().to_owned()).collect();
        assert_eq!(names, ["m", "m", "m2"], "families must not interleave");
    }

    #[test]
    fn clones_share_the_store() {
        let m = MetricsRegistry::new();
        let handle = m.clone();
        handle.inc_counter("shared", &[]);
        assert_eq!(m.counter("shared", &[]), 1);
    }

    #[test]
    fn gauges_set_and_accumulate() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("g", &[]), None);
        m.set_gauge("g", &[], 2.5);
        m.add_gauge("g", &[], 0.5);
        assert_eq!(m.gauge("g", &[]), Some(3.0));
    }

    #[test]
    fn histogram_snapshot_shape() {
        let m = MetricsRegistry::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            m.observe("lat", &[("op", "boot")], x);
        }
        assert_eq!(m.observations("lat", &[("op", "boot")]), 5);
        let snap = m.snapshot();
        let h = &snap["histograms"]["lat{op=boot}"];
        assert_eq!(h["count"], 5);
        assert_eq!(h["min"], 1.0);
        assert_eq!(h["max"], 5.0);
        assert_eq!(h["p50"], 3.0);
        let p99 = h["p99"].as_f64().unwrap_or(0.0);
        assert!((p99 / 5.0 - 1.0).abs() < 0.05, "p99 ≈ 5.0, got {p99}");
    }

    #[test]
    fn histogram_accessors_reach_the_streaming_estimator() {
        let m = MetricsRegistry::new();
        for i in 1..=100 {
            m.observe("lat", &[], i as f64);
        }
        let h = m.histogram("lat", &[]).unwrap();
        assert_eq!(h.count(), 100);
        let p50 = m.histogram_quantile("lat", &[], 0.5).unwrap_or(0.0);
        assert!((p50 / 50.0 - 1.0).abs() < 0.06, "p50 ≈ 50, got {p50}");
        assert!(m.histogram("missing", &[]).is_none());
    }

    #[test]
    fn counter_family_total_sums_across_labels() {
        let m = MetricsRegistry::new();
        m.add_counter("submit_total", &[("outcome", "ok")], 7);
        m.add_counter("submit_total", &[("outcome", "transient")], 2);
        m.add_counter("other_total", &[], 100);
        assert_eq!(m.counter_family_total("submit_total"), 9);
    }

    #[test]
    fn snapshot_is_deterministic_text() {
        let build = || {
            let m = MetricsRegistry::new();
            m.inc_counter("b", &[]);
            m.inc_counter("a", &[("z", "9"), ("a", "0")]);
            m.set_gauge("g", &[], 1.5);
            m.observe("h", &[], 2.0);
            m.snapshot().to_string()
        };
        assert_eq!(build(), build());
    }
}
