//! A metrics registry: counters, gauges and histograms with labels.
//!
//! Metrics are keyed by a metric name plus a set of `key=value` label
//! pairs. Labels are sorted before keying, so the same logical series is
//! always the same stored series regardless of argument order, and the
//! JSON snapshot (backed by `BTreeMap`) renders with fully sorted keys —
//! byte-identical across same-seed runs.

use std::collections::BTreeMap;
use std::sync::Arc;

use evop_sim::stats::{Percentiles, Running};
use parking_lot::RwLock;
use serde_json::{json, Map, Value};

/// A histogram series: streaming moments plus exact quantiles.
#[derive(Debug, Default)]
struct HistSeries {
    running: Running,
    percentiles: Percentiles,
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistSeries>,
}

/// A shared, thread-safe registry of named metrics.
///
/// Cloning the registry clones a handle: all clones report into one store,
/// which is how the router, broker and cloud simulator share a collector.
///
/// # Examples
///
/// ```
/// use evop_obs::MetricsRegistry;
///
/// let m = MetricsRegistry::new();
/// m.inc_counter("placements_total", &[("provider", "campus")]);
/// m.add_counter("placements_total", &[("provider", "campus")], 2);
/// m.set_gauge("cost_total", &[("provider", "aws")], 1.25);
/// m.observe("activation_wait_seconds", &[], 30.0);
///
/// assert_eq!(m.counter("placements_total", &[("provider", "campus")]), 3);
/// let snapshot = m.snapshot();
/// assert_eq!(snapshot["counters"]["placements_total{provider=campus}"], 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RwLock<Inner>>,
}

/// Renders `name{k1=v1,k2=v2}` with labels sorted by key.
fn series_key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_owned();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let rendered: Vec<String> = sorted.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", rendered.join(","))
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments a counter series by one.
    pub fn inc_counter(&self, name: &str, labels: &[(&str, &str)]) {
        self.add_counter(name, labels, 1);
    }

    /// Increments a counter series by `delta`.
    pub fn add_counter(&self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let key = series_key(name, labels);
        *self.inner.write().counters.entry(key).or_insert(0) += delta;
    }

    /// The current value of a counter series (zero when never incremented).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner.read().counters.get(&series_key(name, labels)).copied().unwrap_or(0)
    }

    /// Sets a gauge series to `value`.
    pub fn set_gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = series_key(name, labels);
        self.inner.write().gauges.insert(key, value);
    }

    /// Adds `delta` to a gauge series (starting from zero).
    pub fn add_gauge(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        let key = series_key(name, labels);
        *self.inner.write().gauges.entry(key).or_insert(0.0) += delta;
    }

    /// The current value of a gauge series, if ever set.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.inner.read().gauges.get(&series_key(name, labels)).copied()
    }

    /// Records one observation into a histogram series.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let key = series_key(name, labels);
        let mut inner = self.inner.write();
        let series = inner.histograms.entry(key).or_default();
        series.running.record(value);
        series.percentiles.record(value);
    }

    /// Number of observations in a histogram series.
    pub fn observations(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.inner
            .read()
            .histograms
            .get(&series_key(name, labels))
            .map(|h| h.running.count())
            .unwrap_or(0)
    }

    /// A deterministic JSON snapshot of every series.
    ///
    /// Counters render as integers, gauges as numbers, histograms as
    /// `{count, mean, min, max, p50, p95}` objects. All maps are sorted.
    pub fn snapshot(&self) -> Value {
        let mut inner = self.inner.write();
        let counters: Map<String, Value> =
            inner.counters.iter().map(|(k, &v)| (k.clone(), json!(v))).collect();
        let gauges: Map<String, Value> =
            inner.gauges.iter().map(|(k, &v)| (k.clone(), json!(v))).collect();
        let histograms: Map<String, Value> = inner
            .histograms
            .iter_mut()
            .map(|(k, h)| {
                (
                    k.clone(),
                    json!({
                        "count": h.running.count(),
                        "mean": h.running.mean(),
                        "min": h.running.min(),
                        "max": h.running.max(),
                        "p50": h.percentiles.median().unwrap_or(f64::NAN),
                        "p95": h.percentiles.p95().unwrap_or(f64::NAN),
                    }),
                )
            })
            .collect();
        json!({ "counters": counters, "gauges": gauges, "histograms": histograms })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_does_not_split_series() {
        let m = MetricsRegistry::new();
        m.inc_counter("c", &[("a", "1"), ("b", "2")]);
        m.inc_counter("c", &[("b", "2"), ("a", "1")]);
        assert_eq!(m.counter("c", &[("a", "1"), ("b", "2")]), 2);
        assert_eq!(series_key("c", &[("b", "2"), ("a", "1")]), "c{a=1,b=2}");
    }

    #[test]
    fn clones_share_the_store() {
        let m = MetricsRegistry::new();
        let handle = m.clone();
        handle.inc_counter("shared", &[]);
        assert_eq!(m.counter("shared", &[]), 1);
    }

    #[test]
    fn gauges_set_and_accumulate() {
        let m = MetricsRegistry::new();
        assert_eq!(m.gauge("g", &[]), None);
        m.set_gauge("g", &[], 2.5);
        m.add_gauge("g", &[], 0.5);
        assert_eq!(m.gauge("g", &[]), Some(3.0));
    }

    #[test]
    fn histogram_snapshot_shape() {
        let m = MetricsRegistry::new();
        for x in [1.0, 2.0, 3.0, 4.0, 5.0] {
            m.observe("lat", &[("op", "boot")], x);
        }
        assert_eq!(m.observations("lat", &[("op", "boot")]), 5);
        let snap = m.snapshot();
        let h = &snap["histograms"]["lat{op=boot}"];
        assert_eq!(h["count"], 5);
        assert_eq!(h["min"], 1.0);
        assert_eq!(h["max"], 5.0);
        assert_eq!(h["p50"], 3.0);
    }

    #[test]
    fn snapshot_is_deterministic_text() {
        let build = || {
            let m = MetricsRegistry::new();
            m.inc_counter("b", &[]);
            m.inc_counter("a", &[("z", "9"), ("a", "0")]);
            m.set_gauge("g", &[], 1.5);
            m.observe("h", &[], 2.0);
            m.snapshot().to_string()
        };
        assert_eq!(build(), build());
    }
}
