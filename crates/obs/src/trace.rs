//! A span tracer stamped with virtual time.
//!
//! Spans are stamped with [`SimTime`] — the simulation's clock, never the
//! wall clock — and identified by *sequential* trace/span ids drawn from a
//! shared counter. Given the same seed, a simulation therefore produces
//! byte-identical trace exports on every run, which is what the
//! determinism guard in the workspace tests asserts.
//!
//! Finished spans land in a bounded flight-recorder ring buffer; when it
//! fills, the oldest spans are evicted (and counted), so long simulations
//! keep the most recent history without unbounded growth.

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use evop_sim::SimTime;
use parking_lot::Mutex;
use serde_json::{json, Value};

/// Identifies one causal timeline (one user request, one experiment run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifies one span within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(pub u64);

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08x}", self.0)
    }
}

/// The propagated context: which trace a piece of work belongs to, and
/// which span caused it.
///
/// Contexts travel across service boundaries as the request headers
/// [`TraceContext::TRACE_HEADER`] and [`TraceContext::SPAN_HEADER`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this work belongs to.
    pub trace_id: TraceId,
    /// The span that caused this work (the parent of any span started
    /// from this context).
    pub span_id: SpanId,
}

impl TraceContext {
    /// Header name carrying the trace id (lower-case, hex).
    pub const TRACE_HEADER: &'static str = "x-trace-id";
    /// Header name carrying the causing span id (lower-case, hex).
    pub const SPAN_HEADER: &'static str = "x-span-id";

    /// Parses a context from its two header values.
    pub fn from_header_values(trace: &str, span: &str) -> Option<TraceContext> {
        Some(TraceContext {
            trace_id: TraceId(u64::from_str_radix(trace, 16).ok()?),
            span_id: SpanId(u64::from_str_radix(span, 16).ok()?),
        })
    }
}

/// A timestamped annotation inside a span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// When (virtual time).
    pub at: SimTime,
    /// What happened.
    pub message: String,
}

/// One completed (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The owning trace.
    pub trace_id: TraceId,
    /// This span's id.
    pub span_id: SpanId,
    /// The causing span, if not a root.
    pub parent: Option<SpanId>,
    /// Operation name, e.g. `"broker.connect"`.
    pub name: String,
    /// Start, in virtual time.
    pub start: SimTime,
    /// End, in virtual time; `None` while the span is open.
    pub end: Option<SimTime>,
    /// Key/value attributes (sorted).
    pub attrs: BTreeMap<String, String>,
    /// Timestamped annotations, in recording order.
    pub events: Vec<SpanEvent>,
}

impl SpanRecord {
    /// Span duration, zero while still open.
    pub fn duration(&self) -> evop_sim::SimDuration {
        self.end.unwrap_or(self.start).saturating_since(self.start)
    }

    /// This span's record as a deterministic JSON object.
    pub fn to_json(&self) -> Value {
        let attrs: serde_json::Map<String, Value> =
            self.attrs.iter().map(|(k, v)| (k.clone(), json!(v))).collect();
        let events: Vec<Value> = self
            .events
            .iter()
            .map(|e| json!({ "at_ms": e.at.as_millis(), "message": e.message }))
            .collect();
        json!({
            "trace": self.trace_id.to_string(),
            "span": self.span_id.to_string(),
            "parent": self.parent.map(|p| p.to_string()),
            "name": self.name,
            "start_ms": self.start.as_millis(),
            "end_ms": self.end.map(|t| t.as_millis()),
            "attrs": attrs,
            "events": events,
        })
    }
}

#[derive(Debug)]
struct State {
    next_trace: u64,
    next_span: u64,
    open: BTreeMap<u64, SpanRecord>,
    finished: VecDeque<SpanRecord>,
    capacity: usize,
    dropped: u64,
}

#[derive(Debug)]
struct Inner {
    now_millis: AtomicU64,
    state: Mutex<State>,
}

/// The shared trace collector.
///
/// Cloning is cheap and shares the store. The tracer's clock is advanced
/// by whichever component drives virtual time (the broker control loop,
/// the cloud simulator's event loop) via [`Tracer::set_now`]; it never
/// reads the wall clock.
///
/// # Examples
///
/// ```
/// use evop_obs::Tracer;
/// use evop_sim::SimTime;
///
/// let tracer = Tracer::new();
/// let root = tracer.start_trace("e1.request");
/// root.attr("user", "stakeholder");
/// let child = tracer.start_span("broker.connect", &root.context());
/// tracer.set_now(SimTime::from_secs(3));
/// child.event("bound instance i-0");
/// child.finish();
/// root.finish();
///
/// let spans = tracer.trace(tracer.trace_ids()[0]);
/// assert_eq!(spans.len(), 2);
/// assert_eq!(spans[1].parent, Some(spans[0].span_id));
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<Inner>,
}

impl Default for Tracer {
    fn default() -> Tracer {
        Tracer::new()
    }
}

impl Tracer {
    /// Default flight-recorder capacity, in finished spans.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates a tracer with the default ring-buffer capacity.
    pub fn new() -> Tracer {
        Tracer::with_capacity(Tracer::DEFAULT_CAPACITY)
    }

    /// Creates a tracer keeping at most `capacity` finished spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Tracer {
        assert!(capacity > 0, "flight recorder needs room for at least one span");
        Tracer {
            inner: Arc::new(Inner {
                now_millis: AtomicU64::new(0),
                state: Mutex::new(State {
                    next_trace: 0,
                    next_span: 0,
                    open: BTreeMap::new(),
                    finished: VecDeque::new(),
                    capacity,
                    dropped: 0,
                }),
            }),
        }
    }

    /// Advances the tracer's virtual clock (monotone: going backwards is
    /// ignored, so multiple drivers can race without rewinding time).
    pub fn set_now(&self, now: SimTime) {
        self.inner.now_millis.fetch_max(now.as_millis(), Ordering::Relaxed);
    }

    /// The tracer's current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_millis(self.inner.now_millis.load(Ordering::Relaxed))
    }

    /// Starts a new trace with a root span named `name`.
    pub fn start_trace(&self, name: impl Into<String>) -> Span {
        let now = self.now();
        let mut state = self.inner.state.lock();
        let trace_id = TraceId(state.next_trace);
        state.next_trace += 1;
        self.open_span(&mut state, trace_id, None, name.into(), now)
    }

    /// Starts a child span of `parent` in the same trace.
    pub fn start_span(&self, name: impl Into<String>, parent: &TraceContext) -> Span {
        let now = self.now();
        let mut state = self.inner.state.lock();
        self.open_span(&mut state, parent.trace_id, Some(parent.span_id), name.into(), now)
    }

    /// Records an instantaneous (zero-duration) child span — used for
    /// point happenings like a push update leaving the broker.
    pub fn instant(&self, name: impl Into<String>, parent: &TraceContext) {
        self.start_span(name, parent).finish();
    }

    fn open_span(
        &self,
        state: &mut State,
        trace_id: TraceId,
        parent: Option<SpanId>,
        name: String,
        now: SimTime,
    ) -> Span {
        let span_id = SpanId(state.next_span);
        state.next_span += 1;
        state.open.insert(
            span_id.0,
            SpanRecord {
                trace_id,
                span_id,
                parent,
                name,
                start: now,
                end: None,
                attrs: BTreeMap::new(),
                events: Vec::new(),
            },
        );
        Span { tracer: self.clone(), ctx: TraceContext { trace_id, span_id }, finished: false }
    }

    fn with_open<R>(&self, span: SpanId, f: impl FnOnce(&mut SpanRecord) -> R) -> Option<R> {
        self.inner.state.lock().open.get_mut(&span.0).map(f)
    }

    fn finish_span(&self, span: SpanId) {
        let now = self.now();
        let mut state = self.inner.state.lock();
        if let Some(mut record) = state.open.remove(&span.0) {
            record.end = Some(now.max(record.start));
            if state.finished.len() == state.capacity {
                state.finished.pop_front();
                state.dropped += 1;
            }
            state.finished.push_back(record);
        }
    }

    /// All finished spans still in the ring buffer, oldest first.
    pub fn finished(&self) -> Vec<SpanRecord> {
        self.inner.state.lock().finished.iter().cloned().collect()
    }

    /// Spans evicted from the ring buffer so far.
    pub fn dropped(&self) -> u64 {
        self.inner.state.lock().dropped
    }

    /// Removes and returns every finished span whose end time is strictly
    /// before `cutoff`, oldest first. This is the tail sampler's intake:
    /// draining incrementally keeps the flight recorder from evicting
    /// spans before a retention decision has been made about their trace.
    /// Spans ending at or after the cutoff stay in the ring buffer.
    pub fn drain_finished_before(&self, cutoff: SimTime) -> Vec<SpanRecord> {
        let mut state = self.inner.state.lock();
        let mut drained = Vec::new();
        let mut kept = VecDeque::with_capacity(state.finished.len());
        for span in state.finished.drain(..) {
            if span.end.is_some_and(|end| end < cutoff) {
                drained.push(span);
            } else {
                kept.push_back(span);
            }
        }
        state.finished = kept;
        drained
    }

    /// Distinct trace ids present in the ring buffer, ascending.
    pub fn trace_ids(&self) -> Vec<TraceId> {
        let state = self.inner.state.lock();
        let mut ids: Vec<TraceId> = state.finished.iter().map(|s| s.trace_id).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Finished spans of one trace, sorted by (start, span id).
    pub fn trace(&self, id: TraceId) -> Vec<SpanRecord> {
        let mut spans: Vec<SpanRecord> =
            self.inner.state.lock().finished.iter().filter(|s| s.trace_id == id).cloned().collect();
        spans.sort_by_key(|s| (s.start, s.span_id));
        spans
    }

    /// Every finished span as one deterministic JSON document.
    pub fn export_json(&self) -> Value {
        let state = self.inner.state.lock();
        let mut spans: Vec<&SpanRecord> = state.finished.iter().collect();
        spans.sort_by_key(|s| (s.trace_id, s.start, s.span_id));
        json!({
            "spans": spans.iter().map(|s| s.to_json()).collect::<Vec<Value>>(),
            "dropped": state.dropped,
        })
    }
}

/// A handle to an open span. Dropping the handle finishes the span at the
/// tracer's current virtual time; [`Span::finish`] does so explicitly.
#[derive(Debug)]
pub struct Span {
    tracer: Tracer,
    ctx: TraceContext,
    finished: bool,
}

impl Span {
    /// The context to propagate to work this span causes.
    pub fn context(&self) -> TraceContext {
        self.ctx
    }

    /// The owning trace.
    pub fn trace_id(&self) -> TraceId {
        self.ctx.trace_id
    }

    /// This span's id.
    pub fn span_id(&self) -> SpanId {
        self.ctx.span_id
    }

    /// Sets (or overwrites) an attribute.
    pub fn attr(&self, key: impl Into<String>, value: impl Into<String>) {
        let (key, value) = (key.into(), value.into());
        self.tracer.with_open(self.ctx.span_id, |s| {
            s.attrs.insert(key, value);
        });
    }

    /// Records a timestamped annotation.
    pub fn event(&self, message: impl Into<String>) {
        let at = self.tracer.now();
        let message = message.into();
        self.tracer.with_open(self.ctx.span_id, |s| {
            s.events.push(SpanEvent { at, message });
        });
    }

    /// Finishes the span at the tracer's current virtual time.
    pub fn finish(mut self) {
        self.finish_once();
    }

    fn finish_once(&mut self) {
        if !self.finished {
            self.finished = true;
            self.tracer.finish_span(self.ctx.span_id);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_once();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_sim::SimDuration;

    #[test]
    fn ids_are_sequential_and_deterministic() {
        let run = || {
            let tracer = Tracer::new();
            let a = tracer.start_trace("a");
            let b = tracer.start_span("b", &a.context());
            b.finish();
            a.finish();
            let c = tracer.start_trace("c");
            c.finish();
            tracer.export_json().to_string()
        };
        assert_eq!(run(), run());
        let tracer = Tracer::new();
        let a = tracer.start_trace("a");
        let b = tracer.start_trace("b");
        assert_eq!(a.trace_id(), TraceId(0));
        assert_eq!(b.trace_id(), TraceId(1));
        assert_eq!(a.span_id(), SpanId(0));
        assert_eq!(b.span_id(), SpanId(1));
    }

    #[test]
    fn spans_carry_virtual_time() {
        let tracer = Tracer::new();
        tracer.set_now(SimTime::from_secs(100));
        let root = tracer.start_trace("op");
        tracer.set_now(SimTime::from_secs(160));
        root.event("milestone");
        tracer.set_now(SimTime::from_secs(220));
        root.finish();

        let span = &tracer.finished()[0];
        assert_eq!(span.start, SimTime::from_secs(100));
        assert_eq!(span.end, Some(SimTime::from_secs(220)));
        assert_eq!(span.duration(), SimDuration::from_secs(120));
        assert_eq!(span.events[0].at, SimTime::from_secs(160));
    }

    #[test]
    fn clock_is_monotone() {
        let tracer = Tracer::new();
        tracer.set_now(SimTime::from_secs(50));
        tracer.set_now(SimTime::from_secs(10));
        assert_eq!(tracer.now(), SimTime::from_secs(50));
    }

    #[test]
    fn drop_finishes_open_spans() {
        let tracer = Tracer::new();
        {
            let _span = tracer.start_trace("scoped");
        }
        assert_eq!(tracer.finished().len(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let tracer = Tracer::with_capacity(2);
        for name in ["a", "b", "c"] {
            tracer.start_trace(name).finish();
        }
        let names: Vec<String> = tracer.finished().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["b", "c"]);
        assert_eq!(tracer.dropped(), 1);
    }

    #[test]
    fn context_round_trips_through_headers() {
        let ctx = TraceContext { trace_id: TraceId(0xabc), span_id: SpanId(7) };
        let parsed =
            TraceContext::from_header_values(&ctx.trace_id.to_string(), &ctx.span_id.to_string())
                .unwrap();
        assert_eq!(parsed, ctx);
        assert!(TraceContext::from_header_values("xyz", "1").is_none());
    }

    #[test]
    fn trace_filters_and_sorts() {
        let tracer = Tracer::new();
        let a = tracer.start_trace("root");
        let ctx = a.context();
        tracer.set_now(SimTime::from_secs(5));
        let child = tracer.start_span("child", &ctx);
        child.finish();
        a.finish();
        let other = tracer.start_trace("other");
        other.finish();

        let spans = tracer.trace(TraceId(0));
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "root");
        assert_eq!(spans[1].parent, Some(spans[0].span_id));
        assert_eq!(tracer.trace_ids(), vec![TraceId(0), TraceId(1)]);
    }
}
