//! Exporters: Prometheus text format and OTLP-like JSON.
//!
//! Both exporters are deterministic renderings of deterministic state —
//! same-seed runs export byte-identical documents, which the workspace
//! golden tests pin. Floats render through Rust's shortest-round-trip
//! `Display`, never locale- or libm-dependent formatting.

use std::fmt::Write as _;

use serde_json::{json, Value};

use crate::histo::StreamingHistogram;
use crate::metrics::MetricsRegistry;
use crate::trace::Tracer;
use crate::tsdb::{Resolution, Tsdb};

/// Renders a registry in the Prometheus text exposition format.
///
/// Counters and gauges become one sample line per series; histograms
/// expand to cumulative `_bucket{le="…"}` lines (the non-empty buckets of
/// the shared log ladder plus `+Inf`), `_sum` and `_count`. Series of one
/// family stay contiguous under a single `# TYPE` header — guaranteed by
/// the registry's typed key ordering.
///
/// # Examples
///
/// ```
/// use evop_obs::{prometheus_text, MetricsRegistry};
///
/// let m = MetricsRegistry::new();
/// m.inc_counter("requests_total", &[("route", "/catchments")]);
/// let text = prometheus_text(&m);
/// assert!(text.contains("# TYPE requests_total counter"));
/// assert!(text.contains("requests_total{route=\"/catchments\"} 1"));
/// ```
pub fn prometheus_text(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_family: Option<String> = None;

    for (key, value) in registry.counter_series() {
        type_header(&mut out, &mut last_family, key.name(), "counter");
        let _ = writeln!(out, "{} {}", sample_name(key.name(), key.labels(), &[]), value);
    }
    last_family = None;
    for (key, value) in registry.gauge_series() {
        type_header(&mut out, &mut last_family, key.name(), "gauge");
        let _ = writeln!(out, "{} {}", sample_name(key.name(), key.labels(), &[]), value);
    }
    last_family = None;
    for (key, hist) in registry.histogram_series() {
        type_header(&mut out, &mut last_family, key.name(), "histogram");
        let mut cumulative = 0u64;
        for (bucket, count) in hist.nonzero_buckets() {
            cumulative += count;
            let (_, hi) = StreamingHistogram::bucket_range(bucket);
            let le = if hi.is_infinite() { "+Inf".to_owned() } else { format!("{hi}") };
            let _ = writeln!(
                out,
                "{} {}",
                sample_name(&format!("{}_bucket", key.name()), key.labels(), &[("le", &le)]),
                cumulative
            );
        }
        let _ = writeln!(
            out,
            "{} {}",
            sample_name(&format!("{}_bucket", key.name()), key.labels(), &[("le", "+Inf")]),
            hist.count()
        );
        let _ = writeln!(
            out,
            "{} {}",
            sample_name(&format!("{}_sum", key.name()), key.labels(), &[]),
            hist.sum()
        );
        let _ = writeln!(
            out,
            "{} {}",
            sample_name(&format!("{}_count", key.name()), key.labels(), &[]),
            hist.count()
        );
    }
    out
}

/// Emits a `# TYPE` header when the family changes.
fn type_header(out: &mut String, last: &mut Option<String>, family: &str, kind: &str) {
    if last.as_deref() != Some(family) {
        let _ = writeln!(out, "# TYPE {family} {kind}");
        *last = Some(family.to_owned());
    }
}

/// Renders `name{k="v",…}` with extra label pairs appended (for `le`).
fn sample_name(name: &str, labels: &[(String, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return name.to_owned();
    }
    let mut rendered: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    rendered.extend(extra.iter().map(|&(k, v)| format!("{k}=\"{}\"", escape_label(v))));
    format!("{name}{{{}}}", rendered.join(","))
}

/// Prometheus label-value escaping: backslash, quote and newline.
fn escape_label(value: &str) -> String {
    value.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Exports the tracer's finished spans as an OTLP-like JSON document
/// (`resourceSpans` → `scopeSpans` → `spans`, ids hex-padded, timestamps
/// in nanoseconds derived from virtual milliseconds).
///
/// # Examples
///
/// ```
/// use evop_obs::{otlp_json, Tracer};
/// use evop_sim::SimTime;
///
/// let tracer = Tracer::new();
/// tracer.set_now(SimTime::from_secs(1));
/// tracer.start_trace("request").finish();
/// let doc = otlp_json(&tracer);
/// assert_eq!(doc["resourceSpans"][0]["scopeSpans"][0]["spans"][0]["name"], "request");
/// ```
pub fn otlp_json(tracer: &Tracer) -> Value {
    let mut spans = tracer.finished();
    spans.sort_by_key(|s| (s.trace_id, s.start, s.span_id));
    let rendered: Vec<Value> = spans
        .iter()
        .map(|s| {
            let attributes: Vec<Value> = s
                .attrs
                .iter()
                .map(|(k, v)| json!({ "key": k, "value": { "stringValue": v } }))
                .collect();
            let events: Vec<Value> = s
                .events
                .iter()
                .map(|e| {
                    json!({
                        "timeUnixNano": millis_to_nanos(e.at.as_millis()),
                        "name": e.message,
                    })
                })
                .collect();
            json!({
                "traceId": format!("{:032x}", s.trace_id.0),
                "spanId": format!("{:016x}", s.span_id.0),
                "parentSpanId": s.parent.map(|p| format!("{:016x}", p.0)).unwrap_or_default(),
                "name": s.name,
                "startTimeUnixNano": millis_to_nanos(s.start.as_millis()),
                "endTimeUnixNano": s.end.map(|t| millis_to_nanos(t.as_millis())).unwrap_or_default(),
                "attributes": attributes,
                "events": events,
            })
        })
        .collect();
    json!({
        "resourceSpans": [{
            "resource": {
                "attributes": [
                    { "key": "service.name", "value": { "stringValue": "evop-sim" } },
                ],
            },
            "scopeSpans": [{
                "scope": { "name": "evop-obs" },
                "spans": rendered,
            }],
        }],
        "droppedSpans": tracer.dropped(),
    })
}

/// Virtual milliseconds → "unix" nanoseconds (the simulation epoch is 0).
fn millis_to_nanos(ms: u64) -> String {
    // OTLP carries nanos as strings to dodge 53-bit JSON precision.
    format!("{}", (ms as u128) * 1_000_000)
}

/// Renders one resolution of a [`Tsdb`] in a Prometheus-text-like format:
/// every window becomes one sample per aggregate (`_sum`, `_count`,
/// `_min`, `_max`) with the window start attached as a `window` label, so
/// a scrape of the rollup plane backfills dashboards in one pass.
///
/// # Examples
///
/// ```
/// use evop_obs::{prometheus_rollup_text, MetricsRegistry, Resolution, Tsdb, TsdbConfig};
/// use evop_sim::SimTime;
///
/// let m = MetricsRegistry::new();
/// let mut tsdb = Tsdb::new(TsdbConfig::default());
/// m.add_counter("req_total", &[], 5);
/// tsdb.ingest_registry(&m, SimTime::ZERO);
/// tsdb.finish(SimTime::from_secs(60));
/// let text = prometheus_rollup_text(&tsdb, Resolution::Raw);
/// assert!(text.contains("req_total_sum{window=\"0\"} 5"));
/// ```
pub fn prometheus_rollup_text(tsdb: &Tsdb, resolution: Resolution) -> String {
    let mut out = String::new();
    let mut last_family: Option<String> = None;
    for key in tsdb.series_keys() {
        let kind = match tsdb.series_kind(&key) {
            Some(k) => k,
            None => continue,
        };
        type_header(
            &mut out,
            &mut last_family,
            key.name(),
            &format!("rollup_{}_{}", resolution.label(), kind.label()),
        );
        for point in tsdb.series_points(&key, resolution) {
            let window = point.start_ms.to_string();
            for (suffix, value) in [
                ("sum", point.sum),
                ("count", point.count as f64),
                ("min", if point.count == 0 { 0.0 } else { point.min }),
                ("max", if point.count == 0 { 0.0 } else { point.max }),
            ] {
                let _ = writeln!(
                    out,
                    "{} {}",
                    sample_name(
                        &format!("{}_{}", key.name(), suffix),
                        key.labels(),
                        &[("window", &window)],
                    ),
                    value
                );
            }
        }
    }
    out
}

/// Exports a [`Tsdb`] resolution as an OTLP-metrics-shaped JSON document
/// (`resourceMetrics` → `scopeMetrics` → `metrics`, one summary data
/// point per sealed window). Deterministic: same snapshot, same bytes.
///
/// # Examples
///
/// ```
/// use evop_obs::{otlp_rollup_json, MetricsRegistry, Resolution, Tsdb, TsdbConfig};
/// use evop_sim::SimTime;
///
/// let m = MetricsRegistry::new();
/// let mut tsdb = Tsdb::new(TsdbConfig::default());
/// m.set_gauge("pool", &[], 3.0);
/// tsdb.ingest_registry(&m, SimTime::ZERO);
/// tsdb.finish(SimTime::from_secs(60));
/// let doc = otlp_rollup_json(&tsdb, Resolution::Raw);
/// assert_eq!(doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"][0]["name"], "pool");
/// ```
pub fn otlp_rollup_json(tsdb: &Tsdb, resolution: Resolution) -> Value {
    let interval_ms = match resolution {
        Resolution::Raw => tsdb.config().raw_interval.as_millis(),
        Resolution::Minute => 60_000,
        Resolution::Hour => 3_600_000,
    };
    let metrics: Vec<Value> = tsdb
        .series_keys()
        .into_iter()
        .map(|key| {
            let attributes: Vec<Value> = key
                .labels()
                .iter()
                .map(|(k, v)| json!({ "key": k, "value": { "stringValue": v } }))
                .collect();
            let points: Vec<Value> = tsdb
                .series_points(&key, resolution)
                .iter()
                .map(|p| {
                    json!({
                        "startTimeUnixNano": millis_to_nanos(p.start_ms),
                        "timeUnixNano": millis_to_nanos(p.start_ms + interval_ms),
                        "attributes": attributes,
                        "sum": p.sum,
                        "count": p.count,
                        "min": if p.count == 0 { 0.0 } else { p.min },
                        "max": if p.count == 0 { 0.0 } else { p.max },
                    })
                })
                .collect();
            json!({
                "name": key.name(),
                "unit": "",
                "summary": { "dataPoints": points },
            })
        })
        .collect();
    json!({
        "resourceMetrics": [{
            "resource": {
                "attributes": [
                    { "key": "service.name", "value": { "stringValue": "evop-sim" } },
                ],
            },
            "scopeMetrics": [{
                "scope": { "name": "evop-obs.tsdb" },
                "resolution": resolution.label(),
                "metrics": metrics,
            }],
        }],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_sim::SimTime;

    #[test]
    fn prometheus_counters_and_gauges_render() {
        let m = MetricsRegistry::new();
        m.add_counter("req_total", &[("outcome", "ok")], 3);
        m.add_counter("req_total", &[("outcome", "err")], 1);
        m.set_gauge("pool_size", &[], 4.5);
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE req_total counter"));
        assert_eq!(text.matches("# TYPE req_total").count(), 1, "one header per family");
        assert!(text.contains("req_total{outcome=\"err\"} 1"));
        assert!(text.contains("req_total{outcome=\"ok\"} 3"));
        assert!(text.contains("# TYPE pool_size gauge"));
        assert!(text.contains("pool_size 4.5"));
    }

    #[test]
    fn prometheus_histograms_are_cumulative() {
        let m = MetricsRegistry::new();
        for v in [0.5, 1.5, 120.0] {
            m.observe("lat_seconds", &[], v);
        }
        let text = prometheus_text(&m);
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_seconds_count 3"));
        assert!(text.contains("lat_seconds_sum 122"));
        // Cumulative counts never decrease down the page.
        let buckets: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .filter_map(|l| l.rsplit(' ').next()?.parse().ok())
            .collect();
        assert!(buckets.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_text_is_byte_stable() {
        let build = || {
            let m = MetricsRegistry::new();
            m.inc_counter("b_total", &[("z", "1"), ("a", "2")]);
            m.observe("h_seconds", &[], 2.25);
            prometheus_text(&m)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn rollup_exporters_render_sealed_windows() {
        use crate::tsdb::TsdbConfig;
        let m = MetricsRegistry::new();
        let mut tsdb = Tsdb::new(TsdbConfig::default());
        for tick in 0..4u64 {
            m.add_counter("req_total", &[("outcome", "ok")], 2);
            tsdb.ingest_registry(&m, SimTime::from_secs(tick * 30));
        }
        tsdb.finish(SimTime::from_secs(120));

        let text = prometheus_rollup_text(&tsdb, Resolution::Minute);
        assert!(text.contains("# TYPE req_total rollup_minute_counter"));
        assert!(text.contains("req_total_sum{outcome=\"ok\",window=\"0\"} 4"));
        assert!(text.contains("req_total_count{outcome=\"ok\",window=\"60000\"} 2"));

        let doc = otlp_rollup_json(&tsdb, Resolution::Minute);
        let metric = &doc["resourceMetrics"][0]["scopeMetrics"][0]["metrics"][0];
        assert_eq!(metric["name"], "req_total");
        let points = metric["summary"]["dataPoints"].as_array().unwrap();
        assert_eq!(points.len(), 2);
        assert_eq!(points[1]["timeUnixNano"], "120000000000");
        assert_eq!(doc.to_string(), otlp_rollup_json(&tsdb, Resolution::Minute).to_string());
    }

    #[test]
    fn otlp_document_shape_and_stability() {
        let build = || {
            let tracer = Tracer::new();
            tracer.set_now(SimTime::from_secs(5));
            let root = tracer.start_trace("request");
            root.attr("user", "stakeholder");
            let child = tracer.start_span("model.run", &root.context());
            tracer.set_now(SimTime::from_secs(9));
            child.event("bound");
            child.finish();
            root.finish();
            otlp_json(&tracer)
        };
        let doc = build();
        assert_eq!(
            doc["resourceSpans"][0]["scopeSpans"][0]["spans"].as_array().map(Vec::len),
            Some(2)
        );
        let root = &doc["resourceSpans"][0]["scopeSpans"][0]["spans"][0];
        assert_eq!(root["traceId"], "00000000000000000000000000000000");
        assert_eq!(root["parentSpanId"], "");
        assert_eq!(root["startTimeUnixNano"], "5000000000");
        let child = &doc["resourceSpans"][0]["scopeSpans"][0]["spans"][1];
        assert_eq!(child["parentSpanId"], root["spanId"]);
        assert_eq!(child["events"][0]["name"], "bound");
        assert_eq!(build().to_string(), build().to_string());
    }
}
