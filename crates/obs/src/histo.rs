//! Deterministic log-bucketed streaming histograms.
//!
//! [`StreamingHistogram`] is the HDR-style estimator behind the health
//! plane: constant memory, mergeable, and *deterministic by construction*.
//! Bucket boundaries form one fixed geometric ladder shared by every
//! histogram in the process — precomputed once by repeated multiplication
//! (never `ln`/`log`, whose libm implementations vary across platforms) —
//! so two same-seed runs, or a merge of per-shard histograms, always
//! produce byte-identical snapshots.
//!
//! Quantile queries return the *geometric midpoint* of the bucket holding
//! the requested rank. With growth factor [`GROWTH`] the midpoint is
//! within `sqrt(GROWTH) - 1` (< 5 %) relative error of the exact order
//! statistic, a bound the workspace proptests assert.

use serde_json::{json, Value};
use std::sync::OnceLock;

/// Ratio between consecutive bucket boundaries (≈ 4.9 % relative error at
/// the geometric midpoint).
pub const GROWTH: f64 = 1.1;
/// Smallest value tracked with full resolution; everything in
/// `[0, MIN_TRACKABLE)` lands in the underflow bucket.
pub const MIN_TRACKABLE: f64 = 1e-6;
/// Values at or above the last boundary land in the overflow bucket.
pub const MAX_TRACKABLE: f64 = 1e9;

/// The shared bucket ladder: `boundaries[0] == MIN_TRACKABLE`, each entry
/// `GROWTH` times the previous, ending at the first value `>=
/// MAX_TRACKABLE`.
fn boundaries() -> &'static [f64] {
    static BOUNDARIES: OnceLock<Vec<f64>> = OnceLock::new();
    BOUNDARIES.get_or_init(|| {
        let mut bounds = vec![MIN_TRACKABLE];
        let mut last = MIN_TRACKABLE;
        while last < MAX_TRACKABLE {
            last *= GROWTH;
            bounds.push(last);
        }
        bounds
    })
}

/// Number of finite buckets (between underflow and overflow).
fn ladder_len() -> usize {
    boundaries().len() - 1
}

/// Adds `n` to the bucket at `idx` in a sorted sparse count vector,
/// inserting the bucket when absent. Index-free so the hot metrics path
/// (`MetricsRegistry::observe`, reachable from every pub broker/router
/// API) carries no panicking site.
pub(crate) fn bump_bucket(counts: &mut Vec<(u32, u64)>, idx: u32, n: u64) {
    match counts.binary_search_by_key(&idx, |&(i, _)| i) {
        Ok(pos) => {
            if let Some(entry) = counts.get_mut(pos) {
                entry.1 += n;
            }
        }
        Err(pos) => counts.insert(pos, (idx, n)),
    }
}

/// A streaming histogram over non-negative samples.
///
/// Buckets: index `0` is the underflow bucket `[0, MIN_TRACKABLE)`;
/// indices `1..=ladder` cover `[b[i-1], b[i])`; the last index is the
/// overflow bucket `[MAX_TRACKABLE, ∞)`. Exact `count`/`sum`/`min`/`max`
/// ride alongside the bucket counts, so means are exact even though
/// quantiles are approximate.
///
/// # Examples
///
/// ```
/// use evop_obs::histo::StreamingHistogram;
///
/// let mut h = StreamingHistogram::new();
/// for i in 1..=1000 {
///     h.record(i as f64);
/// }
/// let p50 = h.quantile(0.5).unwrap();
/// assert!((p50 / 500.0 - 1.0).abs() < 0.05, "p50 ≈ 500, got {p50}");
/// assert_eq!(h.count(), 1000);
///
/// let mut other = StreamingHistogram::new();
/// other.record(2000.0);
/// h.merge(&other);
/// assert_eq!(h.count(), 1001);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogram {
    /// Sparse bucket counts as (bucket index, count), sorted by index.
    counts: Vec<(u32, u64)>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingHistogram {
    fn default() -> StreamingHistogram {
        StreamingHistogram::new()
    }
}

impl StreamingHistogram {
    /// Creates an empty histogram.
    pub fn new() -> StreamingHistogram {
        StreamingHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index for a value: `0` for the underflow range,
    /// `ladder + 1` for overflow, and the geometric bucket in between.
    /// Negative inputs clamp to the underflow bucket.
    pub fn bucket_index(value: f64) -> u32 {
        let bounds = boundaries();
        if value < MIN_TRACKABLE {
            return 0;
        }
        if value >= MAX_TRACKABLE {
            return (ladder_len() + 1) as u32;
        }
        // First boundary strictly greater than `value`; the bucket is the
        // half-open interval ending there.
        let idx = bounds.partition_point(|&b| b <= value);
        idx as u32
    }

    /// The `[lo, hi)` range of a bucket index. The underflow bucket starts
    /// at zero; the overflow bucket ends at infinity.
    pub fn bucket_range(index: u32) -> (f64, f64) {
        let bounds = boundaries();
        let i = index as usize;
        if i == 0 {
            return (0.0, MIN_TRACKABLE);
        }
        if i >= bounds.len() {
            // The ladder's last rung overshoots MAX_TRACKABLE, but values
            // are routed to overflow from MAX_TRACKABLE up.
            return (MAX_TRACKABLE, f64::INFINITY);
        }
        (bounds[i - 1], bounds[i])
    }

    /// The deterministic representative value of a bucket: zero for the
    /// underflow bucket, the last finite boundary for overflow, and the
    /// geometric midpoint otherwise.
    pub fn bucket_representative(index: u32) -> f64 {
        let (lo, hi) = StreamingHistogram::bucket_range(index);
        if index == 0 {
            return 0.0;
        }
        if hi.is_infinite() {
            return lo;
        }
        (lo * hi).sqrt()
    }

    /// Records one observation. Non-finite values are ignored; negative
    /// values clamp into the underflow bucket (latencies are never
    /// negative, but a corrupted gauge must not poison the ladder).
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let clamped = value.max(0.0);
        let idx = StreamingHistogram::bucket_index(clamped);
        bump_bucket(&mut self.counts, idx, 1);
        self.count += 1;
        self.sum += clamped;
        self.min = self.min.min(clamped);
        self.max = self.max.max(clamped);
    }

    /// Merges another histogram into this one. Because every histogram
    /// shares the fixed ladder, merging is exact on bucket counts.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for &(idx, n) in &other.counts {
            bump_bucket(&mut self.counts, idx, n);
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of recorded observations (after underflow clamping).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean, or `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Non-empty buckets as `(index, count)`, ascending by index.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts.iter().copied()
    }

    /// Observations at or below `value` — the cumulative count used by the
    /// Prometheus exporter's `le` buckets and the latency SLOs. Counts
    /// every bucket whose upper bound is `<= value` plus, conservatively,
    /// the bucket containing `value` itself.
    pub fn count_at_most(&self, value: f64) -> u64 {
        if value < 0.0 {
            return 0;
        }
        let cutoff = StreamingHistogram::bucket_index(value);
        self.counts.iter().filter(|&&(i, _)| i <= cutoff).map(|&(_, n)| n).sum()
    }

    /// The approximate `q`-quantile (`q` in `[0, 1]`), `None` when empty.
    ///
    /// Returns the representative of the bucket containing the rank-`q`
    /// observation: for tracked values the relative error is bounded by
    /// `sqrt(GROWTH) - 1`, except that quantiles resolving to the min or
    /// max bucket are clamped to the exact extrema.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // Rank of the order statistic, 1-based ceil like `Percentiles`.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        // The first and last order statistics are tracked exactly.
        if rank == 1 {
            return Some(self.min);
        }
        if rank == self.count {
            return Some(self.max);
        }
        let mut seen = 0u64;
        for &(idx, n) in &self.counts {
            seen += n;
            if seen >= rank {
                let rep = StreamingHistogram::bucket_representative(idx);
                // The true order statistic lies inside this bucket, so
                // clamping to the exact extrema can only improve accuracy.
                return Some(rep.clamp(self.min, self.max));
            }
        }
        self.max()
    }

    /// Median shorthand.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 90th percentile shorthand.
    pub fn p90(&self) -> Option<f64> {
        self.quantile(0.9)
    }

    /// 99th percentile shorthand.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// A byte-stable JSON snapshot: exact aggregates plus the sparse
    /// non-zero buckets, every field in fixed order.
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self.counts.iter().map(|&(i, n)| json!([i, n])).collect();
        json!({
            "count": self.count,
            "sum": self.sum,
            "min": self.min().unwrap_or(0.0),
            "max": self.max().unwrap_or(0.0),
            "p50": self.p50().unwrap_or(0.0),
            "p90": self.p90().unwrap_or(0.0),
            "p99": self.p99().unwrap_or(0.0),
            "buckets": buckets,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_are_strictly_increasing_and_cover_the_range() {
        let b = boundaries();
        assert!(b.windows(2).all(|w| w[0] < w[1]), "ladder must be strictly increasing");
        assert_eq!(b[0], MIN_TRACKABLE);
        assert!(*b.last().unwrap() >= MAX_TRACKABLE);
    }

    #[test]
    fn bucket_index_is_monotone_and_ranges_tile() {
        let values = [0.0, 1e-7, 1e-6, 0.005, 0.3, 1.0, 17.4, 1e3, 1e8, 1e9, 1e12];
        let mut last = 0;
        for v in values {
            let idx = StreamingHistogram::bucket_index(v);
            assert!(idx >= last, "index must not decrease at {v}");
            let (lo, hi) = StreamingHistogram::bucket_range(idx);
            assert!(v >= lo && v < hi, "{v} must fall inside its bucket [{lo}, {hi})");
            last = idx;
        }
    }

    #[test]
    fn quantiles_track_exact_percentiles() {
        let mut h = StreamingHistogram::new();
        for i in 1..=10_000 {
            h.record(i as f64 / 10.0); // 0.1 .. 1000.0
        }
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let got = h.quantile(q).unwrap();
            assert!((got / exact - 1.0).abs() < 0.05, "q={q}: got {got}, exact {exact}");
        }
    }

    #[test]
    fn extremes_are_exact() {
        let mut h = StreamingHistogram::new();
        for v in [3.0, 8.5, 12.25] {
            h.record(v);
        }
        assert_eq!(h.min(), Some(3.0));
        assert_eq!(h.max(), Some(12.25));
        assert_eq!(h.quantile(0.0), Some(3.0));
        assert_eq!(h.quantile(1.0), Some(12.25));
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let xs = [0.2, 5.0, 5.1, 80.0, 1e7];
        let mut whole = StreamingHistogram::new();
        let mut a = StreamingHistogram::new();
        let mut b = StreamingHistogram::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.to_json().to_string(), whole.to_json().to_string());
    }

    #[test]
    fn non_finite_ignored_and_negatives_clamp() {
        let mut h = StreamingHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        h.record(-3.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(0.0));
        assert_eq!(h.quantile(0.5), Some(0.0));
    }

    #[test]
    fn snapshot_is_byte_stable() {
        let build = || {
            let mut h = StreamingHistogram::new();
            for v in [0.01, 2.0, 2.0, 30.0, 4e9] {
                h.record(v);
            }
            h.to_json().to_string()
        };
        assert_eq!(build(), build());
        assert!(build().contains("\"count\":5"));
    }

    #[test]
    fn count_at_most_is_cumulative() {
        let mut h = StreamingHistogram::new();
        for v in [0.1, 0.2, 5.0, 50.0] {
            h.record(v);
        }
        assert_eq!(h.count_at_most(0.0), 0);
        assert_eq!(h.count_at_most(1.0), 2);
        assert_eq!(h.count_at_most(1e9), 4);
    }
}
