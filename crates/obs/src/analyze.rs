//! Trace analytics over the flight recorder.
//!
//! Two read-only views of finished spans:
//!
//! * [`CriticalPath`] — the chain of spans that determined a trace's
//!   end-to-end latency: from the root, repeatedly descend into the
//!   child that finished last (ties break to the smallest span id, so
//!   the path is deterministic);
//! * [`OperationBreakdown`] — per-operation latency distributions fed
//!   into [`StreamingHistogram`]s, with both wall duration and *self*
//!   time (duration minus time covered by child spans).

use std::collections::BTreeMap;

use evop_sim::{SimDuration, SimTime};
use serde_json::{json, Value};

use crate::histo::StreamingHistogram;
use crate::trace::{SpanId, SpanRecord, TraceId, Tracer};

/// One hop on a critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStep {
    /// Operation name.
    pub name: String,
    /// The span.
    pub span_id: SpanId,
    /// Span start, virtual time.
    pub start: SimTime,
    /// Span end, virtual time.
    pub end: SimTime,
}

/// The latency-determining chain of one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalPath {
    /// The trace analysed.
    pub trace_id: TraceId,
    /// Root-to-leaf steps.
    pub steps: Vec<PathStep>,
    /// End-to-end duration of the root span.
    pub total: SimDuration,
}

impl CriticalPath {
    /// Extracts the critical path from one trace's spans. Returns `None`
    /// when the trace has no finished root span.
    pub fn extract(spans: &[SpanRecord]) -> Option<CriticalPath> {
        let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.span_id.0, s)).collect();
        // The root: no parent, or a parent evicted from the ring buffer.
        // Earliest start (then smallest id) wins when several qualify.
        let root = spans
            .iter()
            .filter(|s| s.parent.is_none_or(|p| !by_id.contains_key(&p.0)))
            .min_by_key(|s| (s.start, s.span_id))?;

        let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
        for s in spans {
            if let Some(p) = s.parent {
                children.entry(p.0).or_default().push(s);
            }
        }

        let mut steps = Vec::new();
        let mut cursor = root;
        loop {
            steps.push(PathStep {
                name: cursor.name.clone(),
                span_id: cursor.span_id,
                start: cursor.start,
                end: cursor.end.unwrap_or(cursor.start),
            });
            // Descend into the child that finished last; ties break to
            // the smallest span id for determinism.
            let next = children.get(&cursor.span_id.0).and_then(|kids| {
                kids.iter()
                    .max_by(|a, b| {
                        let ea = a.end.unwrap_or(a.start);
                        let eb = b.end.unwrap_or(b.start);
                        ea.cmp(&eb).then(b.span_id.cmp(&a.span_id))
                    })
                    .copied()
            });
            match next {
                Some(child) => cursor = child,
                None => break,
            }
        }
        Some(CriticalPath {
            trace_id: root.trace_id,
            steps,
            total: root.end.unwrap_or(root.start).saturating_since(root.start),
        })
    }

    /// Deterministic JSON rendering.
    pub fn to_json(&self) -> Value {
        json!({
            "trace": self.trace_id.to_string(),
            "total_ms": self.total.as_millis(),
            "steps": self.steps.iter().map(|s| json!({
                "name": s.name,
                "span": s.span_id.to_string(),
                "start_ms": s.start.as_millis(),
                "end_ms": s.end.as_millis(),
            })).collect::<Vec<Value>>(),
        })
    }
}

/// Per-operation latency distributions.
#[derive(Debug, Default)]
pub struct OperationBreakdown {
    /// Wall durations per operation name, in seconds.
    durations: BTreeMap<String, StreamingHistogram>,
    /// Self time (duration minus child cover) per operation, in seconds.
    self_times: BTreeMap<String, StreamingHistogram>,
}

impl OperationBreakdown {
    /// Builds a breakdown from finished spans.
    pub fn from_spans(spans: &[SpanRecord]) -> OperationBreakdown {
        let mut child_cover: BTreeMap<u64, u64> = BTreeMap::new();
        for s in spans {
            if let Some(p) = s.parent {
                *child_cover.entry(p.0).or_insert(0) += s.duration().as_millis();
            }
        }
        let mut breakdown = OperationBreakdown::default();
        for s in spans {
            let duration_ms = s.duration().as_millis();
            let cover = child_cover.get(&s.span_id.0).copied().unwrap_or(0);
            let self_ms = duration_ms.saturating_sub(cover);
            breakdown
                .durations
                .entry(s.name.clone())
                .or_default()
                .record(duration_ms as f64 / 1000.0);
            breakdown.self_times.entry(s.name.clone()).or_default().record(self_ms as f64 / 1000.0);
        }
        breakdown
    }

    /// Operation names seen, sorted.
    pub fn operations(&self) -> Vec<&str> {
        self.durations.keys().map(String::as_str).collect()
    }

    /// The wall-duration histogram of one operation.
    pub fn durations(&self, operation: &str) -> Option<&StreamingHistogram> {
        self.durations.get(operation)
    }

    /// The self-time histogram of one operation.
    pub fn self_times(&self, operation: &str) -> Option<&StreamingHistogram> {
        self.self_times.get(operation)
    }

    /// Deterministic JSON: per operation `{count, p50, p99, self_p50}`.
    pub fn to_json(&self) -> Value {
        let ops: serde_json::Map<String, Value> = self
            .durations
            .iter()
            .map(|(name, hist)| {
                let self_hist = self.self_times.get(name);
                (
                    name.clone(),
                    json!({
                        "count": hist.count(),
                        "p50_s": hist.p50().unwrap_or(0.0),
                        "p99_s": hist.p99().unwrap_or(0.0),
                        "self_p50_s": self_hist.and_then(|h| h.p50()).unwrap_or(0.0),
                    }),
                )
            })
            .collect();
        json!(ops)
    }
}

/// Combined analytics over everything in the flight recorder.
#[derive(Debug)]
pub struct TraceAnalysis {
    /// One critical path per trace, ascending trace id.
    pub critical_paths: Vec<CriticalPath>,
    /// Latency breakdown across all finished spans.
    pub breakdown: OperationBreakdown,
}

impl TraceAnalysis {
    /// Analyses every trace in the tracer's flight recorder.
    ///
    /// # Examples
    ///
    /// ```
    /// use evop_obs::{TraceAnalysis, Tracer};
    /// use evop_sim::SimTime;
    ///
    /// let tracer = Tracer::new();
    /// let root = tracer.start_trace("request");
    /// let child = tracer.start_span("model.run", &root.context());
    /// tracer.set_now(SimTime::from_secs(42));
    /// child.finish();
    /// root.finish();
    ///
    /// let analysis = TraceAnalysis::from_tracer(&tracer);
    /// assert_eq!(analysis.critical_paths.len(), 1);
    /// assert_eq!(analysis.critical_paths[0].steps.len(), 2);
    /// ```
    pub fn from_tracer(tracer: &Tracer) -> TraceAnalysis {
        let critical_paths = tracer
            .trace_ids()
            .into_iter()
            .filter_map(|id| CriticalPath::extract(&tracer.trace(id)))
            .collect();
        let breakdown = OperationBreakdown::from_spans(&tracer.finished());
        TraceAnalysis { critical_paths, breakdown }
    }

    /// Deterministic JSON document of both views.
    pub fn to_json(&self) -> Value {
        json!({
            "critical_paths": self.critical_paths.iter().map(CriticalPath::to_json).collect::<Vec<Value>>(),
            "operations": self.breakdown.to_json(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// root(0..100) with fast(0..10) and slow(5..95) children; slow has a
    /// nested leaf(10..90).
    fn diamond_tracer() -> Tracer {
        let tracer = Tracer::new();
        let root = tracer.start_trace("request");
        let fast = tracer.start_span("cache.lookup", &root.context());
        tracer.set_now(SimTime::from_secs(5));
        let slow = tracer.start_span("model.run", &root.context());
        tracer.set_now(SimTime::from_secs(10));
        fast.finish();
        let leaf = tracer.start_span("cloud.boot", &slow.context());
        tracer.set_now(SimTime::from_secs(90));
        leaf.finish();
        tracer.set_now(SimTime::from_secs(95));
        slow.finish();
        tracer.set_now(SimTime::from_secs(100));
        root.finish();
        tracer
    }

    #[test]
    fn critical_path_follows_the_latest_finisher() {
        let tracer = diamond_tracer();
        let analysis = TraceAnalysis::from_tracer(&tracer);
        let path = &analysis.critical_paths[0];
        let names: Vec<&str> = path.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["request", "model.run", "cloud.boot"]);
        assert_eq!(path.total, SimDuration::from_secs(100));
    }

    #[test]
    fn breakdown_computes_self_time() {
        let tracer = diamond_tracer();
        let breakdown = OperationBreakdown::from_spans(&tracer.finished());
        assert_eq!(breakdown.operations(), ["cache.lookup", "cloud.boot", "model.run", "request"]);
        // model.run runs 90s but 80s of that is the cloud.boot child.
        let self_p50 = breakdown.self_times("model.run").unwrap().p50().unwrap();
        assert!((self_p50 / 10.0 - 1.0).abs() < 0.05, "self time ≈ 10s, got {self_p50}");
        let wall_p50 = breakdown.durations("model.run").unwrap().p50().unwrap();
        assert!((wall_p50 / 90.0 - 1.0).abs() < 0.05, "wall ≈ 90s, got {wall_p50}");
    }

    #[test]
    fn empty_trace_yields_no_path() {
        assert!(CriticalPath::extract(&[]).is_none());
        let tracer = Tracer::new();
        let analysis = TraceAnalysis::from_tracer(&tracer);
        assert!(analysis.critical_paths.is_empty());
    }

    #[test]
    fn analysis_json_is_deterministic() {
        let build = || TraceAnalysis::from_tracer(&diamond_tracer()).to_json().to_string();
        assert_eq!(build(), build());
        assert!(build().contains("critical_paths"));
    }
}
