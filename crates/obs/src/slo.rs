//! Declarative SLOs judged by multi-window burn-rate alerts.
//!
//! An [`SloSpec`] names an objective — availability (good/total counters)
//! or latency (a histogram plus a threshold) — and a target like 99 %.
//! The [`AlertEngine`] samples the metrics registry on virtual-time ticks
//! and evaluates Google-SRE-style *multi-window burn rates*: an alert
//! fires only when both a long and a short window burn error budget
//! faster than the window's threshold, which keeps detection fast (the
//! short window reacts quickly) without flapping (the long window
//! confirms the burn is sustained). Everything is a pure function of the
//! registry contents at each tick, so same-seed runs emit byte-identical
//! alert logs.

use evop_sim::SimTime;
use serde_json::{json, Value};

use crate::metrics::MetricsRegistry;

/// Selects one metric series: a name plus label pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    /// Metric (family) name.
    pub name: String,
    /// Label pairs that pin the series.
    pub labels: Vec<(String, String)>,
}

impl Selector {
    /// Builds a selector.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Selector {
        Selector {
            name: name.to_owned(),
            labels: labels.iter().map(|&(k, v)| (k.to_owned(), v.to_owned())).collect(),
        }
    }

    fn label_refs(&self) -> Vec<(&str, &str)> {
        self.labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect()
    }
}

/// What an SLO measures.
#[derive(Debug, Clone, PartialEq)]
pub enum SloObjective {
    /// Fraction of good events: `sum(goods) / total`, where `goods` are
    /// one or more counter series and `total` is the sum of every series
    /// in a counter family (so `outcome` labels need no enumeration).
    /// Several good series let one SLO count distinct success modes —
    /// e.g. a cache hit *and* a coalesced follower both count as served.
    Availability {
        /// The series counting good events (summed).
        goods: Vec<Selector>,
        /// The counter family whose sum is the total.
        total_family: String,
    },
    /// Fraction of observations at or below a latency threshold, read
    /// from a streaming histogram's cumulative buckets.
    Latency {
        /// The histogram series to read.
        histogram: Selector,
        /// Upper bound, in seconds, for an observation to count as good.
        threshold_seconds: f64,
    },
}

/// One burn-rate evaluation window pair.
///
/// `burn = error_rate / (1 - target)`: burn 1.0 spends budget exactly at
/// the rate that exhausts it over the SLO period; the thresholds here say
/// how much faster than that counts as an incident.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRateWindow {
    /// Long (confirming) window, virtual seconds.
    pub long_secs: u64,
    /// Short (fast-reacting) window, virtual seconds.
    pub short_secs: u64,
    /// Minimum burn rate, in both windows, for the alert to fire.
    pub burn_threshold: f64,
    /// Severity of alerts from this window pair.
    pub severity: AlertSeverity,
}

/// How urgent an alert is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Wake a human.
    Page,
    /// File a ticket.
    Ticket,
}

impl AlertSeverity {
    /// Lower-case label used in logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AlertSeverity::Page => "page",
            AlertSeverity::Ticket => "ticket",
        }
    }
}

/// Fired or resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Burn crossed the threshold in both windows.
    Fired,
    /// The short window recovered below the threshold.
    Resolved,
}

impl AlertKind {
    /// Lower-case label used in logs and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            AlertKind::Fired => "fired",
            AlertKind::Resolved => "resolved",
        }
    }
}

/// A declarative service-level objective.
///
/// # Examples
///
/// ```
/// use evop_obs::{AlertSeverity, SloSpec};
///
/// let slo = SloSpec::availability(
///     "broker-availability",
///     0.9,
///     "broker_submit_total",
///     &[("outcome", "ok")],
///     "broker_submit_total",
/// )
/// .window(300, 60, 2.0, AlertSeverity::Page);
/// assert_eq!(slo.name(), "broker-availability");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    name: String,
    target: f64,
    objective: SloObjective,
    windows: Vec<BurnRateWindow>,
}

impl SloSpec {
    /// An availability SLO: `good_series / sum(total_family)`.
    pub fn availability(
        name: &str,
        target: f64,
        good_name: &str,
        good_labels: &[(&str, &str)],
        total_family: &str,
    ) -> SloSpec {
        SloSpec {
            name: name.to_owned(),
            target,
            objective: SloObjective::Availability {
                goods: vec![Selector::new(good_name, good_labels)],
                total_family: total_family.to_owned(),
            },
            windows: Vec::new(),
        }
    }

    /// An availability SLO whose good count is the sum of several series:
    /// `sum(goods) / sum(total_family)`. Use when more than one outcome
    /// label counts as success — e.g. a cache hit-ratio SLO where both
    /// `outcome=hit` and `outcome=follower` mean the user was served
    /// without a fresh model run.
    pub fn availability_any(
        name: &str,
        target: f64,
        goods: &[Selector],
        total_family: &str,
    ) -> SloSpec {
        SloSpec {
            name: name.to_owned(),
            target,
            objective: SloObjective::Availability {
                goods: goods.to_vec(),
                total_family: total_family.to_owned(),
            },
            windows: Vec::new(),
        }
    }

    /// A latency SLO: fraction of `histogram` observations at or below
    /// `threshold_seconds`.
    pub fn latency(
        name: &str,
        target: f64,
        histogram: &str,
        labels: &[(&str, &str)],
        threshold_seconds: f64,
    ) -> SloSpec {
        SloSpec {
            name: name.to_owned(),
            target,
            objective: SloObjective::Latency {
                histogram: Selector::new(histogram, labels),
                threshold_seconds,
            },
            windows: Vec::new(),
        }
    }

    /// Adds a burn-rate window pair (builder style).
    pub fn window(
        mut self,
        long_secs: u64,
        short_secs: u64,
        burn_threshold: f64,
        severity: AlertSeverity,
    ) -> SloSpec {
        self.windows.push(BurnRateWindow { long_secs, short_secs, burn_threshold, severity });
        self
    }

    /// The SLO's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The objective target (e.g. `0.99`).
    pub fn target(&self) -> f64 {
        self.target
    }

    /// The configured window pairs.
    pub fn windows(&self) -> &[BurnRateWindow] {
        &self.windows
    }

    /// Reads the cumulative `(good, total)` pair from the registry.
    fn sample(&self, registry: &MetricsRegistry) -> (u64, u64) {
        match &self.objective {
            SloObjective::Availability { goods, total_family } => {
                let good_count =
                    goods.iter().map(|g| registry.counter(&g.name, &g.label_refs())).sum();
                let total = registry.counter_family_total(total_family);
                (good_count, total)
            }
            SloObjective::Latency { histogram, threshold_seconds } => registry
                .histogram(&histogram.name, &histogram.label_refs())
                .map(|h| (h.count_at_most(*threshold_seconds), h.count()))
                .unwrap_or((0, 0)),
        }
    }
}

/// One alert transition, with the metric evidence that justified it.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRecord {
    /// When, in virtual milliseconds.
    pub at_ms: u64,
    /// The SLO that transitioned.
    pub slo: String,
    /// Severity of the window pair that transitioned.
    pub severity: AlertSeverity,
    /// Fired or resolved.
    pub kind: AlertKind,
    /// The window pair (long, short) in virtual seconds.
    pub window_secs: (u64, u64),
    /// Burn rate over the long window at transition time.
    pub burn_long: f64,
    /// Burn rate over the short window at transition time.
    pub burn_short: f64,
    /// Human-readable evidence: the good/total deltas per window.
    pub evidence: String,
}

impl AlertRecord {
    /// Deterministic JSON, burns rounded to 10⁻⁴ for tidy diffs.
    pub fn to_json(&self) -> Value {
        json!({
            "at_ms": self.at_ms,
            "slo": self.slo,
            "severity": self.severity.label(),
            "kind": self.kind.label(),
            "window_secs": [self.window_secs.0, self.window_secs.1],
            "burn_long": round4(self.burn_long),
            "burn_short": round4(self.burn_short),
            "evidence": self.evidence,
        })
    }
}

fn round4(x: f64) -> f64 {
    (x * 10_000.0).round() / 10_000.0
}

/// Cumulative (time, good, total) observations for one SLO.
#[derive(Debug)]
struct SampleRing {
    samples: Vec<(u64, u64, u64)>,
}

impl SampleRing {
    /// The cumulative sample at or just before `at_ms` — falling back to
    /// an implicit zero sample at the epoch, so early windows are judged
    /// over the partial history available.
    fn at_or_before(&self, at_ms: u64) -> (u64, u64) {
        let idx = self.samples.partition_point(|&(t, _, _)| t <= at_ms);
        if idx == 0 {
            (0, 0)
        } else {
            let (_, good, total) = self.samples[idx - 1];
            (good, total)
        }
    }
}

/// Burn rates and deltas for one window at one tick.
#[derive(Debug, Clone, Copy)]
struct WindowEval {
    burn: f64,
    bad: u64,
    total: u64,
}

/// Per-(SLO, window-pair) alert state plus the sample history.
#[derive(Debug)]
struct SloState {
    spec: SloSpec,
    ring: SampleRing,
    /// One active flag per window pair.
    active: Vec<bool>,
}

/// Evaluates [`SloSpec`]s against a [`MetricsRegistry`] on virtual-time
/// ticks, recording [`AlertRecord`] transitions.
///
/// # Examples
///
/// ```
/// use evop_obs::{AlertEngine, AlertSeverity, MetricsRegistry, SloSpec};
/// use evop_sim::SimTime;
///
/// let metrics = MetricsRegistry::new();
/// let mut engine = AlertEngine::new(metrics.clone());
/// engine.add_slo(
///     SloSpec::availability("api", 0.9, "req_total", &[("outcome", "ok")], "req_total")
///         .window(120, 30, 1.5, AlertSeverity::Page),
/// );
///
/// for s in 0..300 {
///     // Every request fails: the budget burns at 10x.
///     metrics.inc_counter("req_total", &[("outcome", "error")]);
///     engine.tick(SimTime::from_secs(s));
/// }
/// assert!(!engine.alerts().is_empty());
/// ```
#[derive(Debug)]
pub struct AlertEngine {
    registry: MetricsRegistry,
    slos: Vec<SloState>,
    alerts: Vec<AlertRecord>,
}

impl AlertEngine {
    /// Creates an engine reading from `registry`.
    pub fn new(registry: MetricsRegistry) -> AlertEngine {
        AlertEngine { registry, slos: Vec::new(), alerts: Vec::new() }
    }

    /// Registers an SLO. Specs without windows never alert.
    pub fn add_slo(&mut self, spec: SloSpec) {
        let windows = spec.windows.len();
        self.slos.push(SloState {
            spec,
            ring: SampleRing { samples: Vec::new() },
            active: vec![false; windows],
        });
    }

    /// Names of registered SLOs, in registration order.
    pub fn slo_names(&self) -> Vec<&str> {
        self.slos.iter().map(|s| s.spec.name()).collect()
    }

    /// Samples every SLO at `now` and evaluates all window pairs.
    /// Ticks must be called with non-decreasing `now`.
    pub fn tick(&mut self, now: SimTime) {
        let now_ms = now.as_millis();
        for state in &mut self.slos {
            let (good, total) = state.spec.sample(&self.registry);
            // Keep the ring strictly ordered even if a driver ticks twice
            // at one timestamp: the later sample wins.
            if let Some(last) = state.ring.samples.last_mut() {
                if last.0 == now_ms {
                    *last = (now_ms, good, total);
                } else {
                    state.ring.samples.push((now_ms, good, total));
                }
            } else {
                state.ring.samples.push((now_ms, good, total));
            }

            let budget = (1.0 - state.spec.target).max(f64::EPSILON);
            for (idx, window) in state.spec.windows.iter().enumerate() {
                let long = eval_window(&state.ring, now_ms, window.long_secs, good, total, budget);
                let short =
                    eval_window(&state.ring, now_ms, window.short_secs, good, total, budget);
                let firing =
                    long.burn >= window.burn_threshold && short.burn >= window.burn_threshold;
                let resolving = state.active[idx] && short.burn < window.burn_threshold;
                if firing && !state.active[idx] {
                    state.active[idx] = true;
                    self.alerts.push(AlertRecord {
                        at_ms: now_ms,
                        slo: state.spec.name.clone(),
                        severity: window.severity,
                        kind: AlertKind::Fired,
                        window_secs: (window.long_secs, window.short_secs),
                        burn_long: long.burn,
                        burn_short: short.burn,
                        evidence: format!(
                            "long {}s: {}/{} bad, short {}s: {}/{} bad",
                            window.long_secs,
                            long.bad,
                            long.total,
                            window.short_secs,
                            short.bad,
                            short.total
                        ),
                    });
                } else if resolving {
                    state.active[idx] = false;
                    self.alerts.push(AlertRecord {
                        at_ms: now_ms,
                        slo: state.spec.name.clone(),
                        severity: window.severity,
                        kind: AlertKind::Resolved,
                        window_secs: (window.long_secs, window.short_secs),
                        burn_long: long.burn,
                        burn_short: short.burn,
                        evidence: format!(
                            "short {}s recovered: {}/{} bad",
                            window.short_secs, short.bad, short.total
                        ),
                    });
                }
            }

            // Prune history older than the longest window (plus one tick
            // of slack) — the ring stays bounded on long runs.
            let horizon_ms =
                state.spec.windows.iter().map(|w| w.long_secs).max().unwrap_or(0) * 1000;
            let cutoff = now_ms.saturating_sub(horizon_ms.saturating_mul(2));
            let keep_from = state.ring.samples.partition_point(|&(t, _, _)| t < cutoff);
            if keep_from > 0 {
                state.ring.samples.drain(..keep_from);
            }
        }
    }

    /// Every alert transition so far, oldest first.
    pub fn alerts(&self) -> &[AlertRecord] {
        &self.alerts
    }

    /// Alert transitions as one canonical JSON array.
    pub fn canonical_json(&self) -> String {
        let arr: Vec<Value> = self.alerts.iter().map(AlertRecord::to_json).collect();
        serde_json::to_string_pretty(&arr).unwrap_or_else(|_| String::from("[]"))
    }
}

/// Burn rate over the trailing `window_secs` ending at `now_ms`.
fn eval_window(
    ring: &SampleRing,
    now_ms: u64,
    window_secs: u64,
    good_now: u64,
    total_now: u64,
    budget: f64,
) -> WindowEval {
    let (good_then, total_then) = ring.at_or_before(now_ms.saturating_sub(window_secs * 1000));
    let total = total_now.saturating_sub(total_then);
    let good = good_now.saturating_sub(good_then);
    let bad = total.saturating_sub(good);
    if total == 0 {
        return WindowEval { burn: 0.0, bad: 0, total: 0 };
    }
    let error_rate = bad as f64 / total as f64;
    WindowEval { burn: error_rate / budget, bad, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine_with_availability(target: f64) -> (MetricsRegistry, AlertEngine) {
        let metrics = MetricsRegistry::new();
        let mut engine = AlertEngine::new(metrics.clone());
        engine.add_slo(
            SloSpec::availability("api", target, "req_total", &[("outcome", "ok")], "req_total")
                .window(120, 30, 1.5, AlertSeverity::Page),
        );
        (metrics, engine)
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let (metrics, mut engine) = engine_with_availability(0.9);
        for s in 0..600 {
            metrics.inc_counter("req_total", &[("outcome", "ok")]);
            engine.tick(SimTime::from_secs(s));
        }
        assert!(engine.alerts().is_empty());
    }

    #[test]
    fn sustained_errors_fire_then_recovery_resolves() {
        let (metrics, mut engine) = engine_with_availability(0.9);
        // 200s of pure failure, then pure success.
        for s in 0..600u64 {
            let outcome = if s < 200 { "error" } else { "ok" };
            metrics.inc_counter("req_total", &[("outcome", outcome)]);
            engine.tick(SimTime::from_secs(s));
        }
        let kinds: Vec<AlertKind> = engine.alerts().iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AlertKind::Fired), "burst must fire");
        assert!(kinds.contains(&AlertKind::Resolved), "recovery must resolve");
        let fired = &engine.alerts()[0];
        assert_eq!(fired.kind, AlertKind::Fired);
        assert!(fired.at_ms <= 40_000, "detection should be fast, got {}ms", fired.at_ms);
        assert!(fired.burn_short >= 1.5);
        assert!(fired.evidence.contains("bad"));
    }

    #[test]
    fn short_blips_below_threshold_do_not_flap() {
        let (metrics, mut engine) = engine_with_availability(0.5);
        // 10% errors against a 50% budget: burn 0.2, well under 1.5.
        for s in 0..600u64 {
            let outcome = if s % 10 == 0 { "error" } else { "ok" };
            metrics.inc_counter("req_total", &[("outcome", outcome)]);
            engine.tick(SimTime::from_secs(s));
        }
        assert!(engine.alerts().is_empty());
    }

    #[test]
    fn latency_objective_reads_histogram_buckets() {
        let metrics = MetricsRegistry::new();
        let mut engine = AlertEngine::new(metrics.clone());
        engine.add_slo(SloSpec::latency("boot-latency", 0.9, "boot_seconds", &[], 10.0).window(
            120,
            30,
            1.5,
            AlertSeverity::Ticket,
        ));
        for s in 0..300u64 {
            // Every boot takes 100s — far over the 10s threshold.
            metrics.observe("boot_seconds", &[], 100.0);
            engine.tick(SimTime::from_secs(s));
        }
        assert!(!engine.alerts().is_empty());
        assert_eq!(engine.alerts()[0].severity, AlertSeverity::Ticket);
        assert_eq!(engine.slo_names(), ["boot-latency"]);
    }

    #[test]
    fn alert_log_is_deterministic_json() {
        let run = || {
            let (metrics, mut engine) = engine_with_availability(0.9);
            for s in 0..400u64 {
                let outcome = if (100..200).contains(&s) { "error" } else { "ok" };
                metrics.inc_counter("req_total", &[("outcome", outcome)]);
                engine.tick(SimTime::from_secs(s));
            }
            engine.canonical_json()
        };
        assert_eq!(run(), run());
        assert!(run().contains("\"kind\": \"fired\""));
    }

    #[test]
    fn idle_metrics_do_not_alert() {
        let (_metrics, mut engine) = engine_with_availability(0.99);
        for s in 0..300 {
            engine.tick(SimTime::from_secs(s));
        }
        assert!(engine.alerts().is_empty());
    }
}
