//! A deterministic embedded time-series store with multi-resolution
//! rollups and a cardinality governor.
//!
//! Dashboards and forecasting (the paper's §V "engagement over time"
//! analysis, and the roadmap's predictive autoscaling) need *windowed*
//! series — requests per minute, p99 boot latency per hour — while the
//! [`MetricsRegistry`](crate::MetricsRegistry) only holds cumulative
//! values. [`Tsdb`] bridges the two: on every virtual-time tick it ingests
//! a registry, turns cumulative counters and histogram buckets into
//! per-window deltas, and accumulates them into fixed-interval
//! [`RollupPoint`]s at three resolutions:
//!
//! * **raw** — one point per [`TsdbConfig::raw_interval`] (the control
//!   loop's cadence);
//! * **minute** — sealed raw points merged into 60 s windows;
//! * **hour** — sealed minute points merged into 3600 s windows.
//!
//! Every resolution is a bounded ring ([`RetentionPolicy`]), so a
//! multi-day simulation holds recent history at full resolution and older
//! history coarsened — classic RRD/Gorilla-style retention, but in virtual
//! time and byte-stable: same seed, same snapshot, byte for byte.
//!
//! A [`RollupPoint`] carries `sum`/`count`/`min`/`max` plus the sparse
//! log-bucket deltas of the shared [`histo`](crate::histo) ladder, so
//! merging windows is exact on counts and quantile queries stay within the
//! ladder's error bound at every resolution.
//!
//! **Cardinality governor.** Real collectors die by label explosion, not
//! by sample rate. Each metric family gets a series budget
//! ([`TsdbConfig::default_series_budget`], overridable per family); once a
//! family is at budget, previously unseen label-sets collapse into one
//! `{__overflow__=1}` aggregate series per family and the
//! `tsdb.series_dropped` counter records each collapsed label-set. Deltas
//! are still computed against the *original* cumulative series, so the
//! overflow aggregate is exact — only the label identity is lost.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use evop_sim::{SimDuration, SimTime};
use serde_json::{json, Map, Value};

use crate::histo::{bump_bucket, StreamingHistogram};
use crate::metrics::{MetricsRegistry, SeriesKey};

/// Milliseconds per minute window.
const MINUTE_MS: u64 = 60_000;
/// Milliseconds per hour window.
const HOUR_MS: u64 = 3_600_000;
/// Label key marking the per-family overflow aggregate series.
pub const OVERFLOW_LABEL: &str = "__overflow__";
/// Name of the governor's self-metric counting collapsed label-sets.
pub const SERIES_DROPPED: &str = "tsdb.series_dropped";

/// One of the store's three rollup resolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Resolution {
    /// One point per [`TsdbConfig::raw_interval`].
    Raw,
    /// 60-second windows.
    Minute,
    /// 3600-second windows.
    Hour,
}

impl Resolution {
    /// Lower-case label used in JSON snapshots.
    pub fn label(&self) -> &'static str {
        match self {
            Resolution::Raw => "raw",
            Resolution::Minute => "minute",
            Resolution::Hour => "hour",
        }
    }
}

/// What a series measures — decides how registry values become deltas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotone cumulative count; each tick ingests the increase.
    Counter,
    /// Point-in-time level; each tick ingests the sampled value.
    Gauge,
    /// Cumulative histogram; each tick ingests the bucket/sum/count deltas.
    Histogram,
}

impl SeriesKind {
    /// Lower-case label used in JSON snapshots.
    pub fn label(&self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::Histogram => "histogram",
        }
    }
}

/// One aggregated window of a series: exact moments plus mergeable sparse
/// histogram buckets on the shared log ladder.
///
/// For counters `sum` is the increase over the window and `count` the
/// number of ticks that contributed; for gauges `sum / count` is the
/// window average and `min`/`max` the sampled extremes; for histograms the
/// fields mirror the underlying estimator's per-window deltas.
#[derive(Debug, Clone, PartialEq)]
pub struct RollupPoint {
    /// Window start, in virtual milliseconds (aligned to the resolution).
    pub start_ms: u64,
    /// Sum of contributions in the window.
    pub sum: f64,
    /// Number of contributions in the window.
    pub count: u64,
    /// Smallest contribution (infinity while empty).
    pub min: f64,
    /// Largest contribution (negative infinity while empty).
    pub max: f64,
    /// Sparse `(bucket index, count)` deltas on the shared histogram
    /// ladder, sorted by index; empty for scalar series.
    pub buckets: Vec<(u32, u64)>,
}

impl RollupPoint {
    /// An empty window starting at `start_ms`.
    pub fn empty(start_ms: u64) -> RollupPoint {
        RollupPoint {
            start_ms,
            sum: 0.0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: Vec::new(),
        }
    }

    /// Folds one scalar contribution into the window.
    pub fn observe(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds a histogram delta (bucket counts plus exact sum/count) into
    /// the window. `min`/`max` are tracked as the deterministic
    /// representatives of the lowest and highest touched buckets.
    pub fn observe_hist_delta(&mut self, buckets: &[(u32, u64)], sum: f64, count: u64) {
        for &(idx, n) in buckets {
            if n == 0 {
                continue;
            }
            bump_bucket(&mut self.buckets, idx, n);
            let rep = StreamingHistogram::bucket_representative(idx);
            self.min = self.min.min(rep);
            self.max = self.max.max(rep);
        }
        self.sum += sum;
        self.count += count;
    }

    /// Merges another window into this one (downsampling): exact on
    /// `sum`/`count`/buckets, conservative on `min`/`max`.
    pub fn merge(&mut self, other: &RollupPoint) {
        self.sum += other.sum;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for &(idx, n) in &other.buckets {
            bump_bucket(&mut self.buckets, idx, n);
        }
    }

    /// Mean contribution, `0.0` while empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate `q`-quantile from the window's bucket deltas, `None`
    /// when the window carries no buckets.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total: u64 = self.buckets.iter().map(|&(_, n)| n).sum();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for &(idx, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(StreamingHistogram::bucket_representative(idx));
            }
        }
        None
    }

    /// The point as a deterministic JSON object (fixed field order; empty
    /// windows render `min`/`max` as zero).
    pub fn to_json(&self) -> Value {
        let buckets: Vec<Value> = self.buckets.iter().map(|&(i, n)| json!([i, n])).collect();
        json!({
            "start_ms": self.start_ms,
            "sum": self.sum,
            "count": self.count,
            "min": if self.count == 0 { 0.0 } else { self.min },
            "max": if self.count == 0 { 0.0 } else { self.max },
            "buckets": buckets,
        })
    }
}

/// How many sealed points each resolution ring keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Sealed raw windows kept (oldest evicted first).
    pub raw_points: usize,
    /// Sealed minute windows kept.
    pub minute_points: usize,
    /// Sealed hour windows kept.
    pub hour_points: usize,
}

impl Default for RetentionPolicy {
    /// Two hours of 30 s raw points, a day of minutes, a week of hours.
    fn default() -> RetentionPolicy {
        RetentionPolicy { raw_points: 240, minute_points: 1440, hour_points: 168 }
    }
}

/// Store-wide configuration.
#[derive(Debug, Clone)]
pub struct TsdbConfig {
    /// Width of a raw window; the control loop should tick at least once
    /// per interval. Should divide 60 s so raw windows nest into minutes.
    pub raw_interval: SimDuration,
    /// Ring sizes per resolution.
    pub retention: RetentionPolicy,
    /// Series budget for families without an explicit entry in
    /// [`TsdbConfig::family_budgets`].
    pub default_series_budget: usize,
    /// Per-family series budget overrides, keyed by metric name.
    pub family_budgets: BTreeMap<String, usize>,
}

impl Default for TsdbConfig {
    fn default() -> TsdbConfig {
        TsdbConfig {
            raw_interval: SimDuration::from_secs(30),
            retention: RetentionPolicy::default(),
            default_series_budget: 32,
            family_budgets: BTreeMap::new(),
        }
    }
}

impl TsdbConfig {
    /// The budget for one metric family.
    fn budget(&self, family: &str) -> usize {
        self.family_budgets.get(family).copied().unwrap_or(self.default_series_budget)
    }
}

/// One series' rollup state: three rings plus the open (unsealed)
/// accumulator per resolution.
#[derive(Debug, Clone)]
struct SeriesStore {
    kind: SeriesKind,
    raw: VecDeque<RollupPoint>,
    minute: VecDeque<RollupPoint>,
    hour: VecDeque<RollupPoint>,
    open_raw: Option<RollupPoint>,
    open_minute: Option<RollupPoint>,
    open_hour: Option<RollupPoint>,
}

impl SeriesStore {
    fn new(kind: SeriesKind) -> SeriesStore {
        SeriesStore {
            kind,
            raw: VecDeque::new(),
            minute: VecDeque::new(),
            hour: VecDeque::new(),
            open_raw: None,
            open_minute: None,
            open_hour: None,
        }
    }

    /// The open raw window for the tick at `now_ms`, sealing (and
    /// cascading) any older open window first.
    fn open_raw_at(&mut self, now_ms: u64, cfg: &TsdbConfig) -> &mut RollupPoint {
        let interval = cfg.raw_interval.as_millis().max(1);
        let start = now_ms - now_ms % interval;
        if self.open_raw.as_ref().is_some_and(|p| p.start_ms != start) {
            self.seal_raw(cfg);
        }
        self.open_raw.get_or_insert_with(|| RollupPoint::empty(start))
    }

    /// Seals the open raw window: pushes it into the raw ring and merges
    /// it into the minute accumulator (sealing *that* on boundary).
    fn seal_raw(&mut self, cfg: &TsdbConfig) {
        let Some(point) = self.open_raw.take() else { return };
        let minute_start = point.start_ms - point.start_ms % MINUTE_MS;
        if self.open_minute.as_ref().is_some_and(|p| p.start_ms != minute_start) {
            self.seal_minute(cfg);
        }
        self.open_minute.get_or_insert_with(|| RollupPoint::empty(minute_start)).merge(&point);
        self.raw.push_back(point);
        while self.raw.len() > cfg.retention.raw_points {
            self.raw.pop_front();
        }
    }

    /// Seals the open minute window into the minute ring and the hour
    /// accumulator.
    fn seal_minute(&mut self, cfg: &TsdbConfig) {
        let Some(point) = self.open_minute.take() else { return };
        let hour_start = point.start_ms - point.start_ms % HOUR_MS;
        if self.open_hour.as_ref().is_some_and(|p| p.start_ms != hour_start) {
            self.seal_hour(cfg);
        }
        self.open_hour.get_or_insert_with(|| RollupPoint::empty(hour_start)).merge(&point);
        self.minute.push_back(point);
        while self.minute.len() > cfg.retention.minute_points {
            self.minute.pop_front();
        }
    }

    /// Seals the open hour window into the hour ring.
    fn seal_hour(&mut self, cfg: &TsdbConfig) {
        let Some(point) = self.open_hour.take() else { return };
        self.hour.push_back(point);
        while self.hour.len() > cfg.retention.hour_points {
            self.hour.pop_front();
        }
    }

    /// Seals every open accumulator — end-of-run flush.
    fn seal_all(&mut self, cfg: &TsdbConfig) {
        self.seal_raw(cfg);
        self.seal_minute(cfg);
        self.seal_hour(cfg);
    }

    fn ring(&self, resolution: Resolution) -> &VecDeque<RollupPoint> {
        match resolution {
            Resolution::Raw => &self.raw,
            Resolution::Minute => &self.minute,
            Resolution::Hour => &self.hour,
        }
    }

    fn to_json(&self) -> Value {
        let render =
            |ring: &VecDeque<RollupPoint>| ring.iter().map(|p| p.to_json()).collect::<Vec<Value>>();
        json!({
            "kind": self.kind.label(),
            "raw": render(&self.raw),
            "minute": render(&self.minute),
            "hour": render(&self.hour),
        })
    }
}

/// Cursor remembering the last cumulative histogram state of one registry
/// series, for delta extraction.
#[derive(Debug, Clone, Default)]
struct HistCursor {
    buckets: Vec<(u32, u64)>,
    count: u64,
    sum: f64,
}

/// The deterministic embedded time-series store.
///
/// # Examples
///
/// ```
/// use evop_obs::{MetricsRegistry, Tsdb, TsdbConfig, Resolution};
/// use evop_sim::{SimDuration, SimTime};
///
/// let registry = MetricsRegistry::new();
/// let mut tsdb = Tsdb::new(TsdbConfig {
///     raw_interval: SimDuration::from_secs(30),
///     ..TsdbConfig::default()
/// });
/// for tick in 0..6u64 {
///     registry.add_counter("requests_total", &[("route", "/models")], 5);
///     tsdb.ingest_registry(&registry, SimTime::from_secs(tick * 30));
/// }
/// tsdb.finish(SimTime::from_secs(180));
/// let minutes = tsdb.range(
///     "requests_total",
///     &[("route", "/models")],
///     Resolution::Minute,
///     SimTime::ZERO,
///     SimTime::from_secs(180),
/// );
/// assert_eq!(minutes.len(), 3);
/// assert_eq!(minutes[0].sum, 10.0); // two 30s ticks of +5
/// ```
#[derive(Debug, Clone)]
pub struct Tsdb {
    config: TsdbConfig,
    series: BTreeMap<SeriesKey, SeriesStore>,
    family_counts: BTreeMap<String, usize>,
    dropped_keys: BTreeSet<SeriesKey>,
    last_counter: BTreeMap<SeriesKey, u64>,
    last_hist: BTreeMap<SeriesKey, HistCursor>,
    last_ingest_ms: u64,
    ingests: u64,
}

impl Default for Tsdb {
    fn default() -> Tsdb {
        Tsdb::new(TsdbConfig::default())
    }
}

impl Tsdb {
    /// Creates an empty store.
    pub fn new(config: TsdbConfig) -> Tsdb {
        Tsdb {
            config,
            series: BTreeMap::new(),
            family_counts: BTreeMap::new(),
            dropped_keys: BTreeSet::new(),
            last_counter: BTreeMap::new(),
            last_hist: BTreeMap::new(),
            last_ingest_ms: 0,
            ingests: 0,
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &TsdbConfig {
        &self.config
    }

    /// Routes a registry series through the cardinality governor: known
    /// series pass through, new series are admitted while the family has
    /// budget, and everything else collapses into the family's
    /// `{__overflow__=1}` aggregate.
    fn route(&mut self, key: &SeriesKey, kind: SeriesKind) -> SeriesKey {
        if self.series.contains_key(key) {
            return key.clone();
        }
        let family = key.name().to_owned();
        let used = self.family_counts.get(family.as_str()).copied().unwrap_or(0);
        if used < self.config.budget(&family) {
            self.family_counts.insert(family, used + 1);
            self.series.insert(key.clone(), SeriesStore::new(kind));
            return key.clone();
        }
        if self.dropped_keys.insert(key.clone()) {
            // First sight of an over-budget label-set: count the drop.
            let drop_key = SeriesKey::new(SERIES_DROPPED, &[]);
            let now_ms = self.last_ingest_ms;
            let cfg = self.config.clone();
            self.series
                .entry(drop_key)
                .or_insert_with(|| SeriesStore::new(SeriesKind::Counter))
                .open_raw_at(now_ms, &cfg)
                .observe(1.0);
        }
        let overflow = SeriesKey::new(key.name(), &[(OVERFLOW_LABEL, "1")]);
        self.series.entry(overflow.clone()).or_insert_with(|| SeriesStore::new(kind));
        overflow
    }

    /// Ingests one registry snapshot at virtual time `now`: counter and
    /// histogram series contribute their increase since the previous
    /// ingest, gauges contribute their sampled value. Call once per
    /// control-loop tick; window sealing happens automatically when the
    /// tick crosses a resolution boundary.
    pub fn ingest_registry(&mut self, registry: &MetricsRegistry, now: SimTime) {
        let now_ms = now.as_millis();
        self.last_ingest_ms = self.last_ingest_ms.max(now_ms);
        self.ingests += 1;

        for (key, value) in registry.counter_series() {
            let last = self.last_counter.insert(key.clone(), value).unwrap_or(0);
            let delta = value.saturating_sub(last);
            let routed = self.route(&key, SeriesKind::Counter);
            let cfg = self.config.clone();
            if let Some(store) = self.series.get_mut(&routed) {
                store.open_raw_at(now_ms, &cfg).observe(delta as f64);
            }
        }

        for (key, value) in registry.gauge_series() {
            let routed = self.route(&key, SeriesKind::Gauge);
            let cfg = self.config.clone();
            if let Some(store) = self.series.get_mut(&routed) {
                store.open_raw_at(now_ms, &cfg).observe(value);
            }
        }

        for (key, hist) in registry.histogram_series() {
            let cursor = self.last_hist.entry(key.clone()).or_default();
            let mut deltas: Vec<(u32, u64)> = Vec::new();
            let mut last_iter = cursor.buckets.iter().peekable();
            for (idx, n) in hist.nonzero_buckets() {
                let mut prev = 0;
                while let Some(&&(last_idx, last_n)) = last_iter.peek() {
                    if last_idx < idx {
                        last_iter.next();
                    } else {
                        if last_idx == idx {
                            prev = last_n;
                        }
                        break;
                    }
                }
                let grew = n.saturating_sub(prev);
                if grew > 0 {
                    deltas.push((idx, grew));
                }
            }
            let count_delta = hist.count().saturating_sub(cursor.count);
            let sum_delta = hist.sum() - cursor.sum;
            cursor.buckets = hist.nonzero_buckets().collect();
            cursor.count = hist.count();
            cursor.sum = hist.sum();
            if count_delta == 0 {
                continue;
            }
            let routed = self.route(&key, SeriesKind::Histogram);
            let cfg = self.config.clone();
            if let Some(store) = self.series.get_mut(&routed) {
                store.open_raw_at(now_ms, &cfg).observe_hist_delta(&deltas, sum_delta, count_delta);
            }
        }
    }

    /// Seals every open window — call once at end of run so the snapshot
    /// includes the final partial windows. `now` only advances the store's
    /// notion of time for the snapshot header.
    pub fn finish(&mut self, now: SimTime) {
        self.last_ingest_ms = self.last_ingest_ms.max(now.as_millis());
        let cfg = self.config.clone();
        for store in self.series.values_mut() {
            store.seal_all(&cfg);
        }
    }

    /// Sealed points of one series whose window start lies in
    /// `[start, end)`, oldest first. Empty when the series is unknown.
    pub fn range(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        resolution: Resolution,
        start: SimTime,
        end: SimTime,
    ) -> Vec<RollupPoint> {
        let key = SeriesKey::new(name, labels);
        let Some(store) = self.series.get(&key) else { return Vec::new() };
        store
            .ring(resolution)
            .iter()
            .filter(|p| p.start_ms >= start.as_millis() && p.start_ms < end.as_millis())
            .cloned()
            .collect()
    }

    /// Sealed points of *every* series of one family, merged per aligned
    /// window — e.g. total submissions across all `outcome` labels,
    /// including the overflow aggregate. Windows are returned oldest
    /// first.
    pub fn family_range(
        &self,
        name: &str,
        resolution: Resolution,
        start: SimTime,
        end: SimTime,
    ) -> Vec<RollupPoint> {
        let mut merged: BTreeMap<u64, RollupPoint> = BTreeMap::new();
        for (key, store) in &self.series {
            if key.name() != name {
                continue;
            }
            for point in store.ring(resolution) {
                if point.start_ms < start.as_millis() || point.start_ms >= end.as_millis() {
                    continue;
                }
                merged
                    .entry(point.start_ms)
                    .or_insert_with(|| RollupPoint::empty(point.start_ms))
                    .merge(point);
            }
        }
        merged.into_values().collect()
    }

    /// Number of admitted series (overflow aggregates included).
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Number of distinct label-sets collapsed into overflow aggregates.
    pub fn series_dropped(&self) -> u64 {
        self.dropped_keys.len() as u64
    }

    /// Admitted series keys, in key order.
    pub fn series_keys(&self) -> Vec<SeriesKey> {
        self.series.keys().cloned().collect()
    }

    /// The kind of one admitted series, `None` when unknown.
    pub fn series_kind(&self, key: &SeriesKey) -> Option<SeriesKind> {
        self.series.get(key).map(|s| s.kind)
    }

    /// Sealed points of one admitted series at a resolution (no window
    /// filter) — what the rollup exporters iterate.
    pub fn series_points(&self, key: &SeriesKey, resolution: Resolution) -> Vec<RollupPoint> {
        self.series
            .get(key)
            .map(|s| s.ring(resolution).iter().cloned().collect())
            .unwrap_or_default()
    }

    /// A deterministic JSON snapshot: store stats plus every series'
    /// sealed rings, all maps in key order. Byte-identical across
    /// same-seed runs.
    pub fn to_json(&self) -> Value {
        let series: Map<String, Value> =
            self.series.iter().map(|(k, s)| (k.render(), s.to_json())).collect();
        json!({
            "stats": {
                "ingests": self.ingests,
                "last_ingest_ms": self.last_ingest_ms,
                "series_count": self.series_count(),
                "series_dropped": self.series_dropped(),
                "raw_interval_ms": self.config.raw_interval.as_millis(),
            },
            "series": series,
        })
    }

    /// [`Tsdb::to_json`] rendered to one line — the byte-stable form the
    /// golden tests pin (via a digest) and the determinism guard compares.
    pub fn snapshot_string(&self) -> String {
        self.to_json().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TsdbConfig {
        TsdbConfig { raw_interval: SimDuration::from_secs(30), ..TsdbConfig::default() }
    }

    #[test]
    fn counter_deltas_roll_into_minutes_and_hours() {
        let registry = MetricsRegistry::new();
        let mut tsdb = Tsdb::new(cfg());
        // 2 virtual hours of +3/tick at 30s cadence.
        for tick in 0..240u64 {
            registry.add_counter("c", &[], 3);
            tsdb.ingest_registry(&registry, SimTime::from_secs(tick * 30));
        }
        tsdb.finish(SimTime::from_secs(240 * 30));
        let minutes = tsdb.range("c", &[], Resolution::Minute, SimTime::ZERO, SimTime::MAX);
        assert_eq!(minutes.len(), 120);
        // First minute holds ticks 0 and 1 (+3 each).
        assert_eq!(minutes[0].sum, 6.0);
        assert_eq!(minutes[0].count, 2);
        let hours = tsdb.range("c", &[], Resolution::Hour, SimTime::ZERO, SimTime::MAX);
        assert_eq!(hours.len(), 2);
        assert_eq!(hours[0].sum, 360.0); // 120 ticks * 3
        assert_eq!(hours[1].sum, 360.0);
        // Total increase is conserved across resolutions (the +3 at tick 0
        // and the final tick land in sealed windows too).
        let raw_total: f64 = tsdb
            .range("c", &[], Resolution::Raw, SimTime::ZERO, SimTime::MAX)
            .iter()
            .map(|p| p.sum)
            .sum();
        let minute_total: f64 = minutes.iter().map(|p| p.sum).sum();
        assert_eq!(raw_total, minute_total);
    }

    #[test]
    fn gauges_average_and_track_extremes() {
        let registry = MetricsRegistry::new();
        let mut tsdb = Tsdb::new(cfg());
        for (tick, level) in [2.0, 6.0, 10.0, 2.0].iter().enumerate() {
            registry.set_gauge("pool", &[], *level);
            tsdb.ingest_registry(&registry, SimTime::from_secs(tick as u64 * 30));
        }
        tsdb.finish(SimTime::from_secs(120));
        let minutes = tsdb.range("pool", &[], Resolution::Minute, SimTime::ZERO, SimTime::MAX);
        assert_eq!(minutes.len(), 2);
        assert_eq!(minutes[0].mean(), 4.0);
        assert_eq!(minutes[1].min, 2.0);
        assert_eq!(minutes[1].max, 10.0);
    }

    #[test]
    fn histogram_deltas_preserve_counts_and_quantiles() {
        let registry = MetricsRegistry::new();
        let mut tsdb = Tsdb::new(cfg());
        for tick in 0..4u64 {
            for i in 0..25u64 {
                registry.observe("lat", &[], (tick * 25 + i + 1) as f64);
            }
            tsdb.ingest_registry(&registry, SimTime::from_secs(tick * 30));
        }
        tsdb.finish(SimTime::from_secs(120));
        let minutes = tsdb.range("lat", &[], Resolution::Minute, SimTime::ZERO, SimTime::MAX);
        assert_eq!(minutes.len(), 2);
        assert_eq!(minutes[0].count, 50);
        assert_eq!(minutes[1].count, 50);
        // The merged minute quantile stays within the ladder's bound.
        let p50 = minutes[1].quantile(0.5).unwrap_or(0.0);
        assert!((p50 / 75.0 - 1.0).abs() < 0.06, "p50 of 51..=100 ≈ 75, got {p50}");
        assert_eq!(minutes[0].sum, (1..=50).sum::<u64>() as f64);
    }

    #[test]
    fn retention_bounds_every_ring() {
        let registry = MetricsRegistry::new();
        let mut tsdb = Tsdb::new(TsdbConfig {
            raw_interval: SimDuration::from_secs(30),
            retention: RetentionPolicy { raw_points: 4, minute_points: 3, hour_points: 2 },
            ..TsdbConfig::default()
        });
        for tick in 0..=600u64 {
            registry.inc_counter("c", &[]);
            tsdb.ingest_registry(&registry, SimTime::from_secs(tick * 30));
        }
        tsdb.finish(SimTime::from_secs(601 * 30));
        assert_eq!(tsdb.range("c", &[], Resolution::Raw, SimTime::ZERO, SimTime::MAX).len(), 4);
        assert_eq!(tsdb.range("c", &[], Resolution::Minute, SimTime::ZERO, SimTime::MAX).len(), 3);
        assert_eq!(tsdb.range("c", &[], Resolution::Hour, SimTime::ZERO, SimTime::MAX).len(), 2);
    }

    #[test]
    fn governor_collapses_over_budget_series() {
        let registry = MetricsRegistry::new();
        let mut tsdb = Tsdb::new(TsdbConfig {
            raw_interval: SimDuration::from_secs(30),
            default_series_budget: 2,
            ..TsdbConfig::default()
        });
        for user in 0..5u64 {
            registry.add_counter("req", &[("user", &user.to_string())], 10);
        }
        tsdb.ingest_registry(&registry, SimTime::ZERO);
        tsdb.finish(SimTime::from_secs(60));
        assert_eq!(tsdb.series_dropped(), 3);
        let overflow = tsdb.range(
            "req",
            &[(OVERFLOW_LABEL, "1")],
            Resolution::Raw,
            SimTime::ZERO,
            SimTime::MAX,
        );
        assert_eq!(overflow.len(), 1);
        assert_eq!(overflow[0].sum, 30.0, "three collapsed series of +10 each");
        // The family total is exact despite the collapse.
        let family = tsdb.family_range("req", Resolution::Raw, SimTime::ZERO, SimTime::MAX);
        assert_eq!(family[0].sum, 50.0);
        // The governor's self-metric materialized.
        let dropped = tsdb.range(SERIES_DROPPED, &[], Resolution::Raw, SimTime::ZERO, SimTime::MAX);
        assert_eq!(dropped[0].sum, 3.0);
    }

    #[test]
    fn family_budget_overrides_default() {
        let registry = MetricsRegistry::new();
        let mut budgets = BTreeMap::new();
        budgets.insert("wide".to_owned(), 8usize);
        let mut tsdb =
            Tsdb::new(TsdbConfig { default_series_budget: 1, family_budgets: budgets, ..cfg() });
        for i in 0..4u64 {
            registry.inc_counter("wide", &[("i", &i.to_string())]);
            registry.inc_counter("narrow", &[("i", &i.to_string())]);
        }
        tsdb.ingest_registry(&registry, SimTime::ZERO);
        assert_eq!(tsdb.series_dropped(), 3, "only `narrow` overflows");
    }

    #[test]
    fn snapshot_is_byte_stable() {
        let build = || {
            let registry = MetricsRegistry::new();
            let mut tsdb = Tsdb::new(cfg());
            for tick in 0..10u64 {
                registry.add_counter("c", &[("k", "v")], tick);
                registry.set_gauge("g", &[], tick as f64);
                registry.observe("h", &[], (tick + 1) as f64);
                tsdb.ingest_registry(&registry, SimTime::from_secs(tick * 30));
            }
            tsdb.finish(SimTime::from_secs(300));
            tsdb.snapshot_string()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn range_filters_by_window_start() {
        let registry = MetricsRegistry::new();
        let mut tsdb = Tsdb::new(cfg());
        for tick in 0..8u64 {
            registry.inc_counter("c", &[]);
            tsdb.ingest_registry(&registry, SimTime::from_secs(tick * 30));
        }
        tsdb.finish(SimTime::from_secs(240));
        let window = tsdb.range(
            "c",
            &[],
            Resolution::Minute,
            SimTime::from_secs(60),
            SimTime::from_secs(180),
        );
        assert_eq!(window.len(), 2);
        assert_eq!(window[0].start_ms, 60_000);
        assert_eq!(window[1].start_ms, 120_000);
    }
}
