//! Property tests for the rollup store: merging rollup points is
//! associative and equivalent to one big fold, sealed windows agree with
//! a naive per-window fold over the raw samples, and identical ingest
//! sequences produce byte-identical snapshots.
//!
//! Samples are integer-valued throughout: float addition is not
//! associative, so exact equality of sums is only a fair property when
//! every partial sum is exactly representable.

use proptest::prelude::*;

use evop_obs::tsdb::{Resolution, RollupPoint, Tsdb, TsdbConfig};
use evop_obs::MetricsRegistry;
use evop_sim::{SimDuration, SimTime};

const TICK_MS: u64 = 30_000;
const MINUTE_MS: u64 = 60_000;

fn config() -> TsdbConfig {
    TsdbConfig { raw_interval: SimDuration::from_secs(30), ..TsdbConfig::default() }
}

fn point_from(samples: &[u32]) -> RollupPoint {
    let mut p = RollupPoint::empty(0);
    for &s in samples {
        p.observe(f64::from(s));
    }
    p
}

proptest! {
    /// Downsampling may merge partial windows in any grouping: merging
    /// is associative, and any merge tree equals folding every sample
    /// into one point.
    #[test]
    fn merge_is_associative_and_equals_one_fold(
        a in prop::collection::vec(0u32..1000, 0..40),
        b in prop::collection::vec(0u32..1000, 0..40),
        c in prop::collection::vec(0u32..1000, 0..40),
    ) {
        let (pa, pb, pc) = (point_from(&a), point_from(&b), point_from(&c));

        let mut left = pa.clone();
        left.merge(&pb);
        left.merge(&pc);

        let mut bc = pb.clone();
        bc.merge(&pc);
        let mut right = pa.clone();
        right.merge(&bc);

        prop_assert_eq!(&left, &right);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &point_from(&all));
    }

    /// A gauge sampled once per tick: every sealed minute window carries
    /// exactly the naive sum/count/min/max of the raw samples that
    /// landed in it.
    #[test]
    fn gauge_windows_match_a_naive_fold(
        samples in prop::collection::vec(0u32..1000, 1..200),
    ) {
        let registry = MetricsRegistry::new();
        let mut tsdb = Tsdb::new(config());
        for (i, &s) in samples.iter().enumerate() {
            registry.set_gauge("load", &[], f64::from(s));
            tsdb.ingest_registry(&registry, SimTime::from_millis((i as u64 + 1) * TICK_MS));
        }
        let end = SimTime::from_millis((samples.len() as u64 + 2) * TICK_MS);
        tsdb.finish(end);

        let windows = tsdb.range("load", &[], Resolution::Minute, SimTime::ZERO, end);
        prop_assert!(!windows.is_empty());
        let mut checked = 0usize;
        for w in &windows {
            // Sample i lands at (i+1)*TICK_MS; collect the ones whose
            // timestamp opens inside this minute window.
            let naive: Vec<f64> = samples
                .iter()
                .enumerate()
                .map(|(i, &s)| ((i as u64 + 1) * TICK_MS, f64::from(s)))
                .filter(|&(at, _)| at >= w.start_ms && at < w.start_ms + MINUTE_MS)
                .map(|(_, s)| s)
                .collect();
            prop_assert_eq!(w.count, naive.len() as u64);
            prop_assert_eq!(w.sum, naive.iter().sum::<f64>());
            prop_assert_eq!(w.min, naive.iter().copied().fold(f64::INFINITY, f64::min));
            prop_assert_eq!(w.max, naive.iter().copied().fold(f64::NEG_INFINITY, f64::max));
            checked += naive.len();
        }
        // Every sample was accounted to exactly one window.
        prop_assert_eq!(checked, samples.len());
    }

    /// A counter bumped by arbitrary per-tick increments: window sums
    /// are the per-window increments, and the grand total across every
    /// sealed window is exactly the cumulative counter value.
    #[test]
    fn counter_windows_conserve_the_cumulative_total(
        increments in prop::collection::vec(0u64..100, 1..200),
    ) {
        let registry = MetricsRegistry::new();
        let mut tsdb = Tsdb::new(config());
        for (i, &inc) in increments.iter().enumerate() {
            registry.add_counter("reqs", &[], inc);
            tsdb.ingest_registry(&registry, SimTime::from_millis((i as u64 + 1) * TICK_MS));
        }
        let end = SimTime::from_millis((increments.len() as u64 + 2) * TICK_MS);
        tsdb.finish(end);

        for resolution in [Resolution::Raw, Resolution::Minute, Resolution::Hour] {
            let windows = tsdb.range("reqs", &[], resolution, SimTime::ZERO, end);
            let total: f64 = windows.iter().map(|w| w.sum).sum();
            prop_assert_eq!(total as u64, increments.iter().sum::<u64>());
        }
    }

    /// Replaying the same ingest sequence into two fresh stores yields
    /// byte-identical snapshots — the determinism the goldens rely on.
    #[test]
    fn identical_ingest_sequences_snapshot_identically(
        ops in prop::collection::vec((0u8..3, 1u32..1000), 1..150),
    ) {
        let run = || {
            let registry = MetricsRegistry::new();
            let mut tsdb = Tsdb::new(config());
            for (i, &(kind, v)) in ops.iter().enumerate() {
                match kind {
                    0 => registry.add_counter("reqs", &[("op", "mixed")], u64::from(v)),
                    1 => registry.set_gauge("load", &[], f64::from(v)),
                    _ => registry.observe("latency", &[], f64::from(v)),
                }
                tsdb.ingest_registry(&registry, SimTime::from_millis((i as u64 + 1) * TICK_MS));
            }
            tsdb.finish(SimTime::from_millis((ops.len() as u64 + 2) * TICK_MS));
            tsdb.snapshot_string()
        };
        prop_assert_eq!(run(), run());
    }
}
