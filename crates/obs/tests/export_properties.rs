//! Property tests for the exporter and trace-analytics invariants:
//!
//! * Prometheus histogram exposition — `_bucket{le="…"}` lines are
//!   cumulative and monotone, the upper bounds ascend strictly, and the
//!   terminal `le="+Inf"` bucket equals `_count` exactly;
//! * operation breakdown self-times — over a properly nested span tree,
//!   the self-times of every operation sum to the root span's duration
//!   (self time is where wall time actually went, so it must partition
//!   the total, never double-count a child).

use proptest::prelude::*;

use evop_obs::{prometheus_text, MetricsRegistry, OperationBreakdown, TraceContext, Tracer};
use evop_sim::SimTime;

// ====================================================================
// Prometheus bucket cumulativity
// ====================================================================

/// Parses the `lat_seconds_bucket{le="…"} N` lines, in emission order.
fn bucket_lines(text: &str) -> Vec<(f64, u64)> {
    text.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("lat_seconds_bucket{le=\"")?;
            let (le, count) = rest.split_once("\"} ")?;
            let le = if le == "+Inf" { f64::INFINITY } else { le.parse().ok()? };
            Some((le, count.parse().ok()?))
        })
        .collect()
}

proptest! {
    #[test]
    fn prometheus_histogram_buckets_are_cumulative_and_monotone(
        // Log-uniform over the histogram's comfortable range so many
        // distinct buckets fill up.
        exps in prop::collection::vec(-5.0f64..8.0, 1..200),
    ) {
        let registry = MetricsRegistry::new();
        for &e in &exps {
            registry.observe("lat_seconds", &[], 10f64.powf(e));
        }
        let text = prometheus_text(&registry);
        let buckets = bucket_lines(&text);

        // The exposition always ends with the +Inf bucket == _count.
        prop_assert!(!buckets.is_empty());
        let (last_le, last_count) = buckets[buckets.len() - 1];
        prop_assert!(last_le.is_infinite());
        // le="+Inf" must equal _count.
        prop_assert_eq!(last_count, exps.len() as u64);
        prop_assert!(
            text.contains(&format!("lat_seconds_count {}", exps.len())),
            "_count line must record every observation"
        );

        // Upper bounds ascend strictly; cumulative counts never decrease.
        for pair in buckets.windows(2) {
            let ((le_a, count_a), (le_b, count_b)) = (pair[0], pair[1]);
            prop_assert!(
                le_a < le_b || (le_a.is_infinite() && le_b.is_infinite()),
                "bucket bounds must ascend: {le_a} then {le_b}"
            );
            prop_assert!(
                count_a <= count_b,
                "cumulative counts must be monotone: {count_a} then {count_b}"
            );
        }
    }
}

// ====================================================================
// Self-times partition the root duration
// ====================================================================

/// A properly nested span tree: at each node the span does `pre_gap`
/// milliseconds of own work before each child and `post_work` after the
/// last one, so children never overlap and always nest inside the parent.
#[derive(Debug, Clone)]
struct Node {
    pre_gap: u64,
    children: Vec<Node>,
    post_work: u64,
}

/// Builds a bounded-depth tree from flat random vectors. The vendored
/// proptest has no recursive-strategy combinators, so the randomness
/// lives in the three flat inputs and the shape is derived from them
/// deterministically (a cursor walks each vector cyclically).
fn build_node(gaps: &[u64], works: &[u64], kids: &[usize], idx: &mut usize, depth: usize) -> Node {
    let i = *idx;
    *idx += 1;
    let n_children = if depth >= 3 { 0 } else { kids[i % kids.len()] };
    Node {
        pre_gap: gaps[i % gaps.len()],
        children: (0..n_children).map(|_| build_node(gaps, works, kids, idx, depth + 1)).collect(),
        post_work: works[i % works.len()],
    }
}

/// Replays `node` as a span under `parent`, advancing the tracer's
/// virtual clock.
fn emit(tracer: &Tracer, parent: &TraceContext, node: &Node, now: &mut u64, depth: usize) {
    let span = tracer.start_span(format!("op.depth{depth}"), parent);
    let ctx = span.context();
    for child in &node.children {
        *now += node.pre_gap;
        tracer.set_now(SimTime::from_millis(*now));
        emit(tracer, &ctx, child, now, depth + 1);
    }
    *now += node.post_work;
    tracer.set_now(SimTime::from_millis(*now));
    span.finish();
}

proptest! {
    #[test]
    fn self_times_sum_to_the_root_duration(
        gaps in prop::collection::vec(0u64..200, 1..32),
        works in prop::collection::vec(1u64..200, 1..32),
        kids in prop::collection::vec(0usize..4, 1..32),
    ) {
        let mut idx = 0usize;
        let root = build_node(&gaps, &works, &kids, &mut idx, 0);
        let tracer = Tracer::new();
        let root_span = tracer.start_trace("root");
        let ctx = root_span.context();
        let mut now = 0u64;
        for child in &root.children {
            now += root.pre_gap;
            tracer.set_now(SimTime::from_millis(now));
            emit(&tracer, &ctx, child, &mut now, 1);
        }
        now += root.post_work;
        tracer.set_now(SimTime::from_millis(now));
        root_span.finish();

        let breakdown = OperationBreakdown::from_spans(&tracer.finished());
        let total_self_secs: f64 = breakdown
            .operations()
            .iter()
            .filter_map(|op| breakdown.self_times(op))
            .map(|hist| hist.sum())
            .sum();
        let root_secs = now as f64 / 1000.0;
        prop_assert!(
            (total_self_secs - root_secs).abs() < 1e-6,
            "self-times must partition the root duration: Σself {total_self_secs}s vs root {root_secs}s"
        );
    }
}
