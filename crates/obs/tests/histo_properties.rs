//! Property tests for the streaming histogram: the bucket ladder tiles
//! the trackable range, merging is associative and equivalent to
//! recording everything into one histogram, and quantile estimates stay
//! within one bucket's relative error of the exact order statistic.

use proptest::prelude::*;

use evop_obs::StreamingHistogram;

/// One ladder step: estimates may be off by at most the bucket width,
/// which is a factor of `GROWTH = 1.1` (representatives sit at the
/// geometric midpoint, so the true error is ≤ √1.1, but the looser bound
/// keeps the property robust to boundary rounding).
const RELATIVE_ERROR: f64 = 1.1;

// Values are generated as log-uniform exponents spanning the whole
// trackable range (1e-6 .. 1e9), so every rung of the ladder gets
// exercised; `lift` maps exponents to values.
fn lift(exps: &[f64]) -> Vec<f64> {
    exps.iter().map(|&e| 10f64.powf(e)).collect()
}

const EXP: std::ops::Range<f64> = -6.0f64..9.0f64;

fn from_values(values: &[f64]) -> StreamingHistogram {
    let mut h = StreamingHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Snapshot with the `sum` field dropped: float addition is not
/// associative, so `sum` is only byte-stable for one recording *order*
/// (the replay invariant) — across reorderings it agrees to relative
/// epsilon, which [`sums_agree`] checks separately.
fn structural_json(h: &StreamingHistogram) -> String {
    let mut v = h.to_json();
    if let Some(obj) = v.as_object_mut() {
        obj.remove("sum");
    }
    v.to_string()
}

fn sums_agree(a: &StreamingHistogram, b: &StreamingHistogram) -> bool {
    let (sa, sb) = (a.sum(), b.sum());
    (sa - sb).abs() <= 1e-9 * sa.abs().max(sb.abs()).max(1.0)
}

/// Exact order statistic matching the histogram's rank rule:
/// `rank = ceil(q * n)` clamped to `[1, n]`, 1-indexed into sorted order.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #[test]
    fn bucket_ranges_tile_and_contain_their_values(e in EXP) {
        let v = 10f64.powf(e);
        let index = StreamingHistogram::bucket_index(v);
        let (lo, hi) = StreamingHistogram::bucket_range(index);
        prop_assert!(lo <= v && v < hi, "{v} outside bucket {index} = [{lo}, {hi})");
        let rep = StreamingHistogram::bucket_representative(index);
        prop_assert!(lo <= rep && rep <= hi, "representative {rep} outside [{lo}, {hi}]");
    }

    #[test]
    fn bucket_index_is_monotone(ea in EXP, eb in EXP) {
        let (a, b) = (10f64.powf(ea), 10f64.powf(eb));
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            StreamingHistogram::bucket_index(lo) <= StreamingHistogram::bucket_index(hi),
            "bucket_index must be monotone: {lo} vs {hi}"
        );
    }

    #[test]
    fn merge_is_associative_and_equals_bulk_recording(
        xs_e in prop::collection::vec(EXP, 0..40),
        ys_e in prop::collection::vec(EXP, 0..40),
        zs_e in prop::collection::vec(EXP, 0..40),
    ) {
        let (xs, ys, zs) = (lift(&xs_e), lift(&ys_e), lift(&zs_e));
        let (a, b, c) = (from_values(&xs), from_values(&ys), from_values(&zs));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);

        // a ⊕ (b ⊕ c)
        let mut right_tail = b.clone();
        right_tail.merge(&c);
        let mut right = a.clone();
        right.merge(&right_tail);

        // everything recorded into one histogram
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        all.extend_from_slice(&zs);
        let bulk = from_values(&all);

        prop_assert_eq!(structural_json(&left), structural_json(&right));
        prop_assert_eq!(structural_json(&left), structural_json(&bulk));
        prop_assert!(sums_agree(&left, &right) && sums_agree(&left, &bulk));
    }

    #[test]
    fn quantiles_stay_within_one_bucket_of_exact(
        exps in prop::collection::vec(EXP, 1..80),
        q in 0.0f64..1.0f64,
    ) {
        let mut values = lift(&exps);
        let h = from_values(&values);
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let exact = exact_quantile(&values, q);
        let est = h.quantile(q).expect("non-empty histogram");
        prop_assert!(
            est >= exact / RELATIVE_ERROR && est <= exact * RELATIVE_ERROR,
            "quantile({q}) = {est} strays beyond one bucket of exact {exact}"
        );
        // And always inside the observed range.
        prop_assert!(est >= values[0] && est <= values[values.len() - 1]);
    }

    #[test]
    fn count_at_most_matches_a_direct_count_at_boundaries(
        exps in prop::collection::vec(EXP, 0..60),
        cutoff_exp in EXP,
    ) {
        let values = lift(&exps);
        let cutoff = 10f64.powf(cutoff_exp);
        let h = from_values(&values);
        // The histogram can only answer at bucket granularity: the result
        // must bracket the true count between "everything strictly below
        // the cutoff's bucket" and "everything at or below its bucket".
        let cutoff_bucket = StreamingHistogram::bucket_index(cutoff);
        let (lower, upper) = values.iter().fold((0u64, 0u64), |(lo, up), &v| {
            let b = StreamingHistogram::bucket_index(v);
            (lo + u64::from(b < cutoff_bucket), up + u64::from(b <= cutoff_bucket))
        });
        let got = h.count_at_most(cutoff);
        prop_assert!(
            got >= lower && got <= upper,
            "count_at_most({cutoff}) = {got} outside [{lower}, {upper}]"
        );
    }

    #[test]
    fn snapshots_are_insertion_order_independent(
        exps in prop::collection::vec(EXP, 1..40),
        swaps in prop::collection::vec((0usize..40, 0usize..40), 0..20),
    ) {
        let values = lift(&exps);
        let mut shuffled = values.clone();
        for (i, j) in swaps {
            let (i, j) = (i % shuffled.len(), j % shuffled.len());
            shuffled.swap(i, j);
        }
        let a = from_values(&values);
        let b = from_values(&shuffled);
        prop_assert_eq!(structural_json(&a), structural_json(&b));
        prop_assert!(sums_agree(&a, &b));
        // Identical order replays to identical bytes, `sum` included.
        prop_assert_eq!(a.to_json().to_string(), from_values(&values).to_json().to_string());
    }
}
