//! Batch-drain equivalence: [`CloudSim::advance_to`] delivers events in
//! whole-tick batches, and this suite proves the batching is invisible —
//! driving the very same scenario with one bulk advance, or stepping the
//! clock to every single event time via [`CloudSim::next_event_time`],
//! must end in identical observable state: clocks, instance and job
//! states, billing totals, and every kernel counter (which the perf plane
//! exports as golden-pinned gauges).

use evop_cloud::{CloudSim, FailureMode, ImageId, InstanceId, MachineImage, Provider};
use evop_sim::{SimDuration, SimTime};

/// Builds and runs the canonical scenario, advancing virtual time through
/// `advance_to` at three checkpoints. Everything else is identical, so any
/// divergence between two drivers is the drive strategy's fault.
fn run_scenario(advance_to: impl Fn(&mut CloudSim, SimTime)) -> (CloudSim, Vec<InstanceId>) {
    let mut sim = CloudSim::new(7);
    sim.register_provider(Provider::private_openstack("campus", 8));
    sim.register_provider(Provider::public_aws("aws"));
    let image = MachineImage::streamlined("topmodel-eden", ["topmodel"]);
    let img = image.id().clone();
    sim.register_image(image);
    sim.register_image(MachineImage::incubator("incubator"));

    let mut ids = Vec::new();
    for i in 0..6 {
        let provider = if i < 2 { "campus" } else { "aws" };
        ids.push(sim.launch(provider, "m1.small", &img).expect("launch"));
    }
    let inc = ImageId::new("incubator");
    ids.push(sim.launch("aws", "m1.small", &inc).expect("launch incubator"));
    advance_to(&mut sim, SimTime::from_secs(300));

    // A same-instant burst: equal-length jobs submitted at one instant
    // complete at one instant, so whole-tick batching is actually hit.
    for &id in &ids[..6] {
        for _ in 0..4 {
            sim.submit_job(id, SimDuration::from_secs(60)).expect("submit");
        }
    }
    sim.run_model(ids[6], "fuse", SimDuration::from_secs(90)).expect("run model");
    advance_to(&mut sim, SimTime::from_secs(500));

    sim.inject_failure(ids[0], FailureMode::Crash).expect("inject");
    sim.inject_failure(ids[2], FailureMode::Hang).expect("inject");
    for &id in &ids[3..6] {
        sim.submit_job(id, SimDuration::from_secs(45)).expect("submit");
    }
    advance_to(&mut sim, SimTime::from_secs(5_000));
    (sim, ids)
}

/// Every externally observable fact about the run, in comparable form.
fn observe(sim: &CloudSim, ids: &[InstanceId]) -> (String, String, String) {
    let instances = ids
        .iter()
        .map(|&id| match sim.instance(id) {
            Some(inst) => format!("{id}: {:?} jobs={:?}", inst.state(), inst.jobs()),
            None => format!("{id}: gone"),
        })
        .collect::<Vec<_>>()
        .join("\n");
    let billing = format!("total={:.9} by_provider={:?}", sim.total_cost(), sim.cost_by_provider());
    let kernel = format!("{:?} now={}", sim.kernel_counters(), sim.now());
    (instances, billing, kernel)
}

#[test]
fn bulk_advance_equals_per_event_stepping() {
    let (bulk, bulk_ids) = run_scenario(|sim, target| sim.advance_to(target));
    let (stepped, stepped_ids) = run_scenario(|sim, target| {
        // Stop at every event time, one tick per advance_to call.
        while let Some(t) = sim.next_event_time().filter(|&t| t <= target) {
            sim.advance_to(t);
        }
        sim.advance_to(target);
    });
    assert_eq!(bulk_ids, stepped_ids);
    let a = observe(&bulk, &bulk_ids);
    let b = observe(&stepped, &stepped_ids);
    assert_eq!(a.0, b.0, "instance/job states diverged");
    assert_eq!(a.1, b.1, "billing diverged");
    assert_eq!(a.2, b.2, "kernel counters diverged");
}

#[test]
fn one_second_increments_equal_bulk_advance() {
    let (bulk, ids) = run_scenario(|sim, target| sim.advance_to(target));
    let (crawled, crawled_ids) = run_scenario(|sim, target| {
        while sim.now() < target {
            let next = (sim.now() + SimDuration::from_secs(1)).min(target);
            sim.advance_to(next);
        }
    });
    assert_eq!(ids, crawled_ids);
    assert_eq!(observe(&bulk, &ids), observe(&crawled, &crawled_ids));
}

#[test]
fn same_tick_burst_is_counted_as_one_batch() {
    let (sim, _) = run_scenario(|sim, target| sim.advance_to(target));
    // 4 equal jobs per instance submitted at one instant on 6 instances:
    // at minimum the per-instance completion quartet shares a tick.
    assert!(
        sim.kernel_counters().max_same_tick_batch >= 4,
        "expected a same-tick batch of at least 4, got {}",
        sim.kernel_counters().max_same_tick_batch
    );
}
