//! Hybrid IaaS cloud simulator for the EVOp reproduction.
//!
//! The EVOp project ran on "a hybrid infrastructure comprised of both private
//! and public cloud resources … OpenStack \[and\] Amazon Web Services"
//! (paper §IV-A). This crate is the deterministic discrete-event stand-in for
//! that infrastructure (see DESIGN.md's substitution table): it reproduces
//! the *control-plane* behaviour the paper's evaluation relies on —
//! capacity-bounded private clouds, elastic pay-per-use public clouds, VM
//! boot latency, machine images (streamlined vs incubator), per-instance job
//! execution with contention, health metrics, failure injection and
//! per-second billing.
//!
//! # Examples
//!
//! ```
//! use evop_cloud::{CloudSim, MachineImage, Provider};
//! use evop_sim::SimDuration;
//!
//! let mut sim = CloudSim::new(7);
//! sim.register_provider(Provider::private_openstack("campus", 16));
//! let image = MachineImage::streamlined("topmodel-eden", ["topmodel"]);
//! sim.register_image(image.clone());
//!
//! let id = sim.launch("campus", "m1.medium", image.id()).unwrap();
//! sim.advance(SimDuration::from_secs(120));
//! assert!(sim.instance(id).unwrap().is_running());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod billing;
mod faults;
mod instance;
mod provider;
mod sim;
mod types;

pub use billing::CostMeter;
pub use faults::{ApiFault, CloudOp, FaultInjector};
pub use instance::{FailureMode, Instance, InstanceState, Job, JobId, JobState};
pub use provider::{Provider, ProviderKind};
pub use sim::{CloudError, CloudSim, InstanceMetrics};
pub use types::{ImageId, ImageKind, InstanceId, InstanceType, MachineImage};
