//! Identifier and catalogue types: instance types and machine images.

use std::fmt;

use evop_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A unique cloud-instance identifier, assigned by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct InstanceId(pub(crate) u64);

impl InstanceId {
    /// Builds an id from its raw value — for tests and tools that need to
    /// fabricate ids; real ids come from [`CloudSim::launch`].
    ///
    /// [`CloudSim::launch`]: crate::CloudSim::launch
    pub fn from_raw(raw: u64) -> InstanceId {
        InstanceId(raw)
    }

    /// The raw numeric value.
    pub fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i-{:08x}", self.0)
    }
}

/// A machine-image identifier, e.g. `"img-topmodel-eden"`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct ImageId(String);

impl ImageId {
    /// Creates an image id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is empty.
    pub fn new(id: impl Into<String>) -> ImageId {
        let id = id.into();
        assert!(!id.is_empty(), "image id must not be empty");
        ImageId(id)
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ImageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ImageId {
    fn from(s: &str) -> ImageId {
        ImageId::new(s)
    }
}

/// A flavour of virtual machine: vCPU count, memory and price.
///
/// The standard flavours mirror the EC2/OpenStack m1 family the project used.
///
/// # Examples
///
/// ```
/// use evop_cloud::InstanceType;
///
/// let m = InstanceType::lookup("m1.medium").unwrap();
/// assert_eq!(m.vcpus(), 2);
/// assert!(m.hourly_cost() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceType {
    name: String,
    vcpus: u32,
    mem_gb: f64,
    hourly_cost: f64,
}

impl InstanceType {
    /// Creates an instance type.
    ///
    /// # Panics
    ///
    /// Panics if `vcpus` is zero, or memory/cost are not positive.
    pub fn new(name: impl Into<String>, vcpus: u32, mem_gb: f64, hourly_cost: f64) -> InstanceType {
        assert!(vcpus > 0, "an instance needs at least one vCPU");
        assert!(mem_gb > 0.0, "memory must be positive");
        assert!(hourly_cost >= 0.0, "cost must be non-negative");
        InstanceType { name: name.into(), vcpus, mem_gb, hourly_cost }
    }

    /// The standard flavour catalogue (per-hour on-demand prices in USD,
    /// modelled on 2012-era EC2).
    pub fn standard_catalogue() -> Vec<InstanceType> {
        vec![
            InstanceType::new("m1.small", 1, 1.7, 0.065),
            InstanceType::new("m1.medium", 2, 3.75, 0.13),
            InstanceType::new("m1.large", 4, 7.5, 0.26),
            InstanceType::new("m1.xlarge", 8, 15.0, 0.52),
        ]
    }

    /// Looks a flavour up in the standard catalogue.
    pub fn lookup(name: &str) -> Option<InstanceType> {
        InstanceType::standard_catalogue().into_iter().find(|t| t.name == name)
    }

    /// The flavour name, e.g. `"m1.medium"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of virtual CPUs (parallel job slots).
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }

    /// Memory in GiB.
    pub fn mem_gb(&self) -> f64 {
        self.mem_gb
    }

    /// On-demand price per hour.
    pub fn hourly_cost(&self) -> f64 {
        self.hourly_cost
    }
}

/// How a machine image was prepared — the distinction at the heart of the
/// paper's Model Library (§IV-D).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImageKind {
    /// A "streamlined execution bundle": a VM image pre-baked offline with a
    /// fine-tuned set of models and all required data. Larger (slower to
    /// boot) but serves model runs at full speed immediately.
    Streamlined {
        /// Names of the models baked into the image.
        models: Vec<String>,
    },
    /// A generic "model incubator" image: boots fast but each model must be
    /// installed after boot, and experimental deployments pay a per-run
    /// performance penalty (the paper: "some effect on execution
    /// performance when compared to a streamlined execution unit").
    Incubator,
}

impl ImageKind {
    /// `true` for streamlined bundles.
    pub fn is_streamlined(&self) -> bool {
        matches!(self, ImageKind::Streamlined { .. })
    }
}

/// A virtual-machine image stored in the Model Library.
///
/// # Examples
///
/// ```
/// use evop_cloud::MachineImage;
///
/// let baked = MachineImage::streamlined("topmodel-eden", ["topmodel", "fuse"]);
/// assert!(baked.provides_model("topmodel"));
/// assert!(!baked.provides_model("swat"));
///
/// let generic = MachineImage::incubator("model-incubator");
/// assert!(!generic.provides_model("topmodel"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineImage {
    id: ImageId,
    kind: ImageKind,
    /// Extra boot time on top of the provider's base boot latency.
    boot_overhead: SimDuration,
    /// Multiplier on job execution time (1.0 = full speed).
    execution_penalty: f64,
    /// Time to install one model on a booted incubator instance.
    install_time: SimDuration,
}

impl MachineImage {
    /// Creates a streamlined (pre-baked) image bundling `models`.
    pub fn streamlined<I, S>(id: impl Into<String>, models: I) -> MachineImage
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        MachineImage {
            id: ImageId::new(id),
            kind: ImageKind::Streamlined { models: models.into_iter().map(Into::into).collect() },
            boot_overhead: SimDuration::from_secs(40),
            execution_penalty: 1.0,
            install_time: SimDuration::ZERO,
        }
    }

    /// Creates a generic incubator image.
    pub fn incubator(id: impl Into<String>) -> MachineImage {
        MachineImage {
            id: ImageId::new(id),
            kind: ImageKind::Incubator,
            boot_overhead: SimDuration::from_secs(5),
            execution_penalty: 1.35,
            install_time: SimDuration::from_secs(90),
        }
    }

    /// The image id.
    pub fn id(&self) -> &ImageId {
        &self.id
    }

    /// The image kind.
    pub fn kind(&self) -> &ImageKind {
        &self.kind
    }

    /// Extra boot time on top of the provider's base boot latency.
    pub fn boot_overhead(&self) -> SimDuration {
        self.boot_overhead
    }

    /// Multiplier on job execution time (1.0 = full speed).
    pub fn execution_penalty(&self) -> f64 {
        self.execution_penalty
    }

    /// Time to install one model after boot (zero for streamlined images).
    pub fn install_time(&self) -> SimDuration {
        self.install_time
    }

    /// `true` if the image ships with `model` pre-installed.
    pub fn provides_model(&self, model: &str) -> bool {
        match &self.kind {
            ImageKind::Streamlined { models } => models.iter().any(|m| m == model),
            ImageKind::Incubator => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_catalogue_is_ordered_by_size() {
        let cat = InstanceType::standard_catalogue();
        assert_eq!(cat.len(), 4);
        for pair in cat.windows(2) {
            assert!(pair[0].vcpus() < pair[1].vcpus());
            assert!(pair[0].hourly_cost() < pair[1].hourly_cost());
        }
    }

    #[test]
    fn lookup_finds_known_flavours() {
        assert!(InstanceType::lookup("m1.small").is_some());
        assert!(InstanceType::lookup("m9.mega").is_none());
    }

    #[test]
    fn streamlined_vs_incubator_tradeoffs() {
        let baked = MachineImage::streamlined("a", ["topmodel"]);
        let generic = MachineImage::incubator("b");
        // Streamlined: slower boot, full-speed execution, no install.
        assert!(baked.boot_overhead() > generic.boot_overhead());
        assert!(baked.execution_penalty() < generic.execution_penalty());
        assert!(baked.install_time().is_zero());
        assert!(!generic.install_time().is_zero());
    }

    #[test]
    fn instance_id_display() {
        assert_eq!(InstanceId(255).to_string(), "i-000000ff");
    }

    #[test]
    #[should_panic(expected = "at least one vCPU")]
    fn zero_vcpu_rejected() {
        let _ = InstanceType::new("bad", 0, 1.0, 0.1);
    }
}
