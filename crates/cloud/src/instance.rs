//! Instances: lifecycle state, per-instance job execution and failures.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use evop_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

use crate::types::{InstanceId, InstanceType, MachineImage};

/// A unique job identifier, assigned by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct JobId(pub(crate) u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// What a job does on the instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobKind {
    /// A model run or other user computation.
    Run,
    /// Installing a model on an incubator instance.
    Install {
        /// The model being installed.
        model: String,
    },
}

/// Execution state of one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobState {
    /// Waiting for a free vCPU slot.
    Queued,
    /// Executing; will finish at the given instant unless the instance fails.
    Running {
        /// When execution started.
        started: SimTime,
        /// When execution will complete.
        finish_at: SimTime,
    },
    /// Finished successfully.
    Completed {
        /// When execution completed.
        finished: SimTime,
    },
    /// Lost to an instance failure or termination before completing.
    Lost {
        /// When the job was lost.
        at: SimTime,
    },
}

/// One unit of work submitted to an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Job {
    id: JobId,
    kind: JobKind,
    /// Pure compute time at full speed, before image penalties.
    work: SimDuration,
    submitted_at: SimTime,
    state: JobState,
}

impl Job {
    /// The job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Run or install.
    pub fn kind(&self) -> &JobKind {
        &self.kind
    }

    /// Nominal compute time at full speed.
    pub fn work(&self) -> SimDuration {
        self.work
    }

    /// When the job was submitted.
    pub fn submitted_at(&self) -> SimTime {
        self.submitted_at
    }

    /// Current execution state.
    pub fn state(&self) -> JobState {
        self.state
    }

    /// Sojourn time (submit → completion), if completed.
    pub fn latency(&self) -> Option<SimDuration> {
        match self.state {
            JobState::Completed { finished } => Some(finished.saturating_since(self.submitted_at)),
            _ => None,
        }
    }
}

/// How an instance fails. The modes produce the metric signatures the
/// paper's Load Balancer watches for (§IV-D): "sustained high CPU
/// utilisation or zero outbound network usage whilst receiving inbound
/// traffic".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FailureMode {
    /// The instance disappears entirely (host failure).
    Crash,
    /// The instance wedges at 100 % CPU and stops completing jobs.
    Hang,
    /// The instance keeps receiving traffic but sends nothing back.
    NetworkBlackhole,
}

impl fmt::Display for FailureMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FailureMode::Crash => "crash",
            FailureMode::Hang => "hang",
            FailureMode::NetworkBlackhole => "network blackhole",
        };
        f.write_str(s)
    }
}

/// Lifecycle state of an instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InstanceState {
    /// Booting; becomes running at the given instant.
    Pending {
        /// When boot completes.
        ready_at: SimTime,
    },
    /// Serving.
    Running,
    /// Cleanly terminated.
    Terminated {
        /// When it was terminated.
        at: SimTime,
    },
    /// Failed with the given mode. Failed instances still occupy capacity
    /// until terminated (as a hung VM does in a real cloud).
    Failed {
        /// When it failed.
        at: SimTime,
        /// How it failed.
        mode: FailureMode,
    },
}

/// A virtual machine instance.
#[derive(Debug, Clone)]
pub struct Instance {
    id: InstanceId,
    provider: String,
    itype: InstanceType,
    image: MachineImage,
    state: InstanceState,
    launched_at: SimTime,
    installed_models: BTreeSet<String>,
    jobs: Vec<Job>,
    queue: VecDeque<usize>,
    running: Vec<usize>,
}

impl Instance {
    pub(crate) fn new(
        id: InstanceId,
        provider: String,
        itype: InstanceType,
        image: MachineImage,
        launched_at: SimTime,
        ready_at: SimTime,
    ) -> Instance {
        let installed_models = match image.kind() {
            crate::types::ImageKind::Streamlined { models } => models.iter().cloned().collect(),
            crate::types::ImageKind::Incubator => BTreeSet::new(),
        };
        Instance {
            id,
            provider,
            itype,
            image,
            state: InstanceState::Pending { ready_at },
            launched_at,
            installed_models,
            jobs: Vec::new(),
            queue: VecDeque::new(),
            running: Vec::new(),
        }
    }

    /// The instance id.
    pub fn id(&self) -> InstanceId {
        self.id
    }

    /// The provider the instance runs on.
    pub fn provider(&self) -> &str {
        &self.provider
    }

    /// The instance flavour.
    pub fn instance_type(&self) -> &InstanceType {
        &self.itype
    }

    /// The machine image the instance booted from.
    pub fn image(&self) -> &MachineImage {
        &self.image
    }

    /// Current lifecycle state.
    pub fn state(&self) -> InstanceState {
        self.state
    }

    /// When the launch was requested.
    pub fn launched_at(&self) -> SimTime {
        self.launched_at
    }

    /// `true` once booted and not terminated/failed.
    pub fn is_running(&self) -> bool {
        matches!(self.state, InstanceState::Running)
    }

    /// `true` while the instance occupies provider capacity (anything except
    /// terminated).
    pub fn occupies_capacity(&self) -> bool {
        !matches!(self.state, InstanceState::Terminated { .. })
    }

    /// Models currently installed and runnable at full configuration.
    pub fn installed_models(&self) -> impl Iterator<Item = &str> {
        self.installed_models.iter().map(String::as_str)
    }

    /// `true` if `model` can run without an install step.
    pub fn has_model(&self, model: &str) -> bool {
        self.installed_models.contains(model)
    }

    /// All jobs ever submitted, in submission order.
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// A job by id, if it was submitted to this instance.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.iter().find(|j| j.id == id)
    }

    /// Number of jobs currently executing.
    pub fn running_jobs(&self) -> usize {
        self.running.len()
    }

    /// Number of jobs waiting for a slot.
    pub fn queued_jobs(&self) -> usize {
        self.queue.len()
    }

    /// Instantaneous CPU utilisation in `[0, 1]`. A hung instance is pegged
    /// at 1.0.
    pub fn cpu_utilisation(&self) -> f64 {
        match self.state {
            InstanceState::Failed { mode: FailureMode::Hang, .. } => 1.0,
            InstanceState::Terminated { .. }
            | InstanceState::Failed { mode: FailureMode::Crash, .. } => 0.0,
            _ => self.running.len() as f64 / f64::from(self.itype.vcpus()),
        }
    }

    // ------------------------------------------------------------------
    // Mutators driven by CloudSim. Each returns the set of (job, finish
    // time) pairs that newly started executing, for event scheduling.
    // ------------------------------------------------------------------

    pub(crate) fn mark_running(&mut self) {
        if matches!(self.state, InstanceState::Pending { .. }) {
            self.state = InstanceState::Running;
        }
    }

    /// Submits a job; starts it immediately if a slot is free.
    pub(crate) fn submit(
        &mut self,
        id: JobId,
        kind: JobKind,
        work: SimDuration,
        now: SimTime,
    ) -> Vec<(JobId, SimTime)> {
        let job = Job { id, kind, work, submitted_at: now, state: JobState::Queued };
        self.jobs.push(job);
        self.queue.push_back(self.jobs.len() - 1);
        self.start_queued(now)
    }

    /// Completes a running job (if it is still the one we scheduled), then
    /// starts any queued jobs that now fit.
    pub(crate) fn complete(&mut self, id: JobId, now: SimTime) -> Vec<(JobId, SimTime)> {
        let Some(idx) = self.jobs.iter().position(|j| j.id == id) else {
            return Vec::new();
        };
        let running = self.is_running();
        let Some(job) = self.jobs.get_mut(idx) else {
            return Vec::new();
        };
        let is_current =
            matches!(job.state, JobState::Running { finish_at, .. } if finish_at == now);
        if !is_current || !running {
            return Vec::new(); // stale event (failure intervened)
        }
        job.state = JobState::Completed { finished: now };
        if let JobKind::Install { model } = job.kind.clone() {
            self.installed_models.insert(model);
        }
        self.running.retain(|&r| r != idx);
        self.start_queued(now)
    }

    /// Starts queued jobs while slots are free. Only valid on a running
    /// instance; pending instances start their backlog on boot.
    pub(crate) fn start_queued(&mut self, now: SimTime) -> Vec<(JobId, SimTime)> {
        if !self.is_running() {
            return Vec::new();
        }
        let mut started = Vec::new();
        while self.running.len() < self.itype.vcpus() as usize {
            let Some(idx) = self.queue.pop_front() else { break };
            let penalty = self.image.execution_penalty();
            let Some(job) = self.jobs.get_mut(idx) else { continue };
            let duration = SimDuration::from_secs_f64(job.work.as_secs_f64() * penalty);
            let finish_at = now + duration;
            job.state = JobState::Running { started: now, finish_at };
            started.push((job.id, finish_at));
            self.running.push(idx);
        }
        started
    }

    /// Fails the instance: running and queued jobs are lost.
    pub(crate) fn fail(&mut self, mode: FailureMode, now: SimTime) {
        if !self.occupies_capacity() {
            return;
        }
        self.state = InstanceState::Failed { at: now, mode };
        if mode != FailureMode::NetworkBlackhole {
            // Blackholed instances keep computing; their results just never
            // arrive. Crash/hang lose in-flight work immediately.
            self.lose_in_flight(now);
        } else {
            // Results can't leave the instance: jobs complete internally but
            // callers never see them; model as lost too.
            self.lose_in_flight(now);
        }
    }

    /// Terminates the instance: in-flight jobs are lost, capacity released.
    pub(crate) fn terminate(&mut self, now: SimTime) {
        if matches!(self.state, InstanceState::Terminated { .. }) {
            return;
        }
        self.lose_in_flight(now);
        self.state = InstanceState::Terminated { at: now };
    }

    fn lose_in_flight(&mut self, now: SimTime) {
        for idx in self.running.drain(..) {
            if let Some(job) = self.jobs.get_mut(idx) {
                job.state = JobState::Lost { at: now };
            }
        }
        while let Some(idx) = self.queue.pop_front() {
            if let Some(job) = self.jobs.get_mut(idx) {
                job.state = JobState::Lost { at: now };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::MachineImage;

    fn instance(vcpus: u32) -> Instance {
        let itype = InstanceType::new("test", vcpus, 4.0, 0.1);
        let image = MachineImage::streamlined("img", ["topmodel"]);
        let mut inst = Instance::new(
            InstanceId(1),
            "campus".to_owned(),
            itype,
            image,
            SimTime::ZERO,
            SimTime::from_secs(45),
        );
        inst.mark_running();
        inst
    }

    #[test]
    fn submit_starts_when_slot_free() {
        let mut inst = instance(2);
        let started =
            inst.submit(JobId(1), JobKind::Run, SimDuration::from_secs(10), SimTime::ZERO);
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].1, SimTime::from_secs(10));
        assert_eq!(inst.running_jobs(), 1);
    }

    #[test]
    fn excess_jobs_queue_fifo() {
        let mut inst = instance(1);
        let now = SimTime::ZERO;
        inst.submit(JobId(1), JobKind::Run, SimDuration::from_secs(10), now);
        let started2 = inst.submit(JobId(2), JobKind::Run, SimDuration::from_secs(10), now);
        assert!(started2.is_empty());
        assert_eq!(inst.queued_jobs(), 1);

        let next = inst.complete(JobId(1), SimTime::from_secs(10));
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].0, JobId(2));
        assert_eq!(next[0].1, SimTime::from_secs(20));
    }

    #[test]
    fn stale_completion_is_ignored() {
        let mut inst = instance(1);
        inst.submit(JobId(1), JobKind::Run, SimDuration::from_secs(10), SimTime::ZERO);
        inst.fail(FailureMode::Crash, SimTime::from_secs(5));
        let started = inst.complete(JobId(1), SimTime::from_secs(10));
        assert!(started.is_empty());
        assert!(matches!(inst.job(JobId(1)).unwrap().state(), JobState::Lost { .. }));
    }

    #[test]
    fn install_job_registers_model() {
        let itype = InstanceType::new("test", 1, 4.0, 0.1);
        let mut inst = Instance::new(
            InstanceId(2),
            "campus".to_owned(),
            itype,
            MachineImage::incubator("inc"),
            SimTime::ZERO,
            SimTime::ZERO,
        );
        inst.mark_running();
        assert!(!inst.has_model("fuse"));
        inst.submit(
            JobId(1),
            JobKind::Install { model: "fuse".to_owned() },
            SimDuration::from_secs(90),
            SimTime::ZERO,
        );
        // Incubator penalty stretches the install.
        let finish = SimTime::from_secs_f64(90.0 * 1.35);
        inst.complete(JobId(1), finish);
        assert!(inst.has_model("fuse"));
    }

    #[test]
    fn cpu_utilisation_tracks_slots_and_failures() {
        let mut inst = instance(2);
        assert_eq!(inst.cpu_utilisation(), 0.0);
        inst.submit(JobId(1), JobKind::Run, SimDuration::from_secs(10), SimTime::ZERO);
        assert_eq!(inst.cpu_utilisation(), 0.5);
        inst.fail(FailureMode::Hang, SimTime::from_secs(1));
        assert_eq!(inst.cpu_utilisation(), 1.0);
    }

    #[test]
    fn terminate_releases_capacity_and_loses_jobs() {
        let mut inst = instance(1);
        inst.submit(JobId(1), JobKind::Run, SimDuration::from_secs(10), SimTime::ZERO);
        inst.submit(JobId(2), JobKind::Run, SimDuration::from_secs(10), SimTime::ZERO);
        inst.terminate(SimTime::from_secs(5));
        assert!(!inst.occupies_capacity());
        assert!(inst.jobs().iter().all(|j| matches!(j.state(), JobState::Lost { .. })));
    }

    #[test]
    fn latency_is_submit_to_finish() {
        let mut inst = instance(1);
        inst.submit(JobId(1), JobKind::Run, SimDuration::from_secs(10), SimTime::ZERO);
        inst.submit(JobId(2), JobKind::Run, SimDuration::from_secs(10), SimTime::ZERO);
        inst.complete(JobId(1), SimTime::from_secs(10));
        inst.complete(JobId(2), SimTime::from_secs(20));
        assert_eq!(inst.job(JobId(1)).unwrap().latency(), Some(SimDuration::from_secs(10)));
        assert_eq!(inst.job(JobId(2)).unwrap().latency(), Some(SimDuration::from_secs(20)));
    }

    #[test]
    fn pending_instance_defers_jobs_until_boot() {
        let itype = InstanceType::new("test", 1, 4.0, 0.1);
        let mut inst = Instance::new(
            InstanceId(3),
            "campus".to_owned(),
            itype,
            MachineImage::streamlined("img", ["m"]),
            SimTime::ZERO,
            SimTime::from_secs(45),
        );
        let started =
            inst.submit(JobId(1), JobKind::Run, SimDuration::from_secs(10), SimTime::ZERO);
        assert!(started.is_empty(), "job must wait for boot");
        inst.mark_running();
        let started = inst.start_queued(SimTime::from_secs(45));
        assert_eq!(started.len(), 1);
        assert_eq!(started[0].1, SimTime::from_secs(55));
    }
}
