//! Cloud providers: the capacity-bounded private cloud and the elastic
//! public cloud.

use evop_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Whether a provider is owned (private) or leased (public).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProviderKind {
    /// An owned, capacity-bounded cloud (the project's OpenStack deployment).
    Private,
    /// A leased, effectively unbounded pay-per-use cloud (the project's AWS
    /// account).
    Public,
}

/// A cloud provider the simulator can launch instances on.
///
/// # Examples
///
/// ```
/// use evop_cloud::{Provider, ProviderKind};
///
/// let campus = Provider::private_openstack("campus", 32);
/// assert_eq!(campus.kind(), ProviderKind::Private);
/// assert_eq!(campus.capacity_vcpus(), Some(32));
///
/// let aws = Provider::public_aws("aws-eu");
/// assert_eq!(aws.capacity_vcpus(), None); // effectively unbounded
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Provider {
    name: String,
    kind: ProviderKind,
    /// Total vCPUs available, or `None` for effectively unlimited.
    capacity_vcpus: Option<u32>,
    /// Base time from launch request to a running instance.
    boot_latency: SimDuration,
    /// Multiplier applied to flavour prices (private marginal cost is low;
    /// public list price is 1.0).
    price_factor: f64,
    /// Mean time between spontaneous instance failures.
    mtbf: SimDuration,
}

impl Provider {
    /// A private OpenStack-style cloud with `capacity_vcpus` total vCPUs.
    ///
    /// Boot is quick (local image cache) and the marginal cost of using
    /// already-owned hardware is low (power/amortisation, modelled at 20 % of
    /// list price).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_vcpus` is zero.
    pub fn private_openstack(name: impl Into<String>, capacity_vcpus: u32) -> Provider {
        assert!(capacity_vcpus > 0, "private cloud needs capacity");
        Provider {
            name: name.into(),
            kind: ProviderKind::Private,
            capacity_vcpus: Some(capacity_vcpus),
            boot_latency: SimDuration::from_secs(45),
            price_factor: 0.20,
            mtbf: SimDuration::from_secs(30 * 24 * 3600),
        }
    }

    /// A public AWS-style cloud: effectively unbounded capacity at list
    /// price, with a somewhat longer boot latency.
    pub fn public_aws(name: impl Into<String>) -> Provider {
        Provider {
            name: name.into(),
            kind: ProviderKind::Public,
            capacity_vcpus: None,
            boot_latency: SimDuration::from_secs(95),
            price_factor: 1.0,
            mtbf: SimDuration::from_secs(90 * 24 * 3600),
        }
    }

    /// The provider name used in launch calls.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Owned or leased.
    pub fn kind(&self) -> ProviderKind {
        self.kind
    }

    /// Total vCPU capacity, or `None` if effectively unbounded.
    pub fn capacity_vcpus(&self) -> Option<u32> {
        self.capacity_vcpus
    }

    /// Base time from launch request to running instance (before image
    /// overhead).
    pub fn boot_latency(&self) -> SimDuration {
        self.boot_latency
    }

    /// Multiplier applied to flavour list prices.
    pub fn price_factor(&self) -> f64 {
        self.price_factor
    }

    /// Mean time between spontaneous instance failures.
    pub fn mtbf(&self) -> SimDuration {
        self.mtbf
    }

    /// Overrides the boot latency (for experiments).
    pub fn with_boot_latency(mut self, latency: SimDuration) -> Provider {
        self.boot_latency = latency;
        self
    }

    /// Overrides the price factor (for experiments).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative.
    pub fn with_price_factor(mut self, factor: f64) -> Provider {
        assert!(factor >= 0.0, "price factor must be non-negative");
        self.price_factor = factor;
        self
    }

    /// Overrides the mean time between failures (for failure-injection
    /// experiments).
    pub fn with_mtbf(mut self, mtbf: SimDuration) -> Provider {
        self.mtbf = mtbf;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn private_is_cheaper_but_bounded() {
        let private = Provider::private_openstack("campus", 16);
        let public = Provider::public_aws("aws");
        assert!(private.price_factor() < public.price_factor());
        assert!(private.capacity_vcpus().is_some());
        assert!(public.capacity_vcpus().is_none());
    }

    #[test]
    fn public_boots_slower() {
        let private = Provider::private_openstack("campus", 16);
        let public = Provider::public_aws("aws");
        assert!(public.boot_latency() > private.boot_latency());
    }

    #[test]
    fn overrides_apply() {
        let p = Provider::public_aws("aws")
            .with_boot_latency(SimDuration::from_secs(10))
            .with_price_factor(2.0)
            .with_mtbf(SimDuration::from_secs(60));
        assert_eq!(p.boot_latency(), SimDuration::from_secs(10));
        assert_eq!(p.price_factor(), 2.0);
        assert_eq!(p.mtbf(), SimDuration::from_secs(60));
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn zero_capacity_private_rejected() {
        let _ = Provider::private_openstack("campus", 0);
    }
}
