//! The cloud simulator: launch, run, fail, bill.

use std::collections::BTreeMap;
use std::fmt;

use evop_obs::{MetricsRegistry, Span, TraceContext, Tracer};
use evop_sim::{Clock, EventQueue, SimDuration, SimRng, SimTime};

use crate::billing::CostMeter;
use crate::faults::{CloudOp, FaultInjector};
use crate::instance::{FailureMode, Instance, InstanceState, JobId, JobKind};
use crate::provider::Provider;
use crate::types::{ImageId, InstanceId, InstanceType, MachineImage};

/// Errors from cloud operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// The named provider is not registered.
    UnknownProvider(String),
    /// The named flavour is not in the catalogue.
    UnknownInstanceType(String),
    /// The image id is not registered.
    UnknownImage(ImageId),
    /// The instance id does not exist.
    UnknownInstance(InstanceId),
    /// The private provider has no room for the requested flavour.
    CapacityExceeded {
        /// The saturated provider.
        provider: String,
        /// vCPUs requested.
        requested: u32,
        /// vCPUs still free.
        free: u32,
    },
    /// The instance is not in a state that allows the operation.
    NotRunning(InstanceId),
    /// The provider's control-plane API refused the call transiently — a
    /// chaos-injected error burst or partition. Unlike the other variants
    /// this is not the caller's fault: retrying after `retry_after` is the
    /// correct response, and the cross-cloud layer's `RetryPolicy` does
    /// exactly that.
    ApiUnavailable {
        /// The unreachable provider.
        provider: String,
        /// The injected cause (e.g. `"api-error-burst"`).
        reason: String,
        /// How long to wait before retrying.
        retry_after: SimDuration,
    },
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::UnknownProvider(p) => write!(f, "unknown provider: {p}"),
            CloudError::UnknownInstanceType(t) => write!(f, "unknown instance type: {t}"),
            CloudError::UnknownImage(i) => write!(f, "unknown image: {i}"),
            CloudError::UnknownInstance(i) => write!(f, "unknown instance: {i}"),
            CloudError::CapacityExceeded { provider, requested, free } => {
                write!(
                    f,
                    "capacity exceeded on {provider}: requested {requested} vCPUs, {free} free"
                )
            }
            CloudError::NotRunning(i) => write!(f, "instance not running: {i}"),
            CloudError::ApiUnavailable { provider, reason, retry_after } => {
                write!(
                    f,
                    "provider API unavailable on {provider} ({reason}); retry after {retry_after}"
                )
            }
        }
    }
}

impl std::error::Error for CloudError {}

/// A point-in-time health sample for one instance — what the paper's Load
/// Balancer "observes: CPU utilisation, disk reads and writes, and network
/// usage" (§IV-D).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceMetrics {
    /// CPU utilisation in `[0, 1]`.
    pub cpu: f64,
    /// Inbound traffic, kbit/s.
    pub net_in_kbps: f64,
    /// Outbound traffic, kbit/s.
    pub net_out_kbps: f64,
    /// Disk operations per second.
    pub disk_iops: f64,
}

#[derive(Debug)]
enum Event {
    BootComplete(InstanceId),
    JobDone(InstanceId, JobId),
    SpontaneousFailure(InstanceId),
    /// A chaos-scheduled failure with a mode chosen by the injector (the
    /// mode travels with the event so delivery never touches the sim RNG).
    InjectedFailure(InstanceId, FailureMode),
}

/// The deterministic hybrid-cloud simulator.
///
/// Single-threaded and event-driven: callers interleave control actions
/// ([`CloudSim::launch`], [`CloudSim::run_model`], …) with time advancement
/// ([`CloudSim::advance`]), and the simulator delivers boot completions, job
/// completions and failures in virtual-time order.
#[derive(Debug)]
pub struct CloudSim {
    clock: Clock,
    rng: SimRng,
    providers: BTreeMap<String, Provider>,
    images: BTreeMap<ImageId, MachineImage>,
    instances: BTreeMap<InstanceId, Instance>,
    events: EventQueue<Event>,
    /// Reusable buffer for whole-tick batch drains in [`CloudSim::advance_to`]
    /// — allocated once, recycled across ticks.
    drain_buf: Vec<(SimTime, Event)>,
    next_instance: u64,
    next_job: u64,
    meter: CostMeter,
    random_failures: bool,
    /// The chaos plane, when attached. Consulted before guarded API calls
    /// and at launch time; a `None` (or benign) injector leaves the
    /// simulation byte-identical to an uninstrumented run.
    faults: Option<Box<dyn FaultInjector>>,
    /// Observability hooks. Pure observation: attaching them never touches
    /// the RNG or the event queue, so simulation results are unchanged.
    tracer: Option<Tracer>,
    registry: Option<MetricsRegistry>,
    boot_spans: BTreeMap<InstanceId, Span>,
    job_spans: BTreeMap<JobId, Span>,
    launch_ctx: Option<TraceContext>,
}

impl CloudSim {
    /// Creates a simulator with the given RNG seed.
    pub fn new(seed: u64) -> CloudSim {
        CloudSim {
            clock: Clock::new(),
            rng: SimRng::new(seed).fork("cloud"),
            providers: BTreeMap::new(),
            images: BTreeMap::new(),
            instances: BTreeMap::new(),
            events: EventQueue::new(),
            drain_buf: Vec::new(),
            next_instance: 0,
            next_job: 0,
            meter: CostMeter::new(),
            random_failures: false,
            faults: None,
            tracer: None,
            registry: None,
            boot_spans: BTreeMap::new(),
            job_spans: BTreeMap::new(),
            launch_ctx: None,
        }
    }

    /// Registers a provider. Re-registering a name replaces it.
    pub fn register_provider(&mut self, provider: Provider) {
        self.providers.insert(provider.name().to_owned(), provider);
    }

    /// Attaches shared observability handles: boot and model-run spans go to
    /// `tracer`, state-transition counters and billing gauges to `registry`.
    pub fn set_observability(&mut self, tracer: Tracer, registry: MetricsRegistry) {
        self.tracer = Some(tracer);
        self.registry = Some(registry);
    }

    /// Sets the ambient trace context adopted by the next successful
    /// [`CloudSim::launch`]. This lets intermediaries that cannot carry a
    /// context through their signatures (the cross-cloud placement service)
    /// still parent the boot span under the request that caused the launch.
    pub fn set_launch_context(&mut self, ctx: Option<TraceContext>) {
        self.launch_ctx = ctx;
    }

    fn count_transition(&self, to: &str) {
        if let Some(reg) = &self.registry {
            reg.inc_counter("cloud_state_transitions_total", &[("to", to)]);
        }
    }

    /// Registers a machine image. Re-registering an id replaces it.
    pub fn register_image(&mut self, image: MachineImage) {
        self.images.insert(image.id().clone(), image);
    }

    /// Enables spontaneous failures drawn from each provider's MTBF.
    pub fn enable_random_failures(&mut self, on: bool) {
        self.random_failures = on;
    }

    /// Attaches a fault-injection plane (see [`FaultInjector`]). Replaces
    /// any previously attached injector; `set_fault_injector(None)` turns
    /// chaos off again.
    pub fn set_fault_injector(&mut self, injector: Option<Box<dyn FaultInjector>>) {
        self.faults = injector;
    }

    /// Consults the attached fault plane before a guarded API call.
    fn check_api_fault(&mut self, provider: &str, op: CloudOp) -> Result<(), CloudError> {
        let now = self.clock.now();
        if let Some(faults) = &mut self.faults {
            if let Some(fault) = faults.api_fault(now, provider, op) {
                return Err(CloudError::ApiUnavailable {
                    provider: provider.to_owned(),
                    reason: fault.reason,
                    retry_after: fault.retry_after,
                });
            }
        }
        Ok(())
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// A registered provider by name.
    pub fn provider(&self, name: &str) -> Option<&Provider> {
        self.providers.get(name)
    }

    /// A registered image by id.
    pub fn image(&self, id: &ImageId) -> Option<&MachineImage> {
        self.images.get(id)
    }

    /// vCPUs currently committed on a provider (running, booting, and failed
    /// but untermianted instances all hold capacity).
    pub fn used_vcpus(&self, provider: &str) -> u32 {
        self.instances
            .values()
            .filter(|i| i.provider() == provider && i.occupies_capacity())
            .map(|i| i.instance_type().vcpus())
            .sum()
    }

    /// vCPUs still free on a provider, or `None` if the provider is
    /// unbounded.
    pub fn free_vcpus(&self, provider: &str) -> Option<u32> {
        let p = self.providers.get(provider)?;
        p.capacity_vcpus().map(|cap| cap.saturating_sub(self.used_vcpus(provider)))
    }

    /// Requests a new instance.
    ///
    /// The instance starts `Pending` and becomes `Running` after the
    /// provider's boot latency plus the image's boot overhead (±15 % jitter).
    /// Billing starts immediately.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::CapacityExceeded`] when a capacity-bounded
    /// provider cannot fit the flavour, and `Unknown*` errors for bad names.
    pub fn launch(
        &mut self,
        provider: &str,
        instance_type: &str,
        image: &ImageId,
    ) -> Result<InstanceId, CloudError> {
        let ctx = self.launch_ctx;
        let id = self.launch_traced(provider, instance_type, image, ctx.as_ref())?;
        self.launch_ctx = None; // consumed only by a successful launch
        Ok(id)
    }

    /// [`CloudSim::launch`] joined to a caller's trace context.
    ///
    /// When a tracer is attached, the boot is recorded as an
    /// `instance.boot {id}` span — opened now, finished when the
    /// `BootComplete` event fires (or the instance dies first) — so boot
    /// latency appears on the request timeline that caused the launch.
    ///
    /// # Errors
    ///
    /// As for [`CloudSim::launch`].
    pub fn launch_traced(
        &mut self,
        provider: &str,
        instance_type: &str,
        image: &ImageId,
        ctx: Option<&TraceContext>,
    ) -> Result<InstanceId, CloudError> {
        let id = self.launch_inner(provider, instance_type, image)?;
        if let Some(tracer) = &self.tracer {
            let name = format!("instance.boot {id}");
            let span = match ctx {
                Some(ctx) => tracer.start_span(name, ctx),
                None => tracer.start_trace(name),
            };
            span.attr("provider", provider);
            span.attr("type", instance_type);
            self.boot_spans.insert(id, span);
        }
        if let Some(reg) = &self.registry {
            reg.inc_counter("cloud_launches_total", &[("provider", provider)]);
        }
        self.count_transition("pending");
        Ok(id)
    }

    fn launch_inner(
        &mut self,
        provider: &str,
        instance_type: &str,
        image: &ImageId,
    ) -> Result<InstanceId, CloudError> {
        let prov = self
            .providers
            .get(provider)
            .ok_or_else(|| CloudError::UnknownProvider(provider.to_owned()))?
            .clone();
        let itype = InstanceType::lookup(instance_type)
            .ok_or_else(|| CloudError::UnknownInstanceType(instance_type.to_owned()))?;
        let img =
            self.images.get(image).ok_or_else(|| CloudError::UnknownImage(image.clone()))?.clone();
        self.check_api_fault(provider, CloudOp::Launch)?;

        if let Some(cap) = prov.capacity_vcpus() {
            let free = cap.saturating_sub(self.used_vcpus(provider));
            if itype.vcpus() > free {
                return Err(CloudError::CapacityExceeded {
                    provider: provider.to_owned(),
                    requested: itype.vcpus(),
                    free,
                });
            }
        }

        let id = InstanceId(self.next_instance);
        self.next_instance += 1;
        let now = self.clock.now();
        let jitter = self.rng.uniform_in(0.85, 1.15);
        // Straggler injection stretches the boot; doomed boots fail at the
        // instant the boot would have completed. Both come from the chaos
        // plane's own RNG stream, so the sim's stream is untouched.
        let (straggle, doomed) = match &mut self.faults {
            Some(faults) => (faults.boot_factor(now, provider), faults.boot_failure(now, provider)),
            None => (1.0, None),
        };
        let boot = SimDuration::from_secs_f64(
            (prov.boot_latency() + img.boot_overhead()).as_secs_f64() * jitter * straggle.max(0.0),
        );
        let ready_at = now + boot;
        let hourly = itype.hourly_cost() * prov.price_factor();
        self.meter.open(id.0, provider, hourly, now);
        self.instances
            .insert(id, Instance::new(id, provider.to_owned(), itype, img, now, ready_at));
        if let Some(mode) = doomed {
            // Pushed before BootComplete at the same instant: the instance
            // dies still Pending, so its boot never completes.
            self.events.push(ready_at, Event::InjectedFailure(id, mode));
        }
        self.events.push(ready_at, Event::BootComplete(id));
        if self.random_failures {
            let ttf = SimDuration::from_secs_f64(self.rng.exponential(prov.mtbf().as_secs_f64()));
            self.events.push(now + ttf, Event::SpontaneousFailure(id));
        }
        Ok(id)
    }

    /// Terminates an instance, releasing capacity and stopping billing.
    /// In-flight jobs are lost.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::UnknownInstance`] for a bad id.
    pub fn terminate(&mut self, id: InstanceId) -> Result<(), CloudError> {
        let now = self.clock.now();
        let inst = self.instances.get_mut(&id).ok_or(CloudError::UnknownInstance(id))?;
        inst.terminate(now);
        self.meter.close(id.0, now);
        if let Some(span) = self.boot_spans.remove(&id) {
            span.event("terminated before boot completed");
            span.finish();
        }
        self.count_transition("terminated");
        Ok(())
    }

    /// Injects a failure into an instance (for recovery experiments).
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::UnknownInstance`] for a bad id.
    pub fn inject_failure(&mut self, id: InstanceId, mode: FailureMode) -> Result<(), CloudError> {
        let now = self.clock.now();
        let inst = self.instances.get_mut(&id).ok_or(CloudError::UnknownInstance(id))?;
        inst.fail(mode, now);
        if let Some(span) = self.boot_spans.remove(&id) {
            span.event("failed before boot completed");
            span.finish();
        }
        self.count_transition("failed");
        Ok(())
    }

    /// Submits raw computation of `work` duration to an instance. The job
    /// queues if all vCPU slots are busy, and waits for boot on a pending
    /// instance.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::NotRunning`] if the instance is terminated or
    /// failed.
    pub fn submit_job(&mut self, id: InstanceId, work: SimDuration) -> Result<JobId, CloudError> {
        self.submit(id, JobKind::Run, work)
    }

    /// Runs `model` on an instance, automatically scheduling an install step
    /// first when the image does not provide the model (the incubator path
    /// of paper §IV-D). Returns the id of the *run* job.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::NotRunning`] if the instance is terminated or
    /// failed.
    pub fn run_model(
        &mut self,
        id: InstanceId,
        model: &str,
        work: SimDuration,
    ) -> Result<JobId, CloudError> {
        self.run_model_traced(id, model, work, None)
    }

    /// [`CloudSim::run_model`] joined to a caller's trace context.
    ///
    /// When a tracer is attached, the run is recorded as a
    /// `model.run {model}` span — opened now, finished when the job's
    /// `JobDone` event fires — capturing queueing, boot wait and any
    /// install step in its duration.
    ///
    /// # Errors
    ///
    /// As for [`CloudSim::run_model`].
    pub fn run_model_traced(
        &mut self,
        id: InstanceId,
        model: &str,
        work: SimDuration,
        ctx: Option<&TraceContext>,
    ) -> Result<JobId, CloudError> {
        let job = self.run_model_inner(id, model, work)?;
        if let Some(tracer) = &self.tracer {
            let name = format!("model.run {model}");
            let span = match ctx {
                Some(ctx) => tracer.start_span(name, ctx),
                None => tracer.start_trace(name),
            };
            span.attr("instance", id.to_string());
            span.attr("model", model);
            self.job_spans.insert(job, span);
        }
        Ok(job)
    }

    fn run_model_inner(
        &mut self,
        id: InstanceId,
        model: &str,
        work: SimDuration,
    ) -> Result<JobId, CloudError> {
        let (needs_install, install_time) = {
            let inst = self.instances.get(&id).ok_or(CloudError::UnknownInstance(id))?;
            let needs = !inst.has_model(model)
                && !inst
                    .jobs()
                    .iter()
                    .any(|j| matches!(j.kind(), JobKind::Install { model: m } if m == model));
            (needs, inst.image().install_time())
        };
        if needs_install {
            self.submit(id, JobKind::Install { model: model.to_owned() }, install_time)?;
        }
        self.submit(id, JobKind::Run, work)
    }

    fn submit(
        &mut self,
        id: InstanceId,
        kind: JobKind,
        work: SimDuration,
    ) -> Result<JobId, CloudError> {
        let provider =
            self.instances.get(&id).ok_or(CloudError::UnknownInstance(id))?.provider().to_owned();
        self.check_api_fault(&provider, CloudOp::SubmitJob)?;
        let now = self.clock.now();
        let inst = self.instances.get_mut(&id).ok_or(CloudError::UnknownInstance(id))?;
        match inst.state() {
            InstanceState::Terminated { .. } | InstanceState::Failed { .. } => {
                return Err(CloudError::NotRunning(id));
            }
            InstanceState::Pending { .. } | InstanceState::Running => {}
        }
        let job_id = JobId(self.next_job);
        self.next_job += 1;
        let started = inst.submit(job_id, kind, work, now);
        for (jid, finish) in started {
            self.events.push(finish, Event::JobDone(id, jid));
        }
        Ok(job_id)
    }

    /// Advances virtual time by `delta`, delivering all due events.
    pub fn advance(&mut self, delta: SimDuration) {
        let target = self.clock.now() + delta;
        self.advance_to(target);
    }

    /// Advances virtual time to `target`, delivering all due events.
    ///
    /// Delivery is batched per tick: the kernel drains every event of the
    /// earliest due instant in one [`EventQueue::pop_batch_due`] call, the
    /// clock and tracer advance once per tick instead of once per event,
    /// and handlers run in the exact order the per-event loop used —
    /// events a handler schedules *at the drained tick* pick up a larger
    /// sequence number, so they land in the next batch of the same tick,
    /// which is precisely where the per-event loop would deliver them.
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the past.
    pub fn advance_to(&mut self, target: SimTime) {
        let mut batch = std::mem::take(&mut self.drain_buf);
        loop {
            batch.clear();
            if self.events.pop_batch_due(target, &mut batch) == 0 {
                break;
            }
            if let Some(&(t, _)) = batch.first() {
                self.clock.advance_to(t);
                if let Some(tracer) = &self.tracer {
                    tracer.set_now(t);
                }
            }
            for (_, event) in batch.drain(..) {
                self.handle(event);
            }
        }
        self.drain_buf = batch;
        self.clock.advance_to(target);
        self.refresh_observability();
    }

    /// Pushes the virtual clock into the tracer and the current billing
    /// totals into per-provider gauges.
    fn refresh_observability(&mut self) {
        let now = self.clock.now();
        if let Some(tracer) = &self.tracer {
            tracer.set_now(now);
        }
        if let Some(reg) = &self.registry {
            for (provider, cost) in self.meter.cost_by_provider(now) {
                reg.set_gauge("cloud_cost_total", &[("provider", &provider)], cost);
            }
            // Kernel hot-path gauges: what the perf plane reads to turn
            // wall time into events/sec and batching statistics.
            let c = self.events.counters();
            reg.set_gauge("sim_events_scheduled_total", &[], c.scheduled as f64);
            reg.set_gauge("sim_events_delivered_total", &[], c.delivered as f64);
            reg.set_gauge("sim_events_cancelled_total", &[], c.cancelled as f64);
            reg.set_gauge("sim_queue_depth_high_water", &[], c.depth_high_water as f64);
            reg.set_gauge("sim_max_same_tick_batch", &[], c.max_same_tick_batch as f64);
        }
    }

    /// The event queue's hot-path counters (events scheduled / delivered /
    /// cancelled, depth high-water mark, largest same-tick batch).
    pub fn kernel_counters(&self) -> evop_sim::KernelCounters {
        self.events.counters()
    }

    /// The time of the next pending event, if any — for drivers that want to
    /// step event-by-event.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    fn handle(&mut self, event: Event) {
        let now = self.clock.now();
        match event {
            Event::BootComplete(id) => {
                if let Some(inst) = self.instances.get_mut(&id) {
                    if matches!(inst.state(), InstanceState::Pending { .. }) {
                        inst.mark_running();
                        let provider = inst.provider().to_owned();
                        let boot = now.saturating_since(inst.launched_at());
                        for (jid, finish) in inst.start_queued(now) {
                            self.events.push(finish, Event::JobDone(id, jid));
                        }
                        if let Some(span) = self.boot_spans.remove(&id) {
                            span.finish();
                        }
                        if let Some(reg) = &self.registry {
                            reg.observe(
                                "cloud_boot_seconds",
                                &[("provider", &provider)],
                                boot.as_secs_f64(),
                            );
                        }
                        self.count_transition("running");
                    }
                }
            }
            Event::JobDone(id, jid) => {
                if let Some(inst) = self.instances.get_mut(&id) {
                    for (next_jid, finish) in inst.complete(jid, now) {
                        self.events.push(finish, Event::JobDone(id, next_jid));
                    }
                    let latency = inst.job(jid).and_then(|j| j.latency());
                    if let Some(span) = self.job_spans.remove(&jid) {
                        span.finish();
                    }
                    if let Some(reg) = &self.registry {
                        reg.inc_counter("cloud_jobs_completed_total", &[]);
                        if let Some(latency) = latency {
                            reg.observe("cloud_job_latency_seconds", &[], latency.as_secs_f64());
                        }
                    }
                }
            }
            Event::SpontaneousFailure(id) => {
                if let Some(inst) = self.instances.get_mut(&id) {
                    if inst.is_running() || matches!(inst.state(), InstanceState::Pending { .. }) {
                        let mode = match self.rng.index(3) {
                            0 => FailureMode::Crash,
                            1 => FailureMode::Hang,
                            _ => FailureMode::NetworkBlackhole,
                        };
                        inst.fail(mode, now);
                        if let Some(span) = self.boot_spans.remove(&id) {
                            span.event("failed before boot completed");
                            span.finish();
                        }
                        self.count_transition("failed");
                    }
                }
            }
            Event::InjectedFailure(id, mode) => {
                if let Some(inst) = self.instances.get_mut(&id) {
                    if inst.is_running() || matches!(inst.state(), InstanceState::Pending { .. }) {
                        inst.fail(mode, now);
                        if let Some(span) = self.boot_spans.remove(&id) {
                            span.event("failed before boot completed");
                            span.finish();
                        }
                        self.count_transition("failed");
                    }
                }
            }
        }
    }

    /// An instance by id.
    pub fn instance(&self, id: InstanceId) -> Option<&Instance> {
        self.instances.get(&id)
    }

    /// All instances ever launched, in launch order.
    pub fn instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values()
    }

    /// Instances currently in the `Running` state.
    pub fn running_instances(&self) -> impl Iterator<Item = &Instance> {
        self.instances.values().filter(|i| i.is_running())
    }

    /// A point-in-time health sample for an instance.
    ///
    /// The failure signatures match the paper: a hang shows sustained 100 %
    /// CPU; a network blackhole shows inbound traffic with zero outbound.
    ///
    /// # Errors
    ///
    /// Returns [`CloudError::UnknownInstance`] for a bad id.
    pub fn metrics(&self, id: InstanceId) -> Result<InstanceMetrics, CloudError> {
        let inst = self.instances.get(&id).ok_or(CloudError::UnknownInstance(id))?;
        let active = (inst.running_jobs() + inst.queued_jobs()) as f64;
        let (net_in, net_out, disk) = match inst.state() {
            InstanceState::Terminated { .. } => (0.0, 0.0, 0.0),
            InstanceState::Failed { mode, .. } => match mode {
                FailureMode::Crash => (0.0, 0.0, 0.0),
                // Hung and blackholed instances keep receiving requests but
                // emit nothing.
                FailureMode::Hang | FailureMode::NetworkBlackhole => {
                    (8.0 + 120.0 * active, 0.0, 0.0)
                }
            },
            InstanceState::Pending { .. } => (4.0, 4.0, 10.0),
            InstanceState::Running => (
                8.0 + 120.0 * active,
                8.0 + 100.0 * inst.running_jobs() as f64,
                30.0 * inst.running_jobs() as f64,
            ),
        };
        Ok(InstanceMetrics {
            cpu: inst.cpu_utilisation(),
            net_in_kbps: net_in,
            net_out_kbps: net_out,
            disk_iops: disk,
        })
    }

    /// Total accumulated cost at the current time.
    pub fn total_cost(&self) -> f64 {
        self.meter.total_cost(self.clock.now())
    }

    /// Accumulated cost per provider at the current time.
    pub fn cost_by_provider(&self) -> BTreeMap<String, f64> {
        self.meter.cost_by_provider(self.clock.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::JobState;
    use crate::provider::ProviderKind;

    fn sim_with_defaults() -> (CloudSim, ImageId) {
        let mut sim = CloudSim::new(42);
        sim.register_provider(Provider::private_openstack("campus", 8));
        sim.register_provider(Provider::public_aws("aws"));
        let image = MachineImage::streamlined("topmodel-eden", ["topmodel"]);
        let id = image.id().clone();
        sim.register_image(image);
        sim.register_image(MachineImage::incubator("incubator"));
        (sim, id)
    }

    #[test]
    fn launch_boots_after_latency() {
        let (mut sim, img) = sim_with_defaults();
        let id = sim.launch("campus", "m1.medium", &img).unwrap();
        assert!(matches!(sim.instance(id).unwrap().state(), InstanceState::Pending { .. }));
        sim.advance(SimDuration::from_secs(150));
        assert!(sim.instance(id).unwrap().is_running());
    }

    #[test]
    fn private_capacity_is_enforced() {
        let (mut sim, img) = sim_with_defaults();
        // campus has 8 vCPUs; m1.large is 4.
        sim.launch("campus", "m1.large", &img).unwrap();
        sim.launch("campus", "m1.large", &img).unwrap();
        let err = sim.launch("campus", "m1.small", &img).unwrap_err();
        assert!(matches!(err, CloudError::CapacityExceeded { free: 0, .. }));
        // Public cloud absorbs the overflow.
        assert!(sim.launch("aws", "m1.small", &img).is_ok());
    }

    #[test]
    fn terminate_frees_capacity() {
        let (mut sim, img) = sim_with_defaults();
        let a = sim.launch("campus", "m1.xlarge", &img).unwrap();
        assert_eq!(sim.free_vcpus("campus"), Some(0));
        sim.terminate(a).unwrap();
        assert_eq!(sim.free_vcpus("campus"), Some(8));
    }

    #[test]
    fn job_on_pending_instance_runs_after_boot() {
        let (mut sim, img) = sim_with_defaults();
        let id = sim.launch("campus", "m1.small", &img).unwrap();
        let job = sim.submit_job(id, SimDuration::from_secs(60)).unwrap();
        sim.advance(SimDuration::from_secs(400));
        let j = sim.instance(id).unwrap().job(job).unwrap();
        assert!(matches!(j.state(), JobState::Completed { .. }));
        // Latency includes the boot wait: strictly more than the work alone.
        assert!(j.latency().unwrap() > SimDuration::from_secs(60));
    }

    #[test]
    fn streamlined_run_needs_no_install() {
        let (mut sim, img) = sim_with_defaults();
        let id = sim.launch("campus", "m1.small", &img).unwrap();
        sim.advance(SimDuration::from_secs(200));
        sim.run_model(id, "topmodel", SimDuration::from_secs(30)).unwrap();
        let inst = sim.instance(id).unwrap();
        assert_eq!(inst.jobs().len(), 1, "no install job expected");
    }

    #[test]
    fn incubator_run_installs_once_then_reuses() {
        let (mut sim, _) = sim_with_defaults();
        let inc = ImageId::new("incubator");
        let id = sim.launch("campus", "m1.small", &inc).unwrap();
        sim.advance(SimDuration::from_secs(100));
        sim.run_model(id, "fuse", SimDuration::from_secs(30)).unwrap();
        sim.run_model(id, "fuse", SimDuration::from_secs(30)).unwrap();
        let installs = sim
            .instance(id)
            .unwrap()
            .jobs()
            .iter()
            .filter(|j| matches!(j.kind(), JobKind::Install { .. }))
            .count();
        assert_eq!(installs, 1);
        sim.advance(SimDuration::from_secs(1000));
        assert!(sim.instance(id).unwrap().has_model("fuse"));
    }

    #[test]
    fn incubator_is_slower_end_to_end_than_streamlined() {
        let (mut sim, baked) = sim_with_defaults();
        let inc = ImageId::new("incubator");
        let a = sim.launch("campus", "m1.small", &baked).unwrap();
        let b = sim.launch("campus", "m1.small", &inc).unwrap();
        // Wait until both are running so boot differences don't dominate.
        sim.advance(SimDuration::from_secs(300));
        let ja = sim.run_model(a, "topmodel", SimDuration::from_secs(60)).unwrap();
        let jb = sim.run_model(b, "topmodel", SimDuration::from_secs(60)).unwrap();
        sim.advance(SimDuration::from_secs(2000));
        let la = sim.instance(a).unwrap().job(ja).unwrap().latency().unwrap();
        let lb = sim.instance(b).unwrap().job(jb).unwrap().latency().unwrap();
        assert!(lb > la, "incubator {lb} should be slower than streamlined {la}");
    }

    #[test]
    fn hang_shows_pegged_cpu_and_zero_outbound() {
        let (mut sim, img) = sim_with_defaults();
        let id = sim.launch("campus", "m1.small", &img).unwrap();
        sim.advance(SimDuration::from_secs(200));
        sim.submit_job(id, SimDuration::from_secs(600)).unwrap();
        sim.inject_failure(id, FailureMode::Hang).unwrap();
        let m = sim.metrics(id).unwrap();
        assert_eq!(m.cpu, 1.0);
        assert_eq!(m.net_out_kbps, 0.0);
    }

    #[test]
    fn blackhole_shows_inbound_without_outbound() {
        let (mut sim, img) = sim_with_defaults();
        let id = sim.launch("campus", "m1.small", &img).unwrap();
        sim.advance(SimDuration::from_secs(200));
        sim.submit_job(id, SimDuration::from_secs(600)).unwrap();
        sim.inject_failure(id, FailureMode::NetworkBlackhole).unwrap();
        sim.submit_job(id, SimDuration::from_secs(10)).unwrap_err();
        let m = sim.metrics(id).unwrap();
        assert!(m.net_in_kbps > 0.0);
        assert_eq!(m.net_out_kbps, 0.0);
    }

    #[test]
    fn failed_instance_holds_capacity_until_terminated() {
        let (mut sim, img) = sim_with_defaults();
        let id = sim.launch("campus", "m1.xlarge", &img).unwrap();
        sim.advance(SimDuration::from_secs(200));
        sim.inject_failure(id, FailureMode::Crash).unwrap();
        assert_eq!(sim.free_vcpus("campus"), Some(0));
        sim.terminate(id).unwrap();
        assert_eq!(sim.free_vcpus("campus"), Some(8));
    }

    #[test]
    fn billing_prefers_private() {
        let (mut sim, img) = sim_with_defaults();
        let a = sim.launch("campus", "m1.medium", &img).unwrap();
        let b = sim.launch("aws", "m1.medium", &img).unwrap();
        sim.advance(SimDuration::from_secs(3600));
        let by = sim.cost_by_provider();
        assert!(
            by["campus"] < by["aws"],
            "private {:.3} must be cheaper than public {:.3}",
            by["campus"],
            by["aws"]
        );
        assert!((sim.total_cost() - (by["campus"] + by["aws"])).abs() < 1e-9);
        sim.terminate(a).unwrap();
        sim.terminate(b).unwrap();
    }

    #[test]
    fn contention_serialises_jobs_on_one_vcpu() {
        let (mut sim, img) = sim_with_defaults();
        let id = sim.launch("campus", "m1.small", &img).unwrap();
        sim.advance(SimDuration::from_secs(300));
        let start = sim.now();
        let j1 = sim.submit_job(id, SimDuration::from_secs(100)).unwrap();
        let j2 = sim.submit_job(id, SimDuration::from_secs(100)).unwrap();
        sim.advance(SimDuration::from_secs(500));
        let inst = sim.instance(id).unwrap();
        let f1 = match inst.job(j1).unwrap().state() {
            JobState::Completed { finished } => finished,
            s => panic!("job1 not complete: {s:?}"),
        };
        let f2 = match inst.job(j2).unwrap().state() {
            JobState::Completed { finished } => finished,
            s => panic!("job2 not complete: {s:?}"),
        };
        assert_eq!(f1.saturating_since(start), SimDuration::from_secs(100));
        assert_eq!(f2.saturating_since(start), SimDuration::from_secs(200));
    }

    #[test]
    fn random_failures_eventually_fire() {
        let mut sim = CloudSim::new(1);
        sim.register_provider(
            Provider::private_openstack("campus", 64).with_mtbf(SimDuration::from_secs(600)),
        );
        let image = MachineImage::streamlined("img", ["m"]);
        let img = image.id().clone();
        sim.register_image(image);
        sim.enable_random_failures(true);
        let mut ids = Vec::new();
        for _ in 0..16 {
            ids.push(sim.launch("campus", "m1.small", &img).unwrap());
        }
        sim.advance(SimDuration::from_secs(3600));
        let failed = ids
            .iter()
            .filter(|&&id| {
                matches!(sim.instance(id).unwrap().state(), InstanceState::Failed { .. })
            })
            .count();
        assert!(failed > 0, "with 600s MTBF over an hour, some of 16 instances must fail");
    }

    #[test]
    fn boot_and_job_spans_land_on_the_caller_trace() {
        let (mut sim, img) = sim_with_defaults();
        let tracer = Tracer::new();
        let metrics = MetricsRegistry::new();
        sim.set_observability(tracer.clone(), metrics.clone());

        let root = tracer.start_trace("request");
        let ctx = root.context();
        let id = sim.launch_traced("campus", "m1.small", &img, Some(&ctx)).unwrap();
        sim.advance(SimDuration::from_secs(200));
        sim.run_model_traced(id, "topmodel", SimDuration::from_secs(60), Some(&ctx)).unwrap();
        sim.advance(SimDuration::from_secs(600));
        root.finish();

        let spans = tracer.finished();
        let boot = spans.iter().find(|s| s.name.starts_with("instance.boot")).unwrap();
        assert_eq!(boot.trace_id, ctx.trace_id);
        assert_eq!(boot.parent, Some(ctx.span_id));
        assert!(boot.end.is_some(), "boot span closed by BootComplete");
        assert!(boot.duration().as_secs_f64() > 0.0);
        let run = spans.iter().find(|s| s.name == "model.run topmodel").unwrap();
        assert_eq!(run.trace_id, ctx.trace_id);
        assert_eq!(run.duration(), SimDuration::from_secs(60));

        assert_eq!(metrics.counter("cloud_state_transitions_total", &[("to", "pending")]), 1);
        assert_eq!(metrics.counter("cloud_state_transitions_total", &[("to", "running")]), 1);
        assert_eq!(metrics.counter("cloud_jobs_completed_total", &[]), 1);
        assert_eq!(metrics.observations("cloud_job_latency_seconds", &[]), 1);
        assert!(metrics.gauge("cloud_cost_total", &[("provider", "campus")]).unwrap() > 0.0);
    }

    #[test]
    fn observability_does_not_perturb_the_simulation() {
        let run = |observed: bool| {
            let (mut sim, img) = sim_with_defaults();
            if observed {
                sim.set_observability(Tracer::new(), MetricsRegistry::new());
            }
            let id = sim.launch("campus", "m1.small", &img).unwrap();
            sim.advance(SimDuration::from_secs(200));
            let job = sim.run_model(id, "topmodel", SimDuration::from_secs(60)).unwrap();
            sim.advance(SimDuration::from_secs(600));
            let latency = sim.instance(id).unwrap().job(job).unwrap().latency().unwrap();
            (latency, sim.total_cost())
        };
        assert_eq!(run(false), run(true));
    }

    /// A scripted injector: fails the first `fail_launches` launches, slows
    /// every boot by `straggle`, and dooms boots when `doom` is set.
    #[derive(Debug, Default)]
    struct Scripted {
        fail_launches: u32,
        straggle: f64,
        doom: Option<FailureMode>,
    }

    impl crate::faults::FaultInjector for Scripted {
        fn api_fault(
            &mut self,
            _now: evop_sim::SimTime,
            _provider: &str,
            op: CloudOp,
        ) -> Option<crate::faults::ApiFault> {
            if op == CloudOp::Launch && self.fail_launches > 0 {
                self.fail_launches -= 1;
                return Some(crate::faults::ApiFault {
                    reason: "scripted".to_owned(),
                    retry_after: SimDuration::from_secs(30),
                });
            }
            None
        }

        fn boot_factor(&mut self, _now: evop_sim::SimTime, _provider: &str) -> f64 {
            if self.straggle > 0.0 {
                self.straggle
            } else {
                1.0
            }
        }

        fn boot_failure(
            &mut self,
            _now: evop_sim::SimTime,
            _provider: &str,
        ) -> Option<FailureMode> {
            self.doom
        }
    }

    use crate::faults::CloudOp;

    #[test]
    fn injected_api_fault_fails_launch_with_retry_hint() {
        let (mut sim, img) = sim_with_defaults();
        sim.set_fault_injector(Some(Box::new(Scripted {
            fail_launches: 1,
            ..Scripted::default()
        })));
        let err = sim.launch("campus", "m1.small", &img).unwrap_err();
        match err {
            CloudError::ApiUnavailable { provider, reason, retry_after } => {
                assert_eq!(provider, "campus");
                assert_eq!(reason, "scripted");
                assert_eq!(retry_after, SimDuration::from_secs(30));
            }
            other => panic!("unexpected error: {other}"),
        }
        // The burst is over: the next launch goes through and no capacity
        // was consumed by the failed call.
        assert!(sim.launch("campus", "m1.small", &img).is_ok());
        assert_eq!(sim.instances().count(), 1);
    }

    #[test]
    fn straggler_factor_stretches_boot() {
        // Boot duration is observable through the latency of a job queued
        // behind the boot: a 4× straggler's job waits 4× the boot.
        let latency = |factor: f64| {
            let (mut sim, img) = sim_with_defaults();
            sim.set_fault_injector(Some(Box::new(Scripted {
                straggle: factor,
                ..Scripted::default()
            })));
            let id = sim.launch("campus", "m1.small", &img).unwrap();
            let job = sim.submit_job(id, SimDuration::from_secs(10)).unwrap();
            sim.advance(SimDuration::from_secs(8000));
            sim.instance(id).unwrap().job(job).unwrap().latency().unwrap()
        };
        assert!(latency(4.0) > latency(1.0) * 2);
    }

    #[test]
    fn doomed_boot_fails_while_pending() {
        let (mut sim, img) = sim_with_defaults();
        sim.set_fault_injector(Some(Box::new(Scripted {
            doom: Some(FailureMode::Crash),
            ..Scripted::default()
        })));
        let id = sim.launch("campus", "m1.small", &img).unwrap();
        sim.advance(SimDuration::from_secs(400));
        let inst = sim.instance(id).unwrap();
        assert!(
            matches!(inst.state(), InstanceState::Failed { .. }),
            "doomed boot must fail, got {:?}",
            inst.state()
        );
        assert!(inst.occupies_capacity(), "failed instance holds capacity until terminated");
    }

    #[test]
    fn benign_injector_leaves_simulation_unchanged() {
        let run = |inject: bool| {
            let (mut sim, img) = sim_with_defaults();
            if inject {
                sim.set_fault_injector(Some(Box::new(Scripted::default())));
            }
            let id = sim.launch("campus", "m1.small", &img).unwrap();
            let job = sim.submit_job(id, SimDuration::from_secs(60)).unwrap();
            sim.advance(SimDuration::from_secs(1000));
            let latency = sim.instance(id).unwrap().job(job).unwrap().latency();
            (latency, sim.total_cost())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn provider_kinds_are_queryable() {
        let (sim, _) = sim_with_defaults();
        assert_eq!(sim.provider("campus").unwrap().kind(), ProviderKind::Private);
        assert_eq!(sim.provider("aws").unwrap().kind(), ProviderKind::Public);
        assert!(sim.provider("nope").is_none());
    }

    #[test]
    fn unknown_lookups_error() {
        let (mut sim, img) = sim_with_defaults();
        assert!(matches!(
            sim.launch("nope", "m1.small", &img),
            Err(CloudError::UnknownProvider(_))
        ));
        assert!(matches!(
            sim.launch("campus", "nope", &img),
            Err(CloudError::UnknownInstanceType(_))
        ));
        assert!(matches!(
            sim.launch("campus", "m1.small", &ImageId::new("nope")),
            Err(CloudError::UnknownImage(_))
        ));
        assert!(matches!(sim.metrics(InstanceId(999)), Err(CloudError::UnknownInstance(_))));
    }
}
