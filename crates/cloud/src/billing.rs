//! Per-second billing, the cost side of every elasticity experiment.

use std::collections::BTreeMap;

use evop_sim::SimTime;

/// One billable lease: an instance's rate and lifetime.
#[derive(Debug, Clone, PartialEq)]
struct Lease {
    provider: String,
    hourly_rate: f64,
    start: SimTime,
    end: Option<SimTime>,
}

/// Accumulates instance-hours into money, per provider.
///
/// Instances are billed per second from launch request to termination (the
/// modern cloud billing model), at the flavour's hourly list price times the
/// provider's price factor.
///
/// # Examples
///
/// ```
/// use evop_cloud::CostMeter;
/// use evop_sim::SimTime;
///
/// let mut meter = CostMeter::new();
/// meter.open(1, "aws", 0.13, SimTime::ZERO);
/// meter.close(1, SimTime::from_secs(1800));
/// let cost = meter.total_cost(SimTime::from_secs(7200));
/// assert!((cost - 0.065).abs() < 1e-9); // half an hour at $0.13/h
/// ```
#[derive(Debug, Clone, Default)]
pub struct CostMeter {
    leases: BTreeMap<u64, Lease>,
}

impl CostMeter {
    /// Creates an empty meter.
    pub fn new() -> CostMeter {
        CostMeter::default()
    }

    /// Opens a lease for instance `key` at `hourly_rate` from `start`.
    pub fn open(
        &mut self,
        key: u64,
        provider: impl Into<String>,
        hourly_rate: f64,
        start: SimTime,
    ) {
        self.leases.insert(key, Lease { provider: provider.into(), hourly_rate, start, end: None });
    }

    /// Closes the lease for `key` at `end`. Closing an unknown or already
    /// closed lease is a no-op.
    pub fn close(&mut self, key: u64, end: SimTime) {
        if let Some(lease) = self.leases.get_mut(&key) {
            if lease.end.is_none() {
                lease.end = Some(end);
            }
        }
    }

    /// Total cost of all leases, with open leases billed up to `now`.
    pub fn total_cost(&self, now: SimTime) -> f64 {
        self.leases.values().map(|l| Self::lease_cost(l, now)).sum()
    }

    /// Cost per provider, with open leases billed up to `now`.
    pub fn cost_by_provider(&self, now: SimTime) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for lease in self.leases.values() {
            *out.entry(lease.provider.clone()).or_insert(0.0) += Self::lease_cost(lease, now);
        }
        out
    }

    /// Number of leases ever opened.
    pub fn lease_count(&self) -> usize {
        self.leases.len()
    }

    fn lease_cost(lease: &Lease, now: SimTime) -> f64 {
        let end = lease.end.unwrap_or(now).max(lease.start);
        let hours = end.saturating_since(lease.start).as_secs_f64() / 3600.0;
        hours * lease.hourly_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_lease_accrues_with_time() {
        let mut m = CostMeter::new();
        m.open(1, "campus", 1.0, SimTime::ZERO);
        assert!((m.total_cost(SimTime::from_secs(3600)) - 1.0).abs() < 1e-9);
        assert!((m.total_cost(SimTime::from_secs(7200)) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn closed_lease_stops_accruing() {
        let mut m = CostMeter::new();
        m.open(1, "campus", 1.0, SimTime::ZERO);
        m.close(1, SimTime::from_secs(3600));
        assert!((m.total_cost(SimTime::from_secs(100_000)) - 1.0).abs() < 1e-9);
        // Double close is a no-op.
        m.close(1, SimTime::from_secs(200_000));
        assert!((m.total_cost(SimTime::from_secs(300_000)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_provider_split() {
        let mut m = CostMeter::new();
        m.open(1, "campus", 0.5, SimTime::ZERO);
        m.open(2, "aws", 2.0, SimTime::ZERO);
        let by = m.cost_by_provider(SimTime::from_secs(3600));
        assert!((by["campus"] - 0.5).abs() < 1e-9);
        assert!((by["aws"] - 2.0).abs() < 1e-9);
        assert_eq!(m.lease_count(), 2);
    }

    #[test]
    fn unknown_close_is_noop() {
        let mut m = CostMeter::new();
        m.close(42, SimTime::from_secs(10));
        assert_eq!(m.total_cost(SimTime::from_secs(100)), 0.0);
    }
}
