//! Fault-injection hooks: where a chaos plane plugs into the simulator.
//!
//! The simulator owns the *mechanics* of failure (instances crashing,
//! hanging, blackholing; API calls erroring) while the policy of *when*
//! faults happen lives outside — either in the provider MTBF model
//! ([`CloudSim::enable_random_failures`](crate::CloudSim)) or, for
//! experiment-grade chaos, in a [`FaultInjector`] attached via
//! [`CloudSim::set_fault_injector`](crate::CloudSim). The `evop-chaos`
//! crate implements this trait with a seeded, schedule-driven engine so a
//! whole chaos run replays byte-identically from `(schedule, seed)`.
//!
//! Attaching an injector never touches the simulator's own RNG stream:
//! a run with a no-op injector is event-for-event identical to a run with
//! none at all.

use std::fmt;

use evop_sim::{SimDuration, SimTime};

use crate::instance::FailureMode;

/// The control-plane operation a fault check guards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudOp {
    /// A request for a new instance (`launch`).
    Launch,
    /// A job submission to a running or booting instance.
    SubmitJob,
}

impl fmt::Display for CloudOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudOp::Launch => write!(f, "launch"),
            CloudOp::SubmitJob => write!(f, "submit-job"),
        }
    }
}

/// A transient provider-API refusal, produced by a [`FaultInjector`].
///
/// The simulator converts this into
/// [`CloudError::ApiUnavailable`](crate::CloudError), carrying the
/// `retry_after` hint through to whatever retry policy sits above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiFault {
    /// Human-readable cause (e.g. `"api-error-burst"`, `"partition"`).
    pub reason: String,
    /// How long the caller should wait before retrying.
    pub retry_after: SimDuration,
}

/// A pluggable source of injected faults.
///
/// [`CloudSim`](crate::CloudSim) consults the attached injector at three
/// points:
///
/// * before every guarded API call ([`FaultInjector::api_fault`]) — a
///   `Some` return makes the call fail with
///   [`CloudError::ApiUnavailable`](crate::CloudError);
/// * when computing a new instance's boot time
///   ([`FaultInjector::boot_factor`]) — stragglers boot slower;
/// * when a launch is accepted ([`FaultInjector::boot_failure`]) — a
///   `Some` return schedules the instance to die with the given mode at
///   the moment its boot would have completed.
///
/// Implementations must be deterministic given their own construction
/// seed: the simulator calls the hooks in a fixed order for a fixed
/// driver program, so seeded implementations replay exactly.
pub trait FaultInjector: fmt::Debug + Send + Sync {
    /// Decides whether a control-plane call fails transiently right now.
    fn api_fault(&mut self, now: SimTime, provider: &str, op: CloudOp) -> Option<ApiFault>;

    /// Multiplier applied to a new instance's boot duration. `1.0` means
    /// a nominal boot; values above `1.0` model slow-boot stragglers.
    fn boot_factor(&mut self, now: SimTime, provider: &str) -> f64 {
        let _ = (now, provider);
        1.0
    }

    /// Decides whether a just-accepted launch is doomed: the instance
    /// will fail with the returned mode exactly when its boot completes.
    fn boot_failure(&mut self, now: SimTime, provider: &str) -> Option<FailureMode> {
        let _ = (now, provider);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Nop;

    impl FaultInjector for Nop {
        fn api_fault(&mut self, _: SimTime, _: &str, _: CloudOp) -> Option<ApiFault> {
            None
        }
    }

    #[test]
    fn default_hooks_are_benign() {
        let mut nop = Nop;
        assert!(nop.api_fault(SimTime::ZERO, "campus", CloudOp::Launch).is_none());
        assert!((nop.boot_factor(SimTime::ZERO, "campus") - 1.0).abs() < f64::EPSILON);
        assert!(nop.boot_failure(SimTime::ZERO, "campus").is_none());
    }

    #[test]
    fn ops_display_kebab_case() {
        assert_eq!(CloudOp::Launch.to_string(), "launch");
        assert_eq!(CloudOp::SubmitJob.to_string(), "submit-job");
    }
}
