//! The provider-agnostic compute service.

use std::collections::BTreeMap;
use std::fmt;

use evop_cloud::{CloudError, CloudSim, ImageId, InstanceId};
use evop_sim::SimDuration;

use crate::policy::{provider_views, PlacementPolicy};
use crate::retry::CircuitBreaker;

/// Errors from cross-cloud provisioning.
#[derive(Debug, Clone, PartialEq)]
pub enum XcloudError {
    /// No registered provider could accept the node (all saturated or the
    /// policy excluded them all).
    NoCapacity {
        /// Providers that were tried, in order, with the error each returned.
        attempts: Vec<(String, String)>,
    },
    /// The template referenced an unregistered image.
    UnknownImage(ImageId),
    /// Every viable provider failed *transiently* (API error burst, open
    /// circuit breaker): unlike [`XcloudError::NoCapacity`], retrying after
    /// `retry_after` may well succeed.
    Transient {
        /// Providers that were tried or skipped, in order, with the reason.
        attempts: Vec<(String, String)>,
        /// The shortest wait any failing provider suggested.
        retry_after: SimDuration,
    },
}

impl fmt::Display for XcloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XcloudError::NoCapacity { attempts } => {
                write!(f, "no provider could place the node ({} tried)", attempts.len())
            }
            XcloudError::UnknownImage(id) => write!(f, "unknown image: {id}"),
            XcloudError::Transient { attempts, retry_after } => {
                write!(
                    f,
                    "all providers transiently unavailable ({} tried); retry after {retry_after}",
                    attempts.len()
                )
            }
        }
    }
}

impl std::error::Error for XcloudError {}

/// A declarative description of the node a caller wants — the analogue of
/// jclouds' `TemplateBuilder`.
///
/// # Examples
///
/// ```
/// use evop_cloud::ImageId;
/// use evop_xcloud::NodeTemplate;
///
/// let template = NodeTemplate::new("m1.large", ImageId::new("topmodel-eden"));
/// assert_eq!(template.instance_type(), "m1.large");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct NodeTemplate {
    instance_type: String,
    image: ImageId,
    streamlined_hint: Option<bool>,
}

impl NodeTemplate {
    /// Creates a template for one node of the given flavour and image.
    pub fn new(instance_type: impl Into<String>, image: ImageId) -> NodeTemplate {
        NodeTemplate { instance_type: instance_type.into(), image, streamlined_hint: None }
    }

    /// The requested flavour name.
    pub fn instance_type(&self) -> &str {
        &self.instance_type
    }

    /// The requested image.
    pub fn image(&self) -> &ImageId {
        &self.image
    }

    /// Overrides the streamlined/incubator classification used by
    /// image-aware policies (normally derived from the registered image).
    pub fn with_streamlined_hint(mut self, streamlined: bool) -> NodeTemplate {
        self.streamlined_hint = Some(streamlined);
        self
    }

    /// Whether image-aware policies should treat this node as a streamlined
    /// bundle. Falls back to `false` when no hint was set and the image is
    /// not resolvable.
    pub fn image_is_streamlined(&self) -> bool {
        self.streamlined_hint.unwrap_or(false)
    }

    fn resolved(&self, sim: &CloudSim) -> NodeTemplate {
        if self.streamlined_hint.is_some() {
            return self.clone();
        }
        let streamlined =
            sim.image(&self.image).map(|img| img.kind().is_streamlined()).unwrap_or(false);
        self.clone().with_streamlined_hint(streamlined)
    }
}

/// The uniform compute facade over all registered providers.
///
/// Callers provision against the service; the active [`PlacementPolicy`]
/// decides provider order, and the service walks that order until a launch
/// succeeds. Swapping the policy (the paper's §VI example) is one call and
/// touches no call sites.
#[derive(Debug)]
pub struct ComputeService {
    policy: Box<dyn PlacementPolicy>,
    known_providers: Vec<String>,
    breakers: BTreeMap<String, CircuitBreaker>,
    breaker_threshold: u32,
    breaker_cooldown: SimDuration,
}

/// Consecutive transient failures before a provider's breaker opens.
const DEFAULT_BREAKER_THRESHOLD: u32 = 3;
/// How long an open breaker sheds traffic from a misbehaving provider.
const DEFAULT_BREAKER_COOLDOWN: SimDuration = SimDuration::from_secs(120);

impl ComputeService {
    /// Creates the service with an initial placement policy.
    pub fn new<P: PlacementPolicy + 'static>(policy: P) -> ComputeService {
        ComputeService {
            policy: Box::new(policy),
            known_providers: Vec::new(),
            breakers: BTreeMap::new(),
            breaker_threshold: DEFAULT_BREAKER_THRESHOLD,
            breaker_cooldown: DEFAULT_BREAKER_COOLDOWN,
        }
    }

    /// Overrides the per-provider circuit-breaker knobs (threshold of
    /// consecutive transient failures, and open-state cooldown).
    pub fn with_breaker(mut self, threshold: u32, cooldown: SimDuration) -> ComputeService {
        self.breaker_threshold = threshold.max(1);
        self.breaker_cooldown = cooldown;
        self.breakers.clear();
        self
    }

    /// Read-only view of a provider's breaker, if any call has tripped one.
    pub fn breaker(&self, provider: &str) -> Option<&CircuitBreaker> {
        self.breakers.get(provider)
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Hot-swaps the placement policy — experiment E8's one-line change.
    pub fn set_policy<P: PlacementPolicy + 'static>(&mut self, policy: P) {
        self.policy = Box::new(policy);
    }

    /// Registers a provider name the service may place nodes on. Order of
    /// registration does not matter; ranking is the policy's job.
    pub fn register_provider(&mut self, name: impl Into<String>) {
        let name = name.into();
        if !self.known_providers.contains(&name) {
            self.known_providers.push(name);
        }
    }

    /// Providers the service knows about.
    pub fn providers(&self) -> &[String] {
        &self.known_providers
    }

    /// Provisions one node matching `template`.
    ///
    /// Providers whose circuit breaker is open are skipped outright
    /// (partial-capacity operation); a provider that fails with
    /// [`CloudError::ApiUnavailable`] trips its breaker one notch, and any
    /// success resets it.
    ///
    /// # Errors
    ///
    /// Returns [`XcloudError::NoCapacity`] when every ranked provider
    /// refused the launch for good (saturation), or
    /// [`XcloudError::Transient`] when at least one refusal was a transient
    /// API fault or an open breaker — the latter carries the shortest
    /// suggested wait, so callers can back off instead of hammering.
    pub fn provision(
        &mut self,
        sim: &mut CloudSim,
        template: &NodeTemplate,
    ) -> Result<InstanceId, XcloudError> {
        let resolved = template.resolved(sim);
        let views = provider_views(sim, &self.known_providers);
        let order = self.policy.rank(&resolved, &views);
        let now = sim.now();
        let mut attempts = Vec::new();
        let mut shortest_wait: Option<SimDuration> = None;
        let note_wait = |shortest: &mut Option<SimDuration>, wait: SimDuration| {
            *shortest = Some(shortest.map_or(wait, |w| w.min(wait)));
        };
        for provider in order {
            if let Some(wait) = self.breakers.get(&provider).and_then(|b| b.retry_after(now)) {
                attempts.push((provider, format!("circuit open; retry after {wait}")));
                note_wait(&mut shortest_wait, wait);
                continue;
            }
            match sim.launch(&provider, resolved.instance_type(), resolved.image()) {
                Ok(id) => {
                    self.breakers
                        .entry(provider)
                        .or_insert_with(|| {
                            CircuitBreaker::new(self.breaker_threshold, self.breaker_cooldown)
                        })
                        .record_success();
                    return Ok(id);
                }
                Err(CloudError::UnknownImage(_)) => {
                    return Err(XcloudError::UnknownImage(resolved.image().clone()));
                }
                Err(err @ CloudError::ApiUnavailable { retry_after, .. }) => {
                    note_wait(&mut shortest_wait, retry_after);
                    self.breakers
                        .entry(provider.clone())
                        .or_insert_with(|| {
                            CircuitBreaker::new(self.breaker_threshold, self.breaker_cooldown)
                        })
                        .record_failure(now);
                    attempts.push((provider, err.to_string()));
                }
                Err(err) => attempts.push((provider, err.to_string())),
            }
        }
        match shortest_wait {
            Some(retry_after) => Err(XcloudError::Transient { attempts, retry_after }),
            None => Err(XcloudError::NoCapacity { attempts }),
        }
    }

    /// Provisions up to `count` nodes, returning the ones that succeeded.
    /// Stops early when capacity runs out under a bounded policy.
    pub fn provision_group(
        &mut self,
        sim: &mut CloudSim,
        template: &NodeTemplate,
        count: usize,
    ) -> Vec<InstanceId> {
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            match self.provision(sim, template) {
                Ok(id) => out.push(id),
                Err(_) => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{PrivateFirst, PrivateOnly, PublicOnly, SplitByImageKind};
    use evop_cloud::{MachineImage, Provider};

    fn setup() -> (CloudSim, ComputeService, ImageId, ImageId) {
        let mut sim = CloudSim::new(3);
        sim.register_provider(Provider::private_openstack("campus", 4));
        sim.register_provider(Provider::public_aws("aws"));
        let baked = MachineImage::streamlined("baked", ["topmodel"]);
        let baked_id = baked.id().clone();
        sim.register_image(baked);
        let inc = MachineImage::incubator("inc");
        let inc_id = inc.id().clone();
        sim.register_image(inc);
        let mut compute = ComputeService::new(PrivateFirst);
        compute.register_provider("campus");
        compute.register_provider("aws");
        (sim, compute, baked_id, inc_id)
    }

    #[test]
    fn bursts_to_public_on_saturation() {
        let (mut sim, mut compute, baked, _) = setup();
        let template = NodeTemplate::new("m1.large", baked);
        let a = compute.provision(&mut sim, &template).unwrap();
        let b = compute.provision(&mut sim, &template).unwrap();
        assert_eq!(sim.instance(a).unwrap().provider(), "campus");
        assert_eq!(sim.instance(b).unwrap().provider(), "aws");
    }

    #[test]
    fn private_only_fails_cleanly_when_full() {
        let (mut sim, mut compute, baked, _) = setup();
        compute.set_policy(PrivateOnly);
        let template = NodeTemplate::new("m1.large", baked);
        assert!(compute.provision(&mut sim, &template).is_ok());
        let err = compute.provision(&mut sim, &template).unwrap_err();
        match err {
            XcloudError::NoCapacity { attempts } => {
                assert_eq!(attempts.len(), 1);
                assert_eq!(attempts[0].0, "campus");
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn policy_swap_redirects_without_caller_changes() {
        let (mut sim, mut compute, baked, inc) = setup();
        compute.set_policy(SplitByImageKind);
        assert_eq!(compute.policy_name(), "split-by-image-kind");

        let baked_node =
            compute.provision(&mut sim, &NodeTemplate::new("m1.small", baked)).unwrap();
        let inc_node = compute.provision(&mut sim, &NodeTemplate::new("m1.small", inc)).unwrap();
        assert_eq!(sim.instance(baked_node).unwrap().provider(), "aws");
        assert_eq!(sim.instance(inc_node).unwrap().provider(), "campus");
    }

    #[test]
    fn provision_group_stops_at_capacity() {
        let (mut sim, mut compute, baked, _) = setup();
        compute.set_policy(PrivateOnly);
        let nodes = compute.provision_group(&mut sim, &NodeTemplate::new("m1.small", baked), 10);
        assert_eq!(nodes.len(), 4, "campus has 4 vCPUs of m1.small capacity");
    }

    #[test]
    fn provision_group_unbounded_on_public() {
        let (mut sim, mut compute, baked, _) = setup();
        compute.set_policy(PublicOnly);
        let nodes = compute.provision_group(&mut sim, &NodeTemplate::new("m1.small", baked), 25);
        assert_eq!(nodes.len(), 25);
        assert!(nodes.iter().all(|&n| sim.instance(n).unwrap().provider() == "aws"));
    }

    #[test]
    fn unknown_image_is_reported() {
        let (mut sim, mut compute, _, _) = setup();
        let err = compute
            .provision(&mut sim, &NodeTemplate::new("m1.small", ImageId::new("ghost")))
            .unwrap_err();
        assert!(matches!(err, XcloudError::UnknownImage(_)));
    }

    #[test]
    fn api_faults_surface_as_transient_and_trip_the_breaker() {
        use evop_cloud::{ApiFault, CloudOp, FaultInjector};
        use evop_sim::{SimDuration, SimTime};

        /// Fails every guarded call on every provider.
        #[derive(Debug)]
        struct AlwaysDown;

        impl FaultInjector for AlwaysDown {
            fn api_fault(&mut self, _: SimTime, _: &str, _: CloudOp) -> Option<ApiFault> {
                Some(ApiFault {
                    reason: "burst".to_owned(),
                    retry_after: SimDuration::from_secs(30),
                })
            }
        }

        let (mut sim, mut compute, baked, _) = setup();
        sim.set_fault_injector(Some(Box::new(AlwaysDown)));
        let template = NodeTemplate::new("m1.small", baked);

        for _ in 0..3 {
            let err = compute.provision(&mut sim, &template).unwrap_err();
            match err {
                XcloudError::Transient { retry_after, .. } => {
                    assert_eq!(retry_after, SimDuration::from_secs(30));
                }
                other => panic!("expected transient error, got {other}"),
            }
        }
        // Three consecutive transient failures per provider: breakers open.
        assert!(compute.breaker("campus").is_some_and(|b| b.is_open(sim.now())));
        let err = compute.provision(&mut sim, &template).unwrap_err();
        match err {
            XcloudError::Transient { attempts, .. } => {
                assert!(
                    attempts.iter().all(|(_, why)| why.starts_with("circuit open")),
                    "open breakers shed load without touching the provider: {attempts:?}"
                );
            }
            other => panic!("expected transient error, got {other}"),
        }

        // Once the fault clears and cooldown passes, service recovers.
        sim.set_fault_injector(None);
        sim.advance(SimDuration::from_secs(121));
        assert!(compute.provision(&mut sim, &template).is_ok());
        assert!(!compute.breaker("campus").is_some_and(|b| b.is_open(sim.now())));
    }

    #[test]
    fn streamlined_hint_is_derived_from_registry() {
        let (sim, _, baked, inc) = setup();
        assert!(NodeTemplate::new("m1.small", baked).resolved(&sim).image_is_streamlined());
        assert!(!NodeTemplate::new("m1.small", inc).resolved(&sim).image_is_streamlined());
    }
}
