//! Retry, backoff and circuit-breaking for transient provider faults.
//!
//! Elkhatib & Blair's hybrid-cloud EVO experiences name transient provider
//! API errors as the dominant operational pain; the original EVOp stack had
//! no systematic answer to them. This module is that answer for the
//! reproduction: a [`RetryPolicy`] (capped exponential backoff with
//! deterministic per-seed jitter and a hard deadline), a [`CircuitBreaker`]
//! per provider, and a [`retry_with`] driver that executes a fallible
//! operation under the policy in *virtual* time.
//!
//! Everything here is deterministic: the jittered backoff sequence is a
//! pure function of `(policy, seed)`, so a chaos run that exercises the
//! retry path replays byte-identically.

use std::fmt;

use evop_cloud::CloudError;
use evop_sim::{SimDuration, SimRng, SimTime};

use crate::blobstore::BlobStoreError;
use crate::compute::XcloudError;

/// Capped exponential backoff with deterministic jitter and a deadline.
///
/// The raw backoff for attempt `n` is `base × factor^n`, capped at `cap`
/// and monotone non-decreasing. The *jittered* delay actually waited is
/// drawn uniformly from `[backoff/2, backoff)` using a stream derived only
/// from the caller's seed, so equal seeds produce byte-identical delay
/// sequences. The cumulative jittered wait never exceeds `deadline`.
///
/// # Examples
///
/// ```
/// use evop_sim::SimDuration;
/// use evop_xcloud::RetryPolicy;
///
/// let policy = RetryPolicy::default();
/// assert!(policy.backoff(3) >= policy.backoff(2));
/// assert_eq!(policy.jittered_delays(7), policy.jittered_delays(7));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    base: SimDuration,
    factor: f64,
    cap: SimDuration,
    max_attempts: u32,
    deadline: SimDuration,
}

impl Default for RetryPolicy {
    /// A provisioning-grade default: 15 s base, doubling, capped at 4 min,
    /// at most 8 retries, all within a 30-minute deadline.
    fn default() -> RetryPolicy {
        RetryPolicy {
            base: SimDuration::from_secs(15),
            factor: 2.0,
            cap: SimDuration::from_secs(240),
            max_attempts: 8,
            deadline: SimDuration::from_secs(1800),
        }
    }
}

impl RetryPolicy {
    /// Creates a policy from explicit knobs.
    ///
    /// # Panics
    ///
    /// Panics if the knobs fail [`RetryPolicy::validate`] — policy
    /// construction is programmer input.
    pub fn new(
        base: SimDuration,
        factor: f64,
        cap: SimDuration,
        max_attempts: u32,
        deadline: SimDuration,
    ) -> RetryPolicy {
        let policy = RetryPolicy { base, factor, cap, max_attempts, deadline };
        match policy.validate() {
            Ok(()) => policy,
            // evop-lint: allow(rob-panic) -- documented constructor contract
            Err(msg) => panic!("invalid retry policy: {msg}"),
        }
    }

    /// Validates the policy knobs.
    ///
    /// # Errors
    ///
    /// Returns a message for a zero base, a growth factor below 1, a cap
    /// below the base, or a zero deadline.
    pub fn validate(&self) -> Result<(), String> {
        if self.base.is_zero() {
            return Err("backoff base must be positive".to_owned());
        }
        if !self.factor.is_finite() || self.factor < 1.0 {
            return Err(format!("backoff factor must be >= 1, got {}", self.factor));
        }
        if self.cap < self.base {
            return Err("backoff cap must be at least the base".to_owned());
        }
        if self.deadline.is_zero() {
            return Err("retry deadline must be positive".to_owned());
        }
        Ok(())
    }

    /// The maximum number of *retries* after the initial attempt.
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The hard ceiling on cumulative backoff wait.
    pub fn deadline(&self) -> SimDuration {
        self.deadline
    }

    /// The raw (un-jittered) backoff before retry `attempt` (0-based):
    /// `base × factor^attempt`, capped at `cap`. Monotone non-decreasing.
    pub fn backoff(&self, attempt: u32) -> SimDuration {
        let cap = self.cap.as_secs_f64();
        let grown = self.base.as_secs_f64() * self.factor.powi(attempt.min(64) as i32);
        // powi can overflow to infinity for large attempts; min() is
        // NaN-free here because both operands are finite-or-inf positives.
        SimDuration::from_secs_f64(grown.min(cap))
    }

    /// The full jittered delay schedule for one seed: one delay per
    /// permitted retry, truncated so the cumulative wait stays within the
    /// deadline. A pure function of `(self, seed)` — equal seeds give
    /// byte-identical sequences.
    pub fn jittered_delays(&self, seed: u64) -> Vec<SimDuration> {
        let mut rng = SimRng::new(seed).fork("retry-jitter");
        let mut out = Vec::with_capacity(self.max_attempts as usize);
        let mut total = SimDuration::ZERO;
        for attempt in 0..self.max_attempts {
            let raw = self.backoff(attempt).as_secs_f64();
            let jittered = SimDuration::from_secs_f64(raw * rng.uniform_in(0.5, 1.0));
            if total + jittered > self.deadline {
                break;
            }
            total += jittered;
            out.push(jittered);
        }
        out
    }

    /// The jittered delay to wait before retry `attempt` (0-based), or
    /// `None` once the policy is exhausted (attempts or deadline).
    pub fn delay_before(&self, attempt: u32, seed: u64) -> Option<SimDuration> {
        self.jittered_delays(seed).get(attempt as usize).copied()
    }
}

/// A per-dependency circuit breaker, driven by virtual time.
///
/// After `threshold` consecutive transient failures the breaker opens for
/// `cooldown`; while open, callers should skip the dependency entirely
/// (partial-capacity operation) instead of burning attempts on it. Any
/// success closes the breaker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: SimDuration,
    consecutive_failures: u32,
    open_until: Option<SimTime>,
}

impl CircuitBreaker {
    /// Creates a closed breaker that opens after `threshold` consecutive
    /// failures and stays open for `cooldown`.
    pub fn new(threshold: u32, cooldown: SimDuration) -> CircuitBreaker {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            consecutive_failures: 0,
            open_until: None,
        }
    }

    /// Records a transient failure, opening the breaker when the threshold
    /// is reached.
    pub fn record_failure(&mut self, now: SimTime) {
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.threshold {
            self.open_until = Some(now + self.cooldown);
        }
    }

    /// Records a success, closing the breaker and resetting the count.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        self.open_until = None;
    }

    /// `true` while the breaker refuses traffic.
    pub fn is_open(&self, now: SimTime) -> bool {
        self.open_until.is_some_and(|until| now < until)
    }

    /// Time remaining until the breaker half-opens, when open.
    pub fn retry_after(&self, now: SimTime) -> Option<SimDuration> {
        self.open_until.filter(|&until| now < until).map(|until| until.saturating_since(now))
    }

    /// Consecutive transient failures recorded since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

/// An error that may be worth retrying.
///
/// Implemented for the workspace's fault-bearing error types so one retry
/// driver serves the compute facade, the blob store and the broker.
pub trait Retryable {
    /// `true` when retrying after a wait could plausibly succeed.
    fn is_transient(&self) -> bool;

    /// The server-suggested wait, when the error carries one. [`retry_with`]
    /// waits at least this long regardless of the backoff schedule.
    fn retry_after_hint(&self) -> Option<SimDuration> {
        None
    }
}

impl Retryable for CloudError {
    fn is_transient(&self) -> bool {
        matches!(self, CloudError::ApiUnavailable { .. })
    }

    fn retry_after_hint(&self) -> Option<SimDuration> {
        match self {
            CloudError::ApiUnavailable { retry_after, .. } => Some(*retry_after),
            _ => None,
        }
    }
}

impl Retryable for BlobStoreError {
    fn is_transient(&self) -> bool {
        matches!(
            self,
            BlobStoreError::TransientlyUnavailable { .. } | BlobStoreError::Corrupted { .. }
        )
    }

    fn retry_after_hint(&self) -> Option<SimDuration> {
        match self {
            BlobStoreError::TransientlyUnavailable { retry_after, .. } => Some(*retry_after),
            _ => None,
        }
    }
}

impl Retryable for XcloudError {
    fn is_transient(&self) -> bool {
        matches!(self, XcloudError::Transient { .. })
    }

    fn retry_after_hint(&self) -> Option<SimDuration> {
        match self {
            XcloudError::Transient { retry_after, .. } => Some(*retry_after),
            _ => None,
        }
    }
}

/// What one [`retry_with`] run did.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryOutcome<T, E> {
    /// The final result: the first success or the last error.
    pub result: Result<T, E>,
    /// Operations attempted, including the first (so `1` = no retries).
    pub attempts: u32,
    /// Cumulative virtual time spent waiting between attempts.
    pub waited: SimDuration,
}

impl<T, E> RetryOutcome<T, E> {
    /// `true` when the operation eventually succeeded.
    pub fn succeeded(&self) -> bool {
        self.result.is_ok()
    }

    /// `true` when the success needed at least one retry — the signal the
    /// chaos reports aggregate into a retry-success rate.
    pub fn recovered(&self) -> bool {
        self.result.is_ok() && self.attempts > 1
    }
}

/// Runs `op` under `policy`, pacing retries in virtual time.
///
/// `op` receives the virtual instant of the attempt (start plus cumulative
/// backoff) and the 0-based attempt index. Retries happen only for errors
/// whose [`Retryable::is_transient`] is `true`; each waits the jittered
/// backoff for that attempt or the error's own retry-after hint, whichever
/// is longer, and the whole run never waits past the policy deadline.
///
/// The caller owns the clock: the returned [`RetryOutcome::waited`] is how
/// much virtual time the retries consumed, for the caller to account
/// against its own timeline.
pub fn retry_with<T, E: Retryable>(
    policy: &RetryPolicy,
    seed: u64,
    start: SimTime,
    mut op: impl FnMut(SimTime, u32) -> Result<T, E>,
) -> RetryOutcome<T, E> {
    let mut waited = SimDuration::ZERO;
    let mut attempt: u32 = 0;
    loop {
        let at = start + waited;
        match op(at, attempt) {
            Ok(value) => {
                return RetryOutcome { result: Ok(value), attempts: attempt + 1, waited };
            }
            Err(err) => {
                if !err.is_transient() {
                    return RetryOutcome { result: Err(err), attempts: attempt + 1, waited };
                }
                let Some(backoff) = policy.delay_before(attempt, seed) else {
                    return RetryOutcome { result: Err(err), attempts: attempt + 1, waited };
                };
                let delay = match err.retry_after_hint() {
                    Some(hint) if hint > backoff => hint,
                    _ => backoff,
                };
                if waited + delay > policy.deadline() {
                    return RetryOutcome { result: Err(err), attempts: attempt + 1, waited };
                }
                waited += delay;
                attempt += 1;
            }
        }
    }
}

impl fmt::Display for RetryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "retry(base={}, factor={}, cap={}, max={}, deadline={})",
            self.base, self.factor, self.cap, self.max_attempts, self.deadline
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(0), SimDuration::from_secs(15));
        assert_eq!(p.backoff(1), SimDuration::from_secs(30));
        assert_eq!(p.backoff(4), SimDuration::from_secs(240));
        assert_eq!(p.backoff(10), SimDuration::from_secs(240), "cap holds");
        assert_eq!(p.backoff(64), p.backoff(63), "no overflow at large attempts");
    }

    #[test]
    fn jitter_is_seed_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let a = p.jittered_delays(42);
        let b = p.jittered_delays(42);
        assert_eq!(a, b);
        assert_ne!(a, p.jittered_delays(43), "different seeds differ (a.s.)");
        for (i, d) in a.iter().enumerate() {
            let raw = p.backoff(i as u32);
            assert!(*d <= raw, "jitter never exceeds the raw backoff");
            assert!(d.as_secs_f64() >= raw.as_secs_f64() * 0.5 - 1e-9);
        }
    }

    #[test]
    fn retry_recovers_after_transient_failures() {
        let p = RetryPolicy::default();
        let mut remaining_failures = 3;
        let outcome = retry_with(&p, 1, SimTime::ZERO, |_, _| {
            if remaining_failures > 0 {
                remaining_failures -= 1;
                Err(CloudError::ApiUnavailable {
                    provider: "aws".to_owned(),
                    reason: "burst".to_owned(),
                    retry_after: SimDuration::from_secs(5),
                })
            } else {
                Ok("served")
            }
        });
        assert_eq!(outcome.result, Ok("served"));
        assert_eq!(outcome.attempts, 4);
        assert!(outcome.recovered());
        assert!(outcome.waited > SimDuration::ZERO);
    }

    #[test]
    fn retry_respects_hint_when_longer_than_backoff() {
        let p = RetryPolicy::default();
        let hint = SimDuration::from_secs(600);
        let mut failed_once = false;
        let outcome = retry_with(&p, 1, SimTime::ZERO, |_, _| {
            if failed_once {
                Ok(())
            } else {
                failed_once = true;
                Err(CloudError::ApiUnavailable {
                    provider: "aws".to_owned(),
                    reason: "burst".to_owned(),
                    retry_after: hint,
                })
            }
        });
        assert!(outcome.succeeded());
        assert!(outcome.waited >= hint, "hint dominates the first backoff");
    }

    #[test]
    fn non_transient_errors_fail_fast() {
        let p = RetryPolicy::default();
        let outcome: RetryOutcome<(), CloudError> = retry_with(&p, 1, SimTime::ZERO, |_, _| {
            Err(CloudError::UnknownProvider("nope".to_owned()))
        });
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.waited, SimDuration::ZERO);
    }

    #[test]
    fn exhaustion_stops_within_deadline() {
        let p = RetryPolicy::default();
        let outcome: RetryOutcome<(), CloudError> = retry_with(&p, 9, SimTime::ZERO, |_, _| {
            Err(CloudError::ApiUnavailable {
                provider: "aws".to_owned(),
                reason: "burst".to_owned(),
                retry_after: SimDuration::from_secs(1),
            })
        });
        assert!(!outcome.succeeded());
        assert!(outcome.waited <= p.deadline());
        assert!(outcome.attempts <= p.max_attempts() + 1);
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers() {
        let mut b = CircuitBreaker::new(3, SimDuration::from_secs(120));
        let t0 = SimTime::from_secs(100);
        assert!(!b.is_open(t0));
        b.record_failure(t0);
        b.record_failure(t0);
        assert!(!b.is_open(t0), "below threshold stays closed");
        b.record_failure(t0);
        assert!(b.is_open(t0));
        assert_eq!(b.retry_after(t0), Some(SimDuration::from_secs(120)));
        let later = t0 + SimDuration::from_secs(121);
        assert!(!b.is_open(later), "cooldown elapses");
        b.record_success();
        assert_eq!(b.consecutive_failures(), 0);
        assert!(b.retry_after(later).is_none());
    }

    #[test]
    fn invalid_policies_are_rejected() {
        let ok = RetryPolicy::default();
        assert!(ok.validate().is_ok());
        let bad = RetryPolicy { factor: 0.5, ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = RetryPolicy { base: SimDuration::ZERO, ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
        let bad = RetryPolicy { cap: SimDuration::from_millis(1), ..RetryPolicy::default() };
        assert!(bad.validate().is_err());
    }
}
