//! Placement policies: who decides where a node goes.

use std::fmt;

use evop_cloud::{CloudSim, ProviderKind};

use crate::compute::NodeTemplate;

/// What a policy may know about one provider when ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderView {
    /// Provider name, as registered with the simulator.
    pub name: String,
    /// Private (owned) or public (leased).
    pub kind: ProviderKind,
    /// Free vCPUs, or `None` when effectively unbounded.
    pub free_vcpus: Option<u32>,
    /// Multiplier on flavour list prices.
    pub price_factor: f64,
}

/// Builds the policy-visible snapshot of all registered providers.
pub(crate) fn provider_views(sim: &CloudSim, names: &[String]) -> Vec<ProviderView> {
    names
        .iter()
        .filter_map(|name| {
            sim.provider(name).map(|p| ProviderView {
                name: name.clone(),
                kind: p.kind(),
                free_vcpus: sim.free_vcpus(name),
                price_factor: p.price_factor(),
            })
        })
        .collect()
}

/// Decides the order in which providers are tried for a placement.
///
/// Implementations are pure rankers: the [`ComputeService`] tries providers
/// in the returned order until a launch succeeds, so a policy never needs to
/// handle capacity races itself.
///
/// [`ComputeService`]: crate::ComputeService
pub trait PlacementPolicy: fmt::Debug + Send + Sync {
    /// The providers to try, most preferred first. Providers omitted from
    /// the result are never used.
    fn rank(&self, template: &NodeTemplate, providers: &[ProviderView]) -> Vec<String>;

    /// A short policy name for logs and experiment output.
    fn name(&self) -> &'static str;
}

fn privates_then_publics(providers: &[ProviderView]) -> (Vec<&ProviderView>, Vec<&ProviderView>) {
    let privates = providers.iter().filter(|p| p.kind == ProviderKind::Private).collect();
    let publics = providers.iter().filter(|p| p.kind == ProviderKind::Public).collect();
    (privates, publics)
}

/// The paper's default scheduling policy: "user requests are served by
/// default using private instances. Upon saturation of private cloud
/// resources, LB initiates cloudbursting mode where public cloud instances
/// are used beside private ones" (§IV-D).
///
/// Private providers are ranked by free capacity (fullest-fit last), then
/// public providers by price.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrivateFirst;

impl PlacementPolicy for PrivateFirst {
    fn rank(&self, _template: &NodeTemplate, providers: &[ProviderView]) -> Vec<String> {
        let (mut privates, mut publics) = privates_then_publics(providers);
        privates.sort_by_key(|p| std::cmp::Reverse(p.free_vcpus));
        publics.sort_by(|a, b| a.price_factor.total_cmp(&b.price_factor));
        privates.into_iter().chain(publics).map(|p| p.name.clone()).collect()
    }

    fn name(&self) -> &'static str {
        "private-first"
    }
}

/// Only ever uses private providers — the quota-bound "cluster computing"
/// baseline the paper contrasts elasticity against (§VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PrivateOnly;

impl PlacementPolicy for PrivateOnly {
    fn rank(&self, _template: &NodeTemplate, providers: &[ProviderView]) -> Vec<String> {
        let (mut privates, _) = privates_then_publics(providers);
        privates.sort_by_key(|p| std::cmp::Reverse(p.free_vcpus));
        privates.into_iter().map(|p| p.name.clone()).collect()
    }

    fn name(&self) -> &'static str {
        "private-only"
    }
}

/// Only ever uses public providers — the everything-on-AWS cost baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PublicOnly;

impl PlacementPolicy for PublicOnly {
    fn rank(&self, _template: &NodeTemplate, providers: &[ProviderView]) -> Vec<String> {
        let (_, mut publics) = privates_then_publics(providers);
        publics.sort_by(|a, b| a.price_factor.total_cmp(&b.price_factor));
        publics.into_iter().map(|p| p.name.clone()).collect()
    }

    fn name(&self) -> &'static str {
        "public-only"
    }
}

/// The paper's example of a policy change enabled by the cross-cloud layer:
/// "streamlined models to AWS and experimental ones to the private cloud"
/// (§VI).
///
/// Streamlined-image nodes go to public providers first (overflowing to
/// private); incubator nodes go to private providers first (overflowing to
/// public).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SplitByImageKind;

impl PlacementPolicy for SplitByImageKind {
    fn rank(&self, template: &NodeTemplate, providers: &[ProviderView]) -> Vec<String> {
        let (mut privates, mut publics) = privates_then_publics(providers);
        privates.sort_by_key(|p| std::cmp::Reverse(p.free_vcpus));
        publics.sort_by(|a, b| a.price_factor.total_cmp(&b.price_factor));
        let (first, second): (Vec<&ProviderView>, Vec<&ProviderView>) =
            if template.image_is_streamlined() { (publics, privates) } else { (privates, publics) };
        first.into_iter().chain(second).map(|p| p.name.clone()).collect()
    }

    fn name(&self) -> &'static str {
        "split-by-image-kind"
    }
}

/// Ranks all providers purely by effective price, regardless of kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CheapestFirst;

impl PlacementPolicy for CheapestFirst {
    fn rank(&self, _template: &NodeTemplate, providers: &[ProviderView]) -> Vec<String> {
        let mut all: Vec<&ProviderView> = providers.iter().collect();
        all.sort_by(|a, b| a.price_factor.total_cmp(&b.price_factor));
        all.into_iter().map(|p| p.name.clone()).collect()
    }

    fn name(&self) -> &'static str {
        "cheapest-first"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_cloud::ImageId;

    fn views() -> Vec<ProviderView> {
        vec![
            ProviderView {
                name: "campus".into(),
                kind: ProviderKind::Private,
                free_vcpus: Some(8),
                price_factor: 0.2,
            },
            ProviderView {
                name: "aws".into(),
                kind: ProviderKind::Public,
                free_vcpus: None,
                price_factor: 1.0,
            },
            ProviderView {
                name: "campus-2".into(),
                kind: ProviderKind::Private,
                free_vcpus: Some(2),
                price_factor: 0.25,
            },
        ]
    }

    fn streamlined_template() -> NodeTemplate {
        NodeTemplate::new("m1.small", ImageId::new("baked")).with_streamlined_hint(true)
    }

    fn incubator_template() -> NodeTemplate {
        NodeTemplate::new("m1.small", ImageId::new("inc")).with_streamlined_hint(false)
    }

    #[test]
    fn private_first_prefers_roomiest_private() {
        let order = PrivateFirst.rank(&streamlined_template(), &views());
        assert_eq!(order, ["campus", "campus-2", "aws"]);
    }

    #[test]
    fn private_only_never_returns_public() {
        let order = PrivateOnly.rank(&streamlined_template(), &views());
        assert_eq!(order, ["campus", "campus-2"]);
    }

    #[test]
    fn public_only_never_returns_private() {
        let order = PublicOnly.rank(&streamlined_template(), &views());
        assert_eq!(order, ["aws"]);
    }

    #[test]
    fn split_policy_routes_by_image_kind() {
        let baked = SplitByImageKind.rank(&streamlined_template(), &views());
        assert_eq!(baked[0], "aws");
        let experimental = SplitByImageKind.rank(&incubator_template(), &views());
        assert_eq!(experimental[0], "campus");
        // Both policies still fall back to the other side.
        assert_eq!(baked.len(), 3);
        assert_eq!(experimental.len(), 3);
    }

    #[test]
    fn cheapest_first_sorts_by_price() {
        let order = CheapestFirst.rank(&streamlined_template(), &views());
        assert_eq!(order, ["campus", "campus-2", "aws"]);
    }
}
