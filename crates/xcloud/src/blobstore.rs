//! Uniform blob storage — the S3/Swift half of the cross-cloud layer.
//!
//! EVOp warehoused historical datasets and the Model Library's VM images in
//! provider storage (S3 on AWS, Swift on OpenStack). The cross-cloud layer
//! exposes both through one container/key interface, so callers never know
//! which side of the hybrid holds a blob.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use evop_sim::SimDuration;

/// A stored object plus minimal metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct Blob {
    data: Bytes,
    content_type: String,
}

impl Blob {
    /// Creates a blob with an explicit content type.
    pub fn new(data: impl Into<Bytes>, content_type: impl Into<String>) -> Blob {
        Blob { data: data.into(), content_type: content_type.into() }
    }

    /// The payload.
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// The declared content type, e.g. `"application/json"`.
    pub fn content_type(&self) -> &str {
        &self.content_type
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// FNV-1a hash of the payload bytes — a cheap, dependency-free content
    /// fingerprint. Callers that remember the hash at `put` time can detect
    /// a silently altered object at `get` time (the cache plane's L2 uses
    /// exactly this to refuse corrupt results). The content type is *not*
    /// hashed: integrity is about the bytes.
    pub fn content_hash(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = FNV_OFFSET;
        for &byte in self.data.iter() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
        hash
    }
}

impl From<Vec<u8>> for Blob {
    fn from(data: Vec<u8>) -> Blob {
        Blob::new(data, "application/octet-stream")
    }
}

impl From<&str> for Blob {
    fn from(data: &str) -> Blob {
        Blob::new(data.as_bytes().to_vec(), "text/plain")
    }
}

/// Errors from blob operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlobStoreError {
    /// The container does not exist.
    NoSuchContainer(String),
    /// The key does not exist in the container.
    NoSuchKey {
        /// The container that was queried.
        container: String,
        /// The missing key.
        key: String,
    },
    /// The backing object store is transiently refusing requests — the
    /// S3/Swift outage case. Retrying after `retry_after` may succeed.
    TransientlyUnavailable {
        /// The container whose backing store is down.
        container: String,
        /// How long the caller should wait before retrying.
        retry_after: SimDuration,
    },
    /// The fetched object failed its integrity check; a re-read may return
    /// a clean replica.
    Corrupted {
        /// The container holding the corrupt object.
        container: String,
        /// The corrupt key.
        key: String,
    },
}

impl fmt::Display for BlobStoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlobStoreError::NoSuchContainer(c) => write!(f, "no such container: {c}"),
            BlobStoreError::NoSuchKey { container, key } => {
                write!(f, "no such key: {container}/{key}")
            }
            BlobStoreError::TransientlyUnavailable { container, retry_after } => {
                write!(
                    f,
                    "blob store for {container} transiently unavailable; retry after {retry_after}"
                )
            }
            BlobStoreError::Corrupted { container, key } => {
                write!(f, "corrupt object: {container}/{key}")
            }
        }
    }
}

impl std::error::Error for BlobStoreError {}

/// An in-memory container/key blob store with usage accounting.
///
/// # Examples
///
/// ```
/// use evop_xcloud::{Blob, BlobStore};
///
/// let mut store = BlobStore::new();
/// store.create_container("model-library");
/// store.put("model-library", "topmodel-eden.img", Blob::from("…image bytes…")).unwrap();
///
/// let blob = store.get("model-library", "topmodel-eden.img").unwrap();
/// assert_eq!(blob.content_type(), "text/plain");
/// assert!(store.total_bytes() > 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlobStore {
    containers: BTreeMap<String, BTreeMap<String, Blob>>,
}

impl BlobStore {
    /// Creates an empty store.
    pub fn new() -> BlobStore {
        BlobStore::default()
    }

    /// Creates a container; creating an existing container is a no-op.
    pub fn create_container(&mut self, name: impl Into<String>) {
        self.containers.entry(name.into()).or_default();
    }

    /// `true` if the container exists.
    pub fn has_container(&self, name: &str) -> bool {
        self.containers.contains_key(name)
    }

    /// Stores a blob, replacing any previous value. Returns the previous
    /// blob, if any.
    ///
    /// # Errors
    ///
    /// Returns [`BlobStoreError::NoSuchContainer`] if the container was
    /// never created.
    pub fn put(
        &mut self,
        container: &str,
        key: impl Into<String>,
        blob: Blob,
    ) -> Result<Option<Blob>, BlobStoreError> {
        let c = self
            .containers
            .get_mut(container)
            .ok_or_else(|| BlobStoreError::NoSuchContainer(container.to_owned()))?;
        Ok(c.insert(key.into(), blob))
    }

    /// Fetches a blob.
    ///
    /// # Errors
    ///
    /// Returns [`BlobStoreError::NoSuchContainer`] or
    /// [`BlobStoreError::NoSuchKey`].
    pub fn get(&self, container: &str, key: &str) -> Result<&Blob, BlobStoreError> {
        let c = self
            .containers
            .get(container)
            .ok_or_else(|| BlobStoreError::NoSuchContainer(container.to_owned()))?;
        c.get(key).ok_or_else(|| BlobStoreError::NoSuchKey {
            container: container.to_owned(),
            key: key.to_owned(),
        })
    }

    /// Deletes a blob, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`BlobStoreError::NoSuchContainer`] or
    /// [`BlobStoreError::NoSuchKey`].
    pub fn delete(&mut self, container: &str, key: &str) -> Result<Blob, BlobStoreError> {
        let c = self
            .containers
            .get_mut(container)
            .ok_or_else(|| BlobStoreError::NoSuchContainer(container.to_owned()))?;
        c.remove(key).ok_or_else(|| BlobStoreError::NoSuchKey {
            container: container.to_owned(),
            key: key.to_owned(),
        })
    }

    /// Lists keys in a container, in sorted order.
    ///
    /// # Errors
    ///
    /// Returns [`BlobStoreError::NoSuchContainer`] if absent.
    pub fn list(&self, container: &str) -> Result<Vec<&str>, BlobStoreError> {
        let c = self
            .containers
            .get(container)
            .ok_or_else(|| BlobStoreError::NoSuchContainer(container.to_owned()))?;
        Ok(c.keys().map(String::as_str).collect())
    }

    /// Total bytes stored across all containers.
    pub fn total_bytes(&self) -> usize {
        self.containers.values().flat_map(|c| c.values()).map(Blob::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete_round_trip() {
        let mut store = BlobStore::new();
        store.create_container("data");
        assert!(store.put("data", "k", Blob::from("hello")).unwrap().is_none());
        assert_eq!(store.get("data", "k").unwrap().data().as_ref(), b"hello");
        let removed = store.delete("data", "k").unwrap();
        assert_eq!(removed.len(), 5);
        assert!(matches!(store.get("data", "k"), Err(BlobStoreError::NoSuchKey { .. })));
    }

    #[test]
    fn put_replaces_and_returns_previous() {
        let mut store = BlobStore::new();
        store.create_container("data");
        store.put("data", "k", Blob::from("one")).unwrap();
        let prev = store.put("data", "k", Blob::from("two")).unwrap().unwrap();
        assert_eq!(prev.data().as_ref(), b"one");
        assert_eq!(store.get("data", "k").unwrap().data().as_ref(), b"two");
    }

    #[test]
    fn missing_container_errors() {
        let mut store = BlobStore::new();
        assert!(matches!(
            store.put("ghost", "k", Blob::from("x")),
            Err(BlobStoreError::NoSuchContainer(_))
        ));
        assert!(matches!(store.list("ghost"), Err(BlobStoreError::NoSuchContainer(_))));
    }

    #[test]
    fn list_and_accounting() {
        let mut store = BlobStore::new();
        store.create_container("lib");
        store.put("lib", "b", Blob::from("22")).unwrap();
        store.put("lib", "a", Blob::from("4444")).unwrap();
        assert_eq!(store.list("lib").unwrap(), ["a", "b"]);
        assert_eq!(store.total_bytes(), 6);
    }

    #[test]
    fn create_container_is_idempotent() {
        let mut store = BlobStore::new();
        store.create_container("x");
        store.put("x", "k", Blob::from("v")).unwrap();
        store.create_container("x");
        assert!(store.get("x", "k").is_ok(), "recreating must not wipe contents");
    }

    #[test]
    fn content_hash_matches_reference_fnv1a() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(Blob::from("").content_hash(), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Blob::from("a").content_hash(), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(Blob::from("foobar").content_hash(), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn content_hash_ignores_content_type_but_not_bytes() {
        let a = Blob::new(b"payload".to_vec(), "application/json");
        let b = Blob::new(b"payload".to_vec(), "text/plain");
        let c = Blob::new(b"payloae".to_vec(), "application/json");
        assert_eq!(a.content_hash(), b.content_hash());
        assert_ne!(a.content_hash(), c.content_hash());
    }
}
