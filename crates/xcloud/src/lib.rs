//! Cross-cloud abstraction — the reproduction's analogue of jclouds.
//!
//! "In an effort to promote portability and to avoid being tied in to one
//! provider, we decided to use the cross-cloud library jclouds … This open
//! source software provides abstractions across many of the widely used
//! cloud solutions" (paper §IV-A). This crate provides that layer over the
//! [`evop_cloud`] simulator:
//!
//! * [`ComputeService`] — provider-agnostic provisioning: callers describe
//!   *what* they need (a [`NodeTemplate`]); a [`PlacementPolicy`] decides
//!   *where* it goes;
//! * placement policies matching the paper's examples — the default
//!   [`PrivateFirst`] ("all computations on private cloud until saturation")
//!   and [`SplitByImageKind`] ("streamlined models to AWS and experimental
//!   ones to the private cloud"), hot-swappable without touching callers
//!   (experiment E8);
//! * [`BlobStore`] — the uniform storage half of the abstraction (the
//!   S3/Swift analogue) used for warehoused datasets and model-library
//!   images.
//!
//! # Examples
//!
//! ```
//! use evop_cloud::{CloudSim, MachineImage, Provider};
//! use evop_xcloud::{ComputeService, NodeTemplate, PrivateFirst};
//!
//! let mut sim = CloudSim::new(1);
//! sim.register_provider(Provider::private_openstack("campus", 4));
//! sim.register_provider(Provider::public_aws("aws"));
//! let image = MachineImage::streamlined("topmodel", ["topmodel"]);
//! sim.register_image(image.clone());
//!
//! let mut compute = ComputeService::new(PrivateFirst);
//! compute.register_provider("campus");
//! compute.register_provider("aws");
//! let template = NodeTemplate::new("m1.large", image.id().clone());
//!
//! // First instance fits on campus; the second bursts to AWS.
//! let a = compute.provision(&mut sim, &template).unwrap();
//! let b = compute.provision(&mut sim, &template).unwrap();
//! assert_eq!(sim.instance(a).unwrap().provider(), "campus");
//! assert_eq!(sim.instance(b).unwrap().provider(), "aws");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blobstore;
mod compute;
mod policy;
mod retry;

pub use blobstore::{Blob, BlobStore, BlobStoreError};
pub use compute::{ComputeService, NodeTemplate, XcloudError};
pub use policy::{
    CheapestFirst, PlacementPolicy, PrivateFirst, PrivateOnly, ProviderView, PublicOnly,
    SplitByImageKind,
};
pub use retry::{retry_with, CircuitBreaker, RetryOutcome, RetryPolicy, Retryable};
