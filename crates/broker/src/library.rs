//! The Model Library: the registry of executable model images.
//!
//! "The Model Library (ML) is populated by domain specialists … The outcome
//! of this process is a VM image optimised to run a fine tuned set of models
//! that are exposed as web services and equipped with all required data.
//! This streamlined execution bundle is then stored in the ML to be
//! instantiated upon demand. … The alternative path is to use a generic
//! image from the ML to serve as a model incubator" (paper §IV-D).

use std::collections::BTreeMap;

use evop_cloud::{ImageId, MachineImage};

/// Metadata for one published library image.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryEntry {
    image: MachineImage,
    /// Catchment the bundled calibration targets (streamlined images),
    /// e.g. `"eden"`.
    calibrated_for: Option<String>,
    /// Who published the image.
    publisher: String,
}

impl LibraryEntry {
    /// The machine image.
    pub fn image(&self) -> &MachineImage {
        &self.image
    }

    /// The catchment the bundle was calibrated for, if any.
    pub fn calibrated_for(&self) -> Option<&str> {
        self.calibrated_for.as_deref()
    }

    /// The publishing specialist or team.
    pub fn publisher(&self) -> &str {
        &self.publisher
    }
}

/// The library itself: publish and resolve images.
///
/// # Examples
///
/// ```
/// use evop_broker::ModelLibrary;
///
/// let mut library = ModelLibrary::new();
/// library.publish_streamlined("topmodel-eden", ["topmodel"], "eden", "hydrology-team");
/// library.publish_incubator("incubator", "platform-team");
///
/// let best = library.image_for_model("topmodel", true).unwrap();
/// assert_eq!(best.as_str(), "topmodel-eden");
/// // Unknown models fall back to the incubator.
/// let fallback = library.image_for_model("swat", true).unwrap();
/// assert_eq!(fallback.as_str(), "incubator");
/// ```
#[derive(Debug, Clone, Default)]
pub struct ModelLibrary {
    entries: BTreeMap<ImageId, LibraryEntry>,
}

impl ModelLibrary {
    /// Creates an empty library.
    pub fn new() -> ModelLibrary {
        ModelLibrary::default()
    }

    /// Publishes a streamlined execution bundle.
    pub fn publish_streamlined<I, S>(
        &mut self,
        id: impl Into<String>,
        models: I,
        calibrated_for: impl Into<String>,
        publisher: impl Into<String>,
    ) -> ImageId
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let image = MachineImage::streamlined(id, models);
        let image_id = image.id().clone();
        self.entries.insert(
            image_id.clone(),
            LibraryEntry {
                image,
                calibrated_for: Some(calibrated_for.into()),
                publisher: publisher.into(),
            },
        );
        image_id
    }

    /// Publishes a generic incubator image.
    pub fn publish_incubator(
        &mut self,
        id: impl Into<String>,
        publisher: impl Into<String>,
    ) -> ImageId {
        let image = MachineImage::incubator(id);
        let image_id = image.id().clone();
        self.entries.insert(
            image_id.clone(),
            LibraryEntry { image, calibrated_for: None, publisher: publisher.into() },
        );
        image_id
    }

    /// All entries, sorted by image id.
    pub fn entries(&self) -> impl Iterator<Item = &LibraryEntry> {
        self.entries.values()
    }

    /// An entry by image id.
    pub fn entry(&self, id: &ImageId) -> Option<&LibraryEntry> {
        self.entries.get(id)
    }

    /// Number of published images.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is published.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Resolves the image to launch for `model`: a streamlined bundle
    /// providing it if one exists, otherwise (when `allow_incubator`) any
    /// incubator image.
    pub fn image_for_model(&self, model: &str, allow_incubator: bool) -> Option<ImageId> {
        if let Some(entry) = self.entries.values().find(|e| e.image.provides_model(model)) {
            return Some(entry.image.id().clone());
        }
        if allow_incubator {
            return self
                .entries
                .values()
                .find(|e| !e.image.kind().is_streamlined())
                .map(|e| e.image.id().clone());
        }
        None
    }

    /// Registers every library image with a cloud simulator so they can be
    /// launched.
    pub fn register_all(&self, sim: &mut evop_cloud::CloudSim) {
        for entry in self.entries.values() {
            sim.register_image(entry.image.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library() -> ModelLibrary {
        let mut lib = ModelLibrary::new();
        lib.publish_streamlined("topmodel-eden", ["topmodel"], "eden", "hydro");
        lib.publish_streamlined("fuse-bundle", ["fuse", "topmodel"], "eden", "hydro");
        lib.publish_incubator("incubator", "platform");
        lib
    }

    #[test]
    fn streamlined_preferred_over_incubator() {
        let lib = library();
        let id = lib.image_for_model("fuse", true).unwrap();
        assert_eq!(id.as_str(), "fuse-bundle");
    }

    #[test]
    fn incubator_fallback_is_gated() {
        let lib = library();
        assert_eq!(lib.image_for_model("swat", true).unwrap().as_str(), "incubator");
        assert!(lib.image_for_model("swat", false).is_none());
    }

    #[test]
    fn entries_carry_metadata() {
        let lib = library();
        let entry = lib.entry(&ImageId::new("topmodel-eden")).unwrap();
        assert_eq!(entry.calibrated_for(), Some("eden"));
        assert_eq!(entry.publisher(), "hydro");
        assert!(lib.entry(&ImageId::new("ghost")).is_none());
        assert_eq!(lib.len(), 3);
    }

    #[test]
    fn register_all_makes_images_launchable() {
        let lib = library();
        let mut sim = evop_cloud::CloudSim::new(1);
        sim.register_provider(evop_cloud::Provider::private_openstack("campus", 8));
        lib.register_all(&mut sim);
        assert!(sim.launch("campus", "m1.small", &ImageId::new("topmodel-eden")).is_ok());
    }
}
