//! Broker configuration.

use evop_sim::SimDuration;
use evop_xcloud::RetryPolicy;

/// Tunables for the Infrastructure Manager.
///
/// The defaults reproduce the paper's deployment: a modest private OpenStack
/// cloud, an unbounded AWS account, private-first placement with
/// cloudbursting, and health checks driving failure recovery.
#[derive(Debug, Clone, PartialEq)]
pub struct BrokerConfig {
    /// Total vCPUs of the private cloud.
    pub private_capacity_vcpus: u32,
    /// Flavour used for model-serving instances.
    pub instance_type: String,
    /// Concurrent user sessions an instance can serve per vCPU.
    pub sessions_per_vcpu: u32,
    /// How often the Load Balancer samples instance health.
    pub check_interval: SimDuration,
    /// Consecutive bad health samples before an instance is declared
    /// failed.
    pub consecutive_bad_samples: u32,
    /// Scale up when fewer than this many session slots remain free.
    pub scale_up_headroom_slots: u32,
    /// Scale down when more than this many slots sit free.
    pub scale_down_surplus_slots: u32,
    /// Idle, pre-booted instances to keep warm (the paper's "preemptively
    /// bootstrapping cloud instances" optimisation; 0 disables it).
    pub warm_pool_size: u32,
    /// Whether experimental (incubator) images are allowed when no
    /// streamlined image provides a model.
    pub allow_incubator_fallback: bool,
    /// When set, instances fail spontaneously with this mean time between
    /// failures (chaos testing); `None` disables spontaneous failures.
    pub instance_mtbf: Option<SimDuration>,
    /// Backoff schedule the broker follows when provisioning fails
    /// *transiently* (provider API fault or open circuit breaker). Retries
    /// are paced across control-loop ticks, so a fault burst is waited out
    /// instead of hammered.
    pub provision_retry: RetryPolicy,
}

impl Default for BrokerConfig {
    fn default() -> BrokerConfig {
        BrokerConfig {
            private_capacity_vcpus: 16,
            instance_type: "m1.medium".to_owned(),
            sessions_per_vcpu: 4,
            check_interval: SimDuration::from_secs(15),
            consecutive_bad_samples: 3,
            scale_up_headroom_slots: 2,
            scale_down_surplus_slots: 20,
            warm_pool_size: 0,
            allow_incubator_fallback: true,
            instance_mtbf: None,
            provision_retry: RetryPolicy::default(),
        }
    }
}

impl BrokerConfig {
    /// Session slots per instance for the configured flavour.
    ///
    /// An unknown flavour (rejected by [`BrokerConfig::validate`], so
    /// unreachable through a constructed broker) is conservatively sized
    /// at one vCPU rather than panicking.
    pub fn slots_per_instance(&self) -> u32 {
        let vcpus = evop_cloud::InstanceType::lookup(&self.instance_type).map_or(1, |t| t.vcpus());
        vcpus * self.sessions_per_vcpu
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message for a zero capacity, unknown flavour, zero
    /// sessions-per-vCPU or zero check interval.
    pub fn validate(&self) -> Result<(), String> {
        if self.private_capacity_vcpus == 0 {
            return Err("private capacity must be positive".to_owned());
        }
        if evop_cloud::InstanceType::lookup(&self.instance_type).is_none() {
            return Err(format!("unknown instance type: {}", self.instance_type));
        }
        if self.sessions_per_vcpu == 0 {
            return Err("sessions per vCPU must be positive".to_owned());
        }
        if self.check_interval.is_zero() {
            return Err("check interval must be positive".to_owned());
        }
        if self.consecutive_bad_samples == 0 {
            return Err("consecutive bad samples must be positive".to_owned());
        }
        if self.instance_mtbf.is_some_and(SimDuration::is_zero) {
            return Err("instance MTBF must be positive when set".to_owned());
        }
        self.provision_retry.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(BrokerConfig::default().validate().is_ok());
        assert_eq!(BrokerConfig::default().slots_per_instance(), 8);
    }

    #[test]
    fn bad_configs_are_caught() {
        let c = BrokerConfig { private_capacity_vcpus: 0, ..BrokerConfig::default() };
        assert!(c.validate().is_err());

        let c =
            BrokerConfig { instance_type: "m9.imaginary".to_owned(), ..BrokerConfig::default() };
        assert!(c.validate().is_err());

        let c = BrokerConfig { check_interval: SimDuration::ZERO, ..BrokerConfig::default() };
        assert!(c.validate().is_err());
    }
}
