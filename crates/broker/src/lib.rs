//! The EVOp Infrastructure Manager: Model Library, Resource Broker and Load
//! Balancer.
//!
//! Paper §IV-D describes the control plane this crate implements:
//!
//! * the **Model Library** holds streamlined execution bundles and generic
//!   incubator images ([`ModelLibrary`]);
//! * the **Resource Broker** answers a user's widget connection with "an
//!   address of a cloud instance that is suitable for the type of
//!   computation required, along with some session information", pushing
//!   later session updates over a WebSocket-style duplex channel
//!   ([`Broker::connect`]);
//! * the **Load Balancer** "monitors the health status of running instances
//!   with two objectives: minimise costs and maintain instance
//!   responsiveness" — serving from the private cloud until saturation,
//!   cloudbursting to the public cloud, retreating on underuse, detecting
//!   failure signatures (pegged CPU; inbound-without-outbound traffic) and
//!   migrating users to replacement instances (the [`Broker::advance`]
//!   control loop).
//!
//! # Examples
//!
//! ```
//! use evop_broker::{Broker, BrokerConfig};
//! use evop_sim::SimDuration;
//!
//! let mut broker = Broker::new(BrokerConfig::default(), 42);
//! let session = broker.connect("alice", "topmodel").unwrap();
//! broker.advance(SimDuration::from_secs(300));
//! assert!(broker.session(session).unwrap().instance().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod broker;
mod config;
mod library;
mod session;

pub use broker::{
    Broker, BrokerError, BrokerEvent, ProviderMix, PRIVATE_PROVIDER, PUBLIC_PROVIDER,
};
pub use config::BrokerConfig;
pub use library::{LibraryEntry, ModelLibrary};
pub use session::{SessionId, SessionState, UserSession};
