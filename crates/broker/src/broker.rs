//! The Resource Broker + Load Balancer control loop.

use std::collections::BTreeMap;
use std::fmt;

use evop_cloud::{
    CloudError, CloudSim, ImageId, Instance, InstanceId, InstanceState, JobId, Provider,
    ProviderKind,
};
use evop_obs::{MetricsRegistry, TraceContext, Tracer};
use evop_sim::{SimDuration, SimTime};
use evop_xcloud::{ComputeService, NodeTemplate, PrivateFirst, XcloudError};

use crate::config::BrokerConfig;
use crate::library::ModelLibrary;
use crate::session::{SessionId, SessionRegistry, SessionState, UserSession};

/// Name of the private provider the broker sets up.
pub const PRIVATE_PROVIDER: &str = "campus";
/// Name of the public provider the broker sets up.
pub const PUBLIC_PROVIDER: &str = "aws";

/// Errors from broker operations.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerError {
    /// The session id is unknown.
    UnknownSession(SessionId),
    /// The session has no serving instance and is not waiting for one
    /// (closed, or never bound).
    SessionNotServing(SessionId),
    /// The session is between instances — its old instance was lost and
    /// the control loop is re-binding it. Transient by construction:
    /// retrying after `retry_after` (one control tick) will usually find
    /// the session serving again.
    TransientlyUnavailable {
        /// The affected session.
        session: SessionId,
        /// How long the caller should wait before retrying — the broker's
        /// control-loop interval, the soonest a re-bind can happen.
        retry_after: SimDuration,
    },
    /// No library image can serve the requested model.
    NoImageForModel(String),
    /// The configuration failed validation.
    InvalidConfig(String),
    /// An underlying cloud error.
    Cloud(CloudError),
    /// A cross-cloud provisioning error.
    Provision(XcloudError),
}

impl fmt::Display for BrokerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BrokerError::UnknownSession(s) => write!(f, "unknown session: {s}"),
            BrokerError::SessionNotServing(s) => write!(f, "session not serving: {s}"),
            BrokerError::TransientlyUnavailable { session, retry_after } => {
                write!(
                    f,
                    "{session} transiently unavailable (re-binding); retry after {retry_after}"
                )
            }
            BrokerError::NoImageForModel(m) => write!(f, "no library image provides model: {m}"),
            BrokerError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            BrokerError::Cloud(e) => write!(f, "cloud error: {e}"),
            BrokerError::Provision(e) => write!(f, "provisioning error: {e}"),
        }
    }
}

impl std::error::Error for BrokerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BrokerError::Cloud(e) => Some(e),
            BrokerError::Provision(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CloudError> for BrokerError {
    fn from(e: CloudError) -> BrokerError {
        BrokerError::Cloud(e)
    }
}

impl From<XcloudError> for BrokerError {
    fn from(e: XcloudError) -> BrokerError {
        BrokerError::Provision(e)
    }
}

/// Operationally interesting moments, recorded for the experiment
/// harnesses.
#[derive(Debug, Clone, PartialEq)]
pub enum BrokerEvent {
    /// A new instance was provisioned.
    ScaledUp {
        /// When.
        at: SimTime,
        /// The new instance.
        instance: InstanceId,
        /// Its provider.
        provider: String,
        /// `true` when this launch overflowed to the public cloud.
        cloudburst: bool,
    },
    /// A surplus instance was drained and terminated.
    ScaledDown {
        /// When.
        at: SimTime,
        /// The removed instance.
        instance: InstanceId,
        /// Its provider.
        provider: String,
    },
    /// Health monitoring declared an instance failed.
    FailureDetected {
        /// When (detection, not occurrence).
        at: SimTime,
        /// The failed instance.
        instance: InstanceId,
        /// The metric signature that triggered detection.
        signature: String,
    },
    /// A session was moved between instances.
    SessionMigrated {
        /// When.
        at: SimTime,
        /// The session.
        session: SessionId,
        /// Where it was.
        from: InstanceId,
        /// Where it is now.
        to: InstanceId,
    },
    /// A connection was served instantly from the warm pool.
    WarmPoolHit {
        /// When.
        at: SimTime,
        /// The session served.
        session: SessionId,
    },
    /// A session lost its instance and no replacement was available on the
    /// spot: it went back to the waiting queue for a later control tick
    /// (graceful degradation instead of a stranded binding).
    SessionRequeued {
        /// When.
        at: SimTime,
        /// The session put back in the queue.
        session: SessionId,
        /// The instance it lost.
        from: InstanceId,
    },
    /// Provisioning hit a transient provider fault; the broker backed off
    /// instead of retrying immediately.
    ProvisionFault {
        /// When.
        at: SimTime,
        /// What the providers reported.
        reason: String,
        /// How long the broker will wait before the next attempt.
        retry_after: SimDuration,
    },
    /// A request identical to an in-flight one attached as a singleflight
    /// follower instead of submitting a duplicate model run — the cache
    /// plane's coalescer reporting through the broker's event log.
    RequestCoalesced {
        /// When.
        at: SimTime,
        /// Canonical cache-key label the requests collided on.
        key: String,
        /// The session whose job everyone is riding.
        leader: SessionId,
        /// The session that just attached.
        follower: SessionId,
        /// Followers now attached to this key (including this one).
        followers: u64,
    },
}

impl BrokerEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match self {
            BrokerEvent::ScaledUp { at, .. }
            | BrokerEvent::ScaledDown { at, .. }
            | BrokerEvent::FailureDetected { at, .. }
            | BrokerEvent::SessionMigrated { at, .. }
            | BrokerEvent::WarmPoolHit { at, .. }
            | BrokerEvent::SessionRequeued { at, .. }
            | BrokerEvent::ProvisionFault { at, .. }
            | BrokerEvent::RequestCoalesced { at, .. } => *at,
        }
    }
}

/// Instance counts by provider kind at a point in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProviderMix {
    /// Capacity-holding instances on the private cloud.
    pub private_instances: usize,
    /// Capacity-holding instances on the public cloud.
    pub public_instances: usize,
}

/// The EVOp Infrastructure Manager.
///
/// Owns the hybrid cloud, the model library and all user sessions, and runs
/// the Load Balancer control loop inside [`Broker::advance`].
#[derive(Debug)]
pub struct Broker {
    cloud: CloudSim,
    compute: ComputeService,
    library: ModelLibrary,
    sessions: SessionRegistry,
    config: BrokerConfig,
    bad_samples: BTreeMap<InstanceId, u32>,
    warm: Vec<InstanceId>,
    events: Vec<BrokerEvent>,
    default_image: ImageId,
    /// Always-on observability. Pure observation — attaching a shared
    /// tracer/registry (or keeping the private defaults) never touches the
    /// RNG or the event order, so experiment results are unchanged.
    tracer: Tracer,
    metrics: MetricsRegistry,
    /// Pacing state while provisioning is backing off from a transient
    /// provider fault; `None` when the last attempt succeeded (or failed
    /// for capacity, which is not transient).
    provision_backoff: Option<ProvisionBackoff>,
    /// Seed for the deterministic backoff jitter (derived from the
    /// construction seed, varied per fault burst).
    retry_seed: u64,
    /// How many distinct fault bursts provisioning has backed off from.
    fault_bursts: u64,
}

/// Where the broker is in the current backoff schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProvisionBackoff {
    /// 0-based retry index into the jittered schedule.
    attempt: u32,
    /// No provisioning attempt before this instant.
    next_try_at: SimTime,
}

impl Broker {
    /// Creates a broker with the default model library (streamlined
    /// TOPMODEL and FUSE bundles calibrated on the Eden catchment, plus a
    /// generic incubator).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation — configuration is programmer
    /// input.
    pub fn new(config: BrokerConfig, seed: u64) -> Broker {
        let mut library = ModelLibrary::new();
        library.publish_streamlined("topmodel-eden", ["topmodel"], "eden", "hydrology-team");
        library.publish_streamlined("fuse-eden", ["fuse"], "eden", "hydrology-team");
        library.publish_incubator("model-incubator", "platform-team");
        Broker::with_library(config, library, seed)
    }

    /// Creates a broker with an explicit model library.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation or the library is empty.
    pub fn with_library(config: BrokerConfig, library: ModelLibrary, seed: u64) -> Broker {
        Broker::with_observability(config, library, seed, Tracer::new(), MetricsRegistry::new())
    }

    /// Creates a broker reporting into shared observability handles — how
    /// the portal stack gets one collector across router, broker and cloud.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation or the library is empty.
    pub fn with_observability(
        config: BrokerConfig,
        library: ModelLibrary,
        seed: u64,
        tracer: Tracer,
        metrics: MetricsRegistry,
    ) -> Broker {
        match Broker::try_with_observability(config, library, seed, tracer, metrics) {
            Ok(broker) => broker,
            // evop-lint: allow(rob-panic) -- documented infallible wrapper
            Err(e) => panic!("broker construction failed: {e}"),
        }
    }

    /// The fallible form of [`Broker::with_observability`]: invalid
    /// configuration or an empty library come back as
    /// [`BrokerError::InvalidConfig`] instead of panicking, so services
    /// assembling a broker from user-supplied configuration can surface
    /// the problem as a response rather than a crash.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::InvalidConfig`] when `config` fails
    /// validation or `library` is empty.
    pub fn try_with_observability(
        config: BrokerConfig,
        library: ModelLibrary,
        seed: u64,
        tracer: Tracer,
        metrics: MetricsRegistry,
    ) -> Result<Broker, BrokerError> {
        config.validate().map_err(BrokerError::InvalidConfig)?;
        if library.is_empty() {
            return Err(BrokerError::InvalidConfig("model library must not be empty".to_owned()));
        }

        let mut cloud = CloudSim::new(seed);
        let mut private =
            Provider::private_openstack(PRIVATE_PROVIDER, config.private_capacity_vcpus);
        let mut public = Provider::public_aws(PUBLIC_PROVIDER);
        if let Some(mtbf) = config.instance_mtbf {
            private = private.with_mtbf(mtbf);
            public = public.with_mtbf(mtbf);
            cloud.enable_random_failures(true);
        }
        cloud.register_provider(private);
        cloud.register_provider(public);
        cloud.set_observability(tracer.clone(), metrics.clone());
        library.register_all(&mut cloud);

        let mut compute = ComputeService::new(PrivateFirst);
        compute.register_provider(PRIVATE_PROVIDER);
        compute.register_provider(PUBLIC_PROVIDER);

        let default_image = library
            .entries()
            .find(|e| e.image().kind().is_streamlined())
            .or_else(|| library.entries().next())
            .map(|e| e.image().id().clone())
            .ok_or_else(|| {
                BrokerError::InvalidConfig("model library must not be empty".to_owned())
            })?;

        let mut broker = Broker {
            cloud,
            compute,
            library,
            sessions: SessionRegistry::new(),
            config,
            bad_samples: BTreeMap::new(),
            warm: Vec::new(),
            events: Vec::new(),
            default_image,
            tracer,
            metrics,
            provision_backoff: None,
            retry_seed: seed ^ 0x9e37_79b9_7f4a_7c15,
            fault_bursts: 0,
        };
        broker.replenish_warm_pool();
        Ok(broker)
    }

    /// The tracer this broker (and its cloud) reports spans into.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The metrics registry this broker (and its cloud) reports into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.cloud.now()
    }

    /// Read access to the underlying cloud (instances, metrics, costs).
    pub fn cloud(&self) -> &CloudSim {
        &self.cloud
    }

    /// The simulation kernel's hot-path counters (events scheduled /
    /// delivered / cancelled, queue depth high-water mark, largest
    /// same-tick batch) — the denominator side of the perf plane's
    /// events/sec figures.
    pub fn kernel_counters(&self) -> evop_sim::KernelCounters {
        self.cloud.kernel_counters()
    }

    /// The model library.
    pub fn library(&self) -> &ModelLibrary {
        &self.library
    }

    /// The configuration in force.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// All recorded operational events, oldest first.
    pub fn events(&self) -> &[BrokerEvent] {
        &self.events
    }

    /// A session by id.
    pub fn session(&self, id: SessionId) -> Option<&UserSession> {
        self.sessions.get(id)
    }

    /// All sessions.
    pub fn sessions(&self) -> impl Iterator<Item = &UserSession> {
        self.sessions.iter()
    }

    /// Number of sessions in a state.
    pub fn session_count(&self, state: SessionState) -> usize {
        self.sessions.count(state)
    }

    /// Total accumulated cost.
    pub fn total_cost(&self) -> f64 {
        self.cloud.total_cost()
    }

    /// Accumulated cost per provider.
    pub fn cost_by_provider(&self) -> BTreeMap<String, f64> {
        self.cloud.cost_by_provider()
    }

    /// Capacity-holding instances by provider kind.
    pub fn provider_mix(&self) -> ProviderMix {
        let mut mix = ProviderMix::default();
        for inst in self.cloud.instances().filter(|i| i.occupies_capacity()) {
            match self.cloud.provider(inst.provider()).map(Provider::kind) {
                Some(ProviderKind::Private) => mix.private_instances += 1,
                Some(ProviderKind::Public) => mix.public_instances += 1,
                None => {}
            }
        }
        mix
    }

    // ------------------------------------------------------------------
    // Resource Broker: user-facing operations.
    // ------------------------------------------------------------------

    /// Handles a user opening a modelling widget: creates a session and
    /// binds it to a suitable instance (existing, warm, or newly
    /// provisioned), pushing the address over the session's duplex channel.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::NoImageForModel`] when the library cannot
    /// serve the model at all. Capacity shortfalls do not error: the session
    /// stays `Waiting` and is bound by a later control-loop pass.
    pub fn connect(&mut self, user: &str, model: &str) -> Result<SessionId, BrokerError> {
        self.connect_with_context(user, model, None)
    }

    /// [`Broker::connect`] joined to a caller's trace context.
    ///
    /// The connection is recorded as a `broker.connect` span — a child of
    /// `ctx` when given, a fresh trace otherwise — and that span's context
    /// becomes the session's: later binds, boots, migrations and push
    /// updates all land on the same timeline.
    ///
    /// # Errors
    ///
    /// As for [`Broker::connect`].
    pub fn connect_with_context(
        &mut self,
        user: &str,
        model: &str,
        ctx: Option<&TraceContext>,
    ) -> Result<SessionId, BrokerError> {
        let span = match ctx {
            Some(ctx) => self.tracer.start_span("broker.connect", ctx),
            None => self.tracer.start_trace("broker.connect"),
        };
        span.attr("user", user);
        span.attr("model", model);

        let image = match self.library.image_for_model(model, self.config.allow_incubator_fallback)
        {
            Some(image) => image,
            None => {
                span.attr("outcome", "no-image");
                span.finish();
                return Err(BrokerError::NoImageForModel(model.to_owned()));
            }
        };
        let session = self.sessions.open(user, model, self.cloud.now());
        span.attr("session", session.to_string());
        if let Some(s) = self.sessions.get_mut(session) {
            s.set_trace_context(span.context());
        }
        self.try_bind(session, &image);
        span.finish();
        Ok(session)
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::UnknownSession`] for a bad id.
    pub fn disconnect(&mut self, id: SessionId) -> Result<(), BrokerError> {
        self.sessions.get_mut(id).ok_or(BrokerError::UnknownSession(id))?.close();
        Ok(())
    }

    /// Submits a model run on behalf of a session to its serving instance.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::TransientlyUnavailable`] (with a retry-after
    /// hint) when the session is between instances awaiting re-bind, when a
    /// provider API fault refuses the submission, or when the serving
    /// instance has failed but has not yet been condemned by the health
    /// checks. Returns [`BrokerError::SessionNotServing`] when the session
    /// is closed, or a [`BrokerError::Cloud`] error otherwise.
    pub fn run_model(&mut self, id: SessionId, work: SimDuration) -> Result<JobId, BrokerError> {
        self.run_model_with_context(id, work, None)
    }

    /// [`Broker::run_model`] joined to a caller's trace context.
    ///
    /// The underlying `model.run` span parents under `ctx` when given, and
    /// otherwise under the session's own context (set at connect time).
    ///
    /// # Errors
    ///
    /// As for [`Broker::run_model`].
    pub fn run_model_with_context(
        &mut self,
        id: SessionId,
        work: SimDuration,
        ctx: Option<&TraceContext>,
    ) -> Result<JobId, BrokerError> {
        let result = self.run_model_inner(id, work, ctx);
        // The availability SLO reads these: "ok" and "transient" both mean
        // the platform answered (a retry hint is an answer), "hard" means
        // it did not.
        let outcome = match &result {
            Ok(_) => "ok",
            Err(BrokerError::TransientlyUnavailable { .. }) => "transient",
            Err(_) => "hard",
        };
        self.metrics.inc_counter("broker_submit_total", &[("outcome", outcome)]);
        result
    }

    fn run_model_inner(
        &mut self,
        id: SessionId,
        work: SimDuration,
        ctx: Option<&TraceContext>,
    ) -> Result<JobId, BrokerError> {
        let (instance, model, session_ctx) = {
            let session = self.sessions.get(id).ok_or(BrokerError::UnknownSession(id))?;
            let instance = match session.instance() {
                Some(instance) => instance,
                // A requeued session is *between* instances: that window is
                // transient (the next control tick re-binds it), unlike a
                // closed session which will never serve again.
                None if session.state() == SessionState::Waiting => {
                    return Err(BrokerError::TransientlyUnavailable {
                        session: id,
                        retry_after: self.config.check_interval,
                    });
                }
                None => return Err(BrokerError::SessionNotServing(id)),
            };
            (instance, session.model().to_owned(), session.trace_context())
        };
        let ctx = ctx.copied().or(session_ctx);
        match self.cloud.run_model_traced(instance, &model, work, ctx.as_ref()) {
            Ok(job) => Ok(job),
            // A provider API fault on submission is transient by
            // definition; surface it as such with the fault's own hint.
            Err(CloudError::ApiUnavailable { retry_after, .. }) => {
                Err(BrokerError::TransientlyUnavailable { session: id, retry_after })
            }
            // The instance has failed but the health checks haven't
            // condemned it yet: detection plus re-bind takes roughly one
            // full detection window, after which the session serves again.
            Err(CloudError::NotRunning(_)) => Err(BrokerError::TransientlyUnavailable {
                session: id,
                retry_after: SimDuration::from_millis(
                    self.config.check_interval.as_millis()
                        * u64::from(self.config.consecutive_bad_samples),
                ),
            }),
            Err(e) => Err(e.into()),
        }
    }

    /// Records that `follower` attached to `leader`'s in-flight run for
    /// cache key `key` instead of submitting a duplicate — the singleflight
    /// coalescer's reporting hook. Pushes a
    /// [`BrokerEvent::RequestCoalesced`] and counts
    /// `broker_coalesced_total`, so flash-crowd dedup shows up in the same
    /// event log and metrics as scaling decisions.
    pub fn note_coalesced(
        &mut self,
        key: &str,
        leader: SessionId,
        follower: SessionId,
        followers: u64,
    ) {
        let at = self.cloud.now();
        self.events.push(BrokerEvent::RequestCoalesced {
            at,
            key: key.to_owned(),
            leader,
            follower,
            followers,
        });
        self.metrics.inc_counter("broker_coalesced_total", &[]);
    }

    /// Attaches (or clears) a fault injector on the underlying cloud — how
    /// the chaos plane plugs into a fully assembled broker. Passing a
    /// benign injector leaves every simulation outcome unchanged.
    pub fn set_fault_injector(&mut self, injector: Option<Box<dyn evop_cloud::FaultInjector>>) {
        self.cloud.set_fault_injector(injector);
    }

    /// Injects an instance failure into the underlying cloud — the fault
    /// hook used by the recovery experiments.
    ///
    /// # Errors
    ///
    /// Returns [`BrokerError::Cloud`] for an unknown instance.
    pub fn inject_failure(
        &mut self,
        instance: InstanceId,
        mode: evop_cloud::FailureMode,
    ) -> Result<(), BrokerError> {
        Ok(self.cloud.inject_failure(instance, mode)?)
    }

    // ------------------------------------------------------------------
    // Load Balancer: the control loop.
    // ------------------------------------------------------------------

    /// Advances virtual time, running the Load Balancer at every check
    /// interval: health monitoring, failure recovery, waiting-session
    /// binding, scale-up (with cloudbursting) and scale-down (with
    /// migration back to the private cloud).
    ///
    /// Each slice between control ticks is drained through the kernel's
    /// whole-tick batch delivery (`CloudSim::advance_to`), so simultaneous
    /// boot/job/failure completions cost one queue operation per instant,
    /// not one per event.
    pub fn advance(&mut self, delta: SimDuration) {
        let target = self.cloud.now() + delta;
        loop {
            let next_check = self.cloud.now() + self.config.check_interval;
            if next_check > target {
                break;
            }
            self.cloud.advance_to(next_check);
            self.control_loop();
        }
        self.cloud.advance_to(target);
    }

    fn control_loop(&mut self) {
        self.health_check();
        self.bind_waiting();
        self.scale_up_if_needed();
        self.scale_down_if_surplus();
        self.rebalance_sessions();
        self.replenish_warm_pool();
        self.refresh_gauges();
    }

    /// Publishes point-in-time gauges after every control tick.
    fn refresh_gauges(&self) {
        let active = self.sessions.count(SessionState::Active) as f64;
        let waiting = self.sessions.count(SessionState::Waiting) as f64;
        self.metrics.set_gauge("broker_sessions", &[("state", "active")], active);
        self.metrics.set_gauge("broker_sessions", &[("state", "waiting")], waiting);
        let mix = self.provider_mix();
        self.metrics.set_gauge(
            "broker_instances",
            &[("kind", "private")],
            mix.private_instances as f64,
        );
        self.metrics.set_gauge(
            "broker_instances",
            &[("kind", "public")],
            mix.public_instances as f64,
        );
    }

    /// Records a migration once: experiment event, counter and — when the
    /// session is traced — an instantaneous `session.migrate` span.
    fn note_migration(
        &mut self,
        session: SessionId,
        from: InstanceId,
        to: InstanceId,
        reason: &str,
    ) {
        let now = self.cloud.now();
        self.events.push(BrokerEvent::SessionMigrated { at: now, session, from, to });
        self.metrics.inc_counter("broker_migrations_total", &[("reason", reason)]);
        if let Some(ctx) = self.sessions.get(session).and_then(UserSession::trace_context) {
            let span = self.tracer.start_span("session.migrate", &ctx);
            span.attr("from", from.to_string());
            span.attr("to", to.to_string());
            span.attr("reason", reason);
            span.event("push session-update");
            span.finish();
        }
    }

    /// "LB also monitors the state of active user sessions and redistributes
    /// users on running cloud instances accordingly" (§IV-D): when the load
    /// gap between the fullest and emptiest serving instance exceeds two
    /// slots, one session moves from the former to the latter.
    fn rebalance_sessions(&mut self) {
        let serving = self.serving_instances();
        if serving.len() < 2 {
            return;
        }
        let mut loads: Vec<(InstanceId, usize)> =
            serving.iter().map(|&id| (id, self.sessions.load(id))).collect();
        loads.sort_by_key(|&(_, load)| load);
        let Some(&(emptiest, min_load)) = loads.first() else { return };
        let Some(&(fullest, max_load)) = loads.last() else { return };
        if max_load <= min_load + 2 {
            return;
        }
        let Some(&session) = self.sessions.on_instance(fullest).first() else { return };
        let now = self.cloud.now();
        if let Some(s) = self.sessions.get_mut(session) {
            s.assign(emptiest, now, true);
        }
        self.note_migration(session, fullest, emptiest, "rebalance");
    }

    /// Samples metrics of every monitored instance and reacts to the
    /// paper's failure signatures.
    fn health_check(&mut self) {
        let now = self.cloud.now();
        let monitored: Vec<InstanceId> = self
            .cloud
            .instances()
            .filter(|i| {
                i.occupies_capacity() && !matches!(i.state(), InstanceState::Pending { .. })
            })
            .map(|i| i.id())
            .collect();

        let mut to_replace: Vec<(InstanceId, String)> = Vec::new();
        for id in monitored {
            let Ok(m) = self.cloud.metrics(id) else { continue };
            // A busy-but-healthy instance also shows 100 % CPU; what marks a
            // failure is saturation *without any responses leaving*. The
            // flatline test is NaN-safe: a corrupted (NaN) gauge never
            // reads as "traffic flowing".
            let flat_in = flatlined(m.net_in_kbps);
            let flat_out = flatlined(m.net_out_kbps);
            let signature = if flat_in && flat_out {
                Some("no network response")
            } else if m.cpu >= 0.999 && flat_out {
                Some("sustained CPU saturation")
            } else if m.net_in_kbps > 0.0 && flat_out {
                Some("inbound traffic with zero outbound")
            } else {
                None
            };
            match signature {
                Some(sig) => {
                    let bad = self.bad_samples.entry(id).or_insert(0);
                    *bad += 1;
                    if *bad >= self.config.consecutive_bad_samples {
                        to_replace.push((id, sig.to_owned()));
                    }
                }
                None => {
                    self.bad_samples.remove(&id);
                }
            }
        }

        for (bad, signature) in to_replace {
            self.bad_samples.remove(&bad);
            self.metrics
                .inc_counter("broker_failures_detected_total", &[("signature", &signature)]);
            // How long the instance was dead before the monitors condemned
            // it — the paper's §IV-D detection window, now a histogram the
            // SLO plane can query.
            if let Some(InstanceState::Failed { at, .. }) =
                self.cloud.instance(bad).map(Instance::state)
            {
                self.metrics.observe(
                    "broker_detection_latency_seconds",
                    &[],
                    now.saturating_since(at).as_secs_f64(),
                );
            }
            self.events.push(BrokerEvent::FailureDetected { at: now, instance: bad, signature });
            self.replace_instance(bad);
        }
    }

    /// Starts a replacement for a failed instance, migrates its sessions and
    /// terminates it.
    fn replace_instance(&mut self, bad: InstanceId) {
        let image = self
            .cloud
            .instance(bad)
            .map(|i| i.image().id().clone())
            .unwrap_or_else(|| self.default_image.clone());
        let failed_at = match self.cloud.instance(bad).map(Instance::state) {
            Some(InstanceState::Failed { at, .. }) => Some(at),
            _ => None,
        };
        let affected = self.sessions.on_instance(bad);

        // Prefer an existing instance with room; otherwise provision.
        let replacement = self
            .pick_instance_with_room(affected.len(), Some(bad))
            .or_else(|| self.provision(&image).ok());

        let now = self.cloud.now();
        match replacement {
            Some(to) => {
                // Failure-to-recovery outage: from the instant the instance
                // died to the instant its sessions are serving again.
                if let Some(at) = failed_at {
                    self.metrics.observe(
                        "broker_migration_outage_seconds",
                        &[],
                        now.saturating_since(at).as_secs_f64(),
                    );
                }
                for session in affected {
                    if let Some(s) = self.sessions.get_mut(session) {
                        s.assign(to, now, true);
                    }
                    self.note_migration(session, bad, to, "failure-recovery");
                }
            }
            // No room anywhere and provisioning failed (saturation or a
            // fault burst): requeue the orphans instead of leaving them
            // bound to a corpse. The next control tick — or the end of the
            // backoff — re-binds them.
            None => {
                for session in affected {
                    if let Some(s) = self.sessions.get_mut(session) {
                        s.unbind(now);
                    }
                    self.events.push(BrokerEvent::SessionRequeued { at: now, session, from: bad });
                    self.metrics.inc_counter("broker_requeues_total", &[]);
                    if let Some(ctx) =
                        self.sessions.get(session).and_then(UserSession::trace_context)
                    {
                        let span = self.tracer.start_span("session.requeue", &ctx);
                        span.attr("from", bad.to_string());
                        span.event("push session-update");
                        span.finish();
                    }
                }
            }
        }
        let _ = self.cloud.terminate(bad);
        self.warm.retain(|&w| w != bad);
    }

    /// Binds sessions still waiting for an instance.
    fn bind_waiting(&mut self) {
        for session in self.sessions.waiting() {
            let Some(model) = self.sessions.get(session).map(|s| s.model().to_owned()) else {
                continue;
            };
            if let Some(image) =
                self.library.image_for_model(&model, self.config.allow_incubator_fallback)
            {
                self.try_bind(session, &image);
            }
        }
    }

    /// Binds one session to the best available instance, using the warm
    /// pool or provisioning when needed.
    fn try_bind(&mut self, session: SessionId, image: &ImageId) {
        let now = self.cloud.now();
        let ctx = self.sessions.get(session).and_then(UserSession::trace_context);
        let (instance, how) = if let Some(existing) = self.pick_instance_with_room(1, None) {
            (Some(existing), "existing")
        } else if let Some(warm) = self.take_warm() {
            (Some(warm), "warm-pool")
        } else {
            // On provisioning failure the session stays Waiting; the next
            // control-loop pass retries.
            (self.provision_traced(image, ctx.as_ref()).ok(), "provisioned")
        };
        let Some(instance) = instance else { return };
        if let Some(s) = self.sessions.get_mut(session) {
            let first_activation = s.activated_at().is_none();
            s.assign(instance, now, false);
            if first_activation {
                if let Some(wait) = s.activation_wait() {
                    self.metrics.observe("broker_activation_wait_seconds", &[], wait.as_secs_f64());
                }
            }
        }
        if how == "warm-pool" {
            self.events.push(BrokerEvent::WarmPoolHit { at: now, session });
            self.metrics.inc_counter("broker_warm_pool_hits_total", &[]);
        }
        self.metrics.inc_counter("broker_binds_total", &[("how", how)]);
        if let Some(ctx) = &ctx {
            let span = self.tracer.start_span("session.bind", ctx);
            span.attr("instance", instance.to_string());
            span.attr("how", how);
            span.event("push session-update");
            span.finish();
        }
    }

    /// The serving instance (not warm, not failed) with the most free
    /// session slots, if any has at least `needed` free.
    fn pick_instance_with_room(
        &self,
        needed: usize,
        exclude: Option<InstanceId>,
    ) -> Option<InstanceId> {
        let slots = self.config.slots_per_instance() as usize;
        self.cloud
            .instances()
            .filter(|i| {
                i.occupies_capacity()
                    && !matches!(i.state(), InstanceState::Failed { .. })
                    && Some(i.id()) != exclude
                    && !self.warm.contains(&i.id())
            })
            .map(|i| (i.id(), slots.saturating_sub(self.sessions.load(i.id()))))
            .filter(|&(_, free)| free >= needed)
            .max_by_key(|&(_, free)| free)
            .map(|(id, _)| id)
    }

    fn take_warm(&mut self) -> Option<InstanceId> {
        while let Some(id) = self.warm.pop() {
            if self.cloud.instance(id).is_some_and(|i| {
                i.occupies_capacity() && !matches!(i.state(), InstanceState::Failed { .. })
            }) {
                return Some(id);
            }
        }
        None
    }

    fn provision(&mut self, image: &ImageId) -> Result<InstanceId, BrokerError> {
        self.provision_traced(image, None)
    }

    fn provision_traced(
        &mut self,
        image: &ImageId,
        ctx: Option<&TraceContext>,
    ) -> Result<InstanceId, BrokerError> {
        let now = self.cloud.now();
        // Still waiting out a fault burst? Don't touch the providers at
        // all — degrade to whatever capacity is already running.
        if let Some(backoff) = self.provision_backoff {
            if now < backoff.next_try_at {
                let retry_after = backoff.next_try_at.saturating_since(now);
                self.metrics.inc_counter("broker_provision_backoff_skips_total", &[]);
                return Err(BrokerError::Provision(XcloudError::Transient {
                    attempts: vec![(
                        "broker".to_owned(),
                        format!("backing off from provider fault; retry after {retry_after}"),
                    )],
                    retry_after,
                }));
            }
        }

        let template = NodeTemplate::new(self.config.instance_type.clone(), image.clone());
        self.cloud.set_launch_context(ctx.copied());
        let result = self.compute.provision(&mut self.cloud, &template);
        self.cloud.set_launch_context(None);
        let id = match result {
            Ok(id) => {
                if self.provision_backoff.take().is_some() {
                    // The burst is over and the retry paid off.
                    self.metrics
                        .inc_counter("broker_provision_retries_total", &[("outcome", "success")]);
                }
                id
            }
            Err(XcloudError::Transient { attempts, retry_after }) => {
                let attempt = match self.provision_backoff {
                    Some(b) => {
                        self.metrics.inc_counter(
                            "broker_provision_retries_total",
                            &[("outcome", "faulted")],
                        );
                        b.attempt.saturating_add(1)
                    }
                    None => {
                        self.fault_bursts += 1;
                        0
                    }
                };
                // Pace the next attempt by the jittered schedule (varied
                // per burst), never sooner than the providers asked for;
                // once the schedule is exhausted keep trying at its last,
                // capped interval — the broker never gives up on demand.
                let seed = self.retry_seed.wrapping_add(self.fault_bursts);
                let delays = self.config.provision_retry.jittered_delays(seed);
                let planned =
                    delays.get(attempt as usize).or(delays.last()).copied().unwrap_or(retry_after);
                let delay = planned.max(retry_after);
                self.provision_backoff =
                    Some(ProvisionBackoff { attempt, next_try_at: now + delay });
                let reason = attempts
                    .last()
                    .map(|(provider, why)| format!("{provider}: {why}"))
                    .unwrap_or_else(|| "no provider reachable".to_owned());
                self.metrics.inc_counter("broker_provision_faults_total", &[]);
                self.events.push(BrokerEvent::ProvisionFault {
                    at: now,
                    reason: reason.clone(),
                    retry_after: delay,
                });
                if let Some(ctx) = ctx {
                    let span = self.tracer.start_span("provision.fault", ctx);
                    span.attr("reason", reason);
                    span.attr("retry_after", delay.to_string());
                    span.finish();
                }
                return Err(BrokerError::Provision(XcloudError::Transient {
                    attempts,
                    retry_after: delay,
                }));
            }
            Err(other) => {
                // Saturation is not a fault: clear any stale backoff so
                // the next real fault starts a fresh schedule.
                if self.provision_backoff.take().is_some() {
                    self.metrics
                        .inc_counter("broker_provision_retries_total", &[("outcome", "capacity")]);
                }
                return Err(BrokerError::Provision(other));
            }
        };
        let provider = self.cloud.instance(id).map(|i| i.provider().to_owned()).unwrap_or_default();
        let cloudburst =
            self.cloud.provider(&provider).map(Provider::kind) == Some(ProviderKind::Public);
        self.metrics.inc_counter("broker_placements_total", &[("provider", &provider)]);
        if cloudburst {
            self.metrics.inc_counter("broker_cloudbursts_total", &[]);
        }
        self.events.push(BrokerEvent::ScaledUp {
            at: self.cloud.now(),
            instance: id,
            provider,
            cloudburst,
        });
        Ok(id)
    }

    /// Provisions when free serving slots drop below the headroom. Only
    /// acts under demand — an idle system keeps (at most) its warm pool.
    fn scale_up_if_needed(&mut self) {
        let demand =
            self.sessions.count(SessionState::Active) + self.sessions.count(SessionState::Waiting);
        if demand == 0 {
            return;
        }
        let free = self.total_free_slots();
        if free < self.config.scale_up_headroom_slots as usize {
            let image = self.default_image.clone();
            let _ = self.provision(&image);
        }
    }

    /// Drains and removes a surplus instance, public first — "This is
    /// reversed upon detecting underuse, migrating users back to use private
    /// instances" (paper §IV-D).
    fn scale_down_if_surplus(&mut self) {
        let free = self.total_free_slots();
        if free <= self.config.scale_down_surplus_slots as usize {
            return;
        }
        // Candidate: the least-loaded instance, public preferred.
        let candidate = self
            .serving_instances()
            .into_iter()
            .map(|id| {
                let is_public = self
                    .cloud
                    .instance(id)
                    .and_then(|i| self.cloud.provider(i.provider()))
                    .map(|p| p.kind() == ProviderKind::Public)
                    .unwrap_or(false);
                (id, is_public, self.sessions.load(id))
            })
            .min_by_key(|&(_, is_public, load)| (std::cmp::Reverse(is_public), load));

        let Some((victim, _, load)) = candidate else { return };
        if self.serving_instances().len() <= 1 {
            return; // never drain the last instance
        }
        // Everyone it serves must fit elsewhere.
        let room_elsewhere: usize = self
            .serving_instances()
            .iter()
            .filter(|&&id| id != victim)
            .map(|&id| {
                (self.config.slots_per_instance() as usize).saturating_sub(self.sessions.load(id))
            })
            .sum();
        if room_elsewhere < load {
            return;
        }

        let now = self.cloud.now();
        for session in self.sessions.on_instance(victim) {
            if let Some(to) = self.pick_instance_with_room(1, Some(victim)) {
                if let Some(s) = self.sessions.get_mut(session) {
                    s.assign(to, now, true);
                }
                self.note_migration(session, victim, to, "scale-down");
            }
        }
        let provider =
            self.cloud.instance(victim).map(|i| i.provider().to_owned()).unwrap_or_default();
        let _ = self.cloud.terminate(victim);
        self.metrics.inc_counter("broker_scale_downs_total", &[("provider", &provider)]);
        self.events.push(BrokerEvent::ScaledDown { at: now, instance: victim, provider });
    }

    fn replenish_warm_pool(&mut self) {
        self.warm.retain(|&id| {
            self.cloud.instance(id).is_some_and(|i| {
                i.occupies_capacity() && !matches!(i.state(), InstanceState::Failed { .. })
            })
        });
        // Warm instances stranded on the public cloud during a burst come
        // home once the private cloud has room again (idle public capacity
        // is pure cost).
        let itype_vcpus = evop_cloud::InstanceType::lookup(&self.config.instance_type)
            .map(|t| t.vcpus())
            .unwrap_or(1);
        let stranded: Vec<InstanceId> = self
            .warm
            .iter()
            .copied()
            .filter(|&id| {
                self.cloud
                    .instance(id)
                    .and_then(|i| self.cloud.provider(i.provider()))
                    .map(|p| p.kind() == ProviderKind::Public)
                    .unwrap_or(false)
            })
            .collect();
        for id in stranded {
            if self.cloud.free_vcpus(PRIVATE_PROVIDER).unwrap_or(0) >= itype_vcpus {
                let _ = self.cloud.terminate(id);
                self.warm.retain(|&w| w != id);
            }
        }
        while self.warm.len() < self.config.warm_pool_size as usize {
            let image = self.default_image.clone();
            match self.provision(&image) {
                Ok(id) => self.warm.push(id),
                Err(_) => break,
            }
        }
    }

    /// Instances serving sessions (capacity-holding, not failed, not warm).
    fn serving_instances(&self) -> Vec<InstanceId> {
        self.cloud
            .instances()
            .filter(|i| {
                i.occupies_capacity()
                    && !matches!(i.state(), InstanceState::Failed { .. })
                    && !self.warm.contains(&i.id())
            })
            .map(|i| i.id())
            .collect()
    }

    fn total_free_slots(&self) -> usize {
        let slots = self.config.slots_per_instance() as usize;
        self.serving_instances()
            .iter()
            .map(|&id| slots.saturating_sub(self.sessions.load(id)))
            .sum()
    }
}

/// NaN-safe zero test for a simulated traffic gauge: exact zeros (what the
/// simulator emits) and NaN (a corrupted gauge) both read as "no traffic",
/// so the health check never mistakes a poisoned metric for a healthy,
/// responding instance.
fn flatlined(kbps: f64) -> bool {
    kbps.is_nan() || kbps.abs() < f64::EPSILON
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_cloud::FailureMode;

    fn small_broker() -> Broker {
        // 4 private vCPUs of m1.medium (2 vCPU) = 2 private instances max;
        // 8 sessions per instance.
        let config = BrokerConfig {
            private_capacity_vcpus: 4,
            scale_up_headroom_slots: 1,
            scale_down_surplus_slots: 12,
            ..BrokerConfig::default()
        };
        Broker::new(config, 42)
    }

    #[test]
    fn connect_provisions_and_binds() {
        let mut broker = small_broker();
        let s = broker.connect("alice", "topmodel").unwrap();
        assert_eq!(broker.session(s).unwrap().state(), SessionState::Active);
        let inst = broker.session(s).unwrap().instance().unwrap();
        assert_eq!(broker.cloud().instance(inst).unwrap().provider(), PRIVATE_PROVIDER);
        // The client got a push update with its instance address.
        let update = broker.session(s).unwrap().client_channel().try_recv().unwrap();
        assert_eq!(update.topic(), "session-update");
    }

    #[test]
    fn sessions_pack_onto_existing_instances() {
        let mut broker = small_broker();
        let first = broker.connect("u0", "topmodel").unwrap();
        let inst = broker.session(first).unwrap().instance().unwrap();
        for i in 1..8 {
            let s = broker.connect(&format!("u{i}"), "topmodel").unwrap();
            assert_eq!(
                broker.session(s).unwrap().instance(),
                Some(inst),
                "session {i} should pack"
            );
        }
        // The 9th exceeds the 8-slot instance: a second one is provisioned.
        let ninth = broker.connect("u8", "topmodel").unwrap();
        assert_ne!(broker.session(ninth).unwrap().instance(), Some(inst));
    }

    #[test]
    fn cloudburst_on_private_saturation_and_retreat() {
        let mut broker = small_broker();
        // Fill private: 2 instances × 8 slots = 16 sessions, then overflow.
        let mut sessions = Vec::new();
        for i in 0..24 {
            sessions.push(broker.connect(&format!("u{i}"), "topmodel").unwrap());
        }
        broker.advance(SimDuration::from_secs(120));
        let mix = broker.provider_mix();
        assert!(mix.public_instances >= 1, "must have burst: {mix:?}");
        assert!(broker
            .events()
            .iter()
            .any(|e| matches!(e, BrokerEvent::ScaledUp { cloudburst: true, .. })));

        // Load subsides: disconnect everyone; the broker retreats from the
        // public cloud.
        for s in sessions {
            broker.disconnect(s).unwrap();
        }
        broker.advance(SimDuration::from_secs(600));
        let mix = broker.provider_mix();
        assert_eq!(mix.public_instances, 0, "public instances must retreat: {mix:?}");
        assert!(broker.events().iter().any(|e| matches!(e, BrokerEvent::ScaledDown { .. })));
    }

    #[test]
    fn failure_detection_and_migration() {
        let mut broker = small_broker();
        let s = broker.connect("alice", "topmodel").unwrap();
        let bad = broker.session(s).unwrap().instance().unwrap();
        broker.advance(SimDuration::from_secs(200)); // let it boot

        // Keep it busy so the blackhole signature is observable, then break it.
        broker.run_model(s, SimDuration::from_secs(3600)).unwrap();
        broker.cloud.inject_failure(bad, FailureMode::NetworkBlackhole).unwrap();
        broker.advance(SimDuration::from_secs(300));

        let detected = broker.events().iter().any(
            |e| matches!(e, BrokerEvent::FailureDetected { instance, .. } if *instance == bad),
        );
        assert!(detected, "failure must be detected: {:?}", broker.events());

        let session = broker.session(s).unwrap();
        assert_eq!(session.state(), SessionState::Active, "session survives");
        assert_ne!(session.instance(), Some(bad), "session must be migrated");
        assert_eq!(session.migrations(), 1);
        // The replaced instance is terminated.
        assert!(!broker.cloud().instance(bad).unwrap().occupies_capacity());
    }

    #[test]
    fn hang_failure_is_detected_via_cpu_signature() {
        let mut broker = small_broker();
        let s = broker.connect("bob", "topmodel").unwrap();
        let bad = broker.session(s).unwrap().instance().unwrap();
        broker.advance(SimDuration::from_secs(200));
        broker.cloud.inject_failure(bad, FailureMode::Hang).unwrap();
        broker.advance(SimDuration::from_secs(120));
        let sig = broker.events().iter().find_map(|e| match e {
            BrokerEvent::FailureDetected { instance, signature, .. } if *instance == bad => {
                Some(signature.clone())
            }
            _ => None,
        });
        assert_eq!(sig.as_deref(), Some("sustained CPU saturation"));
    }

    #[test]
    fn detection_respects_consecutive_sample_threshold() {
        let mut broker = small_broker();
        let s = broker.connect("carol", "topmodel").unwrap();
        let bad = broker.session(s).unwrap().instance().unwrap();
        broker.advance(SimDuration::from_secs(200));
        broker.cloud.inject_failure(bad, FailureMode::Hang).unwrap();
        // Fewer than consecutive_bad_samples × check_interval: not yet.
        broker.advance(SimDuration::from_secs(31));
        assert!(!broker.events().iter().any(|e| matches!(e, BrokerEvent::FailureDetected { .. })));
    }

    #[test]
    fn warm_pool_serves_instantly() {
        let config = BrokerConfig {
            warm_pool_size: 2,
            private_capacity_vcpus: 8,
            ..BrokerConfig::default()
        };
        let mut broker = Broker::new(config, 7);
        broker.advance(SimDuration::from_secs(200)); // warm pool boots

        // Saturate nothing — the first connect normally provisions; with a
        // warm pool it can bind a pre-booted instance when no serving
        // instance exists.
        let s = broker.connect("dave", "topmodel").unwrap();
        let hit = broker
            .events()
            .iter()
            .any(|e| matches!(e, BrokerEvent::WarmPoolHit { session, .. } if *session == s));
        assert!(hit, "expected a warm-pool hit: {:?}", broker.events());
        let inst = broker.session(s).unwrap().instance().unwrap();
        assert!(broker.cloud().instance(inst).unwrap().is_running());
    }

    #[test]
    fn run_model_executes_on_assigned_instance() {
        let mut broker = small_broker();
        let s = broker.connect("erin", "topmodel").unwrap();
        broker.advance(SimDuration::from_secs(200));
        let job = broker.run_model(s, SimDuration::from_secs(30)).unwrap();
        broker.advance(SimDuration::from_secs(120));
        let inst = broker.session(s).unwrap().instance().unwrap();
        let job = broker.cloud().instance(inst).unwrap().job(job).unwrap();
        assert!(job.latency().is_some(), "model run must complete");
    }

    #[test]
    fn unknown_model_is_rejected_when_incubator_disabled() {
        let config = BrokerConfig { allow_incubator_fallback: false, ..BrokerConfig::default() };
        let mut broker = Broker::new(config, 1);
        assert!(matches!(broker.connect("f", "swat"), Err(BrokerError::NoImageForModel(_))));
        // With fallback, the incubator takes it.
        let mut broker = Broker::new(BrokerConfig::default(), 1);
        assert!(broker.connect("f", "swat").is_ok());
    }

    #[test]
    fn errors_for_bad_sessions() {
        let mut broker = small_broker();
        assert!(matches!(
            broker.run_model(SessionId(99), SimDuration::from_secs(1)),
            Err(BrokerError::UnknownSession(_))
        ));
        let s = broker.connect("g", "topmodel").unwrap();
        broker.disconnect(s).unwrap();
        assert!(matches!(
            broker.run_model(s, SimDuration::from_secs(1)),
            Err(BrokerError::SessionNotServing(_))
        ));
    }

    #[test]
    fn load_is_rebalanced_across_instances() {
        // Two instances: pack 8 sessions onto the first, then force a second
        // instance via a ninth session and close most of its load — the
        // control loop should spread sessions out again.
        let mut broker = small_broker();
        let mut first_batch = Vec::new();
        for i in 0..8 {
            first_batch.push(broker.connect(&format!("u{i}"), "topmodel").unwrap());
        }
        let ninth = broker.connect("u8", "topmodel").unwrap();
        let second_instance = broker.session(ninth).unwrap().instance().unwrap();
        broker.advance(SimDuration::from_secs(200));

        // Loads: 8 vs 1. After a few control ticks the gap shrinks below 3.
        broker.advance(SimDuration::from_secs(300));
        let load_of = |broker: &Broker, inst| {
            broker
                .sessions()
                .filter(|s| s.instance() == Some(inst) && s.state() == SessionState::Active)
                .count()
        };
        let first_instance = broker.session(first_batch[0]).unwrap().instance().unwrap();
        let (a, b) = (load_of(&broker, first_instance), load_of(&broker, second_instance));
        // Sessions may themselves have moved; measure the true spread.
        let max = a.max(b);
        let min = a.min(b);
        assert!(max - min <= 2, "loads should converge, got {a} vs {b}");
        assert!(broker.events().iter().any(|e| matches!(e, BrokerEvent::SessionMigrated { .. })));
    }

    #[test]
    fn connect_produces_one_connected_trace() {
        let mut broker = small_broker();
        let tracer = broker.tracer().clone();
        let caller = tracer.start_trace("e1.request");
        let ctx = caller.context();

        let s = broker.connect_with_context("alice", "topmodel", Some(&ctx)).unwrap();
        broker.advance(SimDuration::from_secs(200));
        broker.run_model_with_context(s, SimDuration::from_secs(45), None).unwrap();
        broker.advance(SimDuration::from_secs(300));
        caller.finish();

        let spans = tracer.finished();
        let on_trace: Vec<_> = spans.iter().filter(|sp| sp.trace_id == ctx.trace_id).collect();
        for name in
            ["broker.connect", "session.bind", "instance.boot i-00000000", "model.run topmodel"]
        {
            assert!(
                on_trace.iter().any(|sp| sp.name == name),
                "expected {name} on the trace, got {:?}",
                on_trace.iter().map(|sp| &sp.name).collect::<Vec<_>>()
            );
        }
        // Every span reaches the root: one connected tree.
        for span in &on_trace {
            let mut cur = *span;
            while let Some(parent) = cur.parent {
                cur = on_trace
                    .iter()
                    .find(|sp| sp.span_id == parent)
                    .unwrap_or_else(|| panic!("dangling parent for {}", span.name));
            }
        }
        // The push update carried the trace ids.
        let update = broker.session(s).unwrap().client_channel().try_recv().unwrap();
        assert_eq!(update.payload()["trace_id"].as_str(), Some(ctx.trace_id.to_string().as_str()));

        let metrics = broker.metrics();
        assert_eq!(metrics.counter("broker_placements_total", &[("provider", "campus")]), 1);
        assert_eq!(metrics.counter("broker_binds_total", &[("how", "provisioned")]), 1);
        assert_eq!(metrics.observations("broker_activation_wait_seconds", &[]), 1);
    }

    #[test]
    fn cloudburst_and_failure_metrics_accumulate() {
        let mut broker = small_broker();
        for i in 0..24 {
            broker.connect(&format!("u{i}"), "topmodel").unwrap();
        }
        broker.advance(SimDuration::from_secs(120));
        assert!(broker.metrics().counter("broker_cloudbursts_total", &[]) >= 1);
        assert!(broker.metrics().counter("broker_placements_total", &[("provider", "aws")]) >= 1);

        let s = broker.sessions().next().unwrap().id();
        let bad = broker.session(s).unwrap().instance().unwrap();
        broker.cloud.inject_failure(bad, FailureMode::Hang).unwrap();
        broker.advance(SimDuration::from_secs(300));
        assert_eq!(
            broker.metrics().counter(
                "broker_failures_detected_total",
                &[("signature", "sustained CPU saturation")],
            ),
            1
        );
        assert!(
            broker.metrics().counter("broker_migrations_total", &[("reason", "failure-recovery")])
                >= 1
        );
    }

    /// Refuses every launch with a transient API fault; job submission and
    /// everything else stay healthy.
    #[derive(Debug)]
    struct AllLaunchesFail;

    impl evop_cloud::FaultInjector for AllLaunchesFail {
        fn api_fault(
            &mut self,
            _: SimTime,
            _: &str,
            op: evop_cloud::CloudOp,
        ) -> Option<evop_cloud::ApiFault> {
            (op == evop_cloud::CloudOp::Launch).then(|| evop_cloud::ApiFault {
                reason: "api-error-burst".to_owned(),
                retry_after: SimDuration::from_secs(30),
            })
        }
    }

    #[test]
    fn lost_instance_requeues_sessions_with_typed_transient_error() {
        // 2 private vCPUs of m1.medium = exactly one private instance.
        let config = BrokerConfig { private_capacity_vcpus: 2, ..BrokerConfig::default() };
        let mut broker = Broker::new(config, 11);
        let s = broker.connect("alice", "topmodel").unwrap();
        let bad = broker.session(s).unwrap().instance().unwrap();
        broker.advance(SimDuration::from_secs(200));

        // Kill the only instance while every replacement launch faults.
        broker.set_fault_injector(Some(Box::new(AllLaunchesFail)));
        broker.cloud.inject_failure(bad, FailureMode::NetworkBlackhole).unwrap();
        broker.advance(SimDuration::from_secs(120));

        assert!(
            broker.events().iter().any(
                |e| matches!(e, BrokerEvent::SessionRequeued { session, .. } if *session == s)
            ),
            "session must be requeued, got {:?}",
            broker.events()
        );
        assert!(broker.metrics().counter("broker_requeues_total", &[]) >= 1);
        match broker.run_model(s, SimDuration::from_secs(10)) {
            Err(BrokerError::TransientlyUnavailable { session, retry_after }) => {
                assert_eq!(session, s);
                assert_eq!(retry_after, broker.config().check_interval);
            }
            other => panic!("expected transiently-unavailable, got {other:?}"),
        }

        // The burst ends: the waiting session is re-bound and serves again.
        broker.set_fault_injector(None);
        broker.advance(SimDuration::from_secs(900));
        assert_eq!(broker.session(s).unwrap().state(), SessionState::Active);
        assert!(broker.run_model(s, SimDuration::from_secs(10)).is_ok());
    }

    #[test]
    fn provisioning_backs_off_during_fault_bursts() {
        let mut broker = small_broker();
        broker.set_fault_injector(Some(Box::new(AllLaunchesFail)));
        let s = broker.connect("bob", "topmodel").unwrap();
        assert_eq!(broker.session(s).unwrap().state(), SessionState::Waiting);

        broker.advance(SimDuration::from_secs(300)); // 20 control ticks
        let faults = broker.metrics().counter("broker_provision_faults_total", &[]);
        let skips = broker.metrics().counter("broker_provision_backoff_skips_total", &[]);
        assert!(faults >= 2, "need repeated paced attempts, got {faults}");
        assert!(skips >= 1, "backoff must skip provider calls between attempts");
        assert!(faults < 20, "attempts must be paced by the backoff, got {faults}");
        assert!(broker.events().iter().any(|e| matches!(e, BrokerEvent::ProvisionFault { .. })));

        broker.set_fault_injector(None);
        broker.advance(SimDuration::from_secs(900));
        assert_eq!(
            broker.session(s).unwrap().state(),
            SessionState::Active,
            "demand is served once the burst ends"
        );
        assert!(
            broker.metrics().counter("broker_provision_retries_total", &[("outcome", "success")])
                >= 1
        );
    }

    #[test]
    fn costs_accrue_and_split_by_provider() {
        let mut broker = small_broker();
        for i in 0..20 {
            broker.connect(&format!("u{i}"), "topmodel").unwrap();
        }
        broker.advance(SimDuration::from_secs(3600));
        let by = broker.cost_by_provider();
        assert!(broker.total_cost() > 0.0);
        assert!(by.contains_key(PRIVATE_PROVIDER));
    }
}
