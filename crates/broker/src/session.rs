//! User sessions and the push channel to the browser.

use std::collections::BTreeMap;
use std::fmt;

use evop_cloud::InstanceId;
use evop_obs::TraceContext;
use evop_services::push::{duplex_pair, Endpoint, Message};
use evop_sim::SimTime;
use serde_json::json;

/// A unique user-session identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SessionId(pub(crate) u64);

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Lifecycle of a session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Waiting for an instance (one may be booting for it).
    Waiting,
    /// Bound to an instance and serving.
    Active,
    /// Closed by the user.
    Closed,
}

/// One user's connection to a modelling widget.
///
/// Because EVOp services are stateless REST (paper §IV-B), a session holds
/// *routing* state only — which instance currently serves the user — never
/// computational state; that is why migration loses nothing.
#[derive(Debug)]
pub struct UserSession {
    id: SessionId,
    user: String,
    model: String,
    state: SessionState,
    instance: Option<InstanceId>,
    connected_at: SimTime,
    activated_at: Option<SimTime>,
    migrations: u32,
    server_end: Endpoint,
    client_end: Endpoint,
    trace: Option<TraceContext>,
}

impl UserSession {
    pub(crate) fn new(id: SessionId, user: &str, model: &str, now: SimTime) -> UserSession {
        let (server_end, client_end) = duplex_pair();
        UserSession {
            id,
            user: user.to_owned(),
            model: model.to_owned(),
            state: SessionState::Waiting,
            instance: None,
            connected_at: now,
            activated_at: None,
            migrations: 0,
            server_end,
            client_end,
            trace: None,
        }
    }

    /// The session id.
    pub fn id(&self) -> SessionId {
        self.id
    }

    /// The connected user.
    pub fn user(&self) -> &str {
        &self.user
    }

    /// The model this session's widget drives.
    pub fn model(&self) -> &str {
        &self.model
    }

    /// Lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// The instance currently serving the session, if assigned.
    pub fn instance(&self) -> Option<InstanceId> {
        self.instance
    }

    /// When the user connected.
    pub fn connected_at(&self) -> SimTime {
        self.connected_at
    }

    /// When the session first got a running instance.
    pub fn activated_at(&self) -> Option<SimTime> {
        self.activated_at
    }

    /// Wait from connect to first service, if activated.
    pub fn activation_wait(&self) -> Option<evop_sim::SimDuration> {
        self.activated_at.map(|t| t.saturating_since(self.connected_at))
    }

    /// How many times the session was migrated between instances.
    pub fn migrations(&self) -> u32 {
        self.migrations
    }

    /// The trace context this session's server-side work reports under,
    /// when the broker is tracing.
    pub fn trace_context(&self) -> Option<TraceContext> {
        self.trace
    }

    pub(crate) fn set_trace_context(&mut self, ctx: TraceContext) {
        self.trace = Some(ctx);
    }

    /// The browser-side endpoint: widgets read pushed updates here.
    pub fn client_channel(&self) -> &Endpoint {
        &self.client_end
    }

    pub(crate) fn assign(&mut self, instance: InstanceId, now: SimTime, is_migration: bool) {
        let previous = self.instance.replace(instance);
        if self.state == SessionState::Waiting {
            self.state = SessionState::Active;
            // First activation only: a rebind after a requeue keeps the
            // original time-to-first-service.
            if self.activated_at.is_none() {
                self.activated_at = Some(now);
            }
        }
        if is_migration {
            self.migrations += 1;
        }
        let mut payload = json!({
            "session": self.id.to_string(),
            "instance": instance.to_string(),
            "previous": previous.map(|p| p.to_string()),
            "migration": is_migration,
            "at": now.as_millis(),
        });
        // Carry the trace context on the push, so the browser-side widget
        // can correlate the update with the server-side timeline.
        if let Some(ctx) = &self.trace {
            if let Some(map) = payload.as_object_mut() {
                map.insert("trace_id".to_owned(), json!(ctx.trace_id.to_string()));
                map.insert("span_id".to_owned(), json!(ctx.span_id.to_string()));
            }
        }
        let _ = self.server_end.send(Message::new("session-update", payload));
    }

    /// Detaches the session from a lost instance and requeues it for
    /// binding: routing state goes back to `Waiting`, and the client is
    /// told its instance is gone so the widget can show a reconnecting
    /// state instead of talking to a dead address.
    pub(crate) fn unbind(&mut self, now: SimTime) {
        if self.state != SessionState::Active {
            return;
        }
        let previous = self.instance.take();
        self.state = SessionState::Waiting;
        let mut payload = json!({
            "session": self.id.to_string(),
            "instance": serde_json::Value::Null,
            "previous": previous.map(|p| p.to_string()),
            "requeued": true,
            "at": now.as_millis(),
        });
        if let Some(ctx) = &self.trace {
            if let Some(map) = payload.as_object_mut() {
                map.insert("trace_id".to_owned(), json!(ctx.trace_id.to_string()));
                map.insert("span_id".to_owned(), json!(ctx.span_id.to_string()));
            }
        }
        let _ = self.server_end.send(Message::new("session-update", payload));
    }

    pub(crate) fn close(&mut self) {
        self.state = SessionState::Closed;
        self.instance = None;
        self.server_end.close();
    }
}

/// The registry of all sessions.
#[derive(Debug, Default)]
pub struct SessionRegistry {
    sessions: BTreeMap<SessionId, UserSession>,
    next: u64,
}

impl SessionRegistry {
    /// Creates an empty registry.
    pub fn new() -> SessionRegistry {
        SessionRegistry::default()
    }

    /// Opens a new session.
    pub fn open(&mut self, user: &str, model: &str, now: SimTime) -> SessionId {
        let id = SessionId(self.next);
        self.next += 1;
        self.sessions.insert(id, UserSession::new(id, user, model, now));
        id
    }

    /// A session by id.
    pub fn get(&self, id: SessionId) -> Option<&UserSession> {
        self.sessions.get(&id)
    }

    /// A mutable session by id.
    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut UserSession> {
        self.sessions.get_mut(&id)
    }

    /// All sessions.
    pub fn iter(&self) -> impl Iterator<Item = &UserSession> {
        self.sessions.values()
    }

    /// Sessions currently bound to `instance`.
    pub fn on_instance(&self, instance: InstanceId) -> Vec<SessionId> {
        self.sessions
            .values()
            .filter(|s| s.instance() == Some(instance) && s.state() == SessionState::Active)
            .map(|s| s.id())
            .collect()
    }

    /// Number of active sessions per instance.
    pub fn load(&self, instance: InstanceId) -> usize {
        self.on_instance(instance).len()
    }

    /// Sessions waiting for an instance, oldest first.
    pub fn waiting(&self) -> Vec<SessionId> {
        self.sessions
            .values()
            .filter(|s| s.state() == SessionState::Waiting)
            .map(|s| s.id())
            .collect()
    }

    /// Count of sessions in a state.
    pub fn count(&self, state: SessionState) -> usize {
        self.sessions.values().filter(|s| s.state() == state).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_assign_close_lifecycle() {
        let mut reg = SessionRegistry::new();
        let id = reg.open("alice", "topmodel", SimTime::ZERO);
        assert_eq!(reg.get(id).unwrap().state(), SessionState::Waiting);
        assert_eq!(reg.count(SessionState::Waiting), 1);

        reg.get_mut(id).unwrap().assign(InstanceId::from_raw(3), SimTime::from_secs(60), false);
        let s = reg.get(id).unwrap();
        assert_eq!(s.state(), SessionState::Active);
        assert_eq!(s.activation_wait(), Some(evop_sim::SimDuration::from_secs(60)));
        assert_eq!(s.migrations(), 0);

        reg.get_mut(id).unwrap().close();
        assert_eq!(reg.get(id).unwrap().state(), SessionState::Closed);
        assert_eq!(reg.get(id).unwrap().instance(), None);
    }

    #[test]
    fn assignment_pushes_update_to_client() {
        let mut reg = SessionRegistry::new();
        let id = reg.open("bob", "fuse", SimTime::ZERO);
        reg.get_mut(id).unwrap().assign(InstanceId::from_raw(7), SimTime::from_secs(5), false);
        let msg = reg.get(id).unwrap().client_channel().try_recv().unwrap();
        assert_eq!(msg.topic(), "session-update");
        assert_eq!(msg.payload()["migration"], false);
    }

    #[test]
    fn migration_increments_counter_and_reports_previous() {
        let mut reg = SessionRegistry::new();
        let id = reg.open("carol", "topmodel", SimTime::ZERO);
        reg.get_mut(id).unwrap().assign(InstanceId::from_raw(1), SimTime::from_secs(1), false);
        reg.get_mut(id).unwrap().assign(InstanceId::from_raw(2), SimTime::from_secs(9), true);
        let s = reg.get(id).unwrap();
        assert_eq!(s.migrations(), 1);
        let updates = s.client_channel().drain();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[1].payload()["migration"], true);
        assert!(updates[1].payload()["previous"].as_str().unwrap().contains("i-"));
    }

    #[test]
    fn per_instance_load_accounting() {
        let mut reg = SessionRegistry::new();
        let a = reg.open("u1", "topmodel", SimTime::ZERO);
        let b = reg.open("u2", "topmodel", SimTime::ZERO);
        let c = reg.open("u3", "topmodel", SimTime::ZERO);
        let inst = InstanceId::from_raw(1);
        reg.get_mut(a).unwrap().assign(inst, SimTime::ZERO, false);
        reg.get_mut(b).unwrap().assign(inst, SimTime::ZERO, false);
        reg.get_mut(c).unwrap().assign(InstanceId::from_raw(2), SimTime::ZERO, false);
        assert_eq!(reg.load(inst), 2);
        assert_eq!(reg.load(InstanceId::from_raw(2)), 1);
        reg.get_mut(a).unwrap().close();
        assert_eq!(reg.load(inst), 1);
    }

    #[test]
    fn unbind_requeues_and_notifies_client() {
        let mut reg = SessionRegistry::new();
        let id = reg.open("dave", "topmodel", SimTime::ZERO);
        reg.get_mut(id).unwrap().assign(InstanceId::from_raw(4), SimTime::from_secs(2), false);
        reg.get_mut(id).unwrap().unbind(SimTime::from_secs(9));
        let s = reg.get(id).unwrap();
        assert_eq!(s.state(), SessionState::Waiting);
        assert_eq!(s.instance(), None);
        let updates = s.client_channel().drain();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[1].payload()["requeued"], true);
        assert!(updates[1].payload()["instance"].is_null());

        // Rebinding after a requeue keeps the original activation time.
        reg.get_mut(id).unwrap().assign(InstanceId::from_raw(5), SimTime::from_secs(20), false);
        let s = reg.get(id).unwrap();
        assert_eq!(s.state(), SessionState::Active);
        assert_eq!(s.activation_wait(), Some(evop_sim::SimDuration::from_secs(2)));
    }

    #[test]
    fn waiting_lists_unassigned() {
        let mut reg = SessionRegistry::new();
        let a = reg.open("u1", "topmodel", SimTime::ZERO);
        let b = reg.open("u2", "topmodel", SimTime::ZERO);
        assert_eq!(reg.waiting(), vec![a, b]);
        reg.get_mut(a).unwrap().assign(InstanceId::from_raw(1), SimTime::ZERO, false);
        assert_eq!(reg.waiting(), vec![b]);
    }
}
