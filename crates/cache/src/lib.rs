//! `evop-cache` — deterministic two-tier result cache with singleflight
//! request coalescing, for flash-crowd serving.
//!
//! The paper's flash-crowd story (§VI) leans on prefetching and
//! pre-bootstrapping: crowds of stakeholders asking about *the same*
//! storm, catchment and scenario should not cost one full model run
//! each. This crate is that missing plane, grown to the roadmap's
//! production scale:
//!
//! - **Canonical identity** ([`CacheKey`]): process id, canonicalised
//!   WPS inputs, catchment id and the catalogue's data-version stamp.
//!   Two spellings of the same question collide; any data update orphans
//!   every stale answer.
//! - **L1** ([`l1::LruTtlStore`]): bounded in-memory LRU with TTLs in
//!   *virtual* time, guarded by a seeded TinyLFU-style
//!   [`FrequencySketch`] so one-off queries cannot evict what a crowd is
//!   hammering.
//! - **L2** ([`BlobBackend`] spill through `evop-xcloud`'s blob store):
//!   large results live under content-hashed keys and are integrity
//!   checked on the way back — a corrupt or unavailable object is a
//!   miss, never an answer.
//! - **Singleflight** ([`Coalescer`]): concurrent identical requests
//!   attach as followers to the one in-flight broker job and complete
//!   together, with per-key follower counts in the broker's event log.
//! - **Observability**: hit/miss/admission-reject counters, an
//!   age-at-hit histogram, and a cache-hit-ratio SLO ([`hit_ratio_slo`])
//!   judged by the burn-rate alert engine.
//!
//! Everything is a pure function of (inputs, seed, virtual time): no
//! wallclock, no unseeded hashing, no iteration-order nondeterminism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesce;
pub mod key;
pub mod l1;
pub mod plane;
pub mod sketch;
pub mod wps;

pub use coalesce::{Coalescer, Flight, Submission};
pub use key::{canonical_json, CacheKey};
pub use plane::{
    hit_ratio_slo, BlobBackend, CacheConfig, CachePolicy, CacheStats, Hit, ResultCache, Tier,
};
pub use sketch::FrequencySketch;
pub use wps::{DataVersion, VirtualClock, WpsResultCache};
