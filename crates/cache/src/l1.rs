//! L1: the in-memory LRU+TTL store, in virtual time.
//!
//! Entries live in a `BTreeMap` keyed by [`CacheKey`] (deterministic
//! iteration, no hash-order nondeterminism) with recency tracked by a
//! monotone logical tick — not wallclock, not insertion order. Expiry is
//! judged against the caller-supplied [`SimTime`], so the store composes
//! with the simulation the same way the chaos plane's blob wrapper does:
//! time is an argument, never an ambient global.
//! Admission policy deliberately lives *outside* this type — the
//! store evicts whoever it is told to make room for; the sketch decides
//! whether making room is worth it.

use std::collections::BTreeMap;

use evop_sim::{SimDuration, SimTime};
use serde_json::Value;

use crate::key::CacheKey;

#[derive(Debug, Clone)]
struct Entry {
    value: Value,
    stored_at: SimTime,
    last_touch: u64,
}

/// Bounded LRU store with per-entry TTL in virtual time.
#[derive(Debug)]
pub struct LruTtlStore {
    capacity: usize,
    ttl: SimDuration,
    tick: u64,
    entries: BTreeMap<CacheKey, Entry>,
}

impl LruTtlStore {
    /// A store holding at most `capacity` entries (minimum 1), each fresh
    /// for `ttl` of virtual time after insertion.
    pub fn new(capacity: usize, ttl: SimDuration) -> LruTtlStore {
        LruTtlStore { capacity: capacity.max(1), ttl, tick: 0, entries: BTreeMap::new() }
    }

    /// Entries currently held (fresh or not-yet-collected expired).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Fetches a fresh entry, bumping its recency; an expired entry is
    /// removed and reported as a miss. Returns the value and its age.
    pub fn get(&mut self, now: SimTime, key: &CacheKey) -> Option<(Value, SimDuration)> {
        let expired = match self.entries.get(key) {
            Some(entry) => is_expired(entry.stored_at, self.ttl, now),
            None => return None,
        };
        if expired {
            self.entries.remove(key);
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(key).map(|entry| {
            entry.last_touch = tick;
            (entry.value.clone(), now.saturating_since(entry.stored_at))
        })
    }

    /// `true` when `key` is present and fresh at `now` (no recency bump).
    pub fn contains_fresh(&self, now: SimTime, key: &CacheKey) -> bool {
        self.entries.get(key).is_some_and(|e| !is_expired(e.stored_at, self.ttl, now))
    }

    /// Inserts (or refreshes) an entry, evicting the least recently used
    /// one if the store is full. Returns the evicted key, if any.
    /// Admission control happens before this call — by the time `insert`
    /// runs, the decision to displace the LRU victim has been made.
    pub fn insert(&mut self, now: SimTime, key: CacheKey, value: Value) -> Option<CacheKey> {
        self.tick += 1;
        let entry = Entry { value, stored_at: now, last_touch: self.tick };
        if let Some(existing) = self.entries.get_mut(&key) {
            *existing = entry;
            return None;
        }
        let evicted = if self.entries.len() >= self.capacity { self.lru_key() } else { None };
        if let Some(victim) = &evicted {
            self.entries.remove(victim);
        }
        self.entries.insert(key, entry);
        evicted
    }

    /// The current least-recently-used key — the admission gate's victim
    /// candidate. Ties are impossible: every touch gets a unique tick.
    pub fn lru_key(&self) -> Option<CacheKey> {
        self.entries.iter().min_by_key(|(_, e)| e.last_touch).map(|(k, _)| k.clone())
    }

    /// Removes one entry.
    pub fn remove(&mut self, key: &CacheKey) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Drops every entry that has expired by `now`, returning the count.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        let ttl = self.ttl;
        self.entries.retain(|_, e| !is_expired(e.stored_at, ttl, now));
        before - self.entries.len()
    }

    /// Drops every entry whose key carries a data version other than
    /// `current` — the catalogue-update invalidation sweep. Returns the
    /// count dropped.
    pub fn retain_version(&mut self, current: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|k, _| k.data_version() == current);
        before - self.entries.len()
    }

    /// Iterates stored keys in key order.
    pub fn keys(&self) -> impl Iterator<Item = &CacheKey> {
        self.entries.keys()
    }
}

fn is_expired(stored_at: SimTime, ttl: SimDuration, now: SimTime) -> bool {
    match stored_at.checked_add(ttl) {
        Some(deadline) => now >= deadline,
        // TTL overflows virtual time: the entry never expires.
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn key(n: u64) -> CacheKey {
        CacheKey::new("p", "c", 1, &json!({ "n": n }))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn hit_returns_value_and_age() {
        let mut store = LruTtlStore::new(4, SimDuration::from_secs(100));
        store.insert(t(10), key(1), json!(41));
        let (value, age) = store.get(t(30), &key(1)).expect("fresh");
        assert_eq!(value, json!(41));
        assert_eq!(age, SimDuration::from_secs(20));
    }

    #[test]
    fn entries_expire_at_ttl_boundary() {
        let mut store = LruTtlStore::new(4, SimDuration::from_secs(100));
        store.insert(t(0), key(1), json!(1));
        assert!(store.get(t(99), &key(1)).is_some());
        assert!(store.get(t(100), &key(1)).is_none(), "expiry is inclusive at the deadline");
        assert!(store.is_empty(), "expired entries are collected on access");
    }

    #[test]
    fn eviction_picks_least_recently_used() {
        let mut store = LruTtlStore::new(2, SimDuration::from_secs(1000));
        store.insert(t(0), key(1), json!(1));
        store.insert(t(1), key(2), json!(2));
        // Touch 1 so 2 becomes LRU.
        assert!(store.get(t(2), &key(1)).is_some());
        let evicted = store.insert(t(3), key(3), json!(3));
        assert_eq!(evicted, Some(key(2)));
        assert!(store.contains_fresh(t(3), &key(1)));
        assert!(store.contains_fresh(t(3), &key(3)));
    }

    #[test]
    fn refresh_does_not_evict() {
        let mut store = LruTtlStore::new(2, SimDuration::from_secs(1000));
        store.insert(t(0), key(1), json!(1));
        store.insert(t(1), key(2), json!(2));
        assert_eq!(store.insert(t(2), key(1), json!(10)), None);
        assert_eq!(store.len(), 2);
        let (value, _) = store.get(t(3), &key(1)).expect("refreshed");
        assert_eq!(value, json!(10));
    }

    #[test]
    fn retain_version_sweeps_stale_generations() {
        let mut store = LruTtlStore::new(8, SimDuration::from_secs(1000));
        store.insert(t(0), CacheKey::new("p", "c", 1, &json!({})), json!(1));
        store.insert(t(0), CacheKey::new("p", "c", 2, &json!({})), json!(2));
        assert_eq!(store.retain_version(2), 1);
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn purge_expired_collects_in_bulk() {
        let mut store = LruTtlStore::new(8, SimDuration::from_secs(10));
        store.insert(t(0), key(1), json!(1));
        store.insert(t(5), key(2), json!(2));
        assert_eq!(store.purge_expired(t(12)), 1);
        assert_eq!(store.len(), 1);
    }
}
