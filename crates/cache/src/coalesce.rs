//! Singleflight request coalescing in front of the broker.
//!
//! When forty stakeholders ask the identical catchment question within
//! seconds of each other, the first one ("the leader") submits a real
//! model run through [`Broker::run_model_with_context`]; everyone else
//! attaches to that in-flight job as a follower and completes when it
//! does. The broker's event log records every attachment (with the
//! running per-key follower count) via [`Broker::note_coalesced`], so
//! flash-crowd dedup is as observable as scaling decisions. State is a
//! `BTreeMap` keyed by the cache-key fingerprint: deterministic, and a
//! pure function of the submission order.

use std::collections::BTreeMap;

use evop_broker::{Broker, BrokerError, SessionId};
use evop_cloud::JobId;
use evop_obs::{MetricsRegistry, TraceContext};
use evop_sim::SimDuration;

use crate::key::CacheKey;

/// One in-flight model run and its attached followers.
#[derive(Debug, Clone)]
pub struct Flight {
    /// Canonical key label (what the broker event log shows).
    pub key: String,
    /// The session whose submission everyone rides.
    pub leader: SessionId,
    /// The leader's job.
    pub job: JobId,
    /// Sessions attached after the leader, in attachment order.
    pub followers: Vec<SessionId>,
}

/// How one submission was handled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// This request started the model run.
    Leader {
        /// The submitted job.
        job: JobId,
    },
    /// This request attached to an existing run.
    Follower {
        /// The leading session.
        leader: SessionId,
        /// The job being ridden.
        job: JobId,
        /// This follower's 1-based position on the flight.
        position: u64,
    },
}

/// The singleflight coalescer.
#[derive(Debug, Default)]
pub struct Coalescer {
    inflight: BTreeMap<u64, Flight>,
    metrics: Option<MetricsRegistry>,
}

impl Coalescer {
    /// An empty coalescer.
    pub fn new() -> Coalescer {
        Coalescer::default()
    }

    /// Attaches a metrics registry: follower attachments count
    /// `cache_requests_total{outcome="follower"}` and leader submissions
    /// count `cache_requests_total{outcome="miss"}`, so the hit-ratio SLO
    /// sees exactly one outcome per coalesced request.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = Some(metrics);
    }

    /// Submits `session`'s request for `key`: the first submission per
    /// key runs the model, subsequent ones attach as followers.
    ///
    /// # Errors
    ///
    /// Propagates [`BrokerError`] from the leader submission; a failed
    /// leader leaves nothing in flight, so the next identical request
    /// tries again (and a transiently refused crowd retries as a crowd).
    pub fn submit(
        &mut self,
        broker: &mut Broker,
        key: &CacheKey,
        session: SessionId,
        work: SimDuration,
        ctx: Option<&TraceContext>,
    ) -> Result<Submission, BrokerError> {
        let fingerprint = key.fingerprint();
        if let Some(flight) = self.inflight.get_mut(&fingerprint) {
            flight.followers.push(session);
            let position = flight.followers.len() as u64;
            broker.note_coalesced(&flight.key, flight.leader, session, position);
            if let Some(metrics) = &self.metrics {
                metrics.inc_counter("cache_requests_total", &[("outcome", "follower")]);
            }
            return Ok(Submission::Follower { leader: flight.leader, job: flight.job, position });
        }
        let job = broker.run_model_with_context(session, work, ctx)?;
        self.inflight.insert(
            fingerprint,
            Flight { key: key.render(), leader: session, job, followers: Vec::new() },
        );
        if let Some(metrics) = &self.metrics {
            metrics.inc_counter("cache_requests_total", &[("outcome", "miss")]);
        }
        Ok(Submission::Leader { job })
    }

    /// Keys currently in flight.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The flight for `key`, if one is running.
    pub fn flight(&self, key: &CacheKey) -> Option<&Flight> {
        self.inflight.get(&key.fingerprint())
    }

    /// Marks `key`'s run complete, detaching and returning the flight.
    /// The caller fans the one result out to the leader and every
    /// follower, then inserts it into the cache.
    pub fn complete(&mut self, key: &CacheKey) -> Option<Flight> {
        self.inflight.remove(&key.fingerprint())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evop_broker::{BrokerConfig, BrokerEvent};
    use serde_json::json;

    fn broker() -> Broker {
        let config = BrokerConfig { warm_pool_size: 2, ..BrokerConfig::default() };
        let mut broker = Broker::new(config, 42);
        broker.advance(SimDuration::from_secs(300));
        broker
    }

    fn the_key() -> CacheKey {
        CacheKey::new("topmodel", "eden", 1, &json!({"hours": 24}))
    }

    #[test]
    fn identical_requests_coalesce_onto_one_job() {
        let mut broker = broker();
        let mut coalescer = Coalescer::new();
        let key = the_key();
        let a = broker.connect("alice", "topmodel").expect("served");
        let b = broker.connect("bob", "topmodel").expect("served");
        let c = broker.connect("carol", "topmodel").expect("served");

        let lead = coalescer
            .submit(&mut broker, &key, a, SimDuration::from_secs(60), None)
            .expect("leader submits");
        let Submission::Leader { job } = lead else { panic!("first submission must lead") };
        for (i, s) in [b, c].into_iter().enumerate() {
            let sub = coalescer
                .submit(&mut broker, &key, s, SimDuration::from_secs(60), None)
                .expect("follower attaches");
            assert_eq!(
                sub,
                Submission::Follower { leader: a, job, position: i as u64 + 1 },
                "followers ride the leader's job"
            );
        }
        assert_eq!(coalescer.in_flight(), 1);
        let coalesced: Vec<_> = broker
            .events()
            .iter()
            .filter(|e| matches!(e, BrokerEvent::RequestCoalesced { .. }))
            .collect();
        assert_eq!(coalesced.len(), 2);
        if let BrokerEvent::RequestCoalesced { followers, key: k, .. } = coalesced[1] {
            assert_eq!(*followers, 2, "event carries the running per-key follower count");
            assert_eq!(k, &key.render());
        }
        let flight = coalescer.complete(&key).expect("flight completes");
        assert_eq!(flight.followers, vec![b, c]);
        assert_eq!(coalescer.in_flight(), 0);
    }

    #[test]
    fn different_keys_do_not_coalesce() {
        let mut broker = broker();
        let mut coalescer = Coalescer::new();
        let a = broker.connect("alice", "topmodel").expect("served");
        let b = broker.connect("bob", "topmodel").expect("served");
        let k1 = CacheKey::new("topmodel", "eden", 1, &json!({"hours": 24}));
        let k2 = CacheKey::new("topmodel", "eden", 1, &json!({"hours": 48}));
        let s1 = coalescer.submit(&mut broker, &k1, a, SimDuration::from_secs(60), None);
        let s2 = coalescer.submit(&mut broker, &k2, b, SimDuration::from_secs(60), None);
        assert!(matches!(s1, Ok(Submission::Leader { .. })));
        assert!(matches!(s2, Ok(Submission::Leader { .. })));
        assert_eq!(coalescer.in_flight(), 2);
    }

    #[test]
    fn failed_leader_leaves_nothing_in_flight() {
        let mut broker = broker();
        let mut coalescer = Coalescer::new();
        let key = the_key();
        // A session that was never connected cannot submit.
        let ghost = {
            let s = broker.connect("ghost", "topmodel").expect("served");
            broker.disconnect(s).expect("disconnects");
            s
        };
        let result = coalescer.submit(&mut broker, &key, ghost, SimDuration::from_secs(60), None);
        assert!(result.is_err());
        assert_eq!(coalescer.in_flight(), 0, "a failed leader must not strand followers");
    }
}
