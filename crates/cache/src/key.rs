//! Canonical cache keys.
//!
//! A result is reusable only when *everything* that influenced it matches:
//! which process ran, with which inputs, over which catchment, against
//! which revision of the underlying data. [`CacheKey`] folds all four into
//! one totally ordered value. Inputs are canonicalised (objects rendered
//! with sorted keys, compact separators) so `{"a":1,"b":2}` and
//! `{"b":2,"a":1}` are the same key, and the catalogue's data-version
//! stamp means a sensor update silently orphans every stale entry — the
//! cache never has to *find* them to stop serving them.

use std::fmt;

use serde_json::Value;

/// Identity of one cacheable model result.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CacheKey {
    process: String,
    catchment: String,
    data_version: u64,
    inputs: String,
}

impl CacheKey {
    /// Builds a key from the raw parts; `inputs` is canonicalised.
    pub fn new(process: &str, catchment: &str, data_version: u64, inputs: &Value) -> CacheKey {
        CacheKey {
            process: process.to_owned(),
            catchment: catchment.to_owned(),
            data_version,
            inputs: canonical_json(inputs),
        }
    }

    /// The WPS process identifier.
    pub fn process(&self) -> &str {
        &self.process
    }

    /// The catchment the question is about.
    pub fn catchment(&self) -> &str {
        &self.catchment
    }

    /// The catalogue data-version stamp baked into this key.
    pub fn data_version(&self) -> u64 {
        self.data_version
    }

    /// The canonicalised inputs JSON.
    pub fn inputs_json(&self) -> &str {
        &self.inputs
    }

    /// The canonical rendering — what gets hashed, logged and compared.
    pub fn render(&self) -> String {
        format!("{}|{}|v{}|{}", self.process, self.catchment, self.data_version, self.inputs)
    }

    /// FNV-1a fingerprint of the canonical rendering: the coalescer's map
    /// key and the basis of the L2 blob key.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.render().as_bytes())
    }

    /// The L2 blob key: content-addressed by the key fingerprint, so a
    /// given question always reads and writes the same object.
    pub fn blob_key(&self) -> String {
        format!("res-{:016x}", self.fingerprint())
    }
}

impl fmt::Display for CacheKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders JSON deterministically: object keys sorted, compact separators.
///
/// `serde_json`'s default `Map` already sorts, but canonicalisation is a
/// correctness property here (two spellings of the same inputs must
/// collide), so it is enforced structurally rather than assumed from a
/// feature flag.
pub fn canonical_json(value: &Value) -> String {
    let mut out = String::new();
    write_canonical(value, &mut out);
    out
}

fn write_canonical(value: &Value, out: &mut String) {
    match value {
        Value::Object(map) => {
            let mut entries: Vec<(&String, &Value)> = map.iter().collect();
            entries.sort_by(|a, b| a.0.cmp(b.0));
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_scalar(&Value::String((*k).clone()), out);
                out.push(':');
                write_canonical(v, out);
            }
            out.push('}');
        }
        Value::Array(items) => {
            out.push('[');
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical(v, out);
            }
            out.push(']');
        }
        scalar => render_scalar(scalar, out),
    }
}

fn render_scalar(value: &Value, out: &mut String) {
    match serde_json::to_string(value) {
        Ok(s) => out.push_str(&s),
        // Scalars cannot fail to serialise; the fallback keeps the
        // function total without masking object/array structure.
        Err(_) => out.push_str("null"),
    }
}

/// FNV-1a over `bytes` — the same dependency-free hash
/// [`evop_xcloud::Blob::content_hash`] uses, so key fingerprints and blob
/// integrity checks share one well-known function.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn key_order_in_inputs_does_not_matter() {
        let a = CacheKey::new("topmodel", "eden", 3, &json!({"m": 0.01, "hours": 24}));
        let b = CacheKey::new("topmodel", "eden", 3, &json!({"hours": 24, "m": 0.01}));
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn every_component_separates_keys() {
        let base = CacheKey::new("topmodel", "eden", 3, &json!({"m": 0.01}));
        let other_process = CacheKey::new("fuse", "eden", 3, &json!({"m": 0.01}));
        let other_catchment = CacheKey::new("topmodel", "tarland", 3, &json!({"m": 0.01}));
        let other_version = CacheKey::new("topmodel", "eden", 4, &json!({"m": 0.01}));
        let other_inputs = CacheKey::new("topmodel", "eden", 3, &json!({"m": 0.02}));
        for other in [&other_process, &other_catchment, &other_version, &other_inputs] {
            assert_ne!(&base, other);
            assert_ne!(base.fingerprint(), other.fingerprint());
        }
    }

    #[test]
    fn canonical_json_sorts_nested_objects() {
        let v = json!({"z": {"b": 1, "a": [2, {"d": 3, "c": 4}]}, "a": true});
        assert_eq!(canonical_json(&v), r#"{"a":true,"z":{"a":[2,{"c":4,"d":3}],"b":1}}"#);
    }

    #[test]
    fn blob_key_is_stable_and_hex() {
        let k = CacheKey::new("topmodel", "eden", 1, &json!({}));
        assert_eq!(k.blob_key(), k.blob_key());
        assert!(k.blob_key().starts_with("res-"));
        assert_eq!(k.blob_key().len(), 4 + 16);
    }
}
