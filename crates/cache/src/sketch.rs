//! TinyLFU-style frequency sketch: the L1 admission gate's memory.
//!
//! A flash crowd is exactly the workload where naive LRU fails: forty
//! users ask the hot question, then a handful of one-off queries march
//! through and evict it. The sketch remembers approximate access
//! frequencies in a few KB — a count-min sketch of saturating 4-bit-style
//! counters with periodic halving (aging) — so admission can ask "is the
//! newcomer provably more popular than the entry it would evict?" and
//! reject the drive-by. All hashing is seeded splitmix64: same seed, same
//! touch sequence, byte-identical decisions.

/// Rows in the count-min sketch; the estimate is the minimum across rows.
const ROWS: usize = 4;

/// Counters saturate here (TinyLFU's nibble limit) — popularity beyond 15
/// accesses per aging period carries no extra admission weight.
const COUNTER_CAP: u8 = 15;

/// Approximate per-key access counts with bounded memory and aging.
#[derive(Debug, Clone)]
pub struct FrequencySketch {
    width_mask: u64,
    counters: Vec<u8>,
    seeds: [u64; ROWS],
    samples: u64,
    sample_limit: u64,
}

impl FrequencySketch {
    /// A sketch sized for roughly `capacity` distinct hot keys, with all
    /// row hashes derived from `seed`.
    pub fn new(capacity: usize, seed: u64) -> FrequencySketch {
        let width = capacity.saturating_mul(4).next_power_of_two().max(64);
        let mut state = seed;
        let mut seeds = [0u64; ROWS];
        for slot in &mut seeds {
            state = splitmix64(state);
            *slot = state;
        }
        FrequencySketch {
            width_mask: (width as u64) - 1,
            counters: vec![0; width * ROWS],
            seeds,
            samples: 0,
            sample_limit: (capacity as u64).saturating_mul(10).max(100),
        }
    }

    /// Records one access to `fingerprint`, aging all counters when the
    /// sample budget is spent.
    pub fn touch(&mut self, fingerprint: u64) {
        let width = self.width_mask as usize + 1;
        let mask = self.width_mask;
        for (row, &seed) in self.seeds.iter().enumerate() {
            let idx = row * width + (splitmix64(fingerprint ^ seed) & mask) as usize;
            if let Some(counter) = self.counters.get_mut(idx) {
                if *counter < COUNTER_CAP {
                    *counter += 1;
                }
            }
        }
        self.samples += 1;
        if self.samples >= self.sample_limit {
            self.age();
        }
    }

    /// The approximate access count for `fingerprint` (never an
    /// undercount before saturation, by count-min construction).
    pub fn estimate(&self, fingerprint: u64) -> u8 {
        let width = self.width_mask as usize + 1;
        self.seeds
            .iter()
            .enumerate()
            .filter_map(|(row, &seed)| {
                let idx = row * width + (splitmix64(fingerprint ^ seed) & self.width_mask) as usize;
                self.counters.get(idx).copied()
            })
            .min()
            .unwrap_or(0)
    }

    /// Total touches recorded since the last aging pass.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Halves every counter — recent popularity outweighs ancient history.
    fn age(&mut self) {
        for counter in &mut self.counters {
            *counter >>= 1;
        }
        self.samples >>= 1;
    }
}

/// The splitmix64 mixer: a tiny, well-distributed, dependency-free hash.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_keys_estimate_higher_than_cold() {
        let mut sketch = FrequencySketch::new(64, 42);
        for _ in 0..10 {
            sketch.touch(1111);
        }
        sketch.touch(2222);
        assert!(sketch.estimate(1111) > sketch.estimate(2222));
        assert_eq!(sketch.estimate(3333), 0);
    }

    #[test]
    fn counters_saturate_at_cap() {
        let mut sketch = FrequencySketch::new(8, 7);
        for _ in 0..100 {
            sketch.touch(5);
        }
        assert!(sketch.estimate(5) <= COUNTER_CAP);
    }

    #[test]
    fn aging_halves_estimates() {
        let mut sketch = FrequencySketch::new(8, 7);
        // sample_limit = max(80, 100) = 100; 14 touches stay pre-aging.
        for _ in 0..14 {
            sketch.touch(5);
        }
        let before = sketch.estimate(5);
        for i in 0..200u64 {
            sketch.touch(1_000 + i);
        }
        assert!(sketch.estimate(5) < before, "aging must decay stale popularity");
    }

    #[test]
    fn same_seed_same_estimates() {
        let mut a = FrequencySketch::new(32, 99);
        let mut b = FrequencySketch::new(32, 99);
        for i in 0..500u64 {
            let fp = splitmix64(i) % 40;
            a.touch(fp);
            b.touch(fp);
        }
        for fp in 0..40 {
            assert_eq!(a.estimate(fp), b.estimate(fp));
        }
    }

    #[test]
    fn different_seeds_place_keys_differently() {
        let a = FrequencySketch::new(32, 1);
        let b = FrequencySketch::new(32, 2);
        // Not a strict guarantee per key, but the seed streams must differ.
        assert_ne!(a.seeds, b.seeds);
    }
}
