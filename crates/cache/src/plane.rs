//! The assembled cache plane: policy, tiers, admission, invalidation.
//!
//! [`ResultCache`] is what everything else holds: an L1
//! [`LruTtlStore`](crate::l1::LruTtlStore) guarded by a
//! [`FrequencySketch`](crate::sketch::FrequencySketch) admission gate,
//! optionally backed by an L2 blob tier reached through the
//! [`BlobBackend`] seam (the plain in-memory store, or the chaos plane's
//! fault-injecting wrapper — the cache cannot tell and must not care).
//! Every L2 read is integrity-checked against the content hash remembered
//! at spill time; a corrupt or unavailable object is *never* served, it
//! is a miss. Counters and the age-at-hit histogram go to `evop-obs`, and
//! [`hit_ratio_slo`] turns them into a burn-rate-judged objective.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use evop_obs::{AlertSeverity, MetricsRegistry, Selector, SloSpec};
use evop_sim::{SimDuration, SimTime};
use evop_xcloud::{Blob, BlobStore, BlobStoreError};
use serde_json::{json, Value};

use crate::key::{canonical_json, CacheKey};
use crate::l1::LruTtlStore;
use crate::sketch::FrequencySketch;

/// How much caching a deployment wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CachePolicy {
    /// No caching: every request runs the model.
    Off,
    /// In-memory L1 only.
    #[default]
    L1,
    /// L1 plus blob-store L2 spill for large results.
    L1L2,
}

impl CachePolicy {
    /// Lower-case label used in logs, flags and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            CachePolicy::Off => "off",
            CachePolicy::L1 => "l1",
            CachePolicy::L1L2 => "l1+l2",
        }
    }
}

impl fmt::Display for CachePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for CachePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<CachePolicy, String> {
        match s {
            "off" => Ok(CachePolicy::Off),
            "l1" => Ok(CachePolicy::L1),
            "l1+l2" | "l1l2" => Ok(CachePolicy::L1L2),
            other => Err(format!("unknown cache policy {other:?} (off, l1, l1+l2)")),
        }
    }
}

/// The L2 seam: anything that stores and fetches blobs in virtual time.
///
/// Implemented here for the plain [`BlobStore`]; `evop-chaos` implements
/// it for `ChaosBlobStore`, which is how outages and corruption reach the
/// cache without the cache depending on the chaos plane's internals.
pub trait BlobBackend: Send {
    /// Creates `container` if it does not exist.
    fn ensure_container(&mut self, container: &str);

    /// Stores a blob at virtual time `now`.
    ///
    /// # Errors
    ///
    /// [`BlobStoreError`] as the backing store reports it.
    fn put(
        &mut self,
        now: SimTime,
        container: &str,
        key: &str,
        blob: Blob,
    ) -> Result<(), BlobStoreError>;

    /// Fetches a blob at virtual time `now`.
    ///
    /// # Errors
    ///
    /// [`BlobStoreError`] as the backing store reports it.
    fn get(&mut self, now: SimTime, container: &str, key: &str) -> Result<Blob, BlobStoreError>;
}

impl BlobBackend for BlobStore {
    fn ensure_container(&mut self, container: &str) {
        self.create_container(container);
    }

    fn put(
        &mut self,
        _now: SimTime,
        container: &str,
        key: &str,
        blob: Blob,
    ) -> Result<(), BlobStoreError> {
        BlobStore::put(self, container, key, blob).map(|_| ())
    }

    fn get(&mut self, _now: SimTime, container: &str, key: &str) -> Result<Blob, BlobStoreError> {
        BlobStore::get(self, container, key).cloned()
    }
}

/// Configuration for one [`ResultCache`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Which tiers are live.
    pub policy: CachePolicy,
    /// L1 entry bound.
    pub l1_capacity: usize,
    /// Freshness window for both tiers, in virtual time.
    pub ttl: SimDuration,
    /// Seed for the admission sketch's hashing.
    pub seed: u64,
    /// L2 container name.
    pub l2_container: String,
    /// Results whose canonical JSON is at least this long spill to L2.
    pub l2_spill_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            policy: CachePolicy::L1,
            l1_capacity: 256,
            ttl: SimDuration::from_secs(3600),
            seed: 42,
            l2_container: String::from("evop-cache-l2"),
            l2_spill_bytes: 256,
        }
    }
}

/// Which tier answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// In-memory LRU.
    L1,
    /// Blob-store spill.
    L2,
}

impl Tier {
    /// Lower-case metric label.
    pub fn label(&self) -> &'static str {
        match self {
            Tier::L1 => "l1",
            Tier::L2 => "l2",
        }
    }
}

/// A successful lookup: the cached value, its age, and the serving tier.
#[derive(Debug, Clone)]
pub struct Hit {
    /// The cached result.
    pub value: Value,
    /// Virtual time since the result was stored.
    pub age: SimDuration,
    /// Which tier served it.
    pub tier: Tier,
}

/// Running totals, mirrored into the metrics registry when one is set.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1 hits.
    pub l1_hits: u64,
    /// L2 hits (promoted into L1 on the way out).
    pub l2_hits: u64,
    /// Misses recorded via [`ResultCache::note_miss`] or L2 failure paths.
    pub misses: u64,
    /// Inserts refused by the frequency-sketch admission gate.
    pub admission_rejected: u64,
    /// Entries dropped because their data version went stale.
    pub stale_invalidated: u64,
    /// L2 objects refused for failing their integrity check.
    pub corrupt_rejected: u64,
    /// L2 index entries dropped because the backing store was down.
    pub outage_invalidated: u64,
}

impl CacheStats {
    /// Deterministic JSON for reports.
    pub fn to_json(&self) -> Value {
        json!({
            "l1_hits": self.l1_hits,
            "l2_hits": self.l2_hits,
            "misses": self.misses,
            "admission_rejected": self.admission_rejected,
            "stale_invalidated": self.stale_invalidated,
            "corrupt_rejected": self.corrupt_rejected,
            "outage_invalidated": self.outage_invalidated,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct L2Entry {
    content_hash: u64,
    stored_at: SimTime,
}

/// The deterministic two-tier result cache.
pub struct ResultCache {
    config: CacheConfig,
    l1: LruTtlStore,
    sketch: FrequencySketch,
    l2: Option<Box<dyn BlobBackend>>,
    l2_index: BTreeMap<CacheKey, L2Entry>,
    metrics: Option<MetricsRegistry>,
    stats: CacheStats,
}

impl fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResultCache")
            .field("policy", &self.config.policy)
            .field("l1_len", &self.l1.len())
            .field("l2_index_len", &self.l2_index.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl ResultCache {
    /// Builds a cache; attach an L2 backend with [`ResultCache::with_l2`]
    /// when the policy wants one.
    pub fn new(config: CacheConfig) -> ResultCache {
        let l1 = LruTtlStore::new(config.l1_capacity, config.ttl);
        let sketch = FrequencySketch::new(config.l1_capacity, config.seed);
        ResultCache {
            config,
            l1,
            sketch,
            l2: None,
            l2_index: BTreeMap::new(),
            metrics: None,
            stats: CacheStats::default(),
        }
    }

    /// Attaches the L2 blob backend (builder style), creating the spill
    /// container.
    pub fn with_l2(mut self, mut backend: Box<dyn BlobBackend>) -> ResultCache {
        backend.ensure_container(&self.config.l2_container);
        self.l2 = Some(backend);
        self
    }

    /// Attaches a metrics registry; all counters and the age histogram
    /// flow into it from then on.
    pub fn set_metrics(&mut self, metrics: MetricsRegistry) {
        self.metrics = Some(metrics);
    }

    /// The active policy.
    pub fn policy(&self) -> CachePolicy {
        self.config.policy
    }

    /// Running totals.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Entries currently in L1.
    pub fn l1_len(&self) -> usize {
        self.l1.len()
    }

    /// Entries currently indexed in L2.
    pub fn l2_len(&self) -> usize {
        self.l2_index.len()
    }

    /// Looks `key` up at virtual time `now`: L1 first, then (policy
    /// permitting) L2 with an integrity check and promotion into L1.
    ///
    /// A hit counts `cache_requests_total{outcome="hit"}`; a miss counts
    /// nothing here — the caller decides whether the miss becomes a
    /// coalesced follower (the coalescer counts it) or a real model run
    /// ([`ResultCache::note_miss`] counts it). That keeps exactly one
    /// outcome per request in the hit-ratio denominator.
    pub fn lookup(&mut self, now: SimTime, key: &CacheKey) -> Option<Hit> {
        if self.config.policy == CachePolicy::Off {
            return None;
        }
        self.sketch.touch(key.fingerprint());
        if let Some((value, age)) = self.l1.get(now, key) {
            self.stats.l1_hits += 1;
            self.count_hit(Tier::L1, age);
            return Some(Hit { value, age, tier: Tier::L1 });
        }
        if self.config.policy == CachePolicy::L1L2 {
            return self.lookup_l2(now, key);
        }
        None
    }

    fn lookup_l2(&mut self, now: SimTime, key: &CacheKey) -> Option<Hit> {
        let entry = *self.l2_index.get(key)?;
        if let Some(deadline) = entry.stored_at.checked_add(self.config.ttl) {
            if now >= deadline {
                self.l2_index.remove(key);
                return None;
            }
        }
        let container = self.config.l2_container.clone();
        let blob_key = key.blob_key();
        let fetched = self.l2.as_mut()?.get(now, &container, &blob_key);
        match fetched {
            Ok(blob) => {
                if blob.content_hash() != entry.content_hash {
                    // Silent corruption: the bytes changed under us.
                    self.reject_corrupt(key);
                    return None;
                }
                match serde_json::from_slice::<Value>(blob.data()) {
                    Ok(value) => {
                        let age = now.saturating_since(entry.stored_at);
                        self.stats.l2_hits += 1;
                        self.count_hit(Tier::L2, age);
                        // Promote: the next ask should be an L1 hit.
                        self.l1.insert(now, key.clone(), value.clone());
                        Some(Hit { value, age, tier: Tier::L2 })
                    }
                    Err(_) => {
                        // Hash matched but the payload is not JSON: treat
                        // exactly like corruption, never serve it.
                        self.reject_corrupt(key);
                        None
                    }
                }
            }
            Err(BlobStoreError::Corrupted { .. }) => {
                // Detected corruption (the chaos plane's injected case).
                self.reject_corrupt(key);
                None
            }
            Err(BlobStoreError::TransientlyUnavailable { .. }) => {
                // The whole backing store is down: drop the entire index
                // rather than trusting entries we can no longer verify.
                let dropped = self.l2_index.len() as u64;
                self.l2_index.clear();
                self.stats.outage_invalidated += dropped;
                if let Some(metrics) = &self.metrics {
                    metrics.add_counter(
                        "cache_invalidations_total",
                        &[("reason", "outage")],
                        dropped,
                    );
                }
                None
            }
            Err(_) => {
                // Missing container/key: the index lied; fix it.
                self.l2_index.remove(key);
                None
            }
        }
    }

    /// Records that a request missed the cache and went to a real model
    /// run — the leader path. See [`ResultCache::lookup`] for why misses
    /// are counted by the caller.
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
        if let Some(metrics) = &self.metrics {
            metrics.inc_counter("cache_requests_total", &[("outcome", "miss")]);
        }
    }

    /// Offers a computed result for caching. Returns `true` when the
    /// entry was admitted to L1. Large results also spill to L2 under an
    /// `L1L2` policy, keyed by content-hashed blob keys.
    pub fn insert(&mut self, now: SimTime, key: CacheKey, value: &Value) -> bool {
        if self.config.policy == CachePolicy::Off {
            return false;
        }
        let admitted = self.admit(now, &key, value);
        if self.config.policy == CachePolicy::L1L2 {
            self.spill(now, &key, value);
        }
        admitted
    }

    fn admit(&mut self, now: SimTime, key: &CacheKey, value: &Value) -> bool {
        let full = self.l1.len() >= self.l1.capacity() && !self.l1.contains_fresh(now, key);
        if full {
            if let Some(victim) = self.l1.lru_key() {
                // TinyLFU gate: a newcomer must be strictly more popular
                // than the entry it would evict. One-off queries lose to
                // any entry that has been asked for twice.
                if self.sketch.estimate(key.fingerprint())
                    <= self.sketch.estimate(victim.fingerprint())
                {
                    self.stats.admission_rejected += 1;
                    if let Some(metrics) = &self.metrics {
                        metrics.inc_counter("cache_admission_rejected_total", &[]);
                    }
                    return false;
                }
            }
        }
        self.l1.insert(now, key.clone(), value.clone());
        true
    }

    fn spill(&mut self, now: SimTime, key: &CacheKey, value: &Value) {
        if self.l2.is_none() {
            return;
        }
        let rendered = canonical_json(value);
        if rendered.len() < self.config.l2_spill_bytes {
            return;
        }
        let blob = Blob::new(rendered.into_bytes(), "application/json");
        let content_hash = blob.content_hash();
        let container = self.config.l2_container.clone();
        let blob_key = key.blob_key();
        let stored = match self.l2.as_mut() {
            Some(backend) => backend.put(now, &container, &blob_key, blob),
            None => return,
        };
        match stored {
            Ok(()) => {
                self.l2_index.insert(key.clone(), L2Entry { content_hash, stored_at: now });
            }
            Err(_) => {
                // A failed spill is not an error for the caller: the
                // result was still computed and served. L2 just stays
                // cold for this key.
                if let Some(metrics) = &self.metrics {
                    metrics.inc_counter("cache_l2_spill_failed_total", &[]);
                }
            }
        }
    }

    /// Drops every entry (both tiers' indexes) whose data version differs
    /// from `current` — call after a catalogue update. Returns the count.
    pub fn invalidate_stale_versions(&mut self, current: u64) -> usize {
        let from_l1 = self.l1.retain_version(current);
        let before = self.l2_index.len();
        self.l2_index.retain(|k, _| k.data_version() == current);
        let dropped = from_l1 + (before - self.l2_index.len());
        self.stats.stale_invalidated += dropped as u64;
        if let Some(metrics) = &self.metrics {
            metrics.add_counter(
                "cache_invalidations_total",
                &[("reason", "data-update")],
                dropped as u64,
            );
        }
        dropped
    }

    /// Collects expired L1 entries in bulk (expiry also happens lazily on
    /// access). Returns the count dropped.
    pub fn purge_expired(&mut self, now: SimTime) -> usize {
        self.l1.purge_expired(now)
    }

    fn count_hit(&mut self, tier: Tier, age: SimDuration) {
        if let Some(metrics) = &self.metrics {
            metrics.inc_counter("cache_requests_total", &[("outcome", "hit")]);
            metrics.inc_counter("cache_tier_hits_total", &[("tier", tier.label())]);
            metrics.observe("cache_hit_age_seconds", &[], age.as_secs_f64());
        }
    }

    fn reject_corrupt(&mut self, key: &CacheKey) {
        self.l2_index.remove(key);
        self.stats.corrupt_rejected += 1;
        if let Some(metrics) = &self.metrics {
            metrics.inc_counter("cache_invalidations_total", &[("reason", "corrupt")]);
        }
    }
}

/// The cache-hit-ratio SLO: hits *and* coalesced followers both count as
/// served-without-a-model-run, judged against every classified request.
/// Windowed for burn-rate alerting like the broker availability SLO.
pub fn hit_ratio_slo(target: f64) -> SloSpec {
    SloSpec::availability_any(
        "cache-hit-ratio",
        target,
        &[
            Selector::new("cache_requests_total", &[("outcome", "hit")]),
            Selector::new("cache_requests_total", &[("outcome", "follower")]),
        ],
        "cache_requests_total",
    )
    .window(3600, 300, 2.0, AlertSeverity::Ticket)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn key(n: u64) -> CacheKey {
        CacheKey::new("topmodel", "eden", 1, &json!({ "n": n }))
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn l1_cache(capacity: usize) -> ResultCache {
        ResultCache::new(CacheConfig {
            l1_capacity: capacity,
            ttl: SimDuration::from_secs(1000),
            ..CacheConfig::default()
        })
    }

    #[test]
    fn off_policy_never_stores_or_serves() {
        let mut cache =
            ResultCache::new(CacheConfig { policy: CachePolicy::Off, ..CacheConfig::default() });
        assert!(!cache.insert(t(0), key(1), &json!(1)));
        assert!(cache.lookup(t(1), &key(1)).is_none());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn l1_round_trip_counts_hit() {
        let mut cache = l1_cache(4);
        let metrics = MetricsRegistry::new();
        cache.set_metrics(metrics.clone());
        cache.insert(t(0), key(1), &json!({"q": 7}));
        let hit = cache.lookup(t(30), &key(1)).expect("hit");
        assert_eq!(hit.value, json!({"q": 7}));
        assert_eq!(hit.tier, Tier::L1);
        assert_eq!(hit.age, SimDuration::from_secs(30));
        assert_eq!(metrics.counter("cache_requests_total", &[("outcome", "hit")]), 1);
        assert_eq!(metrics.counter("cache_tier_hits_total", &[("tier", "l1")]), 1);
        assert_eq!(metrics.observations("cache_hit_age_seconds", &[]), 1);
    }

    #[test]
    fn one_off_queries_cannot_evict_hot_entries() {
        let mut cache = l1_cache(2);
        // Make 1 and 2 hot.
        for _ in 0..3 {
            cache.lookup(t(0), &key(1));
            cache.lookup(t(0), &key(2));
        }
        cache.insert(t(1), key(1), &json!(1));
        cache.insert(t(1), key(2), &json!(2));
        // A drive-by insert must be rejected, leaving the hot pair alone.
        assert!(!cache.insert(t(2), key(99), &json!(99)));
        assert!(cache.lookup(t(3), &key(1)).is_some());
        assert!(cache.lookup(t(3), &key(2)).is_some());
        assert!(cache.lookup(t(3), &key(99)).is_none());
        assert_eq!(cache.stats().admission_rejected, 1);
    }

    #[test]
    fn repeatedly_requested_newcomer_displaces_cold_victim() {
        let mut cache = l1_cache(2);
        cache.insert(t(0), key(1), &json!(1));
        cache.insert(t(0), key(2), &json!(2));
        // Key 3 becomes demonstrably hotter than the LRU victim.
        for _ in 0..5 {
            cache.lookup(t(1), &key(3));
        }
        assert!(cache.insert(t(2), key(3), &json!(3)));
        assert!(cache.lookup(t(3), &key(3)).is_some());
    }

    #[test]
    fn l2_spill_and_integrity_checked_read_back() {
        let big = json!({ "series": (0..100).collect::<Vec<u32>>() });
        let mut cache = ResultCache::new(CacheConfig {
            policy: CachePolicy::L1L2,
            l1_capacity: 2,
            l2_spill_bytes: 16,
            ..CacheConfig::default()
        })
        .with_l2(Box::new(BlobStore::new()));
        cache.insert(t(0), key(1), &big);
        assert_eq!(cache.l2_len(), 1);
        // Simulate L1 loss (e.g. restart): the entry must come back from
        // L2 and be promoted.
        cache.l1.remove(&key(1));
        let hit = cache.lookup(t(10), &key(1)).expect("l2 hit");
        assert_eq!(hit.tier, Tier::L2);
        assert_eq!(hit.value, big);
        let hit2 = cache.lookup(t(11), &key(1)).expect("promoted");
        assert_eq!(hit2.tier, Tier::L1);
    }

    #[test]
    fn tampered_l2_object_is_a_miss_never_served() {
        let big = json!({ "series": (0..100).collect::<Vec<u32>>() });
        let mut store = BlobStore::new();
        store.create_container("evop-cache-l2");
        let mut cache = ResultCache::new(CacheConfig {
            policy: CachePolicy::L1L2,
            l2_spill_bytes: 16,
            ..CacheConfig::default()
        })
        .with_l2(Box::new(store));
        cache.insert(t(0), key(1), &big);
        cache.l1.remove(&key(1));
        // Overwrite the blob behind the cache's back.
        if let Some(backend) = cache.l2.as_mut() {
            backend
                .put(t(1), "evop-cache-l2", &key(1).blob_key(), Blob::from("{\"evil\":true}"))
                .expect("direct overwrite");
        }
        assert!(cache.lookup(t(2), &key(1)).is_none());
        assert_eq!(cache.stats().corrupt_rejected, 1);
        // The index entry is gone: the next lookup is a clean miss.
        assert!(cache.lookup(t(3), &key(1)).is_none());
    }

    #[test]
    fn catalog_version_bump_invalidates_stale_entries() {
        let mut cache = l1_cache(8);
        cache.insert(t(0), CacheKey::new("p", "c", 1, &json!({})), &json!(1));
        cache.insert(t(0), CacheKey::new("p", "c", 2, &json!({})), &json!(2));
        assert_eq!(cache.invalidate_stale_versions(2), 1);
        assert!(cache.lookup(t(1), &CacheKey::new("p", "c", 1, &json!({}))).is_none());
        assert!(cache.lookup(t(1), &CacheKey::new("p", "c", 2, &json!({}))).is_some());
    }

    #[test]
    fn policy_parses_and_renders() {
        for (s, p) in
            [("off", CachePolicy::Off), ("l1", CachePolicy::L1), ("l1+l2", CachePolicy::L1L2)]
        {
            assert_eq!(s.parse::<CachePolicy>().expect("parses"), p);
            assert_eq!(p.to_string(), s);
        }
        assert_eq!("l1l2".parse::<CachePolicy>().expect("alias"), CachePolicy::L1L2);
        assert!("both".parse::<CachePolicy>().is_err());
    }

    #[test]
    fn hit_ratio_slo_counts_followers_as_good() {
        let metrics = MetricsRegistry::new();
        let slo = hit_ratio_slo(0.9);
        assert_eq!(slo.name(), "cache-hit-ratio");
        // 9 served (5 hits + 4 followers) of 10 classified = 0.9.
        for _ in 0..5 {
            metrics.inc_counter("cache_requests_total", &[("outcome", "hit")]);
        }
        for _ in 0..4 {
            metrics.inc_counter("cache_requests_total", &[("outcome", "follower")]);
        }
        metrics.inc_counter("cache_requests_total", &[("outcome", "miss")]);
        let good = metrics.counter("cache_requests_total", &[("outcome", "hit")])
            + metrics.counter("cache_requests_total", &[("outcome", "follower")]);
        assert_eq!(good, 9);
        assert_eq!(metrics.counter_family_total("cache_requests_total"), 10);
    }
}
