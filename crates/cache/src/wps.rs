//! The adapter that plugs the cache plane into `WpsServer::execute`.
//!
//! `WpsServer` speaks the narrow [`WpsCache`] trait (validated inputs in,
//! maybe-cached value out); this module supplies the real implementation:
//! it builds the full [`CacheKey`] — process id, canonical inputs,
//! catchment id, catalogue data version — and consults the shared
//! [`ResultCache`] at the current *virtual* time. Virtual time and the
//! data version are shared cells ([`VirtualClock`], [`DataVersion`])
//! because the WPS server has neither a clock nor a catalogue: the
//! observatory wiring advances the clock alongside the broker and bumps
//! the version when the catalogue changes. REST callers stay untouched —
//! a hit is just a fast execute.

use std::sync::Arc;

use evop_services::wps::WpsCache;
use evop_sim::SimTime;
use parking_lot::Mutex;
use serde_json::{Map, Value};

use crate::key::CacheKey;
use crate::plane::ResultCache;

/// A shared virtual-time cell: the cache's "now".
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Arc<Mutex<SimTime>>,
}

impl VirtualClock {
    /// A clock at the virtual epoch.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        *self.now.lock()
    }

    /// Advances to `t` (monotone: earlier values are ignored).
    pub fn advance_to(&self, t: SimTime) {
        let mut now = self.now.lock();
        if t > *now {
            *now = t;
        }
    }
}

/// A shared catalogue data-version cell.
#[derive(Debug, Clone, Default)]
pub struct DataVersion {
    version: Arc<Mutex<u64>>,
}

impl DataVersion {
    /// A cell at version 0.
    pub fn new() -> DataVersion {
        DataVersion::default()
    }

    /// The current version.
    pub fn current(&self) -> u64 {
        *self.version.lock()
    }

    /// Sets the version (monotone: smaller values are ignored).
    pub fn set(&self, version: u64) {
        let mut current = self.version.lock();
        if version > *current {
            *current = version;
        }
    }
}

/// The [`WpsCache`] implementation over a shared [`ResultCache`].
#[derive(Debug)]
pub struct WpsResultCache {
    plane: Arc<Mutex<ResultCache>>,
    clock: VirtualClock,
    version: DataVersion,
    catchment: String,
}

impl WpsResultCache {
    /// Builds the adapter for one catchment's WPS server. All catchments
    /// share `plane`; the catchment id in the key keeps them apart.
    pub fn new(
        plane: Arc<Mutex<ResultCache>>,
        clock: VirtualClock,
        version: DataVersion,
        catchment: impl Into<String>,
    ) -> WpsResultCache {
        WpsResultCache { plane, clock, version, catchment: catchment.into() }
    }

    fn key(&self, process: &str, inputs: &Map<String, Value>) -> CacheKey {
        CacheKey::new(
            process,
            &self.catchment,
            self.version.current(),
            &Value::Object(inputs.clone()),
        )
    }
}

impl WpsCache for WpsResultCache {
    fn lookup(&self, process: &str, inputs: &Map<String, Value>) -> Option<Value> {
        let key = self.key(process, inputs);
        let mut plane = self.plane.lock();
        match plane.lookup(self.clock.now(), &key) {
            Some(hit) => Some(hit.value),
            None => {
                // No coalescer sits on this path: a miss here goes
                // straight to a real execution, so classify it now.
                plane.note_miss();
                None
            }
        }
    }

    fn store(&self, process: &str, inputs: &Map<String, Value>, result: &Value) {
        let key = self.key(process, inputs);
        self.plane.lock().insert(self.clock.now(), key, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::{CacheConfig, CachePolicy};
    use evop_services::wps::{ParamSpec, ParamType, ProcessDescriptor, WpsProcess, WpsServer};
    use serde_json::json;

    struct Doubler;

    impl WpsProcess for Doubler {
        fn descriptor(&self) -> ProcessDescriptor {
            ProcessDescriptor {
                identifier: "double".to_owned(),
                title: "Doubler".to_owned(),
                abstract_text: String::new(),
                inputs: vec![ParamSpec::required(
                    "x",
                    "x",
                    ParamType::Float { min: None, max: None },
                )],
                outputs: vec![("y".to_owned(), "2x".to_owned())],
            }
        }

        fn execute(&self, inputs: &Map<String, Value>) -> Result<Value, String> {
            let x = inputs.get("x").and_then(Value::as_f64).ok_or("x must be a number")?;
            Ok(json!({ "y": 2.0 * x }))
        }
    }

    #[test]
    fn second_execute_is_served_from_cache() {
        let plane = Arc::new(Mutex::new(ResultCache::new(CacheConfig::default())));
        let clock = VirtualClock::new();
        let version = DataVersion::new();
        let mut server = WpsServer::new();
        server.register(Doubler);
        server.set_cache(Arc::new(WpsResultCache::new(
            plane.clone(),
            clock.clone(),
            version.clone(),
            "eden",
        )));

        assert_eq!(server.execute("double", json!({"x": 21.0})).expect("runs")["y"], 42.0);
        assert_eq!(server.execute("double", json!({"x": 21.0})).expect("cached")["y"], 42.0);
        let stats = plane.lock().stats();
        assert_eq!(stats.l1_hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn version_bump_turns_hits_back_into_misses() {
        let plane = Arc::new(Mutex::new(ResultCache::new(CacheConfig {
            policy: CachePolicy::L1,
            ..CacheConfig::default()
        })));
        let clock = VirtualClock::new();
        let version = DataVersion::new();
        let mut server = WpsServer::new();
        server.register(Doubler);
        server.set_cache(Arc::new(WpsResultCache::new(
            plane.clone(),
            clock.clone(),
            version.clone(),
            "eden",
        )));

        server.execute("double", json!({"x": 1.0})).expect("runs");
        server.execute("double", json!({"x": 1.0})).expect("cached");
        assert_eq!(plane.lock().stats().l1_hits, 1);
        // New sensor data lands: the catalogue bumps, the old entry is
        // unreachable, and the next execute recomputes.
        version.set(1);
        plane.lock().invalidate_stale_versions(1);
        server.execute("double", json!({"x": 1.0})).expect("recomputed");
        let stats = plane.lock().stats();
        assert_eq!(stats.l1_hits, 1, "stale generation must not serve");
        assert_eq!(stats.misses, 2);
    }

    #[test]
    fn clock_and_version_cells_are_monotone() {
        let clock = VirtualClock::new();
        clock.advance_to(SimTime::from_secs(100));
        clock.advance_to(SimTime::from_secs(50));
        assert_eq!(clock.now(), SimTime::from_secs(100));
        let version = DataVersion::new();
        version.set(3);
        version.set(2);
        assert_eq!(version.current(), 3);
    }
}
