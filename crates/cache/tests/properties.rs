//! Property-based tests for the cache plane's core invariants (proptest).
//!
//! Three properties the whole design leans on, pinned down over random
//! operation sequences rather than hand-picked examples:
//!
//! 1. the L1 store never holds more entries than its capacity, whatever
//!    interleaving of inserts, touches and purges it sees;
//! 2. freshness is monotone in virtual time — once an entry has expired
//!    it can never be fresh again later (without a re-insert);
//! 3. admission decisions are a pure function of (seed, operation
//!    sequence): two caches built with the same seed and fed the same
//!    sequence produce byte-identical decision vectors.

use evop_cache::{CacheConfig, CacheKey, CachePolicy, ResultCache};
use evop_sim::{SimDuration, SimTime};
use proptest::prelude::*;
use serde_json::json;

fn key(n: u64) -> CacheKey {
    CacheKey::new("topmodel", "eden", 1, &json!({ "n": n }))
}

/// One step of a generated workload: which key, at what virtual second,
/// and whether this step inserts (odd) or just looks up (even).
fn ops() -> impl Strategy<Value = Vec<(u64, u64, u8)>> {
    proptest::collection::vec((0u64..40, 0u64..10_000, 0u8..2), 1..200)
}

fn run_workload(
    capacity: usize,
    ttl_secs: u64,
    seed: u64,
    ops: &[(u64, u64, u8)],
) -> (ResultCache, Vec<bool>) {
    let mut cache = ResultCache::new(CacheConfig {
        policy: CachePolicy::L1,
        l1_capacity: capacity,
        ttl: SimDuration::from_secs(ttl_secs),
        seed,
        ..CacheConfig::default()
    });
    let mut decisions = Vec::new();
    let mut now_secs = 0;
    for &(k, at, insert) in ops {
        // Virtual time only moves forward.
        now_secs = now_secs.max(at);
        let now = SimTime::from_secs(now_secs);
        let key = key(k);
        if insert == 1 {
            decisions.push(cache.insert(now, key, &json!({ "k": k })));
        } else {
            cache.lookup(now, &key);
        }
    }
    (cache, decisions)
}

proptest! {
    // ----------------------------------------------------------------
    // Capacity bound
    // ----------------------------------------------------------------

    #[test]
    fn l1_never_exceeds_capacity(
        capacity in 1usize..16,
        ttl_secs in 1u64..5_000,
        seed in 0u64..1_000,
        ops in ops(),
    ) {
        let mut cache = ResultCache::new(CacheConfig {
            policy: CachePolicy::L1,
            l1_capacity: capacity,
            ttl: SimDuration::from_secs(ttl_secs),
            seed,
            ..CacheConfig::default()
        });
        let mut now_secs = 0;
        for (k, at, insert) in ops {
            now_secs = now_secs.max(at);
            let now = SimTime::from_secs(now_secs);
            if insert == 1 {
                cache.insert(now, key(k), &json!({ "k": k }));
            } else {
                cache.lookup(now, &key(k));
            }
            prop_assert!(
                cache.l1_len() <= capacity,
                "l1 holds {} entries over capacity {capacity}",
                cache.l1_len(),
            );
        }
    }

    // ----------------------------------------------------------------
    // TTL expiry is monotone in virtual time
    // ----------------------------------------------------------------

    #[test]
    fn expiry_is_monotone(
        ttl_secs in 1u64..1_000,
        stored_at in 0u64..1_000,
        probe_a in 0u64..4_000,
        probe_b in 0u64..4_000,
    ) {
        let mut cache = ResultCache::new(CacheConfig {
            policy: CachePolicy::L1,
            l1_capacity: 4,
            ttl: SimDuration::from_secs(ttl_secs),
            ..CacheConfig::default()
        });
        cache.insert(SimTime::from_secs(stored_at), key(1), &json!(1));
        let (early, late) = (probe_a.min(probe_b), probe_a.max(probe_b));
        // Probe in time order on the same store: a miss at `early`
        // (expired) must imply a miss at `late`. The early probe may
        // itself collect the entry — which is exactly the point.
        let hit_early = cache.lookup(SimTime::from_secs(stored_at + early), &key(1)).is_some();
        let hit_late = cache.lookup(SimTime::from_secs(stored_at + late), &key(1)).is_some();
        prop_assert!(
            hit_early || !hit_late,
            "entry expired at +{early}s yet served at +{late}s (ttl {ttl_secs}s)"
        );
        // And expiry honours the TTL exactly.
        prop_assert_eq!(hit_early, early < ttl_secs);
    }

    // ----------------------------------------------------------------
    // Same seed, same operations: byte-identical admission decisions
    // ----------------------------------------------------------------

    #[test]
    fn same_seed_admission_is_byte_identical(
        capacity in 1usize..8,
        seed in 0u64..1_000,
        ops in ops(),
    ) {
        let (cache_a, decisions_a) = run_workload(capacity, 600, seed, &ops);
        let (cache_b, decisions_b) = run_workload(capacity, 600, seed, &ops);
        // The decision vectors compare byte-for-byte...
        let bytes_a: Vec<u8> = decisions_a.iter().map(|&d| u8::from(d)).collect();
        let bytes_b: Vec<u8> = decisions_b.iter().map(|&d| u8::from(d)).collect();
        prop_assert_eq!(bytes_a, bytes_b);
        // ...and so does every observable counter.
        prop_assert_eq!(cache_a.stats(), cache_b.stats());
        prop_assert_eq!(cache_a.l1_len(), cache_b.l1_len());
    }
}
