//! The searchable dataset catalogue.
//!
//! EVOp's requirement of *flexibility* demands "fundamental support for
//! assets of varied types and sources" (§III-A): in-situ gauging stations,
//! warehoused data stores, user-provided data and external sources. The
//! catalogue is the XaaS registry of *soft* data assets — every dataset gets
//! uniform, discoverable metadata regardless of where it lives, and the
//! portal's "explore data sources" feature is a query against it.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::geo::BoundingBox;
use crate::sensors::SensorKind;
use crate::time::Timestamp;

/// Where a dataset physically lives — the paper's four asset origins.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataSource {
    /// Live feed from an in-situ gauging station.
    InSitu,
    /// EVOp's own warehoused data store.
    Warehoused,
    /// An external provider's archive (e.g. a national agency).
    External {
        /// The providing organisation.
        provider: String,
    },
    /// Uploaded by a portal user.
    UserProvided {
        /// The uploading user's identifier.
        user: String,
    },
}

impl fmt::Display for DataSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataSource::InSitu => f.write_str("in-situ"),
            DataSource::Warehoused => f.write_str("warehoused"),
            DataSource::External { provider } => write!(f, "external ({provider})"),
            DataSource::UserProvided { user } => write!(f, "user-provided ({user})"),
        }
    }
}

/// Who may read a dataset.
///
/// The paper highlights that XaaS "allows for the data to be used in models
/// and simulations without necessarily giving it away to the users" (§III-B);
/// [`AccessPolicy::ComputeOnly`] encodes exactly that delegation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AccessPolicy {
    /// Anyone may download the raw data.
    #[default]
    Open,
    /// Registered portal users may download the raw data.
    Registered,
    /// The data may feed models but raw values are never released.
    ComputeOnly,
}

impl fmt::Display for AccessPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessPolicy::Open => "open",
            AccessPolicy::Registered => "registered",
            AccessPolicy::ComputeOnly => "compute-only",
        };
        f.write_str(s)
    }
}

/// Uniform metadata describing one dataset, whatever its origin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetMeta {
    id: String,
    title: String,
    description: String,
    source: DataSource,
    access: AccessPolicy,
    kind: Option<SensorKind>,
    themes: Vec<String>,
    extent: Option<BoundingBox>,
    time_range: Option<(Timestamp, Timestamp)>,
}

impl DatasetMeta {
    /// Starts building dataset metadata.
    pub fn builder(id: impl Into<String>, title: impl Into<String>) -> DatasetMetaBuilder {
        DatasetMetaBuilder {
            id: id.into(),
            title: title.into(),
            description: String::new(),
            source: DataSource::Warehoused,
            access: AccessPolicy::Open,
            kind: None,
            themes: Vec::new(),
            extent: None,
            time_range: None,
        }
    }

    /// The dataset identifier.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The display title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The prose description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Where the dataset lives.
    pub fn source(&self) -> &DataSource {
        &self.source
    }

    /// Who may read it.
    pub fn access(&self) -> AccessPolicy {
        self.access
    }

    /// The measured quantity, if it is a sensor-like dataset.
    pub fn kind(&self) -> Option<SensorKind> {
        self.kind
    }

    /// Topic tags, e.g. `"hydrology"`, `"flooding"`.
    pub fn themes(&self) -> &[String] {
        &self.themes
    }

    /// Geographic extent, if georeferenced.
    pub fn extent(&self) -> Option<BoundingBox> {
        self.extent
    }

    /// Temporal coverage `[start, end)`, if time-bound.
    pub fn time_range(&self) -> Option<(Timestamp, Timestamp)> {
        self.time_range
    }
}

/// Builder for [`DatasetMeta`].
#[derive(Debug, Clone)]
pub struct DatasetMetaBuilder {
    id: String,
    title: String,
    description: String,
    source: DataSource,
    access: AccessPolicy,
    kind: Option<SensorKind>,
    themes: Vec<String>,
    extent: Option<BoundingBox>,
    time_range: Option<(Timestamp, Timestamp)>,
}

impl DatasetMetaBuilder {
    /// Sets the prose description.
    pub fn description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }

    /// Sets the origin.
    pub fn source(mut self, s: DataSource) -> Self {
        self.source = s;
        self
    }

    /// Sets the access policy.
    pub fn access(mut self, a: AccessPolicy) -> Self {
        self.access = a;
        self
    }

    /// Sets the measured quantity.
    pub fn kind(mut self, k: SensorKind) -> Self {
        self.kind = Some(k);
        self
    }

    /// Adds a topic tag.
    pub fn theme(mut self, t: impl Into<String>) -> Self {
        self.themes.push(t.into());
        self
    }

    /// Sets the geographic extent.
    pub fn extent(mut self, e: BoundingBox) -> Self {
        self.extent = Some(e);
        self
    }

    /// Sets the temporal coverage `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `end <= start`.
    pub fn time_range(mut self, start: Timestamp, end: Timestamp) -> Self {
        assert!(end > start, "time range inverted");
        self.time_range = Some((start, end));
        self
    }

    /// Builds the metadata record.
    ///
    /// # Panics
    ///
    /// Panics if the id or title is empty.
    pub fn build(self) -> DatasetMeta {
        assert!(!self.id.is_empty(), "dataset id must not be empty");
        assert!(!self.title.is_empty(), "dataset title must not be empty");
        DatasetMeta {
            id: self.id,
            title: self.title,
            description: self.description,
            source: self.source,
            access: self.access,
            kind: self.kind,
            themes: self.themes,
            extent: self.extent,
            time_range: self.time_range,
        }
    }
}

/// A query against the catalogue. All set criteria must match (conjunction).
///
/// # Examples
///
/// ```
/// use evop_data::catalog::{Catalog, DatasetMeta, Query};
/// use evop_data::sensors::SensorKind;
///
/// let mut catalog = Catalog::new();
/// catalog.add(
///     DatasetMeta::builder("rain-morland", "Morland rainfall")
///         .kind(SensorKind::RainGauge)
///         .theme("hydrology")
///         .build(),
/// ).unwrap();
///
/// let hits = catalog.search(&Query::new().text("rainfall"));
/// assert_eq!(hits.len(), 1);
/// let misses = catalog.search(&Query::new().kind(SensorKind::Turbidity));
/// assert!(misses.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Query {
    text: Option<String>,
    kind: Option<SensorKind>,
    theme: Option<String>,
    bbox: Option<BoundingBox>,
    at_time: Option<Timestamp>,
    source_in_situ_only: bool,
}

impl Query {
    /// Creates an empty query matching everything.
    pub fn new() -> Query {
        Query::default()
    }

    /// Requires `needle` (case-insensitive) in the title or description.
    pub fn text(mut self, needle: impl Into<String>) -> Query {
        self.text = Some(needle.into().to_lowercase());
        self
    }

    /// Requires the dataset to measure `kind`.
    pub fn kind(mut self, kind: SensorKind) -> Query {
        self.kind = Some(kind);
        self
    }

    /// Requires the theme tag `theme`.
    pub fn theme(mut self, theme: impl Into<String>) -> Query {
        self.theme = Some(theme.into());
        self
    }

    /// Requires a geographic extent intersecting `bbox`.
    pub fn bbox(mut self, bbox: BoundingBox) -> Query {
        self.bbox = Some(bbox);
        self
    }

    /// Requires temporal coverage including `t`.
    pub fn at_time(mut self, t: Timestamp) -> Query {
        self.at_time = Some(t);
        self
    }

    /// Restricts to live in-situ feeds.
    pub fn live_only(mut self) -> Query {
        self.source_in_situ_only = true;
        self
    }

    fn matches(&self, meta: &DatasetMeta) -> bool {
        if let Some(needle) = &self.text {
            let hay = format!("{} {}", meta.title(), meta.description()).to_lowercase();
            if !hay.contains(needle) {
                return false;
            }
        }
        if let Some(kind) = self.kind {
            if meta.kind() != Some(kind) {
                return false;
            }
        }
        if let Some(theme) = &self.theme {
            if !meta.themes().iter().any(|t| t == theme) {
                return false;
            }
        }
        if let Some(bbox) = self.bbox {
            match meta.extent() {
                Some(extent) if extent.intersects(bbox) => {}
                _ => return false,
            }
        }
        if let Some(t) = self.at_time {
            match meta.time_range() {
                Some((start, end)) if t >= start && t < end => {}
                _ => return false,
            }
        }
        if self.source_in_situ_only && *meta.source() != DataSource::InSitu {
            return false;
        }
        true
    }
}

/// Error from catalogue mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// A dataset with this id is already registered.
    DuplicateId(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::DuplicateId(id) => write!(f, "dataset id already registered: {id}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// The dataset catalogue: uniform discovery over all data assets.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    datasets: Vec<DatasetMeta>,
    version: u64,
}

impl Catalog {
    /// Creates an empty catalogue.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// The data-version stamp: starts at 0 and bumps on every successful
    /// mutation. Result caches fold this into their keys so any catalogue
    /// change (new sensor data registered, dataset replaced) makes every
    /// previously cached model result unreachable — stale answers can't
    /// outlive the data they were computed from.
    pub fn data_version(&self) -> u64 {
        self.version
    }

    /// Registers a dataset, bumping the data version.
    ///
    /// # Errors
    ///
    /// Returns [`CatalogError::DuplicateId`] if the id is taken.
    pub fn add(&mut self, meta: DatasetMeta) -> Result<(), CatalogError> {
        if self.get(meta.id()).is_some() {
            return Err(CatalogError::DuplicateId(meta.id().to_owned()));
        }
        self.datasets.push(meta);
        self.version += 1;
        Ok(())
    }

    /// Marks the underlying data as updated without changing the metadata
    /// set — the "new readings arrived for an existing dataset" case. Bumps
    /// the data version so caches keyed on it invalidate.
    pub fn touch_data(&mut self) {
        self.version += 1;
    }

    /// Looks a dataset up by id.
    pub fn get(&self, id: &str) -> Option<&DatasetMeta> {
        self.datasets.iter().find(|d| d.id() == id)
    }

    /// Runs a query, returning matches in registration order.
    pub fn search(&self, query: &Query) -> Vec<&DatasetMeta> {
        self.datasets.iter().filter(|d| query.matches(d)).collect()
    }

    /// The number of registered datasets.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// `true` if the catalogue is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Iterates over all datasets.
    pub fn iter(&self) -> impl Iterator<Item = &DatasetMeta> {
        self.datasets.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geo::LatLon;

    fn sample() -> DatasetMeta {
        DatasetMeta::builder("stage-morland", "Morland outlet stage")
            .description("15-minute river level at the Morland Beck outlet")
            .source(DataSource::InSitu)
            .kind(SensorKind::RiverLevel)
            .theme("hydrology")
            .theme("flooding")
            .extent(BoundingBox::around(LatLon::new(54.593, -2.622), 3.0))
            .time_range(Timestamp::from_ymd(2011, 1, 1), Timestamp::from_ymd(2013, 1, 1))
            .build()
    }

    #[test]
    fn add_and_get() {
        let mut c = Catalog::new();
        c.add(sample()).unwrap();
        assert_eq!(c.len(), 1);
        assert!(c.get("stage-morland").is_some());
        assert!(c.get("nope").is_none());
    }

    #[test]
    fn data_version_bumps_on_mutation_only() {
        let mut c = Catalog::new();
        assert_eq!(c.data_version(), 0);
        c.add(sample()).unwrap();
        assert_eq!(c.data_version(), 1);
        // A rejected duplicate is not a mutation.
        assert!(c.add(sample()).is_err());
        assert_eq!(c.data_version(), 1);
        c.touch_data();
        assert_eq!(c.data_version(), 2);
        // Reads never bump.
        let _ = c.search(&Query::new());
        assert_eq!(c.data_version(), 2);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut c = Catalog::new();
        c.add(sample()).unwrap();
        assert_eq!(
            c.add(sample()).unwrap_err(),
            CatalogError::DuplicateId("stage-morland".to_owned())
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn text_search_is_case_insensitive() {
        let mut c = Catalog::new();
        c.add(sample()).unwrap();
        assert_eq!(c.search(&Query::new().text("MORLAND")).len(), 1);
        assert_eq!(c.search(&Query::new().text("tarland")).len(), 0);
    }

    #[test]
    fn conjunctive_criteria() {
        let mut c = Catalog::new();
        c.add(sample()).unwrap();
        let q =
            Query::new().text("stage").kind(SensorKind::RiverLevel).theme("flooding").live_only();
        assert_eq!(c.search(&q).len(), 1);
        // One failing criterion kills the match.
        let q2 = Query::new().text("stage").kind(SensorKind::RainGauge);
        assert!(c.search(&q2).is_empty());
    }

    #[test]
    fn bbox_search_requires_intersection() {
        let mut c = Catalog::new();
        c.add(sample()).unwrap();
        let near = BoundingBox::around(LatLon::new(54.6, -2.6), 10.0);
        let far = BoundingBox::around(LatLon::new(51.5, -0.1), 10.0);
        assert_eq!(c.search(&Query::new().bbox(near)).len(), 1);
        assert!(c.search(&Query::new().bbox(far)).is_empty());
    }

    #[test]
    fn time_search_uses_half_open_range() {
        let mut c = Catalog::new();
        c.add(sample()).unwrap();
        assert_eq!(c.search(&Query::new().at_time(Timestamp::from_ymd(2012, 6, 1))).len(), 1);
        assert!(c.search(&Query::new().at_time(Timestamp::from_ymd(2013, 1, 1))).is_empty());
    }

    #[test]
    fn dataset_without_extent_fails_bbox_query() {
        let mut c = Catalog::new();
        c.add(DatasetMeta::builder("x", "No extent").build()).unwrap();
        let anywhere = BoundingBox::around(LatLon::new(54.0, -2.0), 1000.0);
        assert!(c.search(&Query::new().bbox(anywhere)).is_empty());
    }

    #[test]
    fn compute_only_policy_is_representable() {
        let meta = DatasetMeta::builder("secret", "Restricted flows")
            .access(AccessPolicy::ComputeOnly)
            .build();
        assert_eq!(meta.access(), AccessPolicy::ComputeOnly);
        assert_eq!(meta.access().to_string(), "compute-only");
    }
}
