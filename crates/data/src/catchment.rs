//! Study-catchment descriptors.
//!
//! The EVOp local flooding exemplar (LEFT) was developed with stakeholders in
//! three rural catchments — Morland (Cumbria, England), Tarland
//! (Aberdeenshire, Scotland) and Machynlleth (Powys, Wales) — and the model
//! library was calibrated on the Eden catchment in north-west England
//! (paper §IV-D, §V-B). This module provides descriptors for all four with
//! realistic locations, areas and climatologies, plus a builder for custom
//! catchments.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::geo::{BoundingBox, Dem, GridSpec, LatLon};
use crate::sensors::{Sensor, SensorId, SensorKind};

/// A unique catchment identifier, e.g. `"morland"`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct CatchmentId(String);

impl CatchmentId {
    /// Creates an identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` is empty.
    pub fn new(id: impl Into<String>) -> CatchmentId {
        let id = id.into();
        assert!(!id.is_empty(), "catchment id must not be empty");
        CatchmentId(id)
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for CatchmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for CatchmentId {
    fn from(s: &str) -> CatchmentId {
        CatchmentId::new(s)
    }
}

/// A river catchment: the geographic unit every EVOp tool is scoped to.
///
/// # Examples
///
/// ```
/// use evop_data::Catchment;
///
/// let morland = Catchment::morland();
/// assert_eq!(morland.id().as_str(), "morland");
/// assert!((morland.area_km2() - 12.5).abs() < f64::EPSILON);
/// assert!(morland.bounding_box().contains(morland.outlet()));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Catchment {
    id: CatchmentId,
    name: String,
    region: String,
    outlet: LatLon,
    area_km2: f64,
    mean_annual_rainfall_mm: f64,
    mean_annual_temp_c: f64,
    /// Indicative stage (m) above which flooding starts at the outlet
    /// community — the "flood hazard threshold" shown on the portal.
    flood_stage_m: f64,
}

impl Catchment {
    /// Starts building a custom catchment.
    pub fn builder(id: impl Into<String>, name: impl Into<String>) -> CatchmentBuilder {
        CatchmentBuilder::new(id, name)
    }

    /// Morland Beck, Cumbria, England — the Eden sub-catchment where the LEFT
    /// tool was co-developed with villagers and farmers.
    pub fn morland() -> Catchment {
        Catchment::builder("morland", "Morland Beck")
            .region("Cumbria, England")
            .outlet(LatLon::new(54.5930, -2.6220))
            .area_km2(12.5)
            .mean_annual_rainfall_mm(1050.0)
            .mean_annual_temp_c(8.5)
            .flood_stage_m(1.2)
            .build()
    }

    /// Tarland Burn, Aberdeenshire, Scotland.
    pub fn tarland() -> Catchment {
        Catchment::builder("tarland", "Tarland Burn")
            .region("Aberdeenshire, Scotland")
            .outlet(LatLon::new(57.1330, -2.8610))
            .area_km2(72.0)
            .mean_annual_rainfall_mm(900.0)
            .mean_annual_temp_c(7.5)
            .flood_stage_m(1.5)
            .build()
    }

    /// The Dyfi at Machynlleth, Powys, Wales.
    pub fn machynlleth() -> Catchment {
        Catchment::builder("machynlleth", "Dyfi at Machynlleth")
            .region("Powys, Wales")
            .outlet(LatLon::new(52.5930, -3.8510))
            .area_km2(471.0)
            .mean_annual_rainfall_mm(1800.0)
            .mean_annual_temp_c(9.0)
            .flood_stage_m(2.5)
            .build()
    }

    /// The Eden at Temple Sowerby, Cumbria — the catchment the model library
    /// images were calibrated on (paper §IV-D).
    pub fn eden() -> Catchment {
        Catchment::builder("eden", "Eden at Temple Sowerby")
            .region("Cumbria, England")
            .outlet(LatLon::new(54.6530, -2.6040))
            .area_km2(616.0)
            .mean_annual_rainfall_mm(1200.0)
            .mean_annual_temp_c(8.0)
            .flood_stage_m(3.0)
            .build()
    }

    /// All four study catchments.
    pub fn study_catchments() -> Vec<Catchment> {
        vec![
            Catchment::morland(),
            Catchment::tarland(),
            Catchment::machynlleth(),
            Catchment::eden(),
        ]
    }

    /// The catchment's identifier.
    pub fn id(&self) -> &CatchmentId {
        &self.id
    }

    /// The catchment's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The administrative region, e.g. `"Cumbria, England"`.
    pub fn region(&self) -> &str {
        &self.region
    }

    /// The gauged outlet location.
    pub fn outlet(&self) -> LatLon {
        self.outlet
    }

    /// Drainage area in square kilometres.
    pub fn area_km2(&self) -> f64 {
        self.area_km2
    }

    /// Long-term mean annual rainfall in millimetres.
    pub fn mean_annual_rainfall_mm(&self) -> f64 {
        self.mean_annual_rainfall_mm
    }

    /// Long-term mean annual air temperature in degrees Celsius.
    pub fn mean_annual_temp_c(&self) -> f64 {
        self.mean_annual_temp_c
    }

    /// The indicative flood-hazard stage threshold at the outlet, in metres.
    pub fn flood_stage_m(&self) -> f64 {
        self.flood_stage_m
    }

    /// A bounding box that comfortably covers the catchment (square of the
    /// catchment's area, doubled for margin).
    pub fn bounding_box(&self) -> BoundingBox {
        let half_side_km = (self.area_km2.sqrt() / 2.0) * 2.0;
        BoundingBox::around(self.outlet, half_side_km.max(2.0))
    }

    /// A grid spec suitable for generating this catchment's DEM: 50 m cells
    /// covering the catchment area (clamped to keep pre-processing fast).
    pub fn dem_spec(&self) -> GridSpec {
        let side_m = (self.area_km2.sqrt() * 1000.0).max(2000.0);
        let cell = 50.0;
        let n = ((side_m / cell) as usize).clamp(20, 120);
        let bbox = self.bounding_box();
        GridSpec::new(bbox.south_west(), cell, n, n)
    }

    /// Generates this catchment's synthetic DEM (see
    /// [`Dem::synthetic_valley`] and the substitutions table in DESIGN.md).
    pub fn generate_dem<R: rand::Rng>(&self, rng: &mut R) -> Dem {
        // Steeper relief for wetter upland catchments.
        let relief = 150.0 + self.mean_annual_rainfall_mm / 10.0;
        Dem::synthetic_valley(self.dem_spec(), relief, relief * 0.15, rng)
    }

    /// The default in-situ sensor network deployed in this catchment: a rain
    /// gauge, outlet river-level gauge, water temperature and turbidity
    /// sensors, and a webcam — the asset set the LEFT landing page shows
    /// (paper Fig. 4/5).
    pub fn default_sensors(&self) -> Vec<Sensor> {
        let id = |suffix: &str| SensorId::new(format!("{}-{suffix}", self.id));
        let near =
            |dlat: f64, dlon: f64| LatLon::new(self.outlet.lat() + dlat, self.outlet.lon() + dlon);
        vec![
            Sensor::new(
                id("rain-1"),
                SensorKind::RainGauge,
                format!("{} rain gauge", self.name),
                near(0.012, -0.008),
                self.id.clone(),
                900,
            ),
            Sensor::new(
                id("stage-outlet"),
                SensorKind::RiverLevel,
                format!("{} outlet stage", self.name),
                self.outlet,
                self.id.clone(),
                900,
            ),
            Sensor::new(
                id("temp-1"),
                SensorKind::Temperature,
                format!("{} water temperature", self.name),
                near(0.001, 0.001),
                self.id.clone(),
                900,
            ),
            Sensor::new(
                id("turb-1"),
                SensorKind::Turbidity,
                format!("{} turbidity", self.name),
                near(0.001, 0.0015),
                self.id.clone(),
                900,
            ),
            Sensor::new(
                id("cam-1"),
                SensorKind::Webcam,
                format!("{} webcam", self.name),
                near(0.002, 0.0),
                self.id.clone(),
                1800,
            ),
        ]
    }
}

/// Builder for [`Catchment`].
///
/// # Examples
///
/// ```
/// use evop_data::Catchment;
/// use evop_data::geo::LatLon;
///
/// let c = Catchment::builder("test", "Test Beck")
///     .outlet(LatLon::new(54.0, -2.0))
///     .area_km2(20.0)
///     .build();
/// assert_eq!(c.name(), "Test Beck");
/// ```
#[derive(Debug, Clone)]
pub struct CatchmentBuilder {
    id: String,
    name: String,
    region: String,
    outlet: LatLon,
    area_km2: f64,
    mean_annual_rainfall_mm: f64,
    mean_annual_temp_c: f64,
    flood_stage_m: f64,
}

impl CatchmentBuilder {
    fn new(id: impl Into<String>, name: impl Into<String>) -> CatchmentBuilder {
        CatchmentBuilder {
            id: id.into(),
            name: name.into(),
            region: "Unknown".to_owned(),
            outlet: LatLon::new(54.0, -2.5),
            area_km2: 10.0,
            mean_annual_rainfall_mm: 1000.0,
            mean_annual_temp_c: 8.5,
            flood_stage_m: 1.5,
        }
    }

    /// Sets the administrative region.
    pub fn region(mut self, region: impl Into<String>) -> CatchmentBuilder {
        self.region = region.into();
        self
    }

    /// Sets the gauged outlet location.
    pub fn outlet(mut self, outlet: LatLon) -> CatchmentBuilder {
        self.outlet = outlet;
        self
    }

    /// Sets the drainage area in km².
    pub fn area_km2(mut self, area: f64) -> CatchmentBuilder {
        self.area_km2 = area;
        self
    }

    /// Sets the mean annual rainfall in millimetres.
    pub fn mean_annual_rainfall_mm(mut self, mm: f64) -> CatchmentBuilder {
        self.mean_annual_rainfall_mm = mm;
        self
    }

    /// Sets the mean annual temperature in °C.
    pub fn mean_annual_temp_c(mut self, c: f64) -> CatchmentBuilder {
        self.mean_annual_temp_c = c;
        self
    }

    /// Sets the indicative flood stage threshold in metres.
    pub fn flood_stage_m(mut self, m: f64) -> CatchmentBuilder {
        self.flood_stage_m = m;
        self
    }

    /// Builds the catchment.
    ///
    /// # Panics
    ///
    /// Panics if the area, rainfall or flood stage are not positive.
    pub fn build(self) -> Catchment {
        assert!(self.area_km2 > 0.0, "area must be positive");
        assert!(self.mean_annual_rainfall_mm > 0.0, "rainfall must be positive");
        assert!(self.flood_stage_m > 0.0, "flood stage must be positive");
        Catchment {
            id: CatchmentId::new(self.id),
            name: self.name,
            region: self.region,
            outlet: self.outlet,
            area_km2: self.area_km2,
            mean_annual_rainfall_mm: self.mean_annual_rainfall_mm,
            mean_annual_temp_c: self.mean_annual_temp_c,
            flood_stage_m: self.flood_stage_m,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn study_catchments_are_distinct_and_plausible() {
        let all = Catchment::study_catchments();
        assert_eq!(all.len(), 4);
        let mut ids: Vec<&str> = all.iter().map(|c| c.id().as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "ids must be unique");
        for c in &all {
            assert!(c.area_km2() > 1.0 && c.area_km2() < 1000.0);
            assert!(c.mean_annual_rainfall_mm() > 500.0);
            assert!(c.bounding_box().contains(c.outlet()));
        }
    }

    #[test]
    fn machynlleth_is_wettest() {
        let wettest = Catchment::study_catchments()
            .into_iter()
            .max_by(|a, b| {
                a.mean_annual_rainfall_mm().partial_cmp(&b.mean_annual_rainfall_mm()).unwrap()
            })
            .unwrap();
        assert_eq!(wettest.id().as_str(), "machynlleth");
    }

    #[test]
    fn default_sensor_network_covers_all_kinds() {
        let sensors = Catchment::morland().default_sensors();
        assert_eq!(sensors.len(), 5);
        let kinds: Vec<SensorKind> = sensors.iter().map(|s| s.kind()).collect();
        for kind in [
            SensorKind::RainGauge,
            SensorKind::RiverLevel,
            SensorKind::Temperature,
            SensorKind::Turbidity,
            SensorKind::Webcam,
        ] {
            assert!(kinds.contains(&kind), "missing {kind}");
        }
        // All sensors fall inside the catchment bounding box.
        let bbox = Catchment::morland().bounding_box();
        assert!(sensors.iter().all(|s| bbox.contains(s.location())));
    }

    #[test]
    fn dem_spec_scales_with_area_within_bounds() {
        let small = Catchment::morland().dem_spec();
        let large = Catchment::eden().dem_spec();
        assert!(small.rows >= 20 && small.rows <= 120);
        assert!(large.rows >= small.rows);
    }

    #[test]
    fn generate_dem_is_deterministic_per_seed() {
        let c = Catchment::morland();
        let a = c.generate_dem(&mut ChaCha8Rng::seed_from_u64(1));
        let b = c.generate_dem(&mut ChaCha8Rng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "area must be positive")]
    fn builder_rejects_bad_area() {
        let _ = Catchment::builder("x", "X").area_km2(0.0).build();
    }
}
