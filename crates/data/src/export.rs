//! CSV import/export for time series — the portal's "download the data"
//! feature.
//!
//! Environmental scientists asked to "find or upload data" (§III-A); CSV is
//! the lingua franca both directions. The format is two columns, ISO-like
//! timestamps and values, with missing samples as empty cells:
//!
//! ```csv
//! time,value
//! 2012-01-01T00:00:00Z,0.42
//! 2012-01-01T01:00:00Z,
//! 2012-01-01T02:00:00Z,0.45
//! ```

use std::fmt;

use crate::time::Timestamp;
use crate::timeseries::TimeSeries;

/// Errors from CSV parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// The header row is missing or not `time,value`.
    BadHeader(String),
    /// A row did not have exactly two fields.
    BadRow {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A timestamp failed to parse.
    BadTimestamp {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// A value failed to parse.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// Rows are not evenly spaced (the regular-series contract).
    IrregularStep {
        /// 1-based line number where the step changed.
        line: usize,
    },
    /// The file has a header but no data rows.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::BadHeader(h) => write!(f, "expected header 'time,value', got {h:?}"),
            CsvError::BadRow { line, content } => {
                write!(f, "line {line}: malformed row {content:?}")
            }
            CsvError::BadTimestamp { line, field } => {
                write!(f, "line {line}: bad timestamp {field:?}")
            }
            CsvError::BadValue { line, field } => write!(f, "line {line}: bad value {field:?}"),
            CsvError::IrregularStep { line } => {
                write!(f, "line {line}: rows are not evenly spaced")
            }
            CsvError::Empty => f.write_str("no data rows"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Serialises a series to CSV. Missing (`NaN`) samples become empty value
/// cells.
///
/// # Examples
///
/// ```
/// use evop_data::export::{from_csv, to_csv};
/// use evop_data::{TimeSeries, Timestamp};
///
/// let series = TimeSeries::from_values(
///     Timestamp::from_ymd(2012, 1, 1),
///     3600,
///     vec![0.42, f64::NAN, 0.45],
/// );
/// let csv = to_csv(&series);
/// let back = from_csv(&csv).unwrap();
/// assert_eq!(back.len(), 3);
/// assert!(back.value_at(1).is_nan());
/// assert_eq!(back.value_at(2), 0.45);
/// ```
pub fn to_csv(series: &TimeSeries) -> String {
    let mut out = String::from("time,value\n");
    for (t, v) in series.iter() {
        if v.is_nan() {
            out.push_str(&format!("{t},\n"));
        } else {
            out.push_str(&format!("{t},{v}\n"));
        }
    }
    out
}

/// Parses a CSV document produced by [`to_csv`] (or a spreadsheet following
/// the same shape) into a regular series.
///
/// # Errors
///
/// Returns a [`CsvError`] describing the first problem: bad header, ragged
/// row, unparsable field, uneven spacing, or no data.
pub fn from_csv(input: &str) -> Result<TimeSeries, CsvError> {
    let mut lines = input.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError::Empty)?;
    if header.trim() != "time,value" {
        return Err(CsvError::BadHeader(header.to_owned()));
    }

    let mut points: Vec<(Timestamp, f64)> = Vec::new();
    for (idx, raw) in lines {
        let line = idx + 1;
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let Some((time_field, value_field)) = raw.split_once(',') else {
            return Err(CsvError::BadRow { line, content: raw.to_owned() });
        };
        if value_field.contains(',') {
            return Err(CsvError::BadRow { line, content: raw.to_owned() });
        }
        let t = parse_timestamp(time_field.trim())
            .ok_or_else(|| CsvError::BadTimestamp { line, field: time_field.to_owned() })?;
        let v = if value_field.trim().is_empty() {
            f64::NAN
        } else {
            value_field
                .trim()
                .parse::<f64>()
                .map_err(|_| CsvError::BadValue { line, field: value_field.to_owned() })?
        };
        points.push((t, v));
    }
    if points.is_empty() {
        return Err(CsvError::Empty);
    }
    if points.len() == 1 {
        return Ok(TimeSeries::from_values(points[0].0, 3600, vec![points[0].1]));
    }

    let step = points[1].0 - points[0].0;
    if step <= 0 {
        return Err(CsvError::IrregularStep { line: 3 });
    }
    for (i, pair) in points.windows(2).enumerate() {
        if pair[1].0 - pair[0].0 != step {
            return Err(CsvError::IrregularStep { line: i + 3 });
        }
    }
    Ok(TimeSeries::from_values(
        points[0].0,
        step as u32,
        points.into_iter().map(|(_, v)| v).collect(),
    ))
}

/// Parses `YYYY-MM-DDTHH:MM:SSZ` (the [`Timestamp`] display format).
fn parse_timestamp(s: &str) -> Option<Timestamp> {
    let s = s.strip_suffix('Z')?;
    let (date, time) = s.split_once('T')?;
    let mut date_parts = date.split('-');
    let year: i32 = date_parts.next()?.parse().ok()?;
    let month: u32 = date_parts.next()?.parse().ok()?;
    let day: u32 = date_parts.next()?.parse().ok()?;
    if date_parts.next().is_some() {
        return None;
    }
    let mut time_parts = time.split(':');
    let hour: u32 = time_parts.next()?.parse().ok()?;
    let minute: u32 = time_parts.next()?.parse().ok()?;
    let second: u32 = time_parts.next()?.parse().ok()?;
    if time_parts.next().is_some() {
        return None;
    }
    if !(1..=12).contains(&month)
        || !(1..=31).contains(&day)
        || hour >= 24
        || minute >= 60
        || second >= 60
    {
        return None;
    }
    Some(Timestamp::from_ymd_hms(year, month, day, hour, minute, second))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TimeSeries {
        TimeSeries::from_values(Timestamp::from_ymd(2012, 6, 1), 900, vec![0.1, 0.2, f64::NAN, 0.4])
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample();
        let parsed = from_csv(&to_csv(&original)).unwrap();
        assert_eq!(parsed.start(), original.start());
        assert_eq!(parsed.step_secs(), original.step_secs());
        assert_eq!(parsed.len(), original.len());
        for i in 0..original.len() {
            let (a, b) = (original.value_at(i), parsed.value_at(i));
            assert!(a == b || (a.is_nan() && b.is_nan()), "sample {i}: {a} vs {b}");
        }
    }

    #[test]
    fn header_is_required() {
        assert!(matches!(from_csv("foo,bar\n1,2\n"), Err(CsvError::BadHeader(_))));
        assert_eq!(from_csv(""), Err(CsvError::Empty));
        assert_eq!(from_csv("time,value\n"), Err(CsvError::Empty));
    }

    #[test]
    fn malformed_rows_are_located() {
        let csv = "time,value\n2012-06-01T00:00:00Z,1.0\nnot-a-row\n";
        assert!(matches!(from_csv(csv), Err(CsvError::BadRow { line: 3, .. })));

        let csv = "time,value\nnot-a-time,1.0\n";
        assert!(matches!(from_csv(csv), Err(CsvError::BadTimestamp { line: 2, .. })));

        let csv = "time,value\n2012-06-01T00:00:00Z,abc\n";
        assert!(matches!(from_csv(csv), Err(CsvError::BadValue { line: 2, .. })));
    }

    #[test]
    fn uneven_spacing_is_rejected() {
        let csv = "time,value\n\
                   2012-06-01T00:00:00Z,1\n\
                   2012-06-01T01:00:00Z,2\n\
                   2012-06-01T03:00:00Z,3\n";
        assert!(matches!(from_csv(csv), Err(CsvError::IrregularStep { .. })));
    }

    #[test]
    fn single_row_gets_default_step() {
        let csv = "time,value\n2012-06-01T00:00:00Z,1.5\n";
        let series = from_csv(csv).unwrap();
        assert_eq!(series.len(), 1);
        assert_eq!(series.value_at(0), 1.5);
    }

    #[test]
    fn blank_lines_are_tolerated() {
        let csv = "time,value\n2012-06-01T00:00:00Z,1\n\n2012-06-01T01:00:00Z,2\n";
        assert_eq!(from_csv(csv).unwrap().len(), 2);
    }

    #[test]
    fn timestamp_parser_rejects_garbage() {
        assert!(parse_timestamp("2012-06-01T00:00:00").is_none()); // no Z
        assert!(parse_timestamp("2012-13-01T00:00:00Z").is_none()); // bad month
        assert!(parse_timestamp("2012-06-01T25:00:00Z").is_none()); // bad hour
        assert!(parse_timestamp("2012-06-01T00:00:00:00Z").is_none()); // extra field
        assert!(parse_timestamp("2012-06-01-01T00:00:00Z").is_none()); // extra date part
    }
}
