//! Environmental data substrate for the EVOp reproduction.
//!
//! The EVOp paper integrates "live data feeds (such as real time river level,
//! temperature, etc.), historical time series or spatial datasets (e.g.
//! rainfall measurements and digital elevation models) and others (e.g.
//! webcam images)" (§III-A). This crate builds all of those from scratch:
//!
//! * [`geo`] — latitude/longitude, bounding boxes, haversine distance,
//!   gridded rasters and digital elevation models (DEMs) with flow routing
//!   and topographic-index extraction;
//! * [`time`] — a calendar-aware [`time::Timestamp`];
//! * [`timeseries`] — regular and irregular series with resampling,
//!   alignment, aggregation and gap handling;
//! * [`sensors`] — the in-situ sensor and observation model (river level,
//!   rain gauges, temperature, turbidity, webcams);
//! * [`catchment`] — descriptors for the paper's study catchments (Eden,
//!   Morland, Tarland, Machynlleth);
//! * [`synthetic`] — physically plausible synthetic weather/flow generators
//!   standing in for the project's proprietary data feeds (see DESIGN.md,
//!   substitutions table);
//! * [`quality`] — quality-control checks applied to incoming feeds;
//! * [`catalog`] — the searchable dataset catalogue behind the portal's
//!   "explore data sources" feature;
//! * [`export`] — CSV import/export for the portal's download/upload
//!   features.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod catchment;
pub mod export;
pub mod geo;
pub mod quality;
pub mod sensors;
pub mod synthetic;
pub mod time;
pub mod timeseries;

pub use catchment::{Catchment, CatchmentId};
pub use geo::{BoundingBox, Dem, LatLon};
pub use sensors::{Observation, QualityFlag, Sensor, SensorId, SensorKind};
pub use time::Timestamp;
pub use timeseries::TimeSeries;
