//! Physically plausible synthetic environmental data.
//!
//! The EVOp project consumed proprietary Met Office / Environment Agency
//! feeds and in-situ sensor networks that are not redistributable. Per the
//! substitution policy in DESIGN.md, this module generates the closest
//! synthetic equivalents, calibrated to UK-upland magnitudes, so every
//! downstream code path (SOS feeds, portal widgets, model calibration)
//! exercises realistic data:
//!
//! * [`WeatherGenerator`] — seasonal wet/dry Markov-chain rainfall with an
//!   exponential intensity tail, and seasonal + diurnal AR(1) temperature;
//! * [`TruthModel`] — a two-reservoir rainfall-runoff "nature" that produces
//!   the observed discharge the models calibrate against, plus stage (via a
//!   [`RatingCurve`]), turbidity and webcam frames derived from it.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use crate::catchment::Catchment;
use crate::sensors::{SensorId, WebcamFrame};
use crate::time::Timestamp;
use crate::timeseries::TimeSeries;

/// Generates synthetic weather forcing for a catchment.
///
/// Deterministic given `(catchment, seed)`: regenerating the same window
/// yields identical series, which is what makes every experiment in
/// EXPERIMENTS.md reproducible.
///
/// # Examples
///
/// ```
/// use evop_data::{Catchment, Timestamp};
/// use evop_data::synthetic::WeatherGenerator;
///
/// let generator = WeatherGenerator::for_catchment(&Catchment::morland(), 42);
/// let start = Timestamp::from_ymd(2012, 1, 1);
/// let rain = generator.rainfall(start, 3600, 24 * 30);
/// assert_eq!(rain.len(), 720);
/// assert!(rain.values().iter().all(|&v| v >= 0.0));
/// ```
#[derive(Debug, Clone)]
pub struct WeatherGenerator {
    annual_rainfall_mm: f64,
    mean_temp_c: f64,
    seed: u64,
}

impl WeatherGenerator {
    /// Creates a generator matched to a catchment's climatology.
    pub fn for_catchment(catchment: &Catchment, seed: u64) -> WeatherGenerator {
        WeatherGenerator {
            annual_rainfall_mm: catchment.mean_annual_rainfall_mm(),
            mean_temp_c: catchment.mean_annual_temp_c(),
            seed,
        }
    }

    /// Creates a generator from explicit climatology.
    ///
    /// # Panics
    ///
    /// Panics if `annual_rainfall_mm` is not positive.
    pub fn new(annual_rainfall_mm: f64, mean_temp_c: f64, seed: u64) -> WeatherGenerator {
        assert!(annual_rainfall_mm > 0.0, "annual rainfall must be positive");
        WeatherGenerator { annual_rainfall_mm, mean_temp_c, seed }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Hourly-resolvable rainfall series in millimetres per step.
    ///
    /// Wet/dry occurrence follows a two-state Markov chain whose transition
    /// probabilities vary seasonally (wetter winters, as in Cumbria); wet-step
    /// depths are exponential with a seasonal mean and a heavy-tail storm
    /// amplification, so multi-day floods occur at realistic frequency.
    ///
    /// # Panics
    ///
    /// Panics if `step_secs` is zero.
    pub fn rainfall(&self, start: Timestamp, step_secs: u32, len: usize) -> TimeSeries {
        assert!(step_secs > 0, "step must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5261_494e); // "RAIN"
        let step_hours = f64::from(step_secs) / 3600.0;

        // Calibrate mean wet intensity so the expected annual total matches
        // the catchment's climatology. Average wet fraction of the chain is
        // ~0.30; winter/summer modulation averages out.
        let avg_wet_fraction = 0.30;
        let mean_intensity_mm_h = self.annual_rainfall_mm / (8760.0 * avg_wet_fraction);

        let mut wet = false;
        TimeSeries::from_fn(start, step_secs, len, |t| {
            // Seasonality: 1.0 mid-winter, -1.0 mid-summer.
            let season = (std::f64::consts::TAU * (t.year_fraction() - 0.02)).cos();
            let p_dry_to_wet = (0.065 + 0.025 * season) * step_hours.min(3.0);
            let p_wet_to_wet = 0.82 + 0.05 * season;
            wet =
                if wet { rng.gen::<f64>() < p_wet_to_wet } else { rng.gen::<f64>() < p_dry_to_wet };
            if !wet {
                return 0.0;
            }
            let seasonal_intensity = mean_intensity_mm_h * (1.0 + 0.25 * season);
            // 5 % of wet steps are convective/frontal cores with a 6x mean.
            let mean =
                if rng.gen::<f64>() < 0.05 { seasonal_intensity * 6.0 } else { seasonal_intensity };
            let u: f64 = 1.0 - rng.gen::<f64>();
            -mean * u.ln() * step_hours
        })
    }

    /// Air-temperature series in °C: seasonal cycle (±6.5 °C, peak mid-July)
    /// plus a diurnal cycle (±3.5 °C, peak 15:00) plus AR(1) weather noise.
    ///
    /// # Panics
    ///
    /// Panics if `step_secs` is zero.
    pub fn temperature(&self, start: Timestamp, step_secs: u32, len: usize) -> TimeSeries {
        assert!(step_secs > 0, "step must be positive");
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5445_4d50); // "TEMP"
        let mut ar = 0.0f64;
        let rho = 0.95f64;
        let sigma = 1.5 * (1.0 - rho * rho).sqrt();
        TimeSeries::from_fn(start, step_secs, len, |t| {
            let seasonal = -6.5 * (std::f64::consts::TAU * (t.year_fraction() - 0.035)).cos();
            let diurnal = 3.5 * (std::f64::consts::TAU * (t.day_fraction() - 0.375)).sin();
            let z: f64 = {
                let u1: f64 = 1.0 - rng.gen::<f64>();
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            };
            ar = rho * ar + sigma * z;
            self.mean_temp_c + seasonal + diurnal + ar
        })
    }
}

/// A stage-discharge rating curve `Q = a·(h − h₀)^b`.
///
/// # Examples
///
/// ```
/// use evop_data::synthetic::RatingCurve;
///
/// let rating = RatingCurve::new(4.5, 1.8, 0.05);
/// let q = rating.discharge_from_stage(1.0);
/// let h = rating.stage_from_discharge(q);
/// assert!((h - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatingCurve {
    a: f64,
    b: f64,
    h0: f64,
}

impl RatingCurve {
    /// Creates a rating curve.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` are not positive.
    pub fn new(a: f64, b: f64, h0: f64) -> RatingCurve {
        assert!(a > 0.0 && b > 0.0, "rating coefficients must be positive");
        RatingCurve { a, b, h0 }
    }

    /// A plausible rating for a catchment: calibrated so that discharge at
    /// the indicative flood stage equals a specific flood discharge of
    /// 0.5 m³ s⁻¹ km⁻².
    pub fn for_catchment(catchment: &Catchment) -> RatingCurve {
        let b = 1.8;
        let h0 = 0.05;
        let q_flood = 0.5 * catchment.area_km2();
        let a = q_flood / (catchment.flood_stage_m() - h0).powf(b);
        RatingCurve::new(a, b, h0)
    }

    /// Discharge (m³/s) for a stage (m). Stages at or below the datum map to
    /// zero.
    pub fn discharge_from_stage(&self, stage_m: f64) -> f64 {
        if stage_m <= self.h0 {
            0.0
        } else {
            self.a * (stage_m - self.h0).powf(self.b)
        }
    }

    /// Stage (m) for a discharge (m³/s).
    pub fn stage_from_discharge(&self, q_m3s: f64) -> f64 {
        if q_m3s <= 0.0 {
            self.h0
        } else {
            self.h0 + (q_m3s / self.a).powf(1.0 / self.b)
        }
    }
}

/// The synthetic "nature" that produces observed discharge and downstream
/// water-quality signals for a catchment.
///
/// A two-reservoir (fast/slow) conceptual model with a temperature-dependent
/// runoff coefficient. It is deliberately *not* one of the library models
/// (TOPMODEL/FUSE), so calibrating those against this truth is a genuine
/// inverse problem, as in the real project.
#[derive(Debug, Clone)]
pub struct TruthModel {
    area_km2: f64,
    mean_temp_c: f64,
    rating: RatingCurve,
    seed: u64,
}

impl TruthModel {
    /// Creates the truth model for a catchment.
    pub fn for_catchment(catchment: &Catchment, seed: u64) -> TruthModel {
        TruthModel {
            area_km2: catchment.area_km2(),
            mean_temp_c: catchment.mean_annual_temp_c(),
            rating: RatingCurve::for_catchment(catchment),
            seed,
        }
    }

    /// The rating curve used to convert between stage and discharge.
    pub fn rating(&self) -> RatingCurve {
        self.rating
    }

    /// Observed discharge (m³/s) from rainfall and temperature forcing.
    ///
    /// # Panics
    ///
    /// Panics if the two series are not aligned (same start, step and
    /// length).
    pub fn discharge(&self, rainfall: &TimeSeries, temperature: &TimeSeries) -> TimeSeries {
        assert_eq!(rainfall.start(), temperature.start(), "forcing must share a start");
        assert_eq!(rainfall.step_secs(), temperature.step_secs(), "forcing must share a step");
        assert_eq!(rainfall.len(), temperature.len(), "forcing must share a length");

        let step_hours = f64::from(rainfall.step_secs()) / 3600.0;
        // Reservoir rate constants per hour, scaled to the step.
        let kf = 1.0 - (-0.08 * step_hours).exp();
        let ks = 1.0 - (-0.005 * step_hours).exp();
        let mut fast = 2.0f64; // mm of storage
        let mut slow = 60.0f64;

        let mut q = TimeSeries::new(rainfall.start(), rainfall.step_secs());
        for i in 0..rainfall.len() {
            let rain = rainfall.value_at(i).max(0.0);
            let temp = temperature.value_at(i);
            // Runoff coefficient: higher when cold (low evapotranspiration).
            let phi = (0.55 - 0.015 * (temp - self.mean_temp_c)).clamp(0.2, 0.75);
            let eff = rain * phi;
            fast += eff * 0.7;
            slow += eff * 0.3;
            let qf = fast * kf;
            let qs = slow * ks;
            fast -= qf;
            slow -= qs;
            let q_mm_per_step = qf + qs;
            // mm over the catchment per step → m³/s.
            let q_m3s = q_mm_per_step * self.area_km2 / (3.6 * step_hours);
            q.push(q_m3s);
        }
        q
    }

    /// River stage (m) series from a discharge series, via the rating curve.
    pub fn stage(&self, discharge: &TimeSeries) -> TimeSeries {
        discharge.map(|q| self.rating.stage_from_discharge(q))
    }

    /// Turbidity (NTU) from discharge: a power-law sediment rating with
    /// multiplicative noise.
    pub fn turbidity(&self, discharge: &TimeSeries) -> TimeSeries {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x5455_5242); // "TURB"
        let q_specific_flood = 0.5 * self.area_km2;
        discharge.map(|q| {
            let rel = (q / q_specific_flood).max(0.0);
            let noise = 1.0 + 0.25 * (rng.gen::<f64>() - 0.5);
            (5.0 + 220.0 * rel.powf(1.3)) * noise
        })
    }

    /// Water temperature (°C): damped, lagged air temperature.
    pub fn water_temperature(&self, air_temperature: &TimeSeries) -> TimeSeries {
        let mut state = self.mean_temp_c;
        let alpha = 0.03 * f64::from(air_temperature.step_secs()) / 3600.0;
        let alpha = alpha.min(1.0);
        air_temperature.map(|t_air| {
            state += alpha * (t_air - state);
            state.max(0.1)
        })
    }

    /// Webcam frames every `interval_secs`, with diurnal brightness and
    /// murkiness tracking the provided turbidity series (this is the linkage
    /// the multimodal widget of paper Fig. 5 visualises).
    ///
    /// # Panics
    ///
    /// Panics if `interval_secs` is zero.
    pub fn webcam_frames(
        &self,
        camera: &SensorId,
        turbidity: &TimeSeries,
        interval_secs: u32,
    ) -> Vec<WebcamFrame> {
        assert!(interval_secs > 0, "interval must be positive");
        let mut frames = Vec::new();
        let mut t = turbidity.start();
        while t < turbidity.end() {
            let hour = t.day_fraction() * 24.0;
            let brightness = if (6.0..18.0).contains(&hour) {
                (std::f64::consts::PI * (hour - 6.0) / 12.0).sin().max(0.0)
            } else {
                0.02 // street-lit night scene
            };
            let ntu = turbidity.at(t).unwrap_or(f64::NAN);
            let murkiness = if ntu.is_nan() { 0.0 } else { (ntu / 400.0).clamp(0.0, 1.0) };
            frames.push(WebcamFrame::new(camera.clone(), t, brightness, murkiness));
            t = t.plus_secs(i64::from(interval_secs));
        }
        frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn morland() -> Catchment {
        Catchment::morland()
    }

    fn year_start() -> Timestamp {
        Timestamp::from_ymd(2012, 1, 1)
    }

    #[test]
    fn rainfall_annual_total_near_climatology() {
        let generator = WeatherGenerator::for_catchment(&morland(), 42);
        let rain = generator.rainfall(year_start(), 3600, 24 * 366);
        let total = rain.sum();
        let target = morland().mean_annual_rainfall_mm();
        assert!(
            (total - target).abs() / target < 0.4,
            "annual total {total:.0} mm vs climatology {target:.0} mm"
        );
    }

    #[test]
    fn rainfall_is_non_negative_and_intermittent() {
        let generator = WeatherGenerator::for_catchment(&morland(), 1);
        let rain = generator.rainfall(year_start(), 3600, 24 * 90);
        assert!(rain.values().iter().all(|&v| v >= 0.0));
        let dry = rain.values().iter().filter(|&&v| v == 0.0).count();
        let frac_dry = dry as f64 / rain.len() as f64;
        assert!(frac_dry > 0.4 && frac_dry < 0.9, "dry fraction {frac_dry}");
    }

    #[test]
    fn rainfall_is_deterministic() {
        let g = WeatherGenerator::for_catchment(&morland(), 7);
        let a = g.rainfall(year_start(), 3600, 100);
        let b = g.rainfall(year_start(), 3600, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn winter_is_wetter_than_summer() {
        let generator = WeatherGenerator::for_catchment(&morland(), 3);
        let jan = generator.rainfall(year_start(), 3600, 24 * 31).sum();
        let jul = generator.rainfall(Timestamp::from_ymd(2012, 7, 1), 3600, 24 * 31).sum();
        assert!(jan > jul * 0.8, "jan={jan:.0} jul={jul:.0}");
    }

    #[test]
    fn temperature_has_seasonal_and_diurnal_structure() {
        let generator = WeatherGenerator::for_catchment(&morland(), 11);
        let jan = generator.temperature(year_start(), 3600, 24 * 31);
        let jul = generator.temperature(Timestamp::from_ymd(2012, 7, 1), 3600, 24 * 31);
        assert!(jul.mean() > jan.mean() + 6.0, "jul={} jan={}", jul.mean(), jan.mean());

        // Diurnal: 15:00 warmer than 03:00 on average in July.
        let day = jul.iter().filter(|(t, _)| t.hour() == 15).map(|(_, v)| v).sum::<f64>() / 31.0;
        let night = jul.iter().filter(|(t, _)| t.hour() == 3).map(|(_, v)| v).sum::<f64>() / 31.0;
        assert!(day > night + 3.0, "day={day} night={night}");
    }

    #[test]
    fn rating_curve_round_trip() {
        let rating = RatingCurve::for_catchment(&morland());
        for q in [0.1, 1.0, 6.0, 20.0] {
            let h = rating.stage_from_discharge(q);
            let back = rating.discharge_from_stage(h);
            assert!((back - q).abs() < 1e-9, "q={q} back={back}");
        }
        assert_eq!(rating.discharge_from_stage(0.0), 0.0);
        assert_eq!(rating.stage_from_discharge(0.0), 0.05);
    }

    #[test]
    fn rating_hits_flood_discharge_at_flood_stage() {
        let c = morland();
        let rating = RatingCurve::for_catchment(&c);
        let q = rating.discharge_from_stage(c.flood_stage_m());
        assert!((q - 0.5 * c.area_km2()).abs() < 1e-9);
    }

    #[test]
    fn discharge_responds_to_rain() {
        let c = morland();
        let g = WeatherGenerator::for_catchment(&c, 21);
        let start = year_start();
        let n = 24 * 60;
        let rain = g.rainfall(start, 3600, n);
        let temp = g.temperature(start, 3600, n);
        let truth = TruthModel::for_catchment(&c, 21);
        let q = truth.discharge(&rain, &temp);
        assert_eq!(q.len(), n);
        assert!(q.values().iter().all(|&v| v.is_finite() && v >= 0.0));

        // Water balance sanity: runoff volume is 20–75 % of rainfall volume
        // plus initial storage drainage.
        let rain_volume_mm = rain.sum();
        let q_volume_mm: f64 = q.values().iter().sum::<f64>() * 3.6 / c.area_km2();
        assert!(
            q_volume_mm > 0.15 * rain_volume_mm && q_volume_mm < 1.1 * rain_volume_mm,
            "runoff {q_volume_mm:.0} mm vs rain {rain_volume_mm:.0} mm"
        );
    }

    #[test]
    fn discharge_peak_follows_storm() {
        let c = morland();
        let start = year_start();
        // A dry week, a 12-hour 60 mm storm, then dry.
        let rain = TimeSeries::from_fn(start, 3600, 24 * 14, |t| {
            let h = (t - start) / 3600;
            if (168..180).contains(&h) {
                5.0
            } else {
                0.0
            }
        });
        let temp = TimeSeries::from_values(start, 3600, vec![8.5; 24 * 14]);
        let truth = TruthModel::for_catchment(&c, 1);
        let q = truth.discharge(&rain, &temp);
        let (peak_idx, peak) = q.peak().unwrap();
        assert!(
            (168..24 * 14).contains(&peak_idx),
            "peak at {peak_idx} should follow storm onset at 168"
        );
        assert!(peak > q.value_at(100) * 3.0, "peak {peak} vs pre-storm {}", q.value_at(100));
    }

    #[test]
    fn turbidity_tracks_discharge() {
        let c = morland();
        let truth = TruthModel::for_catchment(&c, 9);
        let q = TimeSeries::from_values(year_start(), 3600, vec![0.5, 0.5, 6.0, 6.0]);
        let turb = truth.turbidity(&q);
        assert!(turb.value_at(2) > turb.value_at(0) * 3.0);
        assert!(turb.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    fn water_temperature_is_damped() {
        let c = morland();
        let g = WeatherGenerator::for_catchment(&c, 2);
        let air = g.temperature(year_start(), 3600, 24 * 30);
        let truth = TruthModel::for_catchment(&c, 2);
        let water = truth.water_temperature(&air);
        let air_range = air.peak().unwrap().1 - air.trough().unwrap().1;
        let water_range = water.peak().unwrap().1 - water.trough().unwrap().1;
        assert!(water_range < air_range * 0.6, "water {water_range} vs air {air_range}");
    }

    #[test]
    fn webcam_frames_align_with_turbidity() {
        let c = morland();
        let truth = TruthModel::for_catchment(&c, 5);
        let turb = TimeSeries::from_values(
            Timestamp::from_ymd_hms(2012, 6, 1, 0, 0, 0),
            3600,
            (0..48).map(|i| if i >= 24 { 350.0 } else { 10.0 }).collect(),
        );
        let frames = truth.webcam_frames(&SensorId::new("cam"), &turb, 1800);
        assert_eq!(frames.len(), 96);
        // Noon frame is brighter than midnight frame.
        let noon = frames.iter().find(|f| f.time().hour() == 12).unwrap();
        let midnight = &frames[0];
        assert!(noon.brightness() > midnight.brightness() + 0.5);
        // Day-2 frames are murkier than day-1 frames.
        assert!(frames[70].murkiness() > frames[10].murkiness() + 0.3);
    }
}
