//! Calendar-aware timestamps for environmental observations.
//!
//! Environmental data are wall-clock phenomena (rainfall seasonality, diurnal
//! temperature cycles), so this type carries real calendar semantics, unlike
//! the control plane's pure virtual [`SimTime`](https://example.org/evop)
//! offsets.

use std::fmt;
use std::ops::{Add, Sub};

use serde::{Deserialize, Serialize};

/// Seconds in one day.
pub const SECS_PER_DAY: i64 = 86_400;

/// Seconds in one hour.
pub const SECS_PER_HOUR: i64 = 3_600;

/// A UTC instant with second resolution, stored as seconds since the Unix
/// epoch.
///
/// # Examples
///
/// ```
/// use evop_data::Timestamp;
///
/// let t = Timestamp::from_ymd_hms(2012, 6, 15, 12, 0, 0);
/// assert_eq!(t.year(), 2012);
/// assert_eq!(t.day_of_year(), 167);
/// assert_eq!(t.hour(), 12);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(i64);

impl Timestamp {
    /// The Unix epoch, 1970-01-01T00:00:00Z.
    pub const UNIX_EPOCH: Timestamp = Timestamp(0);

    /// Creates a timestamp from seconds since the Unix epoch.
    pub const fn from_unix(secs: i64) -> Timestamp {
        Timestamp(secs)
    }

    /// Creates a timestamp from a calendar date and time (UTC, proleptic
    /// Gregorian).
    ///
    /// # Panics
    ///
    /// Panics if `month` is not in `1..=12`, `day` not in `1..=31`, `hour`
    /// not in `0..24`, or `minute`/`second` not in `0..60`.
    pub fn from_ymd_hms(
        year: i32,
        month: u32,
        day: u32,
        hour: u32,
        minute: u32,
        second: u32,
    ) -> Timestamp {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!((1..=31).contains(&day), "day out of range: {day}");
        assert!(hour < 24, "hour out of range: {hour}");
        assert!(minute < 60, "minute out of range: {minute}");
        assert!(second < 60, "second out of range: {second}");
        let days = days_from_civil(year, month, day);
        Timestamp(
            days * SECS_PER_DAY
                + i64::from(hour) * SECS_PER_HOUR
                + i64::from(minute) * 60
                + i64::from(second),
        )
    }

    /// Creates a timestamp at midnight UTC on the given date.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Timestamp {
        Timestamp::from_ymd_hms(year, month, day, 0, 0, 0)
    }

    /// Seconds since the Unix epoch.
    pub const fn as_unix(self) -> i64 {
        self.0
    }

    /// The calendar year.
    pub fn year(self) -> i32 {
        self.civil().0
    }

    /// The calendar month, `1..=12`.
    pub fn month(self) -> u32 {
        self.civil().1
    }

    /// The day of the month, `1..=31`.
    pub fn day(self) -> u32 {
        self.civil().2
    }

    /// The hour of day, `0..24`.
    pub fn hour(self) -> u32 {
        (self.seconds_of_day() / SECS_PER_HOUR) as u32
    }

    /// The minute of the hour, `0..60`.
    pub fn minute(self) -> u32 {
        ((self.seconds_of_day() % SECS_PER_HOUR) / 60) as u32
    }

    /// The day of the year, `1..=366`.
    pub fn day_of_year(self) -> u32 {
        let (y, m, d) = self.civil();
        let jan1 = days_from_civil(y, 1, 1);
        (days_from_civil(y, m, d) - jan1 + 1) as u32
    }

    /// Fraction of the day elapsed, in `[0, 1)`. Drives diurnal cycles in the
    /// synthetic weather generator.
    pub fn day_fraction(self) -> f64 {
        self.seconds_of_day() as f64 / SECS_PER_DAY as f64
    }

    /// Fraction of the year elapsed, in `[0, 1)`. Drives seasonal cycles.
    pub fn year_fraction(self) -> f64 {
        let doy = f64::from(self.day_of_year() - 1) + self.day_fraction();
        let length = if is_leap_year(self.year()) { 366.0 } else { 365.0 };
        doy / length
    }

    /// Adds whole seconds.
    pub fn plus_secs(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }

    /// Adds whole hours.
    pub fn plus_hours(self, hours: i64) -> Timestamp {
        self.plus_secs(hours * SECS_PER_HOUR)
    }

    /// Adds whole days.
    pub fn plus_days(self, days: i64) -> Timestamp {
        self.plus_secs(days * SECS_PER_DAY)
    }

    /// Rounds down to the containing multiple of `step_secs`, anchored at the
    /// epoch.
    ///
    /// # Panics
    ///
    /// Panics if `step_secs` is zero.
    pub fn floor_to(self, step_secs: u32) -> Timestamp {
        assert!(step_secs > 0, "step must be positive");
        let step = i64::from(step_secs);
        Timestamp(self.0.div_euclid(step) * step)
    }

    fn seconds_of_day(self) -> i64 {
        self.0.rem_euclid(SECS_PER_DAY)
    }

    fn civil(self) -> (i32, u32, u32) {
        civil_from_days(self.0.div_euclid(SECS_PER_DAY))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.civil();
        let sod = self.seconds_of_day();
        write!(
            f,
            "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
            sod / SECS_PER_HOUR,
            (sod % SECS_PER_HOUR) / 60,
            sod % 60
        )
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;

    /// Adds whole seconds.
    fn add(self, rhs: i64) -> Timestamp {
        self.plus_secs(rhs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;

    /// The signed number of seconds from `rhs` to `self`.
    fn sub(self, rhs: Timestamp) -> i64 {
        self.0 - rhs.0
    }
}

/// `true` if `year` is a Gregorian leap year.
pub fn is_leap_year(year: i32) -> bool {
    (year % 4 == 0 && year % 100 != 0) || year % 400 == 0
}

/// Days since the Unix epoch for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date for days since the Unix epoch (inverse of [`days_from_civil`]).
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    ((y + i64::from(m <= 2)) as i32, m as u32, d as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        let t = Timestamp::UNIX_EPOCH;
        assert_eq!((t.year(), t.month(), t.day()), (1970, 1, 1));
        assert_eq!(t.to_string(), "1970-01-01T00:00:00Z");
    }

    #[test]
    fn civil_round_trip_across_eras() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (1999, 12, 31),
            (2000, 2, 29),
            (2011, 11, 5),
            (2012, 2, 29),
            (2100, 3, 1),
            (1900, 2, 28),
        ] {
            let t = Timestamp::from_ymd(y, m, d);
            assert_eq!((t.year(), t.month(), t.day()), (y, m, d), "date {y}-{m}-{d}");
        }
    }

    #[test]
    fn known_unix_values() {
        // 2012-06-15T12:00:00Z == 1339761600
        assert_eq!(Timestamp::from_ymd_hms(2012, 6, 15, 12, 0, 0).as_unix(), 1_339_761_600);
        // 2000-01-01 == 946684800
        assert_eq!(Timestamp::from_ymd(2000, 1, 1).as_unix(), 946_684_800);
    }

    #[test]
    fn day_of_year_handles_leap_years() {
        assert_eq!(Timestamp::from_ymd(2011, 12, 31).day_of_year(), 365);
        assert_eq!(Timestamp::from_ymd(2012, 12, 31).day_of_year(), 366);
        assert_eq!(Timestamp::from_ymd(2012, 3, 1).day_of_year(), 61);
        assert_eq!(Timestamp::from_ymd(2011, 3, 1).day_of_year(), 60);
    }

    #[test]
    fn fractions_are_in_range() {
        let t = Timestamp::from_ymd_hms(2012, 6, 15, 18, 0, 0);
        assert!((t.day_fraction() - 0.75).abs() < 1e-12);
        assert!(t.year_fraction() > 0.4 && t.year_fraction() < 0.5);
    }

    #[test]
    fn arithmetic_and_floor() {
        let t = Timestamp::from_ymd_hms(2012, 1, 1, 10, 34, 56);
        assert_eq!(t.plus_days(1).day(), 2);
        assert_eq!(t.floor_to(3600).minute(), 0);
        assert_eq!(t.floor_to(3600).hour(), 10);
        let delta = t.plus_hours(3) - t;
        assert_eq!(delta, 3 * SECS_PER_HOUR);
    }

    #[test]
    fn floor_works_before_epoch() {
        let t = Timestamp::from_unix(-1);
        assert_eq!(t.floor_to(3600).as_unix(), -3600);
    }

    #[test]
    fn display_pads_fields() {
        let t = Timestamp::from_ymd_hms(2012, 2, 3, 4, 5, 6);
        assert_eq!(t.to_string(), "2012-02-03T04:05:06Z");
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap_year(2000));
        assert!(is_leap_year(2012));
        assert!(!is_leap_year(1900));
        assert!(!is_leap_year(2011));
    }

    #[test]
    #[should_panic(expected = "month out of range")]
    fn rejects_bad_month() {
        let _ = Timestamp::from_ymd(2012, 13, 1);
    }
}
