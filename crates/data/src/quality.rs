//! Quality control for incoming data feeds.
//!
//! The paper notes environmental data "can be insufficient or incomplete …
//! and/or require significant pre-processing before they may be considered
//! usable" (§I). This module implements the pre-processing EVOp applied on
//! ingestion: plausibility checks that flag suspect samples before they reach
//! models or widgets.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::sensors::SensorKind;
use crate::timeseries::TimeSeries;

/// Why a sample was flagged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IssueKind {
    /// Value outside the physically plausible range for the sensor kind.
    OutOfRange,
    /// Jump from the previous sample exceeds the allowed rate of change.
    Spike,
    /// Identical value repeated longer than a stuck sensor plausibly would.
    Flatline,
    /// Sample is missing (`NaN`).
    Missing,
}

impl fmt::Display for IssueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IssueKind::OutOfRange => "out of range",
            IssueKind::Spike => "spike",
            IssueKind::Flatline => "flatline",
            IssueKind::Missing => "missing",
        };
        f.write_str(s)
    }
}

/// A flagged sample: its index in the checked series and the reason.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QcIssue {
    /// Index of the offending sample.
    pub index: usize,
    /// Why it was flagged.
    pub kind: IssueKind,
}

/// A quality-control check over a regular series.
///
/// This trait is sealed: the fixed set of checks mirrors the project's
/// ingestion pipeline and the report format depends on it.
pub trait QualityCheck: sealed::Sealed + fmt::Debug {
    /// Runs the check, returning every flagged sample.
    fn check(&self, series: &TimeSeries) -> Vec<QcIssue>;

    /// A short machine-readable name, e.g. `"range"`.
    fn name(&self) -> &'static str;
}

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::RangeCheck {}
    impl Sealed for super::SpikeCheck {}
    impl Sealed for super::FlatlineCheck {}
    impl Sealed for super::MissingCheck {}
}

/// Flags samples outside `[min, max]`.
///
/// # Examples
///
/// ```
/// use evop_data::quality::{QualityCheck, RangeCheck};
/// use evop_data::{TimeSeries, Timestamp};
///
/// let series = TimeSeries::from_values(Timestamp::UNIX_EPOCH, 60, vec![1.0, 99.0, 2.0]);
/// let issues = RangeCheck::new(0.0, 10.0).check(&series);
/// assert_eq!(issues.len(), 1);
/// assert_eq!(issues[0].index, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeCheck {
    min: f64,
    max: f64,
}

impl RangeCheck {
    /// Creates a range check.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(min: f64, max: f64) -> RangeCheck {
        assert!(min <= max, "range inverted: [{min}, {max}]");
        RangeCheck { min, max }
    }

    /// The standard range check for a sensor kind (see
    /// [`SensorKind::valid_range`]).
    pub fn for_kind(kind: SensorKind) -> RangeCheck {
        let (min, max) = kind.valid_range();
        RangeCheck { min, max }
    }
}

impl QualityCheck for RangeCheck {
    fn check(&self, series: &TimeSeries) -> Vec<QcIssue> {
        series
            .values()
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan() && (**v < self.min || **v > self.max))
            .map(|(index, _)| QcIssue { index, kind: IssueKind::OutOfRange })
            .collect()
    }

    fn name(&self) -> &'static str {
        "range"
    }
}

/// Flags samples that jump more than `max_jump` from the previous non-missing
/// sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpikeCheck {
    max_jump: f64,
}

impl SpikeCheck {
    /// Creates a spike check.
    ///
    /// # Panics
    ///
    /// Panics if `max_jump` is not positive.
    pub fn new(max_jump: f64) -> SpikeCheck {
        assert!(max_jump > 0.0, "max jump must be positive");
        SpikeCheck { max_jump }
    }
}

impl QualityCheck for SpikeCheck {
    fn check(&self, series: &TimeSeries) -> Vec<QcIssue> {
        let mut issues = Vec::new();
        let mut prev: Option<f64> = None;
        for (index, &v) in series.values().iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            if let Some(p) = prev {
                if (v - p).abs() > self.max_jump {
                    issues.push(QcIssue { index, kind: IssueKind::Spike });
                }
            }
            prev = Some(v);
        }
        issues
    }

    fn name(&self) -> &'static str {
        "spike"
    }
}

/// Flags runs of an identical non-zero value longer than `max_run` samples —
/// the signature of a stuck sensor. Zero runs are ignored (dry spells are
/// legitimately long).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatlineCheck {
    max_run: usize,
}

impl FlatlineCheck {
    /// Creates a flatline check.
    ///
    /// # Panics
    ///
    /// Panics if `max_run` is zero.
    pub fn new(max_run: usize) -> FlatlineCheck {
        assert!(max_run > 0, "max run must be positive");
        FlatlineCheck { max_run }
    }
}

impl QualityCheck for FlatlineCheck {
    fn check(&self, series: &TimeSeries) -> Vec<QcIssue> {
        let mut issues = Vec::new();
        let values = series.values();
        let mut run_start = 0usize;
        for index in 1..=values.len() {
            let continues = index < values.len()
                && !values[index].is_nan()
                && !values[run_start].is_nan()
                && values[index] == values[run_start];
            if !continues {
                let run_len = index - run_start;
                if run_len > self.max_run && values[run_start].abs() > f64::EPSILON {
                    for i in run_start..index {
                        issues.push(QcIssue { index: i, kind: IssueKind::Flatline });
                    }
                }
                run_start = index;
            }
        }
        issues
    }

    fn name(&self) -> &'static str {
        "flatline"
    }
}

/// Flags missing (`NaN`) samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MissingCheck;

impl MissingCheck {
    /// Creates the check.
    pub fn new() -> MissingCheck {
        MissingCheck
    }
}

impl QualityCheck for MissingCheck {
    fn check(&self, series: &TimeSeries) -> Vec<QcIssue> {
        series
            .values()
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_nan())
            .map(|(index, _)| QcIssue { index, kind: IssueKind::Missing })
            .collect()
    }

    fn name(&self) -> &'static str {
        "missing"
    }
}

/// A quality-control report: every issue found by a suite of checks.
#[derive(Debug, Clone, Default)]
pub struct QcReport {
    issues: Vec<QcIssue>,
    checked_samples: usize,
}

impl QcReport {
    /// All flagged samples, in check order then index order.
    pub fn issues(&self) -> &[QcIssue] {
        &self.issues
    }

    /// The number of samples that were checked.
    pub fn checked_samples(&self) -> usize {
        self.checked_samples
    }

    /// `true` if no issues were found.
    pub fn is_clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// The fraction of samples flagged by at least one check.
    pub fn flagged_fraction(&self) -> f64 {
        if self.checked_samples == 0 {
            return 0.0;
        }
        let mut indices: Vec<usize> = self.issues.iter().map(|i| i.index).collect();
        indices.sort_unstable();
        indices.dedup();
        indices.len() as f64 / self.checked_samples as f64
    }

    /// Number of issues of a given kind.
    pub fn count_of(&self, kind: IssueKind) -> usize {
        self.issues.iter().filter(|i| i.kind == kind).count()
    }
}

/// The standard ingestion pipeline for a sensor kind: range + spike +
/// flatline + missing, with kind-appropriate thresholds.
///
/// # Examples
///
/// ```
/// use evop_data::quality::run_standard_checks;
/// use evop_data::sensors::SensorKind;
/// use evop_data::{TimeSeries, Timestamp};
///
/// let series = TimeSeries::from_values(
///     Timestamp::UNIX_EPOCH,
///     900,
///     vec![0.4, 0.5, 8.0, 0.5, f64::NAN],
/// );
/// let report = run_standard_checks(SensorKind::RiverLevel, &series);
/// assert!(!report.is_clean());
/// ```
pub fn run_standard_checks(kind: SensorKind, series: &TimeSeries) -> QcReport {
    let (lo, hi) = kind.valid_range();
    let max_jump = match kind {
        SensorKind::RiverLevel => 0.8,
        SensorKind::RainGauge => 40.0,
        SensorKind::Temperature => 8.0,
        SensorKind::Turbidity => 1500.0,
        SensorKind::Webcam => 1.0,
    };
    let checks: [&dyn QualityCheck; 4] = [
        &RangeCheck::new(lo, hi),
        &SpikeCheck::new(max_jump),
        &FlatlineCheck::new(96),
        &MissingCheck::new(),
    ];
    let mut issues = Vec::new();
    for check in checks {
        issues.extend(check.check(series));
    }
    QcReport { issues, checked_samples: series.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Timestamp;

    fn series(values: Vec<f64>) -> TimeSeries {
        TimeSeries::from_values(Timestamp::UNIX_EPOCH, 900, values)
    }

    #[test]
    fn range_check_flags_extremes_only() {
        let s = series(vec![-1.0, 0.5, 11.0, 5.0]);
        let issues = RangeCheck::new(0.0, 10.0).check(&s);
        let idx: Vec<usize> = issues.iter().map(|i| i.index).collect();
        assert_eq!(idx, [0, 2]);
    }

    #[test]
    fn range_check_ignores_nan() {
        let s = series(vec![f64::NAN, 1.0]);
        assert!(RangeCheck::new(0.0, 10.0).check(&s).is_empty());
    }

    #[test]
    fn spike_check_skips_missing_and_uses_last_present() {
        let s = series(vec![1.0, f64::NAN, 1.1, 9.0, 9.1]);
        let issues = SpikeCheck::new(2.0).check(&s);
        assert_eq!(issues.len(), 1);
        assert_eq!(issues[0].index, 3);
    }

    #[test]
    fn flatline_check_flags_stuck_sensor_not_dry_spell() {
        let mut values = vec![0.0; 20]; // dry spell: fine
        values.extend(vec![3.3; 20]); // stuck: flagged
        values.push(4.0);
        let s = series(values);
        let issues = FlatlineCheck::new(10).check(&s);
        assert_eq!(issues.len(), 20);
        assert!(issues.iter().all(|i| (20..40).contains(&i.index)));
    }

    #[test]
    fn flatline_run_at_series_end_is_flagged() {
        let s = series(vec![1.0, 2.0, 2.0, 2.0, 2.0]);
        let issues = FlatlineCheck::new(3).check(&s);
        assert_eq!(issues.len(), 4);
    }

    #[test]
    fn missing_check_counts_nans() {
        let s = series(vec![1.0, f64::NAN, f64::NAN]);
        assert_eq!(MissingCheck::new().check(&s).len(), 2);
    }

    #[test]
    fn standard_checks_aggregate() {
        let s = series(vec![0.4, 0.5, 9.9, 0.5, f64::NAN]);
        let report = run_standard_checks(SensorKind::RiverLevel, &s);
        assert!(report.count_of(IssueKind::Spike) >= 1);
        assert_eq!(report.count_of(IssueKind::Missing), 1);
        assert!(report.flagged_fraction() > 0.0 && report.flagged_fraction() <= 1.0);
        assert_eq!(report.checked_samples(), 5);
    }

    #[test]
    fn clean_series_is_clean() {
        let s = series(vec![0.4, 0.45, 0.5, 0.48]);
        let report = run_standard_checks(SensorKind::RiverLevel, &s);
        assert!(report.is_clean());
        assert_eq!(report.flagged_fraction(), 0.0);
    }
}
