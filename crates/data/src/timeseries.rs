//! Regular and irregular time series.
//!
//! Everything the portal shows — rainfall records, river stages, model
//! hydrographs — is a time series. [`TimeSeries`] is a regularly sampled
//! series (fixed step), which is what models consume; [`IrregularSeries`] is
//! an event-stamped series (what raw sensors and webcams produce), with
//! conversion between the two. Missing data are represented as `NaN` and
//! handled explicitly by every operation.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::time::Timestamp;

/// How to combine several samples into one when resampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Aggregation {
    /// Arithmetic mean of non-missing samples (e.g. temperature).
    Mean,
    /// Sum of non-missing samples (e.g. rainfall depth).
    Sum,
    /// Minimum of non-missing samples.
    Min,
    /// Maximum of non-missing samples (e.g. flood peak).
    Max,
    /// The last non-missing sample (e.g. instantaneous stage).
    Last,
}

impl Aggregation {
    fn apply(self, window: &[f64]) -> f64 {
        let mut present = window.iter().copied().filter(|v| !v.is_nan()).peekable();
        if present.peek().is_none() {
            return f64::NAN;
        }
        match self {
            Aggregation::Mean => {
                let (sum, n) = present.fold((0.0, 0usize), |(s, n), v| (s + v, n + 1));
                sum / n as f64
            }
            Aggregation::Sum => present.sum(),
            Aggregation::Min => present.fold(f64::INFINITY, f64::min),
            Aggregation::Max => present.fold(f64::NEG_INFINITY, f64::max),
            Aggregation::Last => present.last().unwrap_or(f64::NAN),
        }
    }
}

/// How to fill missing (`NaN`) samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FillMethod {
    /// Carry the previous non-missing value forward.
    Hold,
    /// Linear interpolation between the surrounding non-missing values.
    Linear,
}

/// Errors from time-series operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeriesError {
    /// Two series could not be aligned because their steps differ.
    StepMismatch {
        /// Step of the left-hand series in seconds.
        left: u32,
        /// Step of the right-hand series in seconds.
        right: u32,
    },
    /// Two series do not overlap in time.
    NoOverlap,
    /// The requested window is empty or inverted.
    EmptyWindow,
}

impl fmt::Display for SeriesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeriesError::StepMismatch { left, right } => {
                write!(f, "series steps differ: {left}s vs {right}s")
            }
            SeriesError::NoOverlap => write!(f, "series do not overlap in time"),
            SeriesError::EmptyWindow => write!(f, "requested window is empty"),
        }
    }
}

impl std::error::Error for SeriesError {}

/// A regularly sampled time series with a fixed step.
///
/// Missing samples are stored as `NaN`.
///
/// # Examples
///
/// ```
/// use evop_data::{TimeSeries, Timestamp};
///
/// let start = Timestamp::from_ymd(2012, 1, 1);
/// let hourly = TimeSeries::from_values(start, 3600, vec![0.0, 1.5, 3.0, 0.5]);
/// assert_eq!(hourly.len(), 4);
/// assert_eq!(hourly.value_at(2), 3.0);
/// assert!((hourly.sum() - 5.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    start: Timestamp,
    step_secs: u32,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series starting at `start` with the given step.
    ///
    /// # Panics
    ///
    /// Panics if `step_secs` is zero.
    pub fn new(start: Timestamp, step_secs: u32) -> TimeSeries {
        assert!(step_secs > 0, "step must be positive");
        TimeSeries { start, step_secs, values: Vec::new() }
    }

    /// Creates a series from explicit values.
    ///
    /// # Panics
    ///
    /// Panics if `step_secs` is zero.
    pub fn from_values(start: Timestamp, step_secs: u32, values: Vec<f64>) -> TimeSeries {
        assert!(step_secs > 0, "step must be positive");
        TimeSeries { start, step_secs, values }
    }

    /// Creates a series of `len` samples by evaluating `f` at each timestamp.
    pub fn from_fn<F: FnMut(Timestamp) -> f64>(
        start: Timestamp,
        step_secs: u32,
        len: usize,
        mut f: F,
    ) -> TimeSeries {
        let mut s = TimeSeries::new(start, step_secs);
        for i in 0..len {
            let t = start.plus_secs(i as i64 * i64::from(step_secs));
            s.values.push(f(t));
        }
        s
    }

    /// The timestamp of the first sample.
    pub fn start(&self) -> Timestamp {
        self.start
    }

    /// The sampling step in seconds.
    pub fn step_secs(&self) -> u32 {
        self.step_secs
    }

    /// The exclusive end time (one step past the last sample).
    pub fn end(&self) -> Timestamp {
        self.start.plus_secs(self.values.len() as i64 * i64::from(self.step_secs))
    }

    /// The number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The timestamp of sample `i`.
    pub fn time_at(&self, i: usize) -> Timestamp {
        self.start.plus_secs(i as i64 * i64::from(self.step_secs))
    }

    /// The value of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn value_at(&self, i: usize) -> f64 {
        self.values[i]
    }

    /// The value at timestamp `t`, if `t` falls within the series (floored to
    /// the containing step).
    pub fn at(&self, t: Timestamp) -> Option<f64> {
        if t < self.start || t >= self.end() {
            return None;
        }
        let idx = ((t - self.start) / i64::from(self.step_secs)) as usize;
        Some(self.values[idx])
    }

    /// Appends one sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// All values in order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, f64)> + '_ {
        self.values.iter().enumerate().map(move |(i, &v)| (self.time_at(i), v))
    }

    /// The sub-series covering `[from, to)`.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::EmptyWindow`] if the window is inverted, or
    /// [`SeriesError::NoOverlap`] if it does not intersect the series.
    pub fn window(&self, from: Timestamp, to: Timestamp) -> Result<TimeSeries, SeriesError> {
        if to <= from {
            return Err(SeriesError::EmptyWindow);
        }
        if to <= self.start || from >= self.end() {
            return Err(SeriesError::NoOverlap);
        }
        let step = i64::from(self.step_secs);
        let lo = if from <= self.start {
            0
        } else {
            ((from - self.start) + step - 1).div_euclid(step) as usize
        };
        let hi = (((to - self.start) + step - 1).div_euclid(step) as usize).min(self.values.len());
        if lo >= hi {
            return Err(SeriesError::NoOverlap);
        }
        Ok(TimeSeries {
            start: self.time_at(lo),
            step_secs: self.step_secs,
            values: self.values[lo..hi].to_vec(),
        })
    }

    /// Resamples to a coarser step, combining each window with `agg`.
    ///
    /// # Panics
    ///
    /// Panics if `new_step_secs` is not a positive multiple of the current
    /// step.
    pub fn resample(&self, new_step_secs: u32, agg: Aggregation) -> TimeSeries {
        assert!(
            new_step_secs > 0 && new_step_secs.is_multiple_of(self.step_secs),
            "new step {new_step_secs}s must be a positive multiple of {}s",
            self.step_secs
        );
        let factor = (new_step_secs / self.step_secs) as usize;
        let values = self.values.chunks(factor).map(|chunk| agg.apply(chunk)).collect();
        TimeSeries { start: self.start, step_secs: new_step_secs, values }
    }

    /// Returns a copy with missing (`NaN`) samples filled.
    ///
    /// Leading missing samples (with no previous value) are left missing under
    /// [`FillMethod::Hold`], and trailing missing samples are held at the last
    /// known value under [`FillMethod::Linear`].
    pub fn fill_missing(&self, method: FillMethod) -> TimeSeries {
        let mut out = self.clone();
        match method {
            FillMethod::Hold => {
                let mut last = f64::NAN;
                for v in &mut out.values {
                    if v.is_nan() {
                        *v = last;
                    } else {
                        last = *v;
                    }
                }
            }
            FillMethod::Linear => {
                let n = out.values.len();
                let mut i = 0;
                while i < n {
                    if out.values[i].is_nan() {
                        let gap_start = i;
                        while i < n && out.values[i].is_nan() {
                            i += 1;
                        }
                        let before = gap_start.checked_sub(1).map(|j| out.values[j]);
                        let after = (i < n).then(|| out.values[i]);
                        match (before, after) {
                            (Some(b), Some(a)) => {
                                let gap = i - gap_start + 1;
                                for (k, v) in out.values[gap_start..i].iter_mut().enumerate() {
                                    let t = (k + 1) as f64 / gap as f64;
                                    *v = b + (a - b) * t;
                                }
                            }
                            (Some(b), None) => {
                                for v in &mut out.values[gap_start..i] {
                                    *v = b;
                                }
                            }
                            (None, Some(a)) => {
                                for v in &mut out.values[gap_start..i] {
                                    *v = a;
                                }
                            }
                            (None, None) => {}
                        }
                    } else {
                        i += 1;
                    }
                }
            }
        }
        out
    }

    /// Trims both series to their overlapping window.
    ///
    /// # Errors
    ///
    /// Returns [`SeriesError::StepMismatch`] if the steps differ, and
    /// [`SeriesError::NoOverlap`] if the series do not overlap.
    pub fn align(&self, other: &TimeSeries) -> Result<(TimeSeries, TimeSeries), SeriesError> {
        if self.step_secs != other.step_secs {
            return Err(SeriesError::StepMismatch { left: self.step_secs, right: other.step_secs });
        }
        let from = self.start.max(other.start);
        let to = self.end().min(other.end());
        if to <= from {
            return Err(SeriesError::NoOverlap);
        }
        Ok((self.window(from, to)?, other.window(from, to)?))
    }

    /// Applies `f` to every sample, returning a new series.
    pub fn map<F: FnMut(f64) -> f64>(&self, f: F) -> TimeSeries {
        TimeSeries {
            start: self.start,
            step_secs: self.step_secs,
            values: self.values.iter().copied().map(f).collect(),
        }
    }

    /// The number of missing (`NaN`) samples.
    pub fn missing_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_nan()).count()
    }

    /// The sum of non-missing samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().filter(|v| !v.is_nan()).sum()
    }

    /// The mean of non-missing samples, or `NaN` if all are missing.
    pub fn mean(&self) -> f64 {
        let present: Vec<f64> = self.values.iter().copied().filter(|v| !v.is_nan()).collect();
        if present.is_empty() {
            f64::NAN
        } else {
            present.iter().sum::<f64>() / present.len() as f64
        }
    }

    /// The maximum non-missing sample with its index, or `None` if all
    /// samples are missing.
    pub fn peak(&self) -> Option<(usize, f64)> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
    }

    /// The minimum non-missing sample with its index, or `None` if all
    /// samples are missing.
    pub fn trough(&self) -> Option<(usize, f64)> {
        self.values
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_nan())
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &v)| (i, v))
    }
}

/// An irregularly sampled (event-stamped) series, kept sorted by time.
///
/// # Examples
///
/// ```
/// use evop_data::timeseries::IrregularSeries;
/// use evop_data::Timestamp;
///
/// let mut s = IrregularSeries::new();
/// let t0 = Timestamp::from_ymd(2012, 1, 1);
/// s.push(t0.plus_secs(100), 1.0);
/// s.push(t0, 0.5); // out-of-order insert is fine
/// assert_eq!(s.nearest(t0.plus_secs(40)).unwrap().1, 0.5);
/// assert_eq!(s.nearest(t0.plus_secs(60)).unwrap().1, 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct IrregularSeries {
    points: Vec<(Timestamp, f64)>,
}

impl IrregularSeries {
    /// Creates an empty series.
    pub fn new() -> IrregularSeries {
        IrregularSeries::default()
    }

    /// Inserts a sample, keeping the series sorted by time.
    pub fn push(&mut self, t: Timestamp, value: f64) {
        let idx = self.points.partition_point(|&(pt, _)| pt <= t);
        self.points.insert(idx, (t, value));
    }

    /// The number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` if the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All `(timestamp, value)` points in time order.
    pub fn points(&self) -> &[(Timestamp, f64)] {
        &self.points
    }

    /// Iterates over `(timestamp, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Timestamp, f64)> + '_ {
        self.points.iter().copied()
    }

    /// The sample closest in time to `t`, or `None` if empty. Ties go to the
    /// earlier sample.
    pub fn nearest(&self, t: Timestamp) -> Option<(Timestamp, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let idx = self.points.partition_point(|&(pt, _)| pt < t);
        let after = self.points.get(idx);
        let before = idx.checked_sub(1).and_then(|i| self.points.get(i));
        match (before, after) {
            (Some(&b), Some(&a)) => {
                if (t - b.0) <= (a.0 - t) {
                    Some(b)
                } else {
                    Some(a)
                }
            }
            (Some(&b), None) => Some(b),
            (None, Some(&a)) => Some(a),
            (None, None) => None,
        }
    }

    /// The sample closest to `t` within `tolerance_secs`, or `None`.
    pub fn nearest_within(&self, t: Timestamp, tolerance_secs: i64) -> Option<(Timestamp, f64)> {
        self.nearest(t).filter(|&(pt, _)| (t - pt).abs() <= tolerance_secs)
    }

    /// All points in `[from, to)`.
    pub fn window(&self, from: Timestamp, to: Timestamp) -> &[(Timestamp, f64)] {
        let lo = self.points.partition_point(|&(pt, _)| pt < from);
        let hi = self.points.partition_point(|&(pt, _)| pt < to);
        &self.points[lo..hi]
    }

    /// Converts to a regular series over `[start, start + len*step)`,
    /// aggregating the points in each step with `agg`; empty steps become
    /// missing (`NaN`).
    ///
    /// # Panics
    ///
    /// Panics if `step_secs` is zero.
    pub fn to_regular(
        &self,
        start: Timestamp,
        step_secs: u32,
        len: usize,
        agg: Aggregation,
    ) -> TimeSeries {
        assert!(step_secs > 0, "step must be positive");
        let mut out = TimeSeries::new(start, step_secs);
        for i in 0..len {
            let from = start.plus_secs(i as i64 * i64::from(step_secs));
            let to = from.plus_secs(i64::from(step_secs));
            let window: Vec<f64> = self.window(from, to).iter().map(|&(_, v)| v).collect();
            out.push(agg.apply(&window));
        }
        out
    }
}

impl FromIterator<(Timestamp, f64)> for IrregularSeries {
    fn from_iter<I: IntoIterator<Item = (Timestamp, f64)>>(iter: I) -> IrregularSeries {
        let mut points: Vec<(Timestamp, f64)> = iter.into_iter().collect();
        points.sort_by_key(|&(t, _)| t);
        IrregularSeries { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> Timestamp {
        Timestamp::from_ymd(2012, 1, 1)
    }

    #[test]
    fn basics() {
        let s = TimeSeries::from_values(t0(), 3600, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.time_at(2), t0().plus_hours(2));
        assert_eq!(s.end(), t0().plus_hours(3));
        assert_eq!(s.at(t0().plus_secs(3599)), Some(1.0));
        assert_eq!(s.at(t0().plus_hours(3)), None);
        assert_eq!(s.at(t0().plus_secs(-1)), None);
    }

    #[test]
    fn from_fn_generates_timestamps() {
        let s = TimeSeries::from_fn(t0(), 3600, 24, |t| f64::from(t.hour()));
        assert_eq!(s.value_at(0), 0.0);
        assert_eq!(s.value_at(23), 23.0);
    }

    #[test]
    fn window_clips_to_series() {
        let s = TimeSeries::from_values(t0(), 3600, (0..24).map(f64::from).collect());
        let w = s.window(t0().plus_hours(6), t0().plus_hours(9)).unwrap();
        assert_eq!(w.len(), 3);
        assert_eq!(w.value_at(0), 6.0);
        assert_eq!(w.start(), t0().plus_hours(6));

        // Window larger than the series returns the whole series.
        let all = s.window(t0().plus_days(-1), t0().plus_days(2)).unwrap();
        assert_eq!(all.len(), 24);
    }

    #[test]
    fn window_errors() {
        let s = TimeSeries::from_values(t0(), 3600, vec![1.0; 4]);
        assert_eq!(
            s.window(t0().plus_hours(2), t0().plus_hours(2)).unwrap_err(),
            SeriesError::EmptyWindow
        );
        assert_eq!(
            s.window(t0().plus_days(5), t0().plus_days(6)).unwrap_err(),
            SeriesError::NoOverlap
        );
    }

    #[test]
    fn resample_sum_and_mean() {
        let s = TimeSeries::from_values(t0(), 3600, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let daily_ish = s.resample(3 * 3600, Aggregation::Sum);
        assert_eq!(daily_ish.values(), &[6.0, 15.0]);
        let means = s.resample(2 * 3600, Aggregation::Mean);
        assert_eq!(means.values(), &[1.5, 3.5, 5.5]);
        let maxes = s.resample(6 * 3600, Aggregation::Max);
        assert_eq!(maxes.values(), &[6.0]);
    }

    #[test]
    fn resample_with_missing() {
        let s = TimeSeries::from_values(t0(), 3600, vec![1.0, f64::NAN, f64::NAN, f64::NAN]);
        let r = s.resample(2 * 3600, Aggregation::Mean);
        assert_eq!(r.value_at(0), 1.0);
        assert!(r.value_at(1).is_nan());
    }

    #[test]
    fn fill_hold() {
        let s = TimeSeries::from_values(t0(), 60, vec![f64::NAN, 1.0, f64::NAN, f64::NAN, 2.0]);
        let f = s.fill_missing(FillMethod::Hold);
        assert!(f.value_at(0).is_nan()); // no previous value
        assert_eq!(f.values()[1..], [1.0, 1.0, 1.0, 2.0]);
    }

    #[test]
    fn fill_linear() {
        let s = TimeSeries::from_values(t0(), 60, vec![0.0, f64::NAN, f64::NAN, 3.0, f64::NAN]);
        let f = s.fill_missing(FillMethod::Linear);
        assert_eq!(f.values()[..4], [0.0, 1.0, 2.0, 3.0]);
        assert_eq!(f.value_at(4), 3.0); // trailing gap held
    }

    #[test]
    fn align_overlapping() {
        let a = TimeSeries::from_values(t0(), 3600, (0..10).map(f64::from).collect());
        let b = TimeSeries::from_values(t0().plus_hours(5), 3600, (0..10).map(f64::from).collect());
        let (aa, bb) = a.align(&b).unwrap();
        assert_eq!(aa.len(), 5);
        assert_eq!(bb.len(), 5);
        assert_eq!(aa.start(), bb.start());
        assert_eq!(aa.value_at(0), 5.0);
        assert_eq!(bb.value_at(0), 0.0);
    }

    #[test]
    fn align_mismatched_step_fails() {
        let a = TimeSeries::from_values(t0(), 3600, vec![1.0; 5]);
        let b = TimeSeries::from_values(t0(), 1800, vec![1.0; 5]);
        assert!(matches!(a.align(&b), Err(SeriesError::StepMismatch { .. })));
    }

    #[test]
    fn stats_ignore_missing() {
        let s = TimeSeries::from_values(t0(), 60, vec![1.0, f64::NAN, 3.0]);
        assert_eq!(s.sum(), 4.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.missing_count(), 1);
        assert_eq!(s.peak(), Some((2, 3.0)));
        assert_eq!(s.trough(), Some((0, 1.0)));
    }

    #[test]
    fn irregular_insert_keeps_order() {
        let mut s = IrregularSeries::new();
        s.push(t0().plus_secs(50), 2.0);
        s.push(t0(), 1.0);
        s.push(t0().plus_secs(25), 1.5);
        let times: Vec<i64> = s.iter().map(|(t, _)| t - t0()).collect();
        assert_eq!(times, [0, 25, 50]);
    }

    #[test]
    fn irregular_nearest_and_tolerance() {
        let s: IrregularSeries =
            vec![(t0(), 1.0), (t0().plus_secs(100), 2.0)].into_iter().collect();
        assert_eq!(s.nearest(t0().plus_secs(49)).unwrap().1, 1.0);
        assert_eq!(s.nearest(t0().plus_secs(50)).unwrap().1, 1.0); // tie → earlier
        assert_eq!(s.nearest(t0().plus_secs(51)).unwrap().1, 2.0);
        assert!(s.nearest_within(t0().plus_secs(300), 60).is_none());
        assert!(s.nearest_within(t0().plus_secs(130), 60).is_some());
    }

    #[test]
    fn irregular_to_regular() {
        let s: IrregularSeries =
            vec![(t0().plus_secs(10), 1.0), (t0().plus_secs(20), 3.0), (t0().plus_secs(70), 5.0)]
                .into_iter()
                .collect();
        let r = s.to_regular(t0(), 60, 3, Aggregation::Mean);
        assert_eq!(r.value_at(0), 2.0);
        assert_eq!(r.value_at(1), 5.0);
        assert!(r.value_at(2).is_nan());
    }

    #[test]
    fn empty_irregular_nearest_is_none() {
        let s = IrregularSeries::new();
        assert!(s.nearest(t0()).is_none());
    }
}
