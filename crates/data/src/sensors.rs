//! The in-situ sensor and observation model.
//!
//! The EVOp stakeholder workshops asked for "live access to rainfall and
//! river level sensors in their catchments" (§V-B) and for webcam imagery
//! linked to water-quality sensors (Fig. 5). This module models those assets:
//! [`Sensor`] descriptors, timestamped [`Observation`]s with quality flags,
//! and [`WebcamFrame`]s (synthetic image descriptors standing in for real
//! JPEG feeds).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::catchment::CatchmentId;
use crate::geo::LatLon;
use crate::time::Timestamp;

/// A unique sensor identifier, e.g. `"morland-rain-1"`.
///
/// # Examples
///
/// ```
/// use evop_data::SensorId;
/// let id = SensorId::new("morland-stage-outlet");
/// assert_eq!(id.as_str(), "morland-stage-outlet");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct SensorId(String);

impl SensorId {
    /// Creates an identifier.
    ///
    /// # Panics
    ///
    /// Panics if `id` is empty.
    pub fn new(id: impl Into<String>) -> SensorId {
        let id = id.into();
        assert!(!id.is_empty(), "sensor id must not be empty");
        SensorId(id)
    }

    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SensorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SensorId {
    fn from(s: &str) -> SensorId {
        SensorId::new(s)
    }
}

/// What a sensor measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SensorKind {
    /// River stage (water level) in metres above the gauge datum.
    RiverLevel,
    /// Rainfall depth in millimetres per sampling interval.
    RainGauge,
    /// Air or water temperature in degrees Celsius.
    Temperature,
    /// Water turbidity in NTU.
    Turbidity,
    /// A webcam producing image frames rather than numeric values.
    Webcam,
}

impl SensorKind {
    /// The measurement unit as a display string (empty for webcams).
    pub fn unit(self) -> &'static str {
        match self {
            SensorKind::RiverLevel => "m",
            SensorKind::RainGauge => "mm",
            SensorKind::Temperature => "°C",
            SensorKind::Turbidity => "NTU",
            SensorKind::Webcam => "",
        }
    }

    /// A plausible valid range for quality control, `(min, max)`.
    pub fn valid_range(self) -> (f64, f64) {
        match self {
            SensorKind::RiverLevel => (0.0, 10.0),
            SensorKind::RainGauge => (0.0, 50.0),
            SensorKind::Temperature => (-25.0, 45.0),
            SensorKind::Turbidity => (0.0, 4000.0),
            SensorKind::Webcam => (0.0, 1.0),
        }
    }
}

impl fmt::Display for SensorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SensorKind::RiverLevel => "river level",
            SensorKind::RainGauge => "rain gauge",
            SensorKind::Temperature => "temperature",
            SensorKind::Turbidity => "turbidity",
            SensorKind::Webcam => "webcam",
        };
        f.write_str(name)
    }
}

/// A deployed in-situ sensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sensor {
    id: SensorId,
    kind: SensorKind,
    name: String,
    location: LatLon,
    catchment: CatchmentId,
    sample_interval_secs: u32,
}

impl Sensor {
    /// Creates a sensor descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `sample_interval_secs` is zero.
    pub fn new(
        id: SensorId,
        kind: SensorKind,
        name: impl Into<String>,
        location: LatLon,
        catchment: CatchmentId,
        sample_interval_secs: u32,
    ) -> Sensor {
        assert!(sample_interval_secs > 0, "sample interval must be positive");
        Sensor { id, kind, name: name.into(), location, catchment, sample_interval_secs }
    }

    /// The sensor's identifier.
    pub fn id(&self) -> &SensorId {
        &self.id
    }

    /// What the sensor measures.
    pub fn kind(&self) -> SensorKind {
        self.kind
    }

    /// Human-readable name shown on the portal map.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Where the sensor is deployed.
    pub fn location(&self) -> LatLon {
        self.location
    }

    /// The catchment the sensor belongs to.
    pub fn catchment(&self) -> &CatchmentId {
        &self.catchment
    }

    /// Nominal seconds between samples.
    pub fn sample_interval_secs(&self) -> u32 {
        self.sample_interval_secs
    }
}

/// Data quality of a single observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum QualityFlag {
    /// Passed all checks.
    #[default]
    Good,
    /// Failed a plausibility check (range, spike, flatline).
    Suspect,
    /// Value was in-filled by an estimator rather than measured.
    Estimated,
    /// No value was recorded.
    Missing,
}

impl fmt::Display for QualityFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QualityFlag::Good => "good",
            QualityFlag::Suspect => "suspect",
            QualityFlag::Estimated => "estimated",
            QualityFlag::Missing => "missing",
        };
        f.write_str(s)
    }
}

/// One timestamped measurement from a sensor.
///
/// # Examples
///
/// ```
/// use evop_data::{Observation, QualityFlag, SensorId, Timestamp};
///
/// let obs = Observation::new(
///     SensorId::new("morland-stage-outlet"),
///     Timestamp::from_ymd_hms(2012, 6, 1, 9, 15, 0),
///     0.42,
/// );
/// assert_eq!(obs.quality(), QualityFlag::Good);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    sensor: SensorId,
    time: Timestamp,
    value: f64,
    quality: QualityFlag,
}

impl Observation {
    /// Creates an observation with [`QualityFlag::Good`].
    pub fn new(sensor: SensorId, time: Timestamp, value: f64) -> Observation {
        Observation { sensor, time, value, quality: QualityFlag::Good }
    }

    /// Creates an observation with an explicit quality flag.
    pub fn with_quality(
        sensor: SensorId,
        time: Timestamp,
        value: f64,
        quality: QualityFlag,
    ) -> Observation {
        Observation { sensor, time, value, quality }
    }

    /// The producing sensor.
    pub fn sensor(&self) -> &SensorId {
        &self.sensor
    }

    /// When the measurement was taken.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// The measured value (unit per [`SensorKind::unit`]).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// The quality flag.
    pub fn quality(&self) -> QualityFlag {
        self.quality
    }

    /// Returns a copy re-flagged as `quality`.
    pub fn reflagged(&self, quality: QualityFlag) -> Observation {
        Observation { quality, ..self.clone() }
    }
}

/// A synthetic webcam frame descriptor.
///
/// Stands in for the project's real webcam JPEGs: carries the perceptual
/// features the multimodal widget (paper Fig. 5) links to sensor data —
/// scene brightness (diurnal) and water murkiness (correlated with
/// turbidity).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebcamFrame {
    camera: SensorId,
    time: Timestamp,
    brightness: f64,
    murkiness: f64,
}

impl WebcamFrame {
    /// Creates a frame descriptor.
    ///
    /// # Panics
    ///
    /// Panics if `brightness` or `murkiness` are outside `[0, 1]`.
    pub fn new(camera: SensorId, time: Timestamp, brightness: f64, murkiness: f64) -> WebcamFrame {
        assert!((0.0..=1.0).contains(&brightness), "brightness must be in [0,1]");
        assert!((0.0..=1.0).contains(&murkiness), "murkiness must be in [0,1]");
        WebcamFrame { camera, time, brightness, murkiness }
    }

    /// The producing camera.
    pub fn camera(&self) -> &SensorId {
        &self.camera
    }

    /// When the frame was captured.
    pub fn time(&self) -> Timestamp {
        self.time
    }

    /// Scene brightness in `[0, 1]` (0 = night, 1 = noon sun).
    pub fn brightness(&self) -> f64 {
        self.brightness
    }

    /// Water murkiness in `[0, 1]` (proxy for visible turbidity).
    pub fn murkiness(&self) -> f64 {
        self.murkiness
    }

    /// A stable pseudo-URL for the frame, as the portal would link it.
    pub fn url(&self) -> String {
        format!("evop://webcam/{}/{}.jpg", self.camera, self.time.as_unix())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loc() -> LatLon {
        LatLon::new(54.59, -2.62)
    }

    #[test]
    fn sensor_accessors() {
        let s = Sensor::new(
            SensorId::new("x-rain-1"),
            SensorKind::RainGauge,
            "Test gauge",
            loc(),
            CatchmentId::new("morland"),
            900,
        );
        assert_eq!(s.id().as_str(), "x-rain-1");
        assert_eq!(s.kind(), SensorKind::RainGauge);
        assert_eq!(s.kind().unit(), "mm");
        assert_eq!(s.sample_interval_secs(), 900);
        assert_eq!(s.catchment().as_str(), "morland");
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_sensor_id_rejected() {
        let _ = SensorId::new("");
    }

    #[test]
    fn observation_quality_default_and_reflag() {
        let t = Timestamp::from_ymd(2012, 6, 1);
        let obs = Observation::new(SensorId::new("a"), t, 1.0);
        assert_eq!(obs.quality(), QualityFlag::Good);
        let suspect = obs.reflagged(QualityFlag::Suspect);
        assert_eq!(suspect.quality(), QualityFlag::Suspect);
        assert_eq!(suspect.value(), 1.0);
    }

    #[test]
    fn sensor_kind_ranges_are_ordered() {
        for kind in [
            SensorKind::RiverLevel,
            SensorKind::RainGauge,
            SensorKind::Temperature,
            SensorKind::Turbidity,
            SensorKind::Webcam,
        ] {
            let (lo, hi) = kind.valid_range();
            assert!(lo < hi, "{kind} range inverted");
        }
    }

    #[test]
    fn webcam_frame_url_is_stable() {
        let t = Timestamp::from_ymd(2012, 6, 1);
        let f = WebcamFrame::new(SensorId::new("cam-1"), t, 0.8, 0.2);
        assert_eq!(f.url(), format!("evop://webcam/cam-1/{}.jpg", t.as_unix()));
    }

    #[test]
    #[should_panic(expected = "brightness")]
    fn webcam_frame_rejects_out_of_range() {
        let _ = WebcamFrame::new(SensorId::new("cam-1"), Timestamp::UNIX_EPOCH, 1.5, 0.0);
    }

    #[test]
    fn quality_flag_display() {
        assert_eq!(QualityFlag::Suspect.to_string(), "suspect");
        assert_eq!(QualityFlag::Good.to_string(), "good");
    }
}
