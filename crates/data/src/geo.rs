//! Geospatial primitives: coordinates, bounding boxes, rasters and digital
//! elevation models.
//!
//! The portal's landing page (paper Fig. 4) lays assets on an interactive map
//! and the hydrological models consume DEM-derived topographic indices; this
//! module provides both halves: point/box geometry for the asset map, and a
//! full raster DEM with sink filling, D8 flow routing, flow accumulation and
//! TOPMODEL's `ln(a / tan β)` topographic index.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// A WGS-84 latitude/longitude pair in decimal degrees.
///
/// # Examples
///
/// ```
/// use evop_data::geo::LatLon;
///
/// let lancaster = LatLon::new(54.0466, -2.8007);
/// let penrith = LatLon::new(54.6641, -2.7527);
/// let d = lancaster.haversine_km(penrith);
/// assert!((d - 68.7).abs() < 1.0, "distance was {d}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct LatLon {
    lat: f64,
    lon: f64,
}

impl LatLon {
    /// Creates a coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `lat` is outside `[-90, 90]` or `lon` outside `[-180, 180]`.
    pub fn new(lat: f64, lon: f64) -> LatLon {
        assert!((-90.0..=90.0).contains(&lat), "latitude out of range: {lat}");
        assert!((-180.0..=180.0).contains(&lon), "longitude out of range: {lon}");
        LatLon { lat, lon }
    }

    /// Latitude in decimal degrees.
    pub fn lat(self) -> f64 {
        self.lat
    }

    /// Longitude in decimal degrees.
    pub fn lon(self) -> f64 {
        self.lon
    }

    /// Great-circle distance to `other` in kilometres (haversine formula).
    pub fn haversine_km(self, other: LatLon) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlat = lat2 - lat1;
        let dlon = lon2 - lon1;
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// An axis-aligned geographic bounding box.
///
/// # Examples
///
/// ```
/// use evop_data::geo::{BoundingBox, LatLon};
///
/// let cumbria = BoundingBox::new(LatLon::new(54.0, -3.5), LatLon::new(55.0, -2.0));
/// assert!(cumbria.contains(LatLon::new(54.6, -2.6)));
/// assert!(!cumbria.contains(LatLon::new(51.5, -0.1))); // London
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    south_west: LatLon,
    north_east: LatLon,
}

impl BoundingBox {
    /// Creates a box from its south-west and north-east corners.
    ///
    /// # Panics
    ///
    /// Panics if the corners are not in south-west / north-east order.
    pub fn new(south_west: LatLon, north_east: LatLon) -> BoundingBox {
        assert!(
            south_west.lat() <= north_east.lat() && south_west.lon() <= north_east.lon(),
            "corners must be (south-west, north-east)"
        );
        BoundingBox { south_west, north_east }
    }

    /// A box centred on `centre` extending `half_side_km` in each cardinal
    /// direction (approximate, small-box planar maths).
    pub fn around(centre: LatLon, half_side_km: f64) -> BoundingBox {
        let dlat = half_side_km / 111.32;
        let dlon = half_side_km / (111.32 * centre.lat().to_radians().cos().max(1e-6));
        BoundingBox::new(
            LatLon::new((centre.lat() - dlat).max(-90.0), (centre.lon() - dlon).max(-180.0)),
            LatLon::new((centre.lat() + dlat).min(90.0), (centre.lon() + dlon).min(180.0)),
        )
    }

    /// The south-west corner.
    pub fn south_west(self) -> LatLon {
        self.south_west
    }

    /// The north-east corner.
    pub fn north_east(self) -> LatLon {
        self.north_east
    }

    /// `true` if `p` lies inside (or on the edge of) the box.
    pub fn contains(self, p: LatLon) -> bool {
        p.lat() >= self.south_west.lat()
            && p.lat() <= self.north_east.lat()
            && p.lon() >= self.south_west.lon()
            && p.lon() <= self.north_east.lon()
    }

    /// `true` if the two boxes overlap.
    pub fn intersects(self, other: BoundingBox) -> bool {
        self.south_west.lat() <= other.north_east.lat()
            && self.north_east.lat() >= other.south_west.lat()
            && self.south_west.lon() <= other.north_east.lon()
            && self.north_east.lon() >= other.south_west.lon()
    }

    /// The centre of the box.
    pub fn centre(self) -> LatLon {
        LatLon::new(
            (self.south_west.lat() + self.north_east.lat()) / 2.0,
            (self.south_west.lon() + self.north_east.lon()) / 2.0,
        )
    }
}

/// The shape and georeferencing of a raster grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    /// South-west corner of the grid.
    pub origin: LatLon,
    /// Cell edge length in metres.
    pub cell_size_m: f64,
    /// Number of rows (south → north).
    pub rows: usize,
    /// Number of columns (west → east).
    pub cols: usize,
}

impl GridSpec {
    /// Creates a grid spec.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or the cell size is not positive.
    pub fn new(origin: LatLon, cell_size_m: f64, rows: usize, cols: usize) -> GridSpec {
        assert!(rows > 0 && cols > 0, "grid must be non-empty");
        assert!(cell_size_m.is_finite() && cell_size_m > 0.0, "cell size must be positive");
        GridSpec { origin, cell_size_m, rows, cols }
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// `true` when the grid has no cells (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The area of one cell in square kilometres.
    pub fn cell_area_km2(&self) -> f64 {
        (self.cell_size_m / 1000.0).powi(2)
    }

    /// Flat index of `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn index(&self, row: usize, col: usize) -> usize {
        assert!(
            row < self.rows && col < self.cols,
            "({row},{col}) outside {}x{}",
            self.rows,
            self.cols
        );
        row * self.cols + col
    }

    /// `(row, col)` of a flat index.
    pub fn row_col(&self, index: usize) -> (usize, usize) {
        (index / self.cols, index % self.cols)
    }
}

/// A single-band floating-point raster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raster {
    spec: GridSpec,
    values: Vec<f64>,
}

impl Raster {
    /// Creates a raster filled with `fill`.
    pub fn filled(spec: GridSpec, fill: f64) -> Raster {
        Raster { values: vec![fill; spec.len()], spec }
    }

    /// Creates a raster from row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != spec.len()`.
    pub fn from_values(spec: GridSpec, values: Vec<f64>) -> Raster {
        assert_eq!(values.len(), spec.len(), "value count must match grid size");
        Raster { spec, values }
    }

    /// The grid spec.
    pub fn spec(&self) -> &GridSpec {
        &self.spec
    }

    /// The value at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        self.values[self.spec.index(row, col)]
    }

    /// Sets the value at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        let i = self.spec.index(row, col);
        self.values[i] = value;
    }

    /// All values, row-major.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Minimum and maximum values.
    pub fn min_max(&self) -> (f64, f64) {
        self.values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)))
    }
}

/// The eight D8 neighbour offsets `(d_row, d_col)` and their distances in
/// cell units.
const D8: [(isize, isize, f64); 8] = [
    (-1, -1, std::f64::consts::SQRT_2),
    (-1, 0, 1.0),
    (-1, 1, std::f64::consts::SQRT_2),
    (0, -1, 1.0),
    (0, 1, 1.0),
    (1, -1, std::f64::consts::SQRT_2),
    (1, 0, 1.0),
    (1, 1, std::f64::consts::SQRT_2),
];

/// A digital elevation model with hydrological derivatives.
///
/// Provides the pre-processing chain TOPMODEL needs: sink filling, D8
/// steepest-descent flow directions, flow accumulation, local slope and the
/// topographic index `ln(a / tan β)`.
///
/// # Examples
///
/// ```
/// use evop_data::geo::{Dem, GridSpec, LatLon};
/// use rand::SeedableRng;
///
/// let spec = GridSpec::new(LatLon::new(54.59, -2.64), 50.0, 40, 40);
/// let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
/// let dem = Dem::synthetic_valley(spec, 250.0, 60.0, &mut rng);
/// let ti = dem.topographic_index();
/// assert_eq!(ti.values().len(), 1600);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dem {
    elevation: Raster,
}

impl Dem {
    /// Wraps an elevation raster as a DEM.
    pub fn new(elevation: Raster) -> Dem {
        Dem { elevation }
    }

    /// Generates a synthetic upland valley DEM.
    ///
    /// The surface is a V-shaped valley draining towards the southern edge
    /// (row 0), with `relief_m` of side-slope relief, a downstream gradient,
    /// and smooth correlated noise of amplitude `noise_m`. This is the stand-in
    /// for the Ordnance-Survey DEMs the EVOp project used (see DESIGN.md).
    pub fn synthetic_valley<R: rand::Rng>(
        spec: GridSpec,
        relief_m: f64,
        noise_m: f64,
        rng: &mut R,
    ) -> Dem {
        // Coarse lattice of random values, bilinearly interpolated for smooth
        // noise.
        let coarse = 8usize;
        let lat_rows = spec.rows / coarse + 2;
        let lat_cols = spec.cols / coarse + 2;
        let lattice: Vec<f64> = (0..lat_rows * lat_cols).map(|_| rng.gen::<f64>() - 0.5).collect();
        let noise_at = |r: usize, c: usize| -> f64 {
            let fr = r as f64 / coarse as f64;
            let fc = c as f64 / coarse as f64;
            let (r0, c0) = (fr as usize, fc as usize);
            let (tr, tc) = (fr - r0 as f64, fc - c0 as f64);
            let v = |rr: usize, cc: usize| lattice[rr * lat_cols + cc];
            let top = v(r0, c0) * (1.0 - tc) + v(r0, c0 + 1) * tc;
            let bot = v(r0 + 1, c0) * (1.0 - tc) + v(r0 + 1, c0 + 1) * tc;
            top * (1.0 - tr) + bot * tr
        };

        let mut raster = Raster::filled(spec, 0.0);
        let mid = spec.cols as f64 / 2.0;
        for row in 0..spec.rows {
            for col in 0..spec.cols {
                let across = ((col as f64 - mid).abs() / mid).min(1.0);
                let downstream = row as f64 / spec.rows as f64;
                let elev = 100.0
                    + relief_m * across
                    + relief_m * 0.6 * downstream
                    + noise_m * noise_at(row, col);
                raster.set(row, col, elev);
            }
        }
        let mut dem = Dem::new(raster);
        dem.fill_sinks();
        dem
    }

    /// The elevation raster.
    pub fn elevation(&self) -> &Raster {
        &self.elevation
    }

    /// The grid spec.
    pub fn spec(&self) -> &GridSpec {
        self.elevation.spec()
    }

    /// Fills interior sinks by iteratively raising any cell lower than all of
    /// its neighbours to just above its lowest neighbour. Edge cells are
    /// outlets and never raised.
    pub fn fill_sinks(&mut self) {
        let spec = *self.spec();
        loop {
            let mut changed = false;
            for row in 1..spec.rows.saturating_sub(1) {
                for col in 1..spec.cols.saturating_sub(1) {
                    let z = self.elevation.get(row, col);
                    let lowest_neighbour = D8
                        .iter()
                        .map(|&(dr, dc, _)| {
                            self.elevation
                                .get((row as isize + dr) as usize, (col as isize + dc) as usize)
                        })
                        .fold(f64::INFINITY, f64::min);
                    if z < lowest_neighbour {
                        self.elevation.set(row, col, lowest_neighbour + 0.01);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// D8 steepest-descent flow direction for every cell: the flat index of
    /// the receiving neighbour, or `None` for cells with no downhill
    /// neighbour (outlets).
    pub fn flow_directions(&self) -> Vec<Option<usize>> {
        let spec = *self.spec();
        let mut dirs = vec![None; spec.len()];
        for row in 0..spec.rows {
            for col in 0..spec.cols {
                let z = self.elevation.get(row, col);
                let mut best: Option<(usize, f64)> = None;
                for &(dr, dc, dist) in &D8 {
                    let (nr, nc) = (row as isize + dr, col as isize + dc);
                    if nr < 0 || nc < 0 || nr >= spec.rows as isize || nc >= spec.cols as isize {
                        continue;
                    }
                    let (nr, nc) = (nr as usize, nc as usize);
                    let drop = (z - self.elevation.get(nr, nc)) / dist;
                    if drop > 0.0 && best.is_none_or(|(_, d)| drop > d) {
                        best = Some((spec.index(nr, nc), drop));
                    }
                }
                dirs[spec.index(row, col)] = best.map(|(i, _)| i);
            }
        }
        dirs
    }

    /// Upslope contributing area for every cell, in cell counts (each cell
    /// contributes itself). Computed by accumulating in descending elevation
    /// order along D8 directions.
    pub fn flow_accumulation(&self) -> Vec<f64> {
        let dirs = self.flow_directions();
        let mut order: Vec<usize> = (0..self.spec().len()).collect();
        let values = self.elevation.values();
        order.sort_by(|&a, &b| values[b].total_cmp(&values[a]));
        let mut acc = vec![1.0; self.spec().len()];
        for &cell in &order {
            if let Some(target) = dirs[cell] {
                acc[target] += acc[cell];
            }
        }
        acc
    }

    /// Local slope `tan β` for every cell: the steepest D8 downhill gradient,
    /// floored at a small positive value so the topographic index is finite.
    pub fn slope(&self) -> Vec<f64> {
        let spec = *self.spec();
        let mut slopes = vec![0.0; spec.len()];
        for row in 0..spec.rows {
            for col in 0..spec.cols {
                let z = self.elevation.get(row, col);
                let mut best = 0.0f64;
                for &(dr, dc, dist) in &D8 {
                    let (nr, nc) = (row as isize + dr, col as isize + dc);
                    if nr < 0 || nc < 0 || nr >= spec.rows as isize || nc >= spec.cols as isize {
                        continue;
                    }
                    let gradient = (z - self.elevation.get(nr as usize, nc as usize))
                        / (dist * spec.cell_size_m);
                    best = best.max(gradient);
                }
                slopes[spec.index(row, col)] = best.max(1e-4);
            }
        }
        slopes
    }

    /// TOPMODEL's topographic index `ln(a / tan β)` for every cell, where `a`
    /// is the specific upslope area (contributing area per unit contour
    /// length).
    pub fn topographic_index(&self) -> Raster {
        let spec = *self.spec();
        let acc = self.flow_accumulation();
        let slope = self.slope();
        let cell = spec.cell_size_m;
        let values = acc
            .iter()
            .zip(&slope)
            .map(|(&a_cells, &tanb)| {
                let specific_area = a_cells * cell * cell / cell; // m² per m contour
                (specific_area / tanb).ln()
            })
            .collect();
        Raster::from_values(spec, values)
    }

    /// The areal distribution of the topographic index as `(class value,
    /// area fraction)` pairs over `bins` equal-width classes — the form
    /// TOPMODEL consumes.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn ti_distribution(&self, bins: usize) -> Vec<(f64, f64)> {
        assert!(bins > 0, "at least one bin required");
        let ti = self.topographic_index();
        let (lo, hi) = ti.min_max();
        let hi = hi + 1e-9;
        let width = (hi - lo) / bins as f64;
        let mut counts = vec![0usize; bins];
        for &v in ti.values() {
            let idx = (((v - lo) / width) as usize).min(bins - 1);
            counts[idx] += 1;
        }
        let total = ti.values().len() as f64;
        counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (lo + width * (i as f64 + 0.5), c as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn small_spec() -> GridSpec {
        GridSpec::new(LatLon::new(54.0, -2.5), 50.0, 20, 20)
    }

    #[test]
    fn haversine_known_distance() {
        // London to Paris ~343.5 km
        let london = LatLon::new(51.5074, -0.1278);
        let paris = LatLon::new(48.8566, 2.3522);
        let d = london.haversine_km(paris);
        assert!((d - 343.5).abs() < 2.0, "distance was {d}");
    }

    #[test]
    fn haversine_zero_for_same_point() {
        let p = LatLon::new(54.6, -2.6);
        assert!(p.haversine_km(p) < 1e-9);
    }

    #[test]
    #[should_panic(expected = "latitude out of range")]
    fn latlon_rejects_bad_latitude() {
        let _ = LatLon::new(91.0, 0.0);
    }

    #[test]
    fn bbox_contains_and_intersects() {
        let a = BoundingBox::new(LatLon::new(54.0, -3.0), LatLon::new(55.0, -2.0));
        let b = BoundingBox::new(LatLon::new(54.5, -2.5), LatLon::new(55.5, -1.5));
        let c = BoundingBox::new(LatLon::new(50.0, 0.0), LatLon::new(51.0, 1.0));
        assert!(a.intersects(b));
        assert!(b.intersects(a));
        assert!(!a.intersects(c));
        assert!(a.contains(a.centre()));
    }

    #[test]
    fn bbox_around_contains_centre() {
        let centre = LatLon::new(54.6, -2.6);
        let bbox = BoundingBox::around(centre, 5.0);
        assert!(bbox.contains(centre));
        // A point ~3 km north should be inside.
        assert!(bbox.contains(LatLon::new(54.627, -2.6)));
        // A point ~20 km north should be outside.
        assert!(!bbox.contains(LatLon::new(54.78, -2.6)));
    }

    #[test]
    fn grid_index_round_trip() {
        let spec = small_spec();
        for row in [0, 7, 19] {
            for col in [0, 3, 19] {
                assert_eq!(spec.row_col(spec.index(row, col)), (row, col));
            }
        }
    }

    #[test]
    fn raster_get_set() {
        let mut r = Raster::filled(small_spec(), 1.0);
        r.set(3, 4, 9.5);
        assert_eq!(r.get(3, 4), 9.5);
        assert_eq!(r.get(0, 0), 1.0);
        assert_eq!(r.min_max(), (1.0, 9.5));
    }

    #[test]
    fn synthetic_valley_drains_downhill() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let dem = Dem::synthetic_valley(small_spec(), 200.0, 20.0, &mut rng);
        // Valley floor (middle column) should descend towards row 0.
        let top = dem.elevation().get(19, 10);
        let bottom = dem.elevation().get(0, 10);
        assert!(top > bottom, "top={top}, bottom={bottom}");
    }

    #[test]
    fn fill_sinks_removes_pits() {
        let spec = GridSpec::new(LatLon::new(54.0, -2.5), 50.0, 5, 5);
        let mut raster = Raster::filled(spec, 100.0);
        raster.set(2, 2, 10.0); // deep interior pit
        let mut dem = Dem::new(raster);
        dem.fill_sinks();
        assert!(dem.elevation().get(2, 2) >= 100.0);
    }

    #[test]
    fn flow_accumulation_conserves_cells() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dem = Dem::synthetic_valley(small_spec(), 200.0, 10.0, &mut rng);
        let acc = dem.flow_accumulation();
        // Every cell contributes at least itself.
        assert!(acc.iter().all(|&a| a >= 1.0));
        // Maximum accumulation should be substantial (a stream forms) but can
        // never exceed the number of cells.
        let max = acc.iter().cloned().fold(0.0, f64::max);
        assert!(max > 20.0, "max accumulation was {max}");
        assert!(max <= (20 * 20) as f64);
    }

    #[test]
    fn topographic_index_is_finite_and_varied() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let dem = Dem::synthetic_valley(small_spec(), 200.0, 15.0, &mut rng);
        let ti = dem.topographic_index();
        assert!(ti.values().iter().all(|v| v.is_finite()));
        let (lo, hi) = ti.min_max();
        assert!(hi - lo > 1.0, "index range was [{lo}, {hi}]");
    }

    #[test]
    fn ti_distribution_sums_to_one() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let dem = Dem::synthetic_valley(small_spec(), 200.0, 15.0, &mut rng);
        let dist = dem.ti_distribution(16);
        assert_eq!(dist.len(), 16);
        let total: f64 = dist.iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
